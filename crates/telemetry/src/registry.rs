//! The metrics registry: named counters, gauges, and histograms.
//!
//! Handles ([`Counter`], [`Gauge`], [`Histogram`]) are `Arc`s around
//! atomics — updating one is a relaxed atomic op, never a lock. The
//! registry's mutex guards only the series list, touched at registration
//! time and when an observer takes a [`snapshot`](Registry::snapshot).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Number of finite histogram buckets; upper bounds are `2^0 .. 2^(N-1)`,
/// plus an implicit `+Inf` overflow bucket.
pub const HIST_BUCKETS: usize = 32;

/// A monotonically increasing counter.
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        if n != 0 {
            self.0.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Raises the counter to `total` if it is below it — for mirroring an
    /// external cumulative source (e.g. the sim's live counters) without
    /// double counting. Never decreases the value.
    #[inline]
    pub fn mirror(&self, total: u64) {
        self.0.fetch_max(total, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// An instantaneous value (stored as `f64` bits in an atomic).
#[derive(Debug, Clone)]
pub struct Gauge(Arc<AtomicU64>);

impl Default for Gauge {
    fn default() -> Self {
        Gauge(Arc::new(AtomicU64::new(0f64.to_bits())))
    }
}

impl Gauge {
    /// Sets the gauge.
    #[inline]
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// A histogram with fixed log2 buckets: bucket `i` counts observations
/// `v <= 2^i`, the overflow bucket everything larger. Recording is two
/// relaxed atomic adds; reads snapshot all buckets.
#[derive(Debug, Clone, Default)]
pub struct Histogram(Arc<HistInner>);

#[derive(Debug)]
struct HistInner {
    buckets: [AtomicU64; HIST_BUCKETS + 1],
    sum: AtomicU64,
}

impl Default for HistInner {
    fn default() -> Self {
        HistInner {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
        }
    }
}

/// Smallest `i` such that `v <= 2^i`, clamped to the overflow bucket.
fn bucket_index(v: u64) -> usize {
    if v <= 1 {
        return 0;
    }
    let i = 64 - (v - 1).leading_zeros() as usize;
    i.min(HIST_BUCKETS)
}

impl Histogram {
    /// Records one observation.
    #[inline]
    pub fn observe(&self, v: u64) {
        self.0.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.0.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Snapshot: per-bucket (non-cumulative) counts, sum, and count.
    pub fn read(&self) -> HistSnapshot {
        HistSnapshot {
            buckets: std::array::from_fn(|i| self.0.buckets[i].load(Ordering::Relaxed)),
            sum: self.0.sum.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of a [`Histogram`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistSnapshot {
    /// Non-cumulative bucket counts; index `i < HIST_BUCKETS` holds
    /// observations in `(2^(i-1), 2^i]` (index 0: `<= 1`), the final
    /// index the `+Inf` overflow.
    pub buckets: [u64; HIST_BUCKETS + 1],
    /// Sum of all observed values.
    pub sum: u64,
}

impl HistSnapshot {
    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Approximate quantile (`q` in `0.0..=1.0`) by linear interpolation
    /// inside the log2 bucket holding the target rank — the error is
    /// bounded by that bucket's width. Returns 0 for an empty histogram;
    /// ranks landing in the `+Inf` overflow bucket report the largest
    /// finite bucket bound, since no upper edge exists to interpolate
    /// toward.
    pub fn quantile(&self, q: f64) -> f64 {
        let n = self.count();
        if n == 0 {
            return 0.0;
        }
        let target = q.clamp(0.0, 1.0) * n as f64;
        let mut cum = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let prev = cum as f64;
            cum += c;
            if cum as f64 >= target {
                if i >= HIST_BUCKETS {
                    break; // overflow bucket: fall through to the cap
                }
                let lo = if i == 0 {
                    0.0
                } else {
                    (1u64 << (i - 1)) as f64
                };
                let hi = (1u64 << i) as f64;
                let frac = ((target - prev) / c as f64).clamp(0.0, 1.0);
                return lo + frac * (hi - lo);
            }
        }
        (1u64 << (HIST_BUCKETS - 1)) as f64
    }
}

/// The value part of one snapshot row.
#[derive(Debug, Clone, PartialEq)]
pub enum SampleValue {
    /// Counter total.
    Counter(u64),
    /// Gauge reading.
    Gauge(f64),
    /// Histogram snapshot (boxed: ~30x the size of the other variants).
    Histogram(Box<HistSnapshot>),
}

/// One series in a snapshot: base name, label pairs, help, value.
#[derive(Debug, Clone, PartialEq)]
pub struct SampleRow {
    /// Metric base name (e.g. `sweep_cells_done`).
    pub name: String,
    /// Label key/value pairs, in registration order.
    pub labels: Vec<(String, String)>,
    /// Help text (shared by all series of the same base name).
    pub help: String,
    /// The sampled value.
    pub value: SampleValue,
}

enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

struct Series {
    name: String,
    labels: Vec<(String, String)>,
    help: String,
    metric: Metric,
}

/// A collection of named metrics. Cloning shares the underlying series
/// list, so one registry can be handed to many instrumented components.
#[derive(Clone, Default)]
pub struct Registry {
    series: Arc<Mutex<Vec<Series>>>,
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let n = self.series.lock().map(|s| s.len()).unwrap_or(0);
        write!(f, "Registry({n} series)")
    }
}

impl Registry {
    /// A fresh, empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn register(&self, name: &str, labels: &[(&str, &str)], help: &str, metric: Metric) -> &Self {
        let mut s = self.series.lock().expect("registry lock poisoned");
        s.push(Series {
            name: name.to_string(),
            labels: labels
                .iter()
                .map(|&(k, v)| (k.to_string(), v.to_string()))
                .collect(),
            help: help.to_string(),
            metric,
        });
        self
    }

    fn find(&self, name: &str, labels: &[(&str, &str)]) -> Option<Metric> {
        let s = self.series.lock().expect("registry lock poisoned");
        s.iter()
            .find(|row| {
                row.name == name
                    && row.labels.len() == labels.len()
                    && row
                        .labels
                        .iter()
                        .zip(labels)
                        .all(|((k, v), &(lk, lv))| k == lk && v == lv)
            })
            .map(|row| match &row.metric {
                Metric::Counter(c) => Metric::Counter(c.clone()),
                Metric::Gauge(g) => Metric::Gauge(g.clone()),
                Metric::Histogram(h) => Metric::Histogram(h.clone()),
            })
    }

    /// Registers (or retrieves) an unlabeled counter.
    pub fn counter(&self, name: &str, help: &str) -> Counter {
        self.counter_with(name, &[], help)
    }

    /// Registers (or retrieves) a labeled counter. Re-registering the
    /// same (name, labels) returns the existing handle.
    pub fn counter_with(&self, name: &str, labels: &[(&str, &str)], help: &str) -> Counter {
        if let Some(Metric::Counter(c)) = self.find(name, labels) {
            return c;
        }
        let c = Counter::default();
        self.register(name, labels, help, Metric::Counter(c.clone()));
        c
    }

    /// Registers (or retrieves) an unlabeled gauge.
    pub fn gauge(&self, name: &str, help: &str) -> Gauge {
        self.gauge_with(name, &[], help)
    }

    /// Registers (or retrieves) a labeled gauge.
    pub fn gauge_with(&self, name: &str, labels: &[(&str, &str)], help: &str) -> Gauge {
        if let Some(Metric::Gauge(g)) = self.find(name, labels) {
            return g;
        }
        let g = Gauge::default();
        self.register(name, labels, help, Metric::Gauge(g.clone()));
        g
    }

    /// Registers (or retrieves) an unlabeled histogram.
    pub fn histogram(&self, name: &str, help: &str) -> Histogram {
        if let Some(Metric::Histogram(h)) = self.find(name, &[]) {
            return h;
        }
        let h = Histogram::default();
        self.register(name, &[], help, Metric::Histogram(h.clone()));
        h
    }

    /// Samples every series in registration order.
    pub fn snapshot(&self) -> Vec<SampleRow> {
        let s = self.series.lock().expect("registry lock poisoned");
        s.iter()
            .map(|row| SampleRow {
                name: row.name.clone(),
                labels: row.labels.clone(),
                help: row.help.clone(),
                value: match &row.metric {
                    Metric::Counter(c) => SampleValue::Counter(c.get()),
                    Metric::Gauge(g) => SampleValue::Gauge(g.get()),
                    Metric::Histogram(h) => SampleValue::Histogram(Box::new(h.read())),
                },
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_gauge_histogram_roundtrip() {
        let r = Registry::new();
        let c = r.counter("c_total", "a counter");
        c.inc();
        c.add(4);
        c.mirror(3); // below current value: no effect
        assert_eq!(c.get(), 5);
        c.mirror(9);
        assert_eq!(c.get(), 9);

        let g = r.gauge("g", "a gauge");
        g.set(2.5);
        assert_eq!(g.get(), 2.5);

        let h = r.histogram("h", "a histogram");
        h.observe(0);
        h.observe(1);
        h.observe(2);
        h.observe(3);
        h.observe(u64::MAX);
        let snap = h.read();
        assert_eq!(snap.buckets[0], 2, "0 and 1 land in the le=1 bucket");
        assert_eq!(snap.buckets[1], 1, "2 lands in le=2");
        assert_eq!(snap.buckets[2], 1, "3 lands in le=4");
        assert_eq!(snap.buckets[HIST_BUCKETS], 1, "u64::MAX overflows");
        assert_eq!(snap.count(), 5);

        let rows = r.snapshot();
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].value, SampleValue::Counter(9));
    }

    #[test]
    fn reregistration_returns_the_same_handle() {
        let r = Registry::new();
        let a = r.counter_with("x_total", &[("app", "fft")], "x");
        let b = r.counter_with("x_total", &[("app", "fft")], "x");
        let other = r.counter_with("x_total", &[("app", "lu")], "x");
        a.add(7);
        assert_eq!(b.get(), 7, "same (name, labels) shares the cell");
        assert_eq!(other.get(), 0, "different labels are a new series");
        assert_eq!(r.snapshot().len(), 2);
    }

    #[test]
    fn quantiles_interpolate_within_log2_buckets() {
        let h = Histogram::default();
        assert_eq!(h.read().quantile(0.5), 0.0, "empty histogram reads 0");

        // 100 observations of 10, all in the (8, 16] bucket: every
        // quantile interpolates inside that bucket's bounds.
        for _ in 0..100 {
            h.observe(10);
        }
        let s = h.read();
        for q in [0.0, 0.5, 0.9, 0.99, 1.0] {
            let v = s.quantile(q);
            assert!((8.0..=16.0).contains(&v), "q={q} gave {v}");
        }
        assert_eq!(s.quantile(1.0), 16.0, "top rank hits the bucket edge");

        // Spread across buckets: quantiles are monotone in q.
        let h = Histogram::default();
        for v in [1u64, 2, 4, 100, 1000, 100_000] {
            h.observe(v);
        }
        let s = h.read();
        let (p50, p90, p99) = (s.quantile(0.5), s.quantile(0.9), s.quantile(0.99));
        assert!(p50 <= p90 && p90 <= p99, "{p50} {p90} {p99}");

        // Ranks in the +Inf bucket cap at the largest finite bound.
        let h = Histogram::default();
        h.observe(u64::MAX);
        assert_eq!(h.read().quantile(0.5), (1u64 << (HIST_BUCKETS - 1)) as f64);
    }

    #[test]
    fn bucket_bounds_are_powers_of_two() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        assert_eq!(bucket_index(2), 1);
        assert_eq!(bucket_index(4), 2);
        assert_eq!(bucket_index(5), 3);
        assert_eq!(bucket_index(1 << 31), 31);
        assert_eq!(bucket_index((1 << 31) + 1), HIST_BUCKETS);
    }
}
