//! The observer: an epoch sampler that snapshots a [`Registry`] on a
//! host-time cadence, appends each sample to a crash-safe JSONL log, and
//! serves live state over a minimal std-only HTTP server:
//!
//! * `GET /metrics` — Prometheus text exposition (fresh snapshot).
//! * `GET /snapshot` — one JSON epoch record (fresh snapshot).
//! * `GET /events` — `text/event-stream`: every epoch sample as an
//!   `epoch` event plus any application-published `cell` lifecycle
//!   events; a final `end` event announces clean shutdown.
//! * `GET /healthz` — liveness probe: `200 ok` while the hub serves.
//!
//! Epoch records are flat JSON objects,
//! `{"seq":N,"t_ms":T,"metrics":{"name{label=v}":value,...}}`, written
//! with the same single-flushed-write discipline as the sweep store so a
//! crash can tear at most the final line.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::expo;
use crate::registry::Registry;

/// How the hub observes and publishes.
#[derive(Debug, Clone, Default)]
pub struct HubConfig {
    /// Sampling period; zero selects the 250 ms default.
    pub epoch: Duration,
    /// Listen address (e.g. `127.0.0.1:0`) for the HTTP server; `None`
    /// disables serving.
    pub addr: Option<String>,
    /// Path of the JSONL epoch log; `None` disables logging.
    pub log_path: Option<PathBuf>,
}

struct Shared {
    registry: Registry,
    stop: AtomicBool,
    seq: AtomicU64,
    started: Instant,
    subscribers: Mutex<Vec<Sender<String>>>,
}

impl Shared {
    /// One epoch record from a fresh registry snapshot.
    fn epoch_record(&self, seq: u64) -> String {
        let t_ms = self.started.elapsed().as_millis() as u64;
        let metrics = expo::json(&self.registry.snapshot());
        format!("{{\"seq\":{seq},\"t_ms\":{t_ms},\"metrics\":{metrics}}}")
    }

    /// Sends one pre-formatted SSE frame to every subscriber, dropping
    /// the ones whose connection has gone away.
    fn broadcast(&self, frame: &str) {
        let mut subs = self.subscribers.lock().expect("subscriber lock poisoned");
        subs.retain(|tx| tx.send(frame.to_string()).is_ok());
    }
}

/// A cheap clonable handle for publishing application events (per-cell
/// lifecycle) onto the `/events` stream.
#[derive(Clone)]
pub struct HubHandle(Arc<Shared>);

impl std::fmt::Debug for HubHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "HubHandle")
    }
}

impl HubHandle {
    /// Publishes one application event: `data` must be a complete JSON
    /// value; it is framed as an SSE event of the given `kind`.
    pub fn publish(&self, kind: &str, data: &str) {
        self.0.broadcast(&sse_frame(kind, data));
    }
}

/// The running observer; dropping it without [`Hub::shutdown`] aborts
/// the threads un-joined (fine for tests, not for clean logs).
pub struct Hub {
    shared: Arc<Shared>,
    addr: Option<SocketAddr>,
    sampler: Option<JoinHandle<()>>,
    server: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for Hub {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Hub(addr: {:?})", self.addr)
    }
}

/// Formats one SSE frame.
fn sse_frame(kind: &str, data: &str) -> String {
    format!("event: {kind}\ndata: {data}\n\n")
}

impl Hub {
    /// Starts the sampler (and, when configured, the log writer and the
    /// HTTP server) observing `registry`.
    pub fn start(registry: Registry, cfg: HubConfig) -> std::io::Result<Hub> {
        let epoch = if cfg.epoch.is_zero() {
            Duration::from_millis(250)
        } else {
            cfg.epoch
        };
        let shared = Arc::new(Shared {
            registry,
            stop: AtomicBool::new(false),
            seq: AtomicU64::new(0),
            started: Instant::now(),
            subscribers: Mutex::new(Vec::new()),
        });

        let mut log = match &cfg.log_path {
            None => None,
            Some(p) => Some(
                std::fs::OpenOptions::new()
                    .create(true)
                    .append(true)
                    .open(p)?,
            ),
        };

        let (addr, server) = match &cfg.addr {
            None => (None, None),
            Some(a) => {
                let listener = TcpListener::bind(a)?;
                let local = listener.local_addr()?;
                let sh = Arc::clone(&shared);
                let h = std::thread::Builder::new()
                    .name("telemetry-http".into())
                    .spawn(move || serve(listener, sh))?;
                (Some(local), Some(h))
            }
        };

        let sampler = {
            let sh = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("telemetry-sampler".into())
                .spawn(move || {
                    let mut next = Instant::now() + epoch;
                    loop {
                        // Sleep in short slices so shutdown is prompt.
                        while Instant::now() < next {
                            if sh.stop.load(Ordering::SeqCst) {
                                break;
                            }
                            std::thread::sleep(Duration::from_millis(10).min(epoch));
                        }
                        let stopping = sh.stop.load(Ordering::SeqCst);
                        next += epoch;
                        let seq = sh.seq.fetch_add(1, Ordering::SeqCst) + 1;
                        let rec = sh.epoch_record(seq);
                        if let Some(f) = log.as_mut() {
                            // Crash-safe JSONL: one buffered line, one
                            // write, one flush — a crash tears at most
                            // the final line.
                            let line = format!("{rec}\n");
                            let _ = f.write_all(line.as_bytes());
                            let _ = f.flush();
                        }
                        sh.broadcast(&sse_frame("epoch", &rec));
                        if stopping {
                            // Final sample taken; announce the end and
                            // release every subscriber.
                            sh.broadcast(&sse_frame("end", "{}"));
                            sh.subscribers
                                .lock()
                                .expect("subscriber lock poisoned")
                                .clear();
                            return;
                        }
                    }
                })?
        };

        Ok(Hub {
            shared,
            addr,
            sampler: Some(sampler),
            server,
        })
    }

    /// The HTTP server's bound address (useful with port 0).
    pub fn local_addr(&self) -> Option<SocketAddr> {
        self.addr
    }

    /// A clonable handle for publishing application events.
    pub fn handle(&self) -> HubHandle {
        HubHandle(Arc::clone(&self.shared))
    }

    /// Stops the sampler and server, taking one final epoch sample (so
    /// the log ends with the terminal state) and closing every SSE
    /// stream with an `end` event.
    pub fn shutdown(mut self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.sampler.take() {
            let _ = h.join();
        }
        // Unblock the accept loop with a throwaway connection.
        if let Some(addr) = self.addr {
            let _ = TcpStream::connect_timeout(&addr, Duration::from_millis(200));
        }
        if let Some(h) = self.server.take() {
            let _ = h.join();
        }
    }
}

/// The accept loop: one handler thread per connection.
fn serve(listener: TcpListener, shared: Arc<Shared>) {
    loop {
        let conn = listener.accept();
        if shared.stop.load(Ordering::SeqCst) {
            return;
        }
        let Ok((stream, _)) = conn else { continue };
        let sh = Arc::clone(&shared);
        let _ = std::thread::Builder::new()
            .name("telemetry-conn".into())
            .spawn(move || handle_conn(stream, sh));
    }
}

/// Parses the request line and routes.
fn handle_conn(stream: TcpStream, shared: Arc<Shared>) {
    let mut reader = BufReader::new(match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    });
    let mut line = String::new();
    if reader.read_line(&mut line).is_err() {
        return;
    }
    let mut parts = line.split_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("");
    if method != "GET" {
        respond(stream, "405 Method Not Allowed", "text/plain", "GET only\n");
        return;
    }
    match path {
        "/metrics" => {
            let body = expo::prometheus(&shared.registry.snapshot());
            respond(
                stream,
                "200 OK",
                "text/plain; version=0.0.4; charset=utf-8",
                &body,
            );
        }
        "/snapshot" => {
            let seq = shared.seq.load(Ordering::SeqCst);
            let body = format!("{}\n", shared.epoch_record(seq));
            respond(stream, "200 OK", "application/json", &body);
        }
        "/events" => serve_events(stream, &shared),
        // Liveness probe: scrapers and CI can check the hub is up
        // without parsing a snapshot.
        "/healthz" => respond(stream, "200 OK", "text/plain", "ok\n"),
        _ => respond(
            stream,
            "404 Not Found",
            "text/plain",
            "try /metrics, /snapshot, /events, /healthz\n",
        ),
    }
}

/// Writes one complete HTTP/1.1 response and closes.
fn respond(mut stream: TcpStream, status: &str, ctype: &str, body: &str) {
    let head = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {ctype}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    let _ = stream.write_all(head.as_bytes());
    let _ = stream.write_all(body.as_bytes());
    let _ = stream.flush();
}

/// The SSE endpoint: subscribes to the broadcast list and forwards
/// frames until the hub shuts down or the client disconnects.
fn serve_events(mut stream: TcpStream, shared: &Arc<Shared>) {
    let head = "HTTP/1.1 200 OK\r\nContent-Type: text/event-stream\r\nCache-Control: no-cache\r\nConnection: close\r\n\r\n";
    if stream.write_all(head.as_bytes()).is_err() {
        return;
    }
    // Immediately confirm liveness with the current state, then follow
    // the broadcast stream.
    let seq = shared.seq.load(Ordering::SeqCst);
    let first = sse_frame("epoch", &shared.epoch_record(seq));
    if stream.write_all(first.as_bytes()).is_err() || stream.flush().is_err() {
        return;
    }
    let rx: Receiver<String> = {
        let (tx, rx) = std::sync::mpsc::channel();
        shared
            .subscribers
            .lock()
            .expect("subscriber lock poisoned")
            .push(tx);
        rx
    };
    // The sender side is dropped by the sampler at shutdown (after the
    // `end` frame), which ends this loop; a client disconnect surfaces
    // as a write error.
    while let Ok(frame) = rx.recv() {
        if stream.write_all(frame.as_bytes()).is_err() || stream.flush().is_err() {
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Read;

    fn get(addr: SocketAddr, path: &str) -> String {
        let mut s = TcpStream::connect(addr).expect("connect");
        write!(s, "GET {path} HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        let mut buf = String::new();
        s.read_to_string(&mut buf).expect("read");
        buf
    }

    #[test]
    fn metrics_and_snapshot_serve_fresh_state() {
        let reg = Registry::new();
        let c = reg.counter("t_total", "a test counter");
        let hub = Hub::start(
            reg,
            HubConfig {
                epoch: Duration::from_millis(20),
                addr: Some("127.0.0.1:0".into()),
                log_path: None,
            },
        )
        .expect("hub start");
        let addr = hub.local_addr().expect("bound");
        c.add(17);
        let m = get(addr, "/metrics");
        assert!(m.starts_with("HTTP/1.1 200 OK"), "{m}");
        assert!(m.contains("t_total 17"), "{m}");
        let s = get(addr, "/snapshot");
        assert!(s.contains("application/json"), "{s}");
        assert!(s.contains("\"t_total\":17"), "{s}");
        assert!(s.contains("\"seq\":"), "{s}");
        let hz = get(addr, "/healthz");
        assert!(hz.starts_with("HTTP/1.1 200 OK"), "{hz}");
        assert!(hz.ends_with("ok\n"), "{hz}");
        let nf = get(addr, "/unknown");
        assert!(nf.starts_with("HTTP/1.1 404"), "{nf}");
        assert!(nf.contains("/healthz"), "hint lists the probe: {nf}");
        hub.shutdown();
    }

    #[test]
    fn events_stream_epochs_and_ends_cleanly() {
        let reg = Registry::new();
        let c = reg.counter("e_total", "events test");
        let hub = Hub::start(
            reg,
            HubConfig {
                epoch: Duration::from_millis(10),
                addr: Some("127.0.0.1:0".into()),
                log_path: None,
            },
        )
        .expect("hub start");
        let addr = hub.local_addr().expect("bound");
        c.add(3);

        let mut s = TcpStream::connect(addr).expect("connect");
        write!(s, "GET /events HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        let handle = hub.handle();
        // Give the subscription a moment to register, then publish an
        // application event and shut down.
        std::thread::sleep(Duration::from_millis(60));
        handle.publish("cell", "{\"label\":\"fft/orig/4p\",\"kind\":\"started\"}");
        std::thread::sleep(Duration::from_millis(30));
        hub.shutdown();

        let mut body = String::new();
        s.read_to_string(&mut body).expect("stream closes at end");
        assert!(body.contains("event: epoch"), "{body}");
        assert!(body.contains("\"e_total\":3"), "{body}");
        assert!(body.contains("event: cell"), "{body}");
        assert!(body.contains("fft/orig/4p"), "{body}");
        assert!(
            body.trim_end().ends_with("data: {}"),
            "ends with end frame: {body}"
        );
        assert!(body.contains("event: end"), "{body}");
    }

    #[test]
    fn jsonl_log_is_appended_one_line_per_epoch() {
        let dir = std::env::temp_dir().join(format!("telemetry-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("epochs.jsonl");
        let _ = std::fs::remove_file(&path);
        let reg = Registry::new();
        reg.counter("l_total", "log test").add(9);
        let hub = Hub::start(
            reg,
            HubConfig {
                epoch: Duration::from_millis(10),
                addr: None,
                log_path: Some(path.clone()),
            },
        )
        .expect("hub start");
        std::thread::sleep(Duration::from_millis(80));
        hub.shutdown();
        let text = std::fs::read_to_string(&path).expect("log exists");
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines.len() >= 2, "several epochs: {}", lines.len());
        let mut last_seq = 0u64;
        for l in &lines {
            assert!(l.starts_with("{\"seq\":"), "record shape: {l}");
            assert!(l.ends_with('}'), "complete line: {l}");
            assert!(l.contains("\"l_total\":9"), "{l}");
            let seq: u64 = l["{\"seq\":".len()..]
                .split(',')
                .next()
                .unwrap()
                .parse()
                .unwrap();
            assert!(seq > last_seq, "seq strictly increases");
            last_seq = seq;
        }
        let _ = std::fs::remove_file(&path);
    }
}
