//! Live telemetry for the ccNUMA scaling study: a lock-cheap metrics
//! registry, a rate pipeline, and a streaming observer.
//!
//! The crate is std-only and knows nothing about simulators or sweeps —
//! it provides three mechanisms the study's binaries compose:
//!
//! * [`registry`] — named counters, gauges, and log2-bucketed histograms
//!   with an atomic hot path (handles are `Arc`s around atomics; the
//!   registry lock is touched only at registration and snapshot time).
//! * [`rate`] — an EWMA/derivative filter turning monotonic counters
//!   into per-epoch rates (events/sec, misses/sec), robust to counter
//!   resets and empty epochs.
//! * [`expo`] — Prometheus text exposition and a flat JSON rendering of
//!   a registry snapshot.
//! * [`hub`] — the observer: an epoch sampler, a crash-safe JSONL
//!   epoch log, and a minimal HTTP server with `/metrics`, `/snapshot`,
//!   and `/events` (SSE) endpoints.
//!
//! Everything here observes; nothing feeds back. The simulation's
//! determinism guarantee (bit-identical `RunStats` with telemetry on or
//! off) is pinned by tests in the `bench` crate.

#![warn(missing_docs)]

pub mod expo;
pub mod hub;
pub mod rate;
pub mod registry;

pub use rate::RateFilter;
pub use registry::{Counter, Gauge, Histogram, Registry, SampleValue};
