//! The rate pipeline: a derivative + EWMA filter that turns monotonic
//! counters into smoothed per-second rates, one epoch at a time.
//!
//! Each epoch the sampler feeds the filter the counter's current total
//! and the host-time step. The filter differentiates (handling counter
//! resets by treating the post-reset value as the delta) and smooths
//! with a time-aware exponential moving average, so irregular epoch
//! lengths do not distort the rate.

/// Turns a monotonic counter into a smoothed events-per-second rate.
#[derive(Debug, Clone)]
pub struct RateFilter {
    /// Smoothing time constant in seconds: after `tau` seconds of a new
    /// steady rate, the output has covered ~63% of the step.
    tau_s: f64,
    last: Option<u64>,
    ewma: f64,
}

impl RateFilter {
    /// A filter with time constant `tau_s` seconds (clamped to a small
    /// positive minimum so `tau_s = 0` degenerates to no smoothing).
    pub fn new(tau_s: f64) -> Self {
        RateFilter {
            tau_s: tau_s.max(1e-9),
            last: None,
            ewma: 0.0,
        }
    }

    /// Feeds the counter total at the end of an epoch `dt_s` seconds
    /// long; returns the smoothed rate. `dt_s <= 0` is a no-op (the
    /// previous rate is returned unchanged); the first observation
    /// establishes the baseline and reports 0. A total below the
    /// previous one is a counter reset: the new total itself is the
    /// delta.
    pub fn update(&mut self, total: u64, dt_s: f64) -> f64 {
        // NaN falls through the first test; !is_finite() catches it.
        if dt_s <= 0.0 || !dt_s.is_finite() {
            return self.ewma;
        }
        let delta = match self.last {
            None => {
                self.last = Some(total);
                return 0.0;
            }
            Some(prev) if total < prev => total, // counter reset
            Some(prev) => total - prev,
        };
        self.last = Some(total);
        let raw = delta as f64 / dt_s;
        // Time-aware EWMA: the weight of the new sample grows with the
        // epoch length, so one long epoch moves the average as far as
        // many short ones covering the same span.
        let alpha = 1.0 - (-dt_s / self.tau_s).exp();
        self.ewma += alpha * (raw - self.ewma);
        self.ewma
    }

    /// The current smoothed rate without feeding a new sample.
    pub fn rate(&self) -> f64 {
        self.ewma
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn steady_counter_converges_to_true_rate() {
        let mut f = RateFilter::new(2.0);
        assert_eq!(f.update(0, 1.0), 0.0, "first sample is the baseline");
        let mut total = 0;
        let mut r = 0.0;
        for _ in 0..60 {
            total += 500; // 500 events per 1-second epoch
            r = f.update(total, 1.0);
        }
        assert!((r - 500.0).abs() < 1.0, "rate {r} should converge to 500");
    }

    #[test]
    fn counter_reset_does_not_go_negative() {
        let mut f = RateFilter::new(0.0); // no smoothing: output = raw rate
        f.update(1000, 1.0);
        f.update(2000, 1.0);
        // Process restarted: counter fell back to 300 in one epoch.
        let r = f.update(300, 1.0);
        assert!(r >= 0.0, "reset must not produce a negative rate, got {r}");
        assert!(
            (r - 300.0).abs() < 1e-9,
            "post-reset total is the delta, got {r}"
        );
    }

    #[test]
    fn empty_epoch_is_a_no_op() {
        let mut f = RateFilter::new(1.0);
        f.update(100, 1.0);
        let r1 = f.update(600, 1.0);
        assert!(r1 > 0.0);
        let r2 = f.update(700, 0.0);
        assert_eq!(r2, r1, "dt = 0 must not change the rate");
        let r3 = f.update(700, -5.0);
        assert_eq!(r3, r1, "negative dt must not change the rate");
        let r4 = f.update(700, f64::NAN);
        assert_eq!(r4, r1, "NaN dt must not change the rate");
        assert_eq!(f.rate(), r1);
    }

    #[test]
    fn idle_counter_decays_toward_zero() {
        let mut f = RateFilter::new(1.0);
        f.update(0, 1.0);
        f.update(10_000, 1.0);
        let mut r = f.rate();
        for _ in 0..30 {
            r = f.update(10_000, 1.0); // no new events
        }
        assert!(r < 1.0, "idle rate should decay toward 0, got {r}");
    }

    #[test]
    fn edge_sequences_stay_finite_and_nonnegative() {
        // Property-style table: each row is a (total, dt) stream mixing
        // resets, repeated identical samples, and large clock jumps. The
        // invariant under every sequence: the output is finite and >= 0
        // after each update, and a repeated identical (total, dt=0)
        // sample never changes it.
        let table: &[(&str, &[(u64, f64)])] = &[
            (
                "reset mid-stream then resume",
                &[
                    (100, 1.0),
                    (200, 1.0),
                    (50, 1.0), // reset: 50 is the delta
                    (150, 1.0),
                    (250, 1.0),
                ],
            ),
            (
                "repeated identical timestamps (dt = 0)",
                &[(100, 1.0), (500, 1.0), (500, 0.0), (500, 0.0), (900, 1.0)],
            ),
            (
                "large clock jump forward",
                &[(0, 1.0), (1_000, 1.0), (2_000, 86_400.0), (3_000, 1.0)],
            ),
            (
                "reset to zero, twice",
                &[(10, 1.0), (0, 1.0), (5, 1.0), (0, 1.0), (7, 1.0)],
            ),
            (
                "huge totals near u64::MAX",
                &[
                    (u64::MAX - 10, 1.0),
                    (u64::MAX, 1.0),
                    (3, 1.0), // wraps/resets: 3 is the delta
                ],
            ),
            (
                "NaN and negative dt interleaved",
                &[
                    (100, 1.0),
                    (200, f64::NAN),
                    (300, -1.0),
                    (400, 1.0),
                    (400, f64::INFINITY),
                ],
            ),
        ];
        for (name, seq) in table {
            let mut f = RateFilter::new(2.0);
            for (i, &(total, dt)) in seq.iter().enumerate() {
                let r = f.update(total, dt);
                assert!(r.is_finite(), "{name}[{i}]: rate {r} not finite");
                assert!(r >= 0.0, "{name}[{i}]: rate {r} went negative");
                let before = f.rate();
                assert_eq!(
                    f.update(total, 0.0),
                    before,
                    "{name}[{i}]: identical zero-dt resample moved the rate"
                );
            }
        }
    }

    #[test]
    fn long_epoch_weighs_like_many_short_ones() {
        // Same total events over the same wall time, different epoch
        // slicing: final rates should roughly agree.
        let mut short = RateFilter::new(2.0);
        let mut long = RateFilter::new(2.0);
        short.update(0, 1.0);
        long.update(0, 1.0);
        let mut total = 0;
        let mut rs = 0.0;
        for _ in 0..10 {
            total += 100;
            rs = short.update(total, 1.0);
        }
        let rl = long.update(1000, 10.0);
        assert!(
            (rs - rl).abs() < 15.0,
            "time-aware smoothing: short {rs} vs long {rl}"
        );
    }
}
