//! Rendering a registry snapshot: Prometheus text exposition format and
//! a flat JSON object.

use crate::registry::{SampleRow, SampleValue, HIST_BUCKETS};

/// Escapes a HELP text: backslash and newline.
fn esc_help(s: &str) -> String {
    s.replace('\\', "\\\\").replace('\n', "\\n")
}

/// Escapes a label value: backslash, double quote, newline.
fn esc_label(s: &str) -> String {
    s.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

/// Renders `{k="v",...}` for a label set (empty string for no labels),
/// with `extra` appended last (used for histogram `le`).
fn label_block(labels: &[(String, String)], extra: Option<(&str, &str)>) -> String {
    let mut parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", esc_label(v)))
        .collect();
    if let Some((k, v)) = extra {
        parts.push(format!("{k}=\"{}\"", esc_label(v)));
    }
    if parts.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", parts.join(","))
    }
}

/// Formats a gauge value the way Prometheus expects.
fn fmt_f64(v: f64) -> String {
    if v.is_nan() {
        "NaN".into()
    } else if v.is_infinite() {
        if v > 0.0 {
            "+Inf".into()
        } else {
            "-Inf".into()
        }
    } else {
        format!("{v}")
    }
}

/// Renders a snapshot in the Prometheus text exposition format
/// (version 0.0.4): `# HELP` / `# TYPE` once per metric base name,
/// histogram buckets cumulative with a final `+Inf`, plus `_sum` and
/// `_count` series.
pub fn prometheus(rows: &[SampleRow]) -> String {
    let mut out = String::new();
    let mut seen: Vec<&str> = Vec::new();
    for row in rows {
        if !seen.contains(&row.name.as_str()) {
            seen.push(&row.name);
            let ty = match row.value {
                SampleValue::Counter(_) => "counter",
                SampleValue::Gauge(_) => "gauge",
                SampleValue::Histogram(_) => "histogram",
            };
            out.push_str(&format!("# HELP {} {}\n", row.name, esc_help(&row.help)));
            out.push_str(&format!("# TYPE {} {}\n", row.name, ty));
        }
        match &row.value {
            SampleValue::Counter(v) => {
                out.push_str(&format!(
                    "{}{} {}\n",
                    row.name,
                    label_block(&row.labels, None),
                    v
                ));
            }
            SampleValue::Gauge(v) => {
                out.push_str(&format!(
                    "{}{} {}\n",
                    row.name,
                    label_block(&row.labels, None),
                    fmt_f64(*v)
                ));
            }
            SampleValue::Histogram(h) => {
                let mut cum = 0u64;
                for (i, &c) in h.buckets.iter().enumerate() {
                    cum += c;
                    let le = if i < HIST_BUCKETS {
                        format!("{}", 1u64 << i)
                    } else {
                        "+Inf".to_string()
                    };
                    out.push_str(&format!(
                        "{}_bucket{} {}\n",
                        row.name,
                        label_block(&row.labels, Some(("le", &le))),
                        cum
                    ));
                }
                out.push_str(&format!(
                    "{}_sum{} {}\n",
                    row.name,
                    label_block(&row.labels, None),
                    h.sum
                ));
                out.push_str(&format!(
                    "{}_count{} {}\n",
                    row.name,
                    label_block(&row.labels, None),
                    cum
                ));
            }
        }
    }
    out
}

/// Escapes a JSON string body.
pub fn esc_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// The flat series key used in JSON renderings: the base name, plus
/// `{k=v,...}` when the series is labeled.
pub fn series_key(name: &str, labels: &[(String, String)]) -> String {
    if labels.is_empty() {
        name.to_string()
    } else {
        let parts: Vec<String> = labels.iter().map(|(k, v)| format!("{k}={v}")).collect();
        format!("{}{{{}}}", name, parts.join(","))
    }
}

/// Renders a snapshot as one flat JSON object: `"name{k=v}" -> number`.
/// Histograms flatten to `_sum`, `_count`, and interpolated `_p50` /
/// `_p90` / `_p99` entries (see
/// [`HistSnapshot::quantile`](crate::registry::HistSnapshot::quantile)).
/// The object's key order is the registry's registration order.
pub fn json(rows: &[SampleRow]) -> String {
    let mut parts: Vec<String> = Vec::with_capacity(rows.len());
    for row in rows {
        let key = series_key(&row.name, &row.labels);
        match &row.value {
            SampleValue::Counter(v) => {
                parts.push(format!("\"{}\":{}", esc_json(&key), v));
            }
            SampleValue::Gauge(v) => {
                let num = if v.is_finite() {
                    format!("{v}")
                } else {
                    "null".to_string() // JSON has no NaN/Inf
                };
                parts.push(format!("\"{}\":{}", esc_json(&key), num));
            }
            SampleValue::Histogram(h) => {
                parts.push(format!("\"{}_sum\":{}", esc_json(&key), h.sum));
                parts.push(format!("\"{}_count\":{}", esc_json(&key), h.count()));
                for (tag, q) in [("p50", 0.5), ("p90", 0.9), ("p99", 0.99)] {
                    parts.push(format!("\"{}_{}\":{}", esc_json(&key), tag, h.quantile(q)));
                }
            }
        }
    }
    format!("{{{}}}", parts.join(","))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;

    #[test]
    fn exposition_has_help_type_and_values() {
        let r = Registry::new();
        r.counter("sim_events_total", "Engine events processed")
            .add(42);
        r.gauge("sweep_running", "Cells running now").set(3.0);
        let text = prometheus(&r.snapshot());
        assert!(text.contains("# HELP sim_events_total Engine events processed\n"));
        assert!(text.contains("# TYPE sim_events_total counter\n"));
        assert!(text.contains("sim_events_total 42\n"));
        assert!(text.contains("# TYPE sweep_running gauge\n"));
        assert!(text.contains("sweep_running 3\n"));
    }

    #[test]
    fn labeled_series_share_one_help_block() {
        let r = Registry::new();
        r.counter_with("cells_total", &[("status", "ok")], "Cells by status")
            .add(5);
        r.counter_with("cells_total", &[("status", "panicked")], "Cells by status")
            .add(1);
        let text = prometheus(&r.snapshot());
        assert_eq!(text.matches("# HELP cells_total").count(), 1);
        assert!(text.contains("cells_total{status=\"ok\"} 5\n"));
        assert!(text.contains("cells_total{status=\"panicked\"} 1\n"));
    }

    #[test]
    fn label_values_are_escaped() {
        let r = Registry::new();
        r.counter_with("weird_total", &[("app", "a\"b\\c\nd")], "odd labels")
            .add(1);
        let text = prometheus(&r.snapshot());
        assert!(
            text.contains("weird_total{app=\"a\\\"b\\\\c\\nd\"} 1\n"),
            "got: {text}"
        );
    }

    #[test]
    fn histogram_buckets_are_cumulative_and_end_at_inf() {
        let r = Registry::new();
        let h = r.histogram("lat_ns", "latency");
        h.observe(1); // bucket le=1
        h.observe(3); // bucket le=4
        h.observe(3);
        let text = prometheus(&r.snapshot());
        assert!(text.contains("# TYPE lat_ns histogram\n"));
        assert!(text.contains("lat_ns_bucket{le=\"1\"} 1\n"));
        assert!(text.contains("lat_ns_bucket{le=\"2\"} 1\n"), "cumulative");
        assert!(text.contains("lat_ns_bucket{le=\"4\"} 3\n"));
        assert!(text.contains("lat_ns_bucket{le=\"8\"} 3\n"), "cumulative");
        assert!(text.contains("lat_ns_bucket{le=\"+Inf\"} 3\n"));
        assert!(text.contains("lat_ns_sum 7\n"));
        assert!(text.contains("lat_ns_count 3\n"));
        // Cumulativity across every consecutive pair of bucket lines.
        let counts: Vec<u64> = text
            .lines()
            .filter(|l| l.starts_with("lat_ns_bucket"))
            .map(|l| l.rsplit(' ').next().unwrap().parse().unwrap())
            .collect();
        assert!(counts.windows(2).all(|w| w[0] <= w[1]), "{counts:?}");
    }

    #[test]
    fn json_is_flat_and_parsable_shape() {
        let r = Registry::new();
        r.counter("a_total", "a").add(7);
        r.gauge("b", "b").set(1.5);
        r.histogram("h", "h").observe(10);
        let j = json(&r.snapshot());
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert!(j.contains("\"a_total\":7"));
        assert!(j.contains("\"b\":1.5"));
        assert!(j.contains("\"h_sum\":10"));
        assert!(j.contains("\"h_count\":1"));
        // One observation of 10 sits in the (8, 16] bucket; its quantiles
        // interpolate inside it.
        assert!(j.contains("\"h_p50\":12"), "got: {j}");
        assert!(j.contains("\"h_p90\":"));
        assert!(j.contains("\"h_p99\":"));
    }
}
