//! Sample sort — the paper's successful restructuring of Radix sort (§5.1).
//!
//! Two local sorting phases bracket a splitter-based exchange. Unlike the
//! Radix permutation's scattered remote *writes*, the exchange here is
//! stride-one remote *reads* of contiguous segments, which behave far
//! better under the coherence protocol. The price is sorting locally twice,
//! bounding parallel efficiency near 50% — exactly the paper's analysis.

use ccnuma_sim::ctx::Ctx;
use ccnuma_sim::machine::{Machine, Placement};

use crate::common::{chunk_range, Job, Workload, XorShift};

/// Configuration of one Sample sort run.
#[derive(Debug, Clone)]
pub struct SampleSort {
    /// Number of keys.
    pub n_keys: usize,
    /// Samples taken per processor for splitter selection.
    pub oversample: usize,
    /// Total key bits.
    pub key_bits: u32,
    /// Seed for key generation.
    pub seed: u64,
    /// Whether to prefetch remote segments during the exchange (§6.1).
    pub prefetch: bool,
}

impl SampleSort {
    /// A Sample sort of `n_keys` 16-bit keys with 24-fold oversampling.
    ///
    /// # Panics
    ///
    /// Panics if `n_keys` is zero.
    pub fn new(n_keys: usize) -> Self {
        assert!(n_keys > 0);
        SampleSort {
            n_keys,
            oversample: 24,
            key_bits: 16,
            seed: 0xADD,
            prefetch: true,
        }
    }

    /// The deterministic input keys (same generator as Radix for a fair
    /// comparison).
    pub fn input(&self) -> Vec<u64> {
        let mut rng = XorShift::new(self.seed);
        let mask = (1u64 << self.key_bits) - 1;
        (0..self.n_keys).map(|_| rng.next_u64() & mask).collect()
    }
}

/// Charges the cost of a local radix sort of `n` keys (`passes` passes of
/// counting + permuting).
fn charge_local_sort(ctx: &Ctx, n: u64, key_bits: u32) {
    let passes = u64::from(key_bits.div_ceil(8));
    ctx.compute_ops(passes * n * 4);
}

impl Workload for SampleSort {
    fn name(&self) -> String {
        "samplesort".into()
    }

    fn problem(&self) -> String {
        format!("{} keys", self.n_keys)
    }

    fn build(&self, machine: &mut Machine) -> Job {
        let n = self.n_keys;
        let np = machine.nprocs();
        let s = self.oversample;
        let key_bits = self.key_bits;

        let keys = machine.shared_vec::<u64>(n, Placement::Blocked);
        let out = machine.shared_vec::<u64>(n, Placement::Blocked);
        let samples = machine.shared_vec::<u64>(np * s, Placement::Node(0));
        // Splitters, computed once by processor 0 and read by everyone.
        let splitters = machine.shared_vec::<u64>(np.max(2) - 1, Placement::Node(0));
        // bounds[q * (np+1) + d]: segment boundaries within q's sorted block.
        let bounds = machine.shared_vec::<u64>(np * (np + 1), Placement::Blocked);
        // Prefix-scan scratch over per-processor count vectors (as in
        // Radix): scan[q][stage][d], processor-major.
        let stages = (usize::BITS - (np - 1).leading_zeros()) as usize;
        let scan = machine.shared_vec::<u64>(np * (stages + 1) * np, Placement::Blocked);
        let bar = machine.barrier();
        keys.copy_from_slice(&self.input());

        let (k2, o2, sm2, sp2, sc2, bd2) = (
            keys.clone(),
            out.clone(),
            samples.clone(),
            splitters.clone(),
            scan.clone(),
            bounds.clone(),
        );
        let mut expected = self.input();
        expected.sort_unstable();
        let result = out.clone();
        let do_prefetch = self.prefetch;

        let body = move |ctx: &Ctx| {
            let p = ctx.id();
            let npr = ctx.nprocs();
            let my = chunk_range(n, npr, p);
            let m = my.len();

            // Phase 1: local sort of my block (read, host sort, write back).
            let mut block: Vec<u64> = my.clone().map(|i| k2.read(ctx, i)).collect();
            block.sort_unstable();
            charge_local_sort(ctx, m as u64, key_bits);
            for (off, &k) in block.iter().enumerate() {
                k2.write(ctx, my.start + off, k);
            }

            // Phase 2: publish *randomly drawn* samples (seeded per
            // processor). Regular per-block quantiles would cluster the
            // pooled sample at only `oversample` quantile levels, which
            // cannot yield nprocs distinct splitters; random draws make
            // the pooled sample i.i.d., as classic sample sort requires.
            let mut rng = XorShift::new(0x5A17 ^ (p as u64) << 8);
            for t in 0..s {
                let v = if m == 0 {
                    0
                } else {
                    block[rng.below(m as u64) as usize]
                };
                sm2.write(ctx, p * s + t, v);
                ctx.compute_ops(2);
            }
            ctx.barrier(bar);

            // Phase 3: processor 0 sorts the samples and publishes the
            // splitters; everyone else just reads the np−1 values.
            if p == 0 {
                let mut all: Vec<u64> = (0..npr * s).map(|i| sm2.read(ctx, i)).collect();
                all.sort_unstable();
                charge_local_sort(ctx, (npr * s) as u64, key_bits);
                for d in 1..npr {
                    sp2.write(ctx, d - 1, all[d * s]);
                }
            }
            ctx.barrier(bar);
            let splitters: Vec<u64> = (0..npr.max(2) - 1)
                .take(npr - 1)
                .map(|d| sp2.read(ctx, d))
                .collect();

            // Phase 4: segment my sorted block by splitter and publish
            // counts + boundaries.
            let mut cuts = Vec::with_capacity(npr + 1);
            cuts.push(0usize);
            for sp in &splitters {
                cuts.push(block.partition_point(|&k| k <= *sp));
                ctx.compute_ops((m.max(2) as u64).ilog2() as u64 + 1);
            }
            cuts.push(m);
            let counts_row: Vec<u64> = (0..npr).map(|d| (cuts[d + 1] - cuts[d]) as u64).collect();
            for (d, &c) in cuts.iter().enumerate() {
                bd2.write(ctx, p * (npr + 1) + d, c as u64);
            }

            // Phase 5: dissemination scan over the per-processor count
            // vectors gives every processor the destination totals in
            // O(P·log P) instead of reading the whole P×P matrix.
            let slot = |q: usize, st: usize, d: usize| (q * (stages + 1) + st) * npr + d;
            let mut incl = counts_row.clone();
            for st in 0..stages {
                for (d, &v) in incl.iter().enumerate() {
                    sc2.write(ctx, slot(p, st, d), v);
                }
                ctx.barrier(bar);
                if p >= (1 << st) {
                    let q = p - (1 << st);
                    for (d, vv) in incl.iter_mut().enumerate() {
                        *vv += sc2.read(ctx, slot(q, st, d));
                        ctx.compute_ops(1);
                    }
                }
            }
            for (d, &v) in incl.iter().enumerate() {
                sc2.write(ctx, slot(p, stages, d), v);
            }
            ctx.barrier(bar);
            let mut my_start = 0u64;
            let mut my_total = 0u64;
            for d in 0..npr {
                let total = sc2.read(ctx, slot(npr - 1, stages, d));
                if d < p {
                    my_start += total;
                } else if d == p {
                    my_total = total;
                }
                ctx.compute_ops(1);
            }

            // Phase 6: gather my segments with stride-one remote reads,
            // staggered to avoid a hot spot.
            let mut merged: Vec<u64> = Vec::with_capacity(my_total as usize);
            for t in 0..npr {
                let q = (p + 1 + t) % npr;
                let qr = chunk_range(n, npr, q);
                let lo = bd2.read(ctx, q * (npr + 1) + p) as usize;
                let hi = bd2.read(ctx, q * (npr + 1) + p + 1) as usize;
                if do_prefetch && hi > lo {
                    k2.prefetch(ctx, qr.start + lo, hi - lo);
                }
                for i in lo..hi {
                    merged.push(k2.read(ctx, qr.start + i));
                }
            }

            // Phase 7: second local sort, then contiguous write-out.
            merged.sort_unstable();
            charge_local_sort(ctx, merged.len() as u64, key_bits);
            for (off, &k) in merged.iter().enumerate() {
                o2.write(ctx, my_start as usize + off, k);
            }
            ctx.barrier(bar);
        };

        let verify = move || {
            for (i, want) in expected.iter().enumerate() {
                let got = result.get(i);
                if got != *want {
                    return Err(format!("samplesort mismatch at {i}: {got} vs {want}"));
                }
            }
            Ok(())
        };
        Job::new(body, verify)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccnuma_sim::config::MachineConfig;

    fn run(app: &SampleSort, np: usize) -> ccnuma_sim::stats::RunStats {
        let mut m = Machine::new(MachineConfig::origin2000_scaled(np, 64 << 10)).unwrap();
        let job = app.build(&mut m);
        let body = job.body;
        let stats = m.run(move |ctx| body(ctx)).unwrap();
        (job.verify)().unwrap();
        stats
    }

    #[test]
    fn sorts_at_many_proc_counts() {
        for np in [1usize, 4, 7, 8] {
            run(&SampleSort::new(3000), np);
        }
    }

    #[test]
    fn skewed_inputs_still_sort() {
        // Heavily duplicated keys stress splitter handling.
        let mut app = SampleSort::new(2048);
        app.key_bits = 4; // only 16 distinct values
        run(&app, 8);
    }

    #[test]
    fn exchange_causes_less_write_protocol_traffic_than_radix() {
        // The paper's §5.1 point: Sample sort's all-to-all is stride-one
        // remote *reads*, Radix's is scattered remote *writes*. Writes show
        // up as invalidations and upgrades; compare the two algorithms on
        // the same input.
        let stats_ss = run(&SampleSort::new(4096), 8);
        let radix = crate::radix::Radix::new(4096);
        let mut m = Machine::new(MachineConfig::origin2000_scaled(8, 64 << 10)).unwrap();
        let job = radix.build(&mut m);
        let body = job.body;
        let stats_rx = m.run(move |ctx| body(ctx)).unwrap();
        (job.verify)().unwrap();
        let write_traffic =
            |s: &ccnuma_sim::stats::RunStats| s.total(|p| p.invals_sent + p.upgrades);
        assert!(
            write_traffic(&stats_ss) < write_traffic(&stats_rx),
            "sample sort {} should invalidate less than radix {}",
            write_traffic(&stats_ss),
            write_traffic(&stats_rx)
        );
    }

    #[test]
    fn tiny_inputs_and_more_procs_than_keys() {
        let app = SampleSort::new(5);
        run(&app, 8);
    }
}
