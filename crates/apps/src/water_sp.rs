//! Water-Spatial: molecular dynamics with a 3-D cell decomposition.
//!
//! The box is divided into unit cells (the interaction cutoff); molecules
//! interact only with molecules in their own and neighbouring cells.
//! Processors own contiguous 3-D blocks of cells, so communication is
//! near-neighbour: only boundary-face cells are read remotely. As the
//! problem grows, the surface-to-volume ratio — and with it both the
//! communication-to-computation ratio and the communication *imbalance* —
//! shrinks, which is how the paper explains Water-Spatial's scaling
//! (Figure 5).
//!
//! Each processor evaluates the *full* neighbour list of its own molecules
//! (every pair computed from both sides), so force accumulation is
//! single-writer: no cross-processor reduction or locking is needed.
//!
//! Simplification vs SPLASH-2: the cell lists are rebuilt redundantly by
//! every processor from a snapshot (charged as integer work) rather than
//! cooperatively with locks; list rebuild is a small fraction of time in
//! both codes and molecules are pre-sorted by cell so block placement makes
//! a processor's slab local.

use std::sync::Arc;

use ccnuma_sim::ctx::Ctx;
use ccnuma_sim::machine::{Machine, Placement};

use crate::common::{chunk_range, Job, Workload, XorShift};

/// Configuration of one Water-Spatial run.
#[derive(Debug, Clone)]
pub struct WaterSpatial {
    /// Number of molecules.
    pub n_mols: usize,
    /// Cells per box side (cell size = cutoff = 1.0).
    pub side: usize,
    /// Timesteps.
    pub steps: usize,
    /// Seed for initial positions.
    pub seed: u64,
}

const DT: f64 = 1e-4;
const PAIR_FLOPS: u64 = 160;

/// Cell lists: molecule ids sorted by cell, plus per-cell start offsets.
#[derive(Debug, Clone)]
struct CellLists {
    order: Vec<usize>,
    start: Vec<usize>,
}

impl WaterSpatial {
    /// `n_mols` molecules at roughly unit density (side = ⌈∛n⌉, min 3).
    ///
    /// # Panics
    ///
    /// Panics if `n_mols` is zero.
    pub fn new(n_mols: usize) -> Self {
        assert!(n_mols > 0);
        let side = ((n_mols as f64).cbrt().ceil() as usize).max(3);
        WaterSpatial {
            n_mols,
            side,
            steps: 1,
            seed: 0x3A7,
        }
    }

    /// Deterministic initial positions, pre-sorted by cell so that block
    /// placement gives each processor's slab locally-homed molecules.
    pub fn initial_positions(&self) -> Vec<[f64; 3]> {
        let mut rng = XorShift::new(self.seed);
        let l = self.side as f64;
        let mut pos: Vec<[f64; 3]> = (0..self.n_mols)
            .map(|_| {
                [
                    rng.range_f64(0.01, l - 0.01),
                    rng.range_f64(0.01, l - 0.01),
                    rng.range_f64(0.01, l - 0.01),
                ]
            })
            .collect();
        let side = self.side;
        pos.sort_by_key(|p| cell_index(cell_of(*p, side), side));
        pos
    }

    /// Host reference: identical algorithm, sequential.
    pub fn reference(&self) -> Vec<[f64; 3]> {
        let mut pos = self.initial_positions();
        let mut vel = vec![[0.0f64; 3]; self.n_mols];
        let s = self.side;
        for _ in 0..self.steps {
            let lists = bin(&pos, s);
            let mut acc = vec![[0.0f64; 3]; self.n_mols];
            for cz in 0..s {
                for c in plane_cells(cz, s) {
                    for t in lists.start[c]..lists.start[c + 1] {
                        let i = lists.order[t];
                        let (a, _) = force_on(i, pos[i], decompose(c, s), s, &lists, |j| pos[j]);
                        acc[i] = a;
                    }
                }
            }
            for i in 0..self.n_mols {
                for d in 0..3 {
                    vel[i][d] += acc[i][d] * DT;
                    pos[i][d] += vel[i][d] * DT;
                }
            }
        }
        pos
    }
}

fn cell_of(p: [f64; 3], side: usize) -> (usize, usize, usize) {
    let s = side as f64;
    let clamp = |x: f64| ((x.max(0.0).min(s - 1e-9)) as usize).min(side - 1);
    (clamp(p[0]), clamp(p[1]), clamp(p[2]))
}

fn cell_index(c: (usize, usize, usize), side: usize) -> usize {
    c.2 * side * side + c.1 * side + c.0
}

fn decompose(c: usize, side: usize) -> (usize, usize, usize) {
    (c % side, (c / side) % side, c / (side * side))
}

/// Linear cell indices of z-plane `cz`, in deterministic order.
fn plane_cells(cz: usize, side: usize) -> std::ops::Range<usize> {
    cz * side * side..(cz + 1) * side * side
}

/// Factors `nprocs` into a (px, py, pz) grid, near-cubic.
fn proc_grid_3d(nprocs: usize) -> (usize, usize, usize) {
    let mut best = (1, 1, nprocs);
    let mut best_score = usize::MAX;
    for px in 1..=nprocs {
        if !nprocs.is_multiple_of(px) {
            continue;
        }
        let rest = nprocs / px;
        for py in 1..=rest {
            if !rest.is_multiple_of(py) {
                continue;
            }
            let pz = rest / py;
            let score = px.max(py).max(pz) - px.min(py).min(pz);
            if score < best_score {
                best_score = score;
                best = (px, py, pz);
            }
        }
    }
    best
}

/// The cells owned by processor `p`: a 3-D block (x, y, z ranges).
fn my_cells(
    side: usize,
    nprocs: usize,
    p: usize,
) -> (
    std::ops::Range<usize>,
    std::ops::Range<usize>,
    std::ops::Range<usize>,
) {
    let (px, py, pz) = proc_grid_3d(nprocs);
    let ix = p % px;
    let iy = (p / px) % py;
    let iz = p / (px * py);
    (
        chunk_range(side, px, ix),
        chunk_range(side, py, iy),
        chunk_range(side, pz, iz),
    )
}

fn bin(pos: &[[f64; 3]], side: usize) -> CellLists {
    let ncells = side * side * side;
    let mut count = vec![0usize; ncells + 1];
    for p in pos {
        count[cell_index(cell_of(*p, side), side) + 1] += 1;
    }
    for c in 0..ncells {
        count[c + 1] += count[c];
    }
    let start = count.clone();
    let mut cursor = count;
    let mut order = vec![0usize; pos.len()];
    for (i, p) in pos.iter().enumerate() {
        let c = cell_index(cell_of(*p, side), side);
        order[cursor[c]] = i;
        cursor[c] += 1;
    }
    CellLists { order, start }
}

/// Total force on molecule `i` at `pi` in cell `c` from its 27-cell
/// neighbourhood, reading partner positions through `read_pos` (timed in
/// the parallel code, direct on the host). Returns (force, pairs examined).
fn force_on(
    i: usize,
    pi: [f64; 3],
    c: (usize, usize, usize),
    side: usize,
    lists: &CellLists,
    mut read_pos: impl FnMut(usize) -> [f64; 3],
) -> ([f64; 3], u64) {
    let mut acc = [0.0f64; 3];
    let mut pairs = 0;
    for dz in -1i64..=1 {
        let nz = c.2 as i64 + dz;
        if nz < 0 || nz >= side as i64 {
            continue;
        }
        for dy in -1i64..=1 {
            let ny = c.1 as i64 + dy;
            if ny < 0 || ny >= side as i64 {
                continue;
            }
            for dx in -1i64..=1 {
                let nx = c.0 as i64 + dx;
                if nx < 0 || nx >= side as i64 {
                    continue;
                }
                let nc = cell_index((nx as usize, ny as usize, nz as usize), side);
                for t in lists.start[nc]..lists.start[nc + 1] {
                    let j = lists.order[t];
                    if j == i {
                        continue;
                    }
                    let pj = read_pos(j);
                    pairs += 1;
                    let dxv = [pi[0] - pj[0], pi[1] - pj[1], pi[2] - pj[2]];
                    let r2 = dxv[0] * dxv[0] + dxv[1] * dxv[1] + dxv[2] * dxv[2];
                    if r2 < 1.0 {
                        let r2s = r2 + 0.25;
                        let inv = 1.0 / r2s;
                        let mag = inv * inv * (inv - 0.4);
                        for d in 0..3 {
                            acc[d] += mag * dxv[d];
                        }
                    }
                }
            }
        }
    }
    (acc, pairs)
}

impl Workload for WaterSpatial {
    fn name(&self) -> String {
        "water-sp".into()
    }

    fn problem(&self) -> String {
        format!("{} molecules", self.n_mols)
    }

    fn build(&self, machine: &mut Machine) -> Job {
        let n = self.n_mols;
        let side = self.side;
        let steps = self.steps;

        let pos = machine.shared_vec::<[f64; 3]>(n, Placement::Blocked);
        let vel = machine.shared_vec::<[f64; 3]>(n, Placement::Blocked);
        let acc = machine.shared_vec::<[f64; 3]>(n, Placement::Blocked);
        let bar = machine.barrier();
        pos.copy_from_slice(&self.initial_positions());

        let (pos2, vel2, acc2) = (pos.clone(), vel.clone(), acc.clone());
        let expected = self.reference();
        let out = pos.clone();

        let body = move |ctx: &Ctx| {
            let p = ctx.id();
            let np = ctx.nprocs();
            let (mx, my_r, mz) = my_cells(side, np, p);
            for _ in 0..steps {
                // Rebuild cell lists from a consistent snapshot (all
                // processors are past the previous barrier). Charged as the
                // per-processor share of the rebuild.
                let snapshot: Vec<[f64; 3]> = (0..n).map(|i| pos2.get(i)).collect();
                let lists = Arc::new(bin(&snapshot, side));
                ctx.compute_ops((2 * n / np.max(1)) as u64 + 64);
                ctx.barrier(bar);

                // Force phase over my 3-D block of cells.
                for cz in mz.clone() {
                    for cy in my_r.clone() {
                        for cx in mx.clone() {
                            let c = cell_index((cx, cy, cz), side);
                            for t in lists.start[c]..lists.start[c + 1] {
                                let i = lists.order[t];
                                let pi = pos2.read(ctx, i);
                                let (a, pairs) = force_on(i, pi, (cx, cy, cz), side, &lists, |j| {
                                    pos2.read(ctx, j)
                                });
                                ctx.compute_flops(pairs * PAIR_FLOPS);
                                acc2.write(ctx, i, a);
                            }
                        }
                    }
                }
                ctx.barrier(bar);

                // Update my molecules.
                for cz in mz.clone() {
                    for cy in my_r.clone() {
                        for cx in mx.clone() {
                            let c = cell_index((cx, cy, cz), side);
                            for t in lists.start[c]..lists.start[c + 1] {
                                let i = lists.order[t];
                                let a = acc2.read(ctx, i);
                                let mut v = vel2.read(ctx, i);
                                let mut x = pos2.read(ctx, i);
                                for d in 0..3 {
                                    v[d] += a[d] * DT;
                                    x[d] += v[d] * DT;
                                }
                                vel2.write(ctx, i, v);
                                pos2.write(ctx, i, x);
                                ctx.compute_flops(12);
                            }
                        }
                    }
                }
                ctx.barrier(bar);
            }
        };

        let verify = move || {
            for (i, want) in expected.iter().enumerate() {
                let got = out.get(i);
                let want = *want;
                for d in 0..3 {
                    if (got[d] - want[d]).abs() > 1e-12 * want[d].abs().max(1.0) {
                        return Err(format!(
                            "water-sp mismatch at mol {i} dim {d}: {} vs {}",
                            got[d], want[d]
                        ));
                    }
                }
            }
            Ok(())
        };
        Job::new(body, verify)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccnuma_sim::config::MachineConfig;

    fn run(app: &WaterSpatial, np: usize) -> ccnuma_sim::stats::RunStats {
        let mut m = Machine::new(MachineConfig::origin2000_scaled(np, 64 << 10)).unwrap();
        let job = app.build(&mut m);
        let body = job.body;
        let stats = m.run(move |ctx| body(ctx)).unwrap();
        (job.verify)().unwrap();
        stats
    }

    #[test]
    fn binning_is_consistent() {
        let app = WaterSpatial::new(200);
        let pos = app.initial_positions();
        let lists = bin(&pos, app.side);
        // Every molecule appears exactly once and in its own cell's span.
        let mut seen = [false; 200];
        let ncells = app.side.pow(3);
        for c in 0..ncells {
            for t in lists.start[c]..lists.start[c + 1] {
                let i = lists.order[t];
                assert!(!seen[i]);
                seen[i] = true;
                assert_eq!(cell_index(cell_of(pos[i], app.side), app.side), c);
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn matches_reference_at_many_proc_counts() {
        for np in [1usize, 3, 8] {
            run(&WaterSpatial::new(300), np);
        }
    }

    #[test]
    fn multi_step_stays_correct() {
        let mut app = WaterSpatial::new(150);
        app.steps = 3;
        run(&app, 4);
    }

    #[test]
    fn communication_is_near_neighbor_only() {
        // With 8 slabs, only boundary planes are remote; remote misses must
        // be well below the n-squared regime.
        let stats = run(&WaterSpatial::new(1000), 8);
        let remote = stats.total(|p| p.misses_remote_clean + p.misses_remote_dirty);
        let total = stats.total(|p| p.accesses());
        assert!(remote > 0);
        assert!(
            (remote as f64) < 0.3 * total as f64,
            "communication should be boundary-only: {remote}/{total}"
        );
    }

    #[test]
    fn larger_problems_reduce_sync_share() {
        // The Figure-5 effect: growing the problem shrinks the
        // synchronization (imbalance) share of execution time.
        let small = run(&WaterSpatial::new(200), 8);
        let large = run(&WaterSpatial::new(1600), 8);
        let sync_share = |s: &ccnuma_sim::stats::RunStats| {
            let (_, _, sync) = s.avg_breakdown_pct();
            sync
        };
        assert!(
            sync_share(&large) < sync_share(&small),
            "sync share should fall with size: {} vs {}",
            sync_share(&large),
            sync_share(&small)
        );
    }
}
