//! Volrend: ray-cast volume rendering with early ray termination.
//!
//! An n³ density volume (read-shared, interleaved across memories) is
//! rendered into an n×n image by casting one axis-aligned ray per pixel and
//! compositing front-to-back until opacity saturates. Pixel tiles are
//! dynamically claimed from a shared counter (task stealing); the
//! [`Volrend::static_partition`] variant uses the SVM restructuring — a
//! balanced static assignment that avoids stealing — which on the Origin
//! buys only a few percent (§5.2) because stealing is cheap there.

use ccnuma_sim::ctx::Ctx;
use ccnuma_sim::machine::{Machine, Placement};

use crate::common::{chunk_range, Job, Workload};

/// Configuration of one Volrend run.
#[derive(Debug, Clone)]
pub struct Volrend {
    /// Volume (and image) side length.
    pub side: usize,
    /// Pixel tile edge for scheduling.
    pub tile: usize,
    /// Use a balanced static tile assignment instead of dynamic stealing.
    pub static_partition: bool,
}

/// Opacity at which a ray terminates early.
const OPACITY_CUTOFF: f64 = 0.95;
/// Flops charged per composited sample.
const SAMPLE_FLOPS: u64 = 8;

impl Volrend {
    /// A renderer over an analytically generated `side³` head-like volume.
    ///
    /// # Panics
    ///
    /// Panics if `side < 8`.
    pub fn new(side: usize) -> Self {
        assert!(side >= 8);
        Volrend {
            side,
            tile: (side / 16).clamp(2, 8),
            static_partition: false,
        }
    }

    /// The deterministic density volume, `side³` values in z-major order
    /// (`v[z][y][x]`): a dense core inside a soft shell, echoing the
    /// SPLASH-2 "head" data set.
    pub fn volume(&self) -> Vec<f32> {
        let n = self.side;
        let mut v = vec![0.0f32; n * n * n];
        let c = (n as f64 - 1.0) / 2.0;
        for z in 0..n {
            for y in 0..n {
                for x in 0..n {
                    let dx = (x as f64 - c) / c;
                    let dy = (y as f64 - c) / c;
                    let dz = (z as f64 - c) / c;
                    let r = (dx * dx + dy * dy + dz * dz).sqrt();
                    let shell = (-((r - 0.7) * (r - 0.7)) * 40.0).exp() * 0.6;
                    let core = (-(r * r) * 12.0).exp();
                    v[(z * n + y) * n + x] = (shell + core).min(1.0) as f32;
                }
            }
        }
        v
    }

    /// Density → (opacity, emitted intensity) transfer function.
    fn transfer(density: f64) -> (f64, f64) {
        let a = (density - 0.05).max(0.0) * 0.9;
        (a.min(1.0), density)
    }

    /// Composites the ray for pixel (x, y), reading samples through
    /// `read_voxel`. Returns (intensity, samples taken before cutoff).
    fn cast(
        side: usize,
        x: usize,
        y: usize,
        mut read_voxel: impl FnMut(usize) -> f32,
    ) -> (f64, u64) {
        let mut color = 0.0;
        let mut alpha = 0.0;
        let mut samples = 0;
        for z in 0..side {
            let d = f64::from(read_voxel((z * side + y) * side + x));
            samples += 1;
            let (a, c) = Self::transfer(d);
            color += (1.0 - alpha) * a * c;
            alpha += (1.0 - alpha) * a;
            if alpha > OPACITY_CUTOFF {
                break;
            }
        }
        (color, samples)
    }

    /// Sequential reference image.
    pub fn reference(&self) -> Vec<f64> {
        let vol = self.volume();
        let n = self.side;
        let mut img = vec![0.0; n * n];
        for y in 0..n {
            for x in 0..n {
                img[y * n + x] = Self::cast(n, x, y, |i| vol[i]).0;
            }
        }
        img
    }
}

impl Workload for Volrend {
    fn name(&self) -> String {
        if self.static_partition {
            "volrend/static".into()
        } else {
            "volrend".into()
        }
    }

    fn problem(&self) -> String {
        format!("{0}x{0}x{0} volume", self.side)
    }

    fn build(&self, machine: &mut Machine) -> Job {
        let n = self.side;
        let tile = self.tile;
        let static_partition = self.static_partition;

        let volume = machine.shared_vec::<f32>(n * n * n, Placement::Interleaved);
        let image = machine.shared_vec::<f64>(n * n, Placement::Blocked);
        let next_tile = machine.fetch_cell(0);
        volume.copy_from_slice(&self.volume());

        let tiles_per_row = n.div_ceil(tile);
        let n_tiles = tiles_per_row * tiles_per_row;
        let (vol2, img2) = (volume.clone(), image.clone());
        let expected = self.reference();
        let out = image.clone();

        let body = move |ctx: &Ctx| {
            let render_tile = |ctx: &Ctx, t: usize| {
                let ty = t / tiles_per_row;
                let tx = t % tiles_per_row;
                for y in ty * tile..((ty + 1) * tile).min(n) {
                    for x in tx * tile..((tx + 1) * tile).min(n) {
                        let (v, samples) = Volrend::cast(n, x, y, |i| vol2.read(ctx, i));
                        ctx.compute_flops(samples * SAMPLE_FLOPS);
                        img2.write(ctx, y * n + x, v);
                    }
                }
            };
            if static_partition {
                for t in chunk_range(n_tiles, ctx.nprocs(), ctx.id()) {
                    render_tile(ctx, t);
                }
            } else {
                loop {
                    let t = ctx.fetch_add(next_tile, 1);
                    if t as usize >= n_tiles {
                        break;
                    }
                    render_tile(ctx, t as usize);
                }
            }
        };

        let verify = move || {
            for (i, want) in expected.iter().enumerate() {
                let (got, want) = (out.get(i), *want);
                if (got - want).abs() > 1e-12 {
                    return Err(format!("volrend mismatch at pixel {i}: {got} vs {want}"));
                }
            }
            Ok(())
        };
        Job::new(body, verify)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccnuma_sim::config::MachineConfig;

    fn run(app: &Volrend, np: usize) -> ccnuma_sim::stats::RunStats {
        let mut m = Machine::new(MachineConfig::origin2000_scaled(np, 64 << 10)).unwrap();
        let job = app.build(&mut m);
        let body = job.body;
        let stats = m.run(move |ctx| body(ctx)).unwrap();
        (job.verify)().unwrap();
        stats
    }

    #[test]
    fn image_matches_reference() {
        for np in [1usize, 4, 6] {
            run(&Volrend::new(16), np);
        }
    }

    #[test]
    fn static_partition_matches_too() {
        let mut app = Volrend::new(16);
        app.static_partition = true;
        run(&app, 8);
    }

    #[test]
    fn early_termination_saves_samples() {
        let app = Volrend::new(24);
        let vol = app.volume();
        // A central ray should terminate early inside the dense core; a
        // corner ray passes mostly empty space and samples everything.
        let (_, center) = Volrend::cast(24, 12, 12, |i| vol[i]);
        let (_, corner) = Volrend::cast(24, 0, 0, |i| vol[i]);
        assert!(center < 24, "central ray should terminate early: {center}");
        assert_eq!(corner, 24);
    }

    #[test]
    fn image_has_structure() {
        let img = Volrend::new(24).reference();
        let max = img.iter().cloned().fold(0.0, f64::max);
        let min = img.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(max > 0.3 && min < 0.05, "range [{min}, {max}]");
    }

    #[test]
    fn dynamic_and_static_yield_identical_images() {
        let dynamic = Volrend::new(16);
        let mut stat = Volrend::new(16);
        stat.static_partition = true;
        // Both verified against the same reference inside run().
        run(&dynamic, 5);
        run(&stat, 5);
    }
}
