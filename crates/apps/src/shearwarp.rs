//! Shear-Warp volume rendering, original and restructured (§4.1, §5.1).
//!
//! Shear-warp factorizes the viewing transformation: a **compositing**
//! phase shears volume slices and composites them front-to-back into a
//! distorted intermediate image (over 90% of the sequential time), and a
//! **warp** phase resamples the intermediate image into the final image.
//!
//! * **Original**: intermediate-image scanlines are assigned to processors
//!   in an interleaved round-robin of scanline chunks (for load balance),
//!   while the warp partitions the *final* image — so the processor that
//!   warps a row generally did not composite the intermediate rows it
//!   reads. That interface loses locality and is exactly the memory-time
//!   bottleneck of Figure 7.
//! * **Restructured** (the paper's new algorithm, simplified): contiguous
//!   intermediate partitions sized by *profiled work* (slice coverage per
//!   scanline, as Lacroute's parallel shear-warp balances on), and each
//!   processor warps precisely the final rows that sample its own
//!   intermediate rows — the compositing→warp interface becomes
//!   processor-local.

use ccnuma_sim::ctx::Ctx;
use ccnuma_sim::machine::{Machine, Placement};

use crate::common::{chunk_range, Job, Workload};
use crate::volrend::Volrend;

/// Partitioning of the compositing/warp phases.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShearWarpVariant {
    /// Interleaved intermediate scanlines; warp partitions the final image.
    Original,
    /// Contiguous partitions with a locality-preserving warp assignment.
    Sweep,
}

/// Configuration of one Shear-Warp run.
#[derive(Debug, Clone)]
pub struct ShearWarp {
    /// Volume side length (volume is `side³`).
    pub side: usize,
    /// Shear per slice in intermediate-image rows (integer, ≥ 0).
    pub shear: usize,
    /// Scanline chunk size for the interleaved assignment.
    pub chunk: usize,
    /// Which algorithm variant to run.
    pub variant: ShearWarpVariant,
}

const SAMPLE_FLOPS: u64 = 8;
const WARP_FLOPS: u64 = 6;
const OPACITY_CUTOFF: f64 = 0.95;

impl ShearWarp {
    /// A Shear-Warp renderer over the same analytic volume as
    /// [`Volrend`], with a 1-row-per-4-slices shear.
    ///
    /// # Panics
    ///
    /// Panics if `side < 8`.
    pub fn new(side: usize) -> Self {
        assert!(side >= 8);
        ShearWarp {
            side,
            shear: 1,
            chunk: 2,
            variant: ShearWarpVariant::Original,
        }
    }

    fn vol(&self) -> Vec<f32> {
        Volrend::new(self.side).volume()
    }

    /// Rows of the (sheared) intermediate image.
    pub fn inter_rows(&self) -> usize {
        self.side + self.row_shift(self.side - 1) + 1
    }

    /// Shear offset (in intermediate rows) of slice `z`.
    fn row_shift(&self, z: usize) -> usize {
        (z * self.shear) / 4
    }

    fn transfer(d: f64) -> (f64, f64) {
        let a = (d - 0.05).max(0.0) * 0.9;
        (a.min(1.0), d)
    }

    /// Number of column segments per scanline used for work distribution:
    /// enough that `nprocs` processors have at least two items each.
    pub fn segments(&self, nprocs: usize) -> usize {
        (2 * nprocs)
            .div_ceil(self.inter_rows())
            .max(1)
            .min(self.side)
    }

    /// Measured compositing work per item (the *profile* the paper's
    /// restructured algorithm balances on): a host-side compositing pass
    /// over the actual volume, so early ray termination is accounted for.
    fn item_weights(&self, nprocs: usize) -> Vec<u64> {
        let vol = self.vol();
        let k = self.segments(nprocs);
        let rows = self.inter_rows();
        let n = self.side;
        (0..rows * k)
            .map(|item| {
                let (row, seg) = (item / k, item % k);
                let cols = chunk_range(n, k, seg);
                self.composite_row(row, cols, |i| vol[i], |_, _| ()) + 1
            })
            .collect()
    }

    /// Contiguous, profile-balanced partition of the `rows·k` work items
    /// into `nprocs` groups: returns the `nprocs + 1` item boundaries.
    pub fn balanced_bounds(&self, nprocs: usize) -> Vec<usize> {
        let k = self.segments(nprocs);
        let rows = self.inter_rows();
        let weights = self.item_weights(nprocs);
        let total: u64 = weights.iter().sum();
        let mut bounds = Vec::with_capacity(nprocs + 1);
        bounds.push(0);
        let mut acc = 0u64;
        let mut next_target = 1;
        for (item, &w) in weights.iter().enumerate() {
            acc += w;
            while next_target < nprocs && acc * nprocs as u64 >= total * next_target as u64 {
                bounds.push(item + 1);
                next_target += 1;
            }
        }
        while bounds.len() < nprocs + 1 {
            bounds.push(rows * k);
        }
        bounds
    }

    /// Composites intermediate row `v`, columns `cols`, reading voxels
    /// through `read_voxel` and writing through `write_inter`. The z-loop
    /// is innermost per pixel so early termination applies per column.
    fn composite_row(
        &self,
        v: usize,
        cols: std::ops::Range<usize>,
        mut read_voxel: impl FnMut(usize) -> f32,
        mut write_inter: impl FnMut(usize, f64),
    ) -> u64 {
        let n = self.side;
        let mut work = 0u64;
        for u in cols {
            let mut color = 0.0;
            let mut alpha = 0.0;
            for z in 0..n {
                let shift = self.row_shift(z);
                if v < shift || v - shift >= n {
                    continue;
                }
                let y = v - shift;
                let d = f64::from(read_voxel((z * n + y) * n + u));
                work += SAMPLE_FLOPS;
                let (a, c) = Self::transfer(d);
                color += (1.0 - alpha) * a * c;
                alpha += (1.0 - alpha) * a;
                if alpha > OPACITY_CUTOFF {
                    break;
                }
            }
            write_inter(v * n + u, color);
        }
        work
    }

    /// Warps final row `y`: samples two intermediate rows with the inverse
    /// shear and blends (the un-distortion). Returns charged flops.
    fn warp_row(
        &self,
        y: usize,
        cols: std::ops::Range<usize>,
        mut read_inter: impl FnMut(usize) -> f64,
        mut write_final: impl FnMut(usize, f64),
    ) -> u64 {
        let n = self.side;
        // The inverse warp maps final row y to intermediate rows around
        // y + mean_shift; blend two rows for a smooth resample.
        let mean_shift = self.row_shift(n - 1) / 2;
        let v0 = y + mean_shift;
        let v1 = (v0 + 1).min(self.inter_rows() - 1);
        let mut work = 0u64;
        for x in cols {
            let a = read_inter(v0 * n + x);
            let b = read_inter(v1 * n + x);
            write_final(y * n + x, 0.75 * a + 0.25 * b);
            work += WARP_FLOPS;
        }
        work
    }

    /// Sequential reference: composite everything, then warp everything.
    pub fn reference(&self) -> Vec<f64> {
        let vol = self.vol();
        let n = self.side;
        let mut inter = vec![0.0; self.inter_rows() * n];
        for v in 0..self.inter_rows() {
            self.composite_row(v, 0..n, |i| vol[i], |i, val| inter[i] = val);
        }
        let mut img = vec![0.0; n * n];
        for y in 0..n {
            self.warp_row(y, 0..n, |i| inter[i], |i, val| img[i] = val);
        }
        img
    }
}

impl Workload for ShearWarp {
    fn name(&self) -> String {
        match self.variant {
            ShearWarpVariant::Original => "shearwarp".into(),
            ShearWarpVariant::Sweep => "shearwarp/sweep".into(),
        }
    }

    fn problem(&self) -> String {
        format!("{0}x{0}x{0} volume", self.side)
    }

    fn build(&self, machine: &mut Machine) -> Job {
        let n = self.side;
        let rows = self.inter_rows();
        let variant = self.variant;
        let chunk = self.chunk.max(1);
        let app = self.clone();

        let volume = machine.shared_vec::<f32>(n * n * n, Placement::Interleaved);
        let inter = machine.shared_vec::<f64>(rows * n, Placement::Blocked);
        let image = machine.shared_vec::<f64>(n * n, Placement::Blocked);
        let bar = machine.barrier();
        volume.copy_from_slice(&self.vol());

        let (vol2, int2, img2) = (volume.clone(), inter.clone(), image.clone());
        let expected = self.reference();
        let out = image.clone();
        // Profile-balanced sweep partition, one range per processor.
        let nprocs = machine.nprocs();
        let sweep_bounds: std::sync::Arc<Vec<std::ops::Range<usize>>> = {
            let b = self.balanced_bounds(nprocs);
            std::sync::Arc::new((0..nprocs).map(|q| b[q]..b[q + 1]).collect())
        };

        let body = move |ctx: &Ctx| {
            let p = ctx.id();
            let np = ctx.nprocs();
            // Work items are (scanline, column segment) pairs so machines
            // larger than the scanline count still have parallel slack.
            let k = app.segments(np);
            let items = rows * k;
            let item_cols = |seg: usize| chunk_range(n, k, seg);
            match variant {
                ShearWarpVariant::Original => {
                    // Interleaved chunks of intermediate items.
                    let mut it = p * chunk;
                    while it < items {
                        for item in it..(it + chunk).min(items) {
                            let (row, seg) = (item / k, item % k);
                            let work = app.composite_row(
                                row,
                                item_cols(seg),
                                |i| vol2.read(ctx, i),
                                |i, val| int2.write(ctx, i, val),
                            );
                            ctx.compute_flops(work);
                        }
                        it += np * chunk;
                    }
                    ctx.barrier(bar);
                    // Warp partitions the *final* image: locality with the
                    // intermediate image is lost.
                    for item in chunk_range(n * k, np, p) {
                        let (y, seg) = (item / k, item % k);
                        let work = app.warp_row(
                            y,
                            item_cols(seg),
                            |i| int2.read(ctx, i),
                            |i, val| img2.write(ctx, i, val),
                        );
                        ctx.compute_flops(work);
                    }
                }
                ShearWarpVariant::Sweep => {
                    // Contiguous intermediate partition, sized by profiled
                    // compositing work (profile computed once, before the
                    // timed region, as the paper's algorithm does between
                    // frames)...
                    let mine = sweep_bounds[p].clone();
                    let _ = items;
                    for item in mine.clone() {
                        let (row, seg) = (item / k, item % k);
                        let work = app.composite_row(
                            row,
                            item_cols(seg),
                            |i| vol2.read(ctx, i),
                            |i, val| int2.write(ctx, i, val),
                        );
                        ctx.compute_flops(work);
                    }
                    ctx.barrier(bar);
                    // ...and each processor warps exactly the final pixels
                    // whose inverse-warp samples fall in its own partition.
                    let mean_shift = app.row_shift(n - 1) / 2;
                    for item in mine {
                        let (v, seg) = (item / k, item % k);
                        if v >= mean_shift && v - mean_shift < n {
                            let work = app.warp_row(
                                v - mean_shift,
                                item_cols(seg),
                                |i| int2.read(ctx, i),
                                |i, val| img2.write(ctx, i, val),
                            );
                            ctx.compute_flops(work);
                        }
                    }
                }
            }
            ctx.barrier(bar);
        };

        let verify = move || {
            for (i, want) in expected.iter().enumerate() {
                let (got, want) = (out.get(i), *want);
                if (got - want).abs() > 1e-12 {
                    return Err(format!("shearwarp mismatch at pixel {i}: {got} vs {want}"));
                }
            }
            Ok(())
        };
        Job::new(body, verify)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccnuma_sim::config::MachineConfig;

    fn run(app: &ShearWarp, np: usize) -> ccnuma_sim::stats::RunStats {
        let mut m = Machine::new(MachineConfig::origin2000_scaled(np, 64 << 10)).unwrap();
        let job = app.build(&mut m);
        let body = job.body;
        let stats = m.run(move |ctx| body(ctx)).unwrap();
        (job.verify)().unwrap();
        stats
    }

    #[test]
    fn warp_assignment_covers_all_final_pixels_once() {
        let app = ShearWarp::new(32);
        let rows = app.inter_rows();
        let n = app.side;
        for np in [1usize, 3, 8, 13, 128] {
            let k = app.segments(np);
            let items = rows * k;
            let mean_shift = app.row_shift(n - 1) / 2;
            let mut covered = vec![false; n * n];
            let bounds = app.balanced_bounds(np);
            assert_eq!(bounds[0], 0);
            assert_eq!(bounds[np], items);
            for p in 0..np {
                for item in bounds[p]..bounds[p + 1] {
                    let (v, seg) = (item / k, item % k);
                    if v >= mean_shift && v - mean_shift < n {
                        for x in chunk_range(n, k, seg) {
                            let px = (v - mean_shift) * n + x;
                            assert!(!covered[px], "pixel {px} warped twice (np={np})");
                            covered[px] = true;
                        }
                    }
                }
            }
            assert!(covered.iter().all(|&c| c), "gap in warp coverage (np={np})");
        }
    }

    #[test]
    fn original_matches_reference() {
        for np in [1usize, 4, 6] {
            run(&ShearWarp::new(16), np);
        }
    }

    #[test]
    fn sweep_matches_reference() {
        let mut app = ShearWarp::new(16);
        app.variant = ShearWarpVariant::Sweep;
        for np in [1usize, 4, 6] {
            run(&app, np);
        }
    }

    #[test]
    fn sweep_restructuring_cuts_interface_communication() {
        let mk = |variant| {
            let mut a = ShearWarp::new(32);
            a.variant = variant;
            a
        };
        let orig = run(&mk(ShearWarpVariant::Original), 8);
        let sweep = run(&mk(ShearWarpVariant::Sweep), 8);
        let remote = |s: &ccnuma_sim::stats::RunStats| {
            s.total(|p| p.misses_remote_clean + p.misses_remote_dirty)
        };
        assert!(
            remote(&sweep) < remote(&orig),
            "sweep should reduce remote misses: {} vs {}",
            remote(&sweep),
            remote(&orig)
        );
    }

    #[test]
    fn rendered_image_has_structure() {
        let img = ShearWarp::new(24).reference();
        let max = img.iter().cloned().fold(0.0, f64::max);
        assert!(max > 0.2, "max {max}");
    }
}
