//! Protein: hierarchical protein-structure determination with *process
//! regrouping* (§2.2).
//!
//! The computation is a tree whose edges express cross-node dependences;
//! every tree node carries a large parallelizable work array with heavy
//! size variance (the load-imbalance that motivates the technique). Unlike
//! task stealing, load balancing works by **regrouping**: the work list is
//! ordered bottom-up and every node's work is split into chunks that any
//! processor may claim — so processors that run out of their own work
//! "join the group" currently crunching the next unfinished node instead
//! of stealing unrelated tasks. A node becomes claimable once all its
//! children have completed (broadcast through a semaphore primed with one
//! permit per processor).
//!
//! Results are deterministic: partial sums combine in chunk order, child
//! results in child order; the verifier compares against a sequential
//! reference exactly.

use std::sync::Arc;

use ccnuma_sim::ctx::Ctx;
use ccnuma_sim::machine::{Machine, Placement};

use crate::common::{Job, Workload, XorShift};

/// Configuration of one Protein run.
#[derive(Debug, Clone)]
pub struct Protein {
    /// Number of tree nodes (substructures).
    pub n_nodes: usize,
    /// Scale factor for per-node work arrays.
    pub work_scale: usize,
    /// Elements per claimable chunk.
    pub chunk: usize,
    /// Seed for tree/work generation.
    pub seed: u64,
}

/// The generated problem tree.
#[derive(Debug, Clone)]
pub struct ProteinTree {
    /// Parent of node i (node 0 is the root).
    pub parent: Vec<usize>,
    /// Children, in index order.
    pub children: Vec<Vec<usize>>,
    /// Work-array length per node (heavily skewed).
    pub work_len: Vec<usize>,
    /// Offset of each node's work array in the flat data array.
    pub work_off: Vec<usize>,
    /// Post-order over nodes (children before parents).
    pub post_order: Vec<usize>,
    /// Deterministic input data (flat).
    pub data: Vec<f64>,
}

impl Protein {
    /// A Protein solve over `n_nodes` substructures.
    ///
    /// # Panics
    ///
    /// Panics if `n_nodes` is zero.
    pub fn new(n_nodes: usize) -> Self {
        assert!(n_nodes > 0);
        Protein {
            n_nodes,
            work_scale: 64,
            chunk: 32,
            seed: 0x9607,
        }
    }

    /// Generates the deterministic tree.
    pub fn tree(&self) -> ProteinTree {
        let n = self.n_nodes;
        let mut rng = XorShift::new(self.seed);
        let mut parent = vec![0usize; n];
        for (i, p) in parent.iter_mut().enumerate().skip(1) {
            *p = rng.below(i as u64) as usize;
        }
        let mut children = vec![Vec::new(); n];
        for i in 1..n {
            children[parent[i]].push(i);
        }
        // Heavily skewed work sizes: a few huge nodes, many small ones.
        let work_len: Vec<usize> = (0..n)
            .map(|_| {
                let base = self.work_scale;
                let skew = 1usize << rng.below(5); // 1..16×
                base * skew
            })
            .collect();
        let mut work_off = vec![0usize; n];
        let mut acc = 0;
        for i in 0..n {
            work_off[i] = acc;
            acc += work_len[i];
        }
        // Post-order (children before parents), derived from the fact that
        // parent(i) < i: reversed index order works, but a true post-order
        // walk keeps sibling subtrees contiguous for locality.
        let mut post_order = Vec::with_capacity(n);
        fn walk(node: usize, children: &[Vec<usize>], out: &mut Vec<usize>) {
            for &c in &children[node] {
                walk(c, children, out);
            }
            out.push(node);
        }
        walk(0, &children, &mut post_order);
        let data: Vec<f64> = (0..acc).map(|_| rng.range_f64(-1.0, 1.0)).collect();
        ProteinTree {
            parent,
            children,
            work_len,
            work_off,
            post_order,
            data,
        }
    }

    /// The per-node result function: a reduction over the node's data,
    /// coupled to the children's results.
    fn node_result(data_sum: f64, child_sum: f64) -> f64 {
        data_sum * (1.0 + 0.125 * child_sum) + child_sum
    }

    /// Sequential reference: result per node (root result at index 0).
    pub fn reference(&self) -> Vec<f64> {
        let t = self.tree();
        let mut result = vec![0.0; self.n_nodes];
        for &i in &t.post_order {
            let data_sum: f64 = t.data[t.work_off[i]..t.work_off[i] + t.work_len[i]]
                .iter()
                .sum();
            let child_sum: f64 = t.children[i].iter().map(|&c| result[c]).sum();
            result[i] = Self::node_result(data_sum, child_sum);
        }
        result
    }
}

impl Workload for Protein {
    fn name(&self) -> String {
        "protein".into()
    }

    fn problem(&self) -> String {
        format!("{} substructures (scale {})", self.n_nodes, self.work_scale)
    }

    fn build(&self, machine: &mut Machine) -> Job {
        let t = Arc::new(self.tree());
        let n = self.n_nodes;
        let chunk = self.chunk;

        let total: usize = t.work_len.iter().sum();

        let data = machine.shared_vec::<f64>(total, Placement::Interleaved);
        let result = machine.shared_vec::<f64>(n, Placement::Interleaved);
        data.copy_from_slice(&t.data);

        // Per-node chunk bookkeeping.
        let nchunks: Vec<usize> = t.work_len.iter().map(|&w| w.div_ceil(chunk)).collect();
        let partial_off: Vec<usize> = {
            let mut acc = 0;
            let mut v = Vec::with_capacity(n);
            for &c in &nchunks {
                v.push(acc);
                acc += c;
            }
            v
        };
        let total_chunks: usize = nchunks.iter().sum();
        let partials = machine.shared_vec::<f64>(total_chunks, Placement::Interleaved);

        // The global work list: (node, chunk) pairs ordered deepest level
        // first (children always precede parents, and independent subtrees
        // interleave, which minimizes head-of-line blocking at scale).
        let mut depth = vec![0usize; n];
        for i in 1..n {
            depth[i] = depth[t.parent[i]] + 1;
        }
        let mut level_order: Vec<usize> = (0..n).collect();
        level_order.sort_by_key(|&i| (std::cmp::Reverse(depth[i]), i));
        let work_list: Vec<(usize, usize)> = level_order
            .iter()
            .flat_map(|&i| (0..nchunks[i]).map(move |c| (i, c)))
            .collect();
        let cursor = machine.fetch_cell(0);
        // ready[i] carries one permit per chunk claim: primed for leaves,
        // posted when the last child completes otherwise.
        let ready: Arc<Vec<_>> = Arc::new(
            (0..n)
                .map(|i| {
                    machine.semaphore(if t.children[i].is_empty() {
                        nchunks[i] as i64
                    } else {
                        0
                    })
                })
                .collect(),
        );
        let done_chunks: Arc<Vec<_>> = Arc::new((0..n).map(|_| machine.fetch_cell(0)).collect());
        let kids_done: Arc<Vec<_>> = Arc::new((0..n).map(|_| machine.fetch_cell(0)).collect());

        let (data2, result2, partials2) = (data.clone(), result.clone(), partials.clone());
        let t2 = Arc::clone(&t);
        let (ready2, done2, kids2) = (
            Arc::clone(&ready),
            Arc::clone(&done_chunks),
            Arc::clone(&kids_done),
        );
        let nchunks2 = Arc::new(nchunks);
        let partial_off2 = Arc::new(partial_off);
        let work_list2 = Arc::new(work_list);
        let (nc3, po3, wl3) = (
            Arc::clone(&nchunks2),
            Arc::clone(&partial_off2),
            Arc::clone(&work_list2),
        );

        let expected = self.reference();
        let out = result.clone();

        let body = move |ctx: &Ctx| {
            loop {
                let w = ctx.fetch_add(cursor, 1) as usize;
                if w >= wl3.len() {
                    break;
                }
                let (i, c) = wl3[w];
                // Wait for the node to become ready (children complete).
                ctx.sem_wait(ready2[i]);
                // Process chunk c of node i.
                let lo = c * chunk;
                let hi = (lo + chunk).min(t2.work_len[i]);
                let mut s = 0.0;
                for r in lo..hi {
                    s += data2.read(ctx, t2.work_off[i] + r);
                    ctx.compute_flops(3);
                }
                partials2.write(ctx, po3[i] + c, s);
                // Last chunk combines and completes the node.
                if ctx.fetch_add(done2[i], 1) as usize == nc3[i] - 1 {
                    let mut data_sum = 0.0;
                    for cc in 0..nc3[i] {
                        data_sum += partials2.read(ctx, po3[i] + cc);
                        ctx.compute_flops(1);
                    }
                    let mut child_sum = 0.0;
                    for &ch in &t2.children[i] {
                        child_sum += result2.read(ctx, ch);
                        ctx.compute_flops(1);
                    }
                    result2.write(ctx, i, Protein::node_result(data_sum, child_sum));
                    if i != 0 {
                        let parent = t2.parent[i];
                        let need = t2.children[parent].len() as i64;
                        if ctx.fetch_add(kids2[parent], 1) == need - 1 {
                            // Release the parent: one permit per chunk.
                            ctx.sem_post(ready2[parent], nc3[parent] as u32);
                        }
                    }
                }
            }
        };

        let verify = move || {
            for (i, want) in expected.iter().enumerate() {
                let (got, want) = (out.get(i), *want);
                if (got - want).abs() > 1e-12 * want.abs().max(1.0) {
                    return Err(format!("protein mismatch at node {i}: {got} vs {want}"));
                }
            }
            Ok(())
        };
        Job::new(body, verify)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccnuma_sim::config::MachineConfig;

    fn run(app: &Protein, np: usize) -> ccnuma_sim::stats::RunStats {
        let mut m = Machine::new(MachineConfig::origin2000_scaled(np, 64 << 10)).unwrap();
        let job = app.build(&mut m);
        let body = job.body;
        let stats = m.run(move |ctx| body(ctx)).unwrap();
        (job.verify)().unwrap();
        stats
    }

    #[test]
    fn post_order_respects_dependencies() {
        let t = Protein::new(64).tree();
        let mut done = [false; 64];
        for &i in &t.post_order {
            for &c in &t.children[i] {
                assert!(done[c], "child {c} after parent {i}");
            }
            done[i] = true;
        }
        assert!(done.iter().all(|&d| d));
    }

    #[test]
    fn matches_reference_at_many_proc_counts() {
        for np in [1usize, 4, 8] {
            run(&Protein::new(40), np);
        }
    }

    #[test]
    fn work_sizes_are_skewed() {
        let t = Protein::new(128).tree();
        let max = *t.work_len.iter().max().unwrap();
        let min = *t.work_len.iter().min().unwrap();
        assert!(max >= 8 * min, "skew {max}/{min}");
    }

    #[test]
    fn regrouping_shares_imbalanced_work() {
        // With chunked nodes and a shared cursor, busy time must end up far
        // better balanced than the per-node work skew.
        let stats = run(&Protein::new(96), 8);
        let busys: Vec<u64> = stats.procs.iter().map(|p| p.busy_ns).collect();
        let max = *busys.iter().max().unwrap() as f64;
        let min = *busys.iter().min().unwrap() as f64;
        assert!(min > 0.25 * max, "regrouping should balance: {busys:?}");
    }

    #[test]
    fn single_node_tree_works() {
        run(&Protein::new(1), 4);
    }
}
