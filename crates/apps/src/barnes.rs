//! Barnes-Hut hierarchical N-body, with the paper's three tree-building
//! algorithms (§5.1, §5.2):
//!
//! * [`TreeBuild::Locked`] — the SPLASH-2 original: every processor loads
//!   its bodies one by one into a single shared octree, locking cells as it
//!   modifies them. Fine-grained communication and locking make this phase
//!   the scaling bottleneck (31% of 128-processor time in the paper).
//! * [`TreeBuild::Merge`] — each processor builds a private tree over its
//!   own bodies without any communication, then merges it into the global
//!   tree. Merging is imbalanced (late mergers do more work) but total
//!   communication drops.
//! * [`TreeBuild::Spatial`] — space is pre-split into aligned subspaces at
//!   a fixed octree level; processors exchange bodies by subspace, build
//!   their subtrees entirely lock-free, and attach them to a supertree at
//!   unique leaves. The most restructured version — and the best at scale.
//!
//! Bodies are Morton-sorted at initialization so contiguous body blocks are
//! spatially coherent (standing in for SPLASH-2 costzones partitioning).
//! Forces use the classic θ opening criterion; every variant is verified
//! against a direct O(n²) sum.

use std::sync::Arc;

use ccnuma_sim::ctx::Ctx;
use ccnuma_sim::machine::{Machine, Placement};
use ccnuma_sim::shared::SharedVec;
use ccnuma_sim::sync::LockRef;

use crate::common::{chunk_range, Job, Workload, XorShift};

/// Tree-construction algorithm.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TreeBuild {
    /// Shared tree with per-cell locks (SPLASH-2 original).
    Locked,
    /// Private trees merged into the global tree (MergeTree).
    Merge,
    /// Pre-partitioned subspaces with lock-free subtree builds (Spatial).
    Spatial,
}

/// Configuration of one Barnes-Hut run.
#[derive(Debug, Clone)]
pub struct Barnes {
    /// Number of bodies.
    pub n_bodies: usize,
    /// Opening criterion θ (smaller = more accurate, more work).
    pub theta: f64,
    /// Timesteps.
    pub steps: usize,
    /// Tree-build variant.
    pub variant: TreeBuild,
    /// Seed for body generation.
    pub seed: u64,
}

const DT: f64 = 1e-3;
/// Flops per body–node interaction.
const INTERACT_FLOPS: u64 = 30;
/// Softening to avoid singular forces.
const EPS2: f64 = 1e-4;
/// Child encoding in the shared tree: 0 = empty, k+1 = internal node k,
/// -(b+1) = body b.
const EMPTY: i64 = 0;

#[inline]
fn enc_node(k: usize) -> i64 {
    k as i64 + 1
}
#[inline]
fn enc_body(b: usize) -> i64 {
    -(b as i64) - 1
}

/// Decoded child slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Slot {
    Empty,
    Node(usize),
    Body(usize),
}

#[inline]
fn dec(v: i64) -> Slot {
    match v {
        EMPTY => Slot::Empty,
        k if k > 0 => Slot::Node(k as usize - 1),
        b => Slot::Body((-b) as usize - 1),
    }
}

/// The world is the cube `[0, WORLD)³`.
const WORLD: f64 = 1.0;

impl Barnes {
    /// A Locked-build run of `n_bodies` bodies for one step at θ = 0.6.
    ///
    /// # Panics
    ///
    /// Panics if `n_bodies < 8`.
    pub fn new(n_bodies: usize) -> Self {
        assert!(n_bodies >= 8);
        Barnes {
            n_bodies,
            theta: 0.6,
            steps: 1,
            variant: TreeBuild::Locked,
            seed: 0xB0D1E5,
        }
    }

    /// Morton-sorted deterministic bodies: two Plummer-ish clusters.
    /// Returns (positions, masses).
    pub fn bodies(&self) -> (Vec<[f64; 3]>, Vec<f64>) {
        let mut rng = XorShift::new(self.seed);
        let mut pos = Vec::with_capacity(self.n_bodies);
        let mut mass = Vec::with_capacity(self.n_bodies);
        for i in 0..self.n_bodies {
            let center = if i % 2 == 0 {
                [0.3, 0.3, 0.3]
            } else {
                [0.7, 0.7, 0.65]
            };
            let spread = 0.18;
            let mut p = [0.0; 3];
            for (d, v) in p.iter_mut().enumerate() {
                *v = (center[d] + rng.range_f64(-spread, spread)).clamp(0.001, WORLD - 0.001);
            }
            pos.push(p);
            mass.push(rng.range_f64(0.5, 1.5) / self.n_bodies as f64);
        }
        // Morton order for spatial locality of contiguous blocks.
        let mut idx: Vec<usize> = (0..self.n_bodies).collect();
        idx.sort_by_key(|&i| morton(pos[i]));
        let pos: Vec<[f64; 3]> = idx.iter().map(|&i| pos[i]).collect();
        let mass: Vec<f64> = idx.iter().map(|&i| mass[i]).collect();
        (pos, mass)
    }

    /// Direct O(n²) accelerations for `pos`/`mass` (ground truth).
    pub fn direct_acc(pos: &[[f64; 3]], mass: &[f64]) -> Vec<[f64; 3]> {
        let n = pos.len();
        let mut acc = vec![[0.0f64; 3]; n];
        for i in 0..n {
            for j in 0..n {
                if i == j {
                    continue;
                }
                let d = [
                    pos[j][0] - pos[i][0],
                    pos[j][1] - pos[i][1],
                    pos[j][2] - pos[i][2],
                ];
                let r2 = d[0] * d[0] + d[1] * d[1] + d[2] * d[2] + EPS2;
                let inv = mass[j] / (r2 * r2.sqrt());
                for k in 0..3 {
                    acc[i][k] += inv * d[k];
                }
            }
        }
        acc
    }

    /// Host-side Barnes-Hut accelerations with sequential (body-order)
    /// insertion — bitwise identical to the parallel Locked build on one
    /// processor.
    pub fn host_bh_acc(&self, pos: &[[f64; 3]], mass: &[f64]) -> Vec<[f64; 3]> {
        let mut tree = HostTree::new();
        for i in 0..pos.len() {
            tree.insert(i, pos);
        }
        tree.compute_com(0, pos, mass);
        (0..pos.len())
            .map(|i| tree.acc_on(i, pos, mass, self.theta))
            .collect()
    }

    /// Host reference evolution: `steps` leapfrog steps using host BH
    /// accelerations (the parallel run matches this to within the
    /// θ-approximation difference of the tree shapes).
    pub fn host_evolve(&self) -> Vec<[f64; 3]> {
        let (mut pos, mass) = self.bodies();
        let mut vel = vec![[0.0f64; 3]; self.n_bodies];
        for _ in 0..self.steps {
            let acc = self.host_bh_acc(&pos, &mass);
            for i in 0..self.n_bodies {
                for d in 0..3 {
                    vel[i][d] += acc[i][d] * DT;
                    pos[i][d] = (pos[i][d] + vel[i][d] * DT).clamp(0.001, WORLD - 0.001);
                }
            }
        }
        pos
    }
}

/// 30-bit-interleaved Morton code of a position in the unit cube.
fn morton(p: [f64; 3]) -> u64 {
    let spread = |x: u64| {
        let mut v = x & 0x3FF;
        v = (v | (v << 16)) & 0x030000FF;
        v = (v | (v << 8)) & 0x0300F00F;
        v = (v | (v << 4)) & 0x030C30C3;
        (v | (v << 2)) & 0x09249249
    };
    let q = |x: f64| ((x / WORLD * 1024.0) as u64).min(1023);
    spread(q(p[0])) | (spread(q(p[1])) << 1) | (spread(q(p[2])) << 2)
}

/// Octant of `p` within a cell centred at `c`.
#[inline]
fn octant(p: [f64; 3], c: [f64; 3]) -> usize {
    usize::from(p[0] >= c[0]) | (usize::from(p[1] >= c[1]) << 1) | (usize::from(p[2] >= c[2]) << 2)
}

/// Centre of octant `q` of a cell centred at `c` with half-size `h`.
#[inline]
fn child_center(c: [f64; 3], h: f64, q: usize) -> [f64; 3] {
    let off = h / 2.0;
    [
        c[0] + if q & 1 != 0 { off } else { -off },
        c[1] + if q & 2 != 0 { off } else { -off },
        c[2] + if q & 4 != 0 { off } else { -off },
    ]
}

// ---------------------------------------------------------------------------
// Host reference tree (used for exact np=1 verification and in tests).
// ---------------------------------------------------------------------------

struct HostCell {
    children: [i64; 8],
    center: [f64; 3],
    half: f64,
    com: [f64; 3],
    mass: f64,
}

struct HostTree {
    cells: Vec<HostCell>,
}

impl HostTree {
    fn new() -> Self {
        HostTree {
            cells: vec![HostCell {
                children: [EMPTY; 8],
                center: [WORLD / 2.0; 3],
                half: WORLD / 2.0,
                com: [0.0; 3],
                mass: 0.0,
            }],
        }
    }

    fn alloc(&mut self, center: [f64; 3], half: f64) -> usize {
        self.cells.push(HostCell {
            children: [EMPTY; 8],
            center,
            half,
            com: [0.0; 3],
            mass: 0.0,
        });
        self.cells.len() - 1
    }

    fn insert(&mut self, b: usize, pos: &[[f64; 3]]) {
        let mut node = 0;
        loop {
            let q = octant(pos[b], self.cells[node].center);
            match dec(self.cells[node].children[q]) {
                Slot::Empty => {
                    self.cells[node].children[q] = enc_body(b);
                    return;
                }
                Slot::Node(k) => node = k,
                Slot::Body(b2) => {
                    // Split: push b2 down until the two bodies separate.
                    let mut center =
                        child_center(self.cells[node].center, self.cells[node].half, q);
                    let mut half = self.cells[node].half / 2.0;
                    let top = self.alloc(center, half);
                    let mut cur = top;
                    loop {
                        let qa = octant(pos[b], center);
                        let qb = octant(pos[b2], center);
                        if qa != qb {
                            self.cells[cur].children[qa] = enc_body(b);
                            self.cells[cur].children[qb] = enc_body(b2);
                            break;
                        }
                        center = child_center(center, half, qa);
                        half /= 2.0;
                        let deeper = self.alloc(center, half);
                        self.cells[cur].children[qa] = enc_node(deeper);
                        cur = deeper;
                    }
                    self.cells[node].children[q] = enc_node(top);
                    return;
                }
            }
        }
    }

    fn compute_com(&mut self, node: usize, pos: &[[f64; 3]], mass: &[f64]) -> ([f64; 3], f64) {
        let mut m = 0.0;
        let mut com = [0.0; 3];
        for q in 0..8 {
            match dec(self.cells[node].children[q]) {
                Slot::Empty => {}
                Slot::Body(b) => {
                    m += mass[b];
                    for d in 0..3 {
                        com[d] += mass[b] * pos[b][d];
                    }
                }
                Slot::Node(k) => {
                    let (c, km) = self.compute_com(k, pos, mass);
                    m += km;
                    for d in 0..3 {
                        com[d] += km * c[d];
                    }
                }
            }
        }
        if m > 0.0 {
            for d in com.iter_mut() {
                *d /= m;
            }
        }
        self.cells[node].com = com;
        self.cells[node].mass = m;
        (com, m)
    }

    fn acc_on(&self, i: usize, pos: &[[f64; 3]], mass: &[f64], theta: f64) -> [f64; 3] {
        let mut acc = [0.0; 3];
        let mut stack = vec![0usize];
        while let Some(node) = stack.pop() {
            let cell = &self.cells[node];
            let d = [
                cell.com[0] - pos[i][0],
                cell.com[1] - pos[i][1],
                cell.com[2] - pos[i][2],
            ];
            let r2 = d[0] * d[0] + d[1] * d[1] + d[2] * d[2];
            let size = cell.half * 2.0;
            if size * size < theta * theta * r2 {
                let r2 = r2 + EPS2;
                let inv = cell.mass / (r2 * r2.sqrt());
                for k in 0..3 {
                    acc[k] += inv * d[k];
                }
                continue;
            }
            for q in 0..8 {
                match dec(cell.children[q]) {
                    Slot::Empty => {}
                    Slot::Body(b) => {
                        if b != i {
                            let d = [
                                pos[b][0] - pos[i][0],
                                pos[b][1] - pos[i][1],
                                pos[b][2] - pos[i][2],
                            ];
                            let r2 = d[0] * d[0] + d[1] * d[1] + d[2] * d[2] + EPS2;
                            let inv = mass[b] / (r2 * r2.sqrt());
                            for k in 0..3 {
                                acc[k] += inv * d[k];
                            }
                        }
                    }
                    Slot::Node(k) => stack.push(k),
                }
            }
        }
        acc
    }
}

// ---------------------------------------------------------------------------
// Shared tree used by the parallel variants.
// ---------------------------------------------------------------------------

/// Handle bundle for the shared octree arrays.
#[derive(Clone)]
struct SharedTree {
    /// children[node*8 + q], encoded as in [`dec`].
    children: SharedVec<i64>,
    /// (cx, cy, cz, half) per node.
    geom: SharedVec<[f64; 4]>,
    /// (comx, comy, comz, mass) per node.
    com: SharedVec<[f64; 4]>,
    capacity: usize,
}

impl SharedTree {
    fn geom_of(&self, ctx: &Ctx, node: usize) -> ([f64; 3], f64) {
        let g = self.geom.read(ctx, node);
        ([g[0], g[1], g[2]], g[3])
    }

    /// Writes a freshly allocated node's geometry and clears its children.
    fn init_node(&self, ctx: &Ctx, node: usize, center: [f64; 3], half: f64) {
        assert!(
            node < self.capacity,
            "tree node pool exhausted ({} nodes)",
            self.capacity
        );
        self.geom
            .write(ctx, node, [center[0], center[1], center[2], half]);
        for q in 0..8 {
            self.children.write(ctx, node * 8 + q, EMPTY);
        }
    }
}

/// Builds a chain of private (not yet linked) cells holding two bodies that
/// currently share an octant. Returns the top new node.
#[allow(clippy::too_many_arguments)]
fn split_pair(
    ctx: &Ctx,
    tree: &SharedTree,
    alloc: &mut impl FnMut(&Ctx) -> usize,
    pos: &SharedVec<[f64; 3]>,
    b: usize,
    b2: usize,
    mut center: [f64; 3],
    mut half: f64,
) -> usize {
    let pb = pos.read(ctx, b);
    let pb2 = pos.read(ctx, b2);
    let top = alloc(ctx);
    tree.init_node(ctx, top, center, half);
    let mut cur = top;
    loop {
        ctx.compute_steps(1);
        let qa = octant(pb, center);
        let qb = octant(pb2, center);
        if qa != qb {
            tree.children.write(ctx, cur * 8 + qa, enc_body(b));
            tree.children.write(ctx, cur * 8 + qb, enc_body(b2));
            return top;
        }
        center = child_center(center, half, qa);
        half /= 2.0;
        let deeper = alloc(ctx);
        tree.init_node(ctx, deeper, center, half);
        tree.children.write(ctx, cur * 8 + qa, enc_node(deeper));
        cur = deeper;
    }
}

/// Inserts body `b` into the shared tree rooted at `root`, locking cells
/// while modifying them (the Locked variant; also used by Merge for
/// body-into-global insertions). `locks[node % locks.len()]` guards `node`.
fn insert_locked(
    ctx: &Ctx,
    tree: &SharedTree,
    alloc: &mut impl FnMut(&Ctx) -> usize,
    pos: &SharedVec<[f64; 3]>,
    locks: &[LockRef],
    root: usize,
    b: usize,
) {
    let pb = pos.read(ctx, b);
    let mut node = root;
    loop {
        ctx.compute_steps(1);
        let (center, half) = tree.geom_of(ctx, node);
        let q = octant(pb, center);
        let lk = locks[node % locks.len()];
        ctx.lock(lk);
        match dec(tree.children.read(ctx, node * 8 + q)) {
            Slot::Empty => {
                tree.children.write(ctx, node * 8 + q, enc_body(b));
                ctx.unlock(lk);
                return;
            }
            Slot::Node(k) => {
                ctx.unlock(lk);
                node = k;
            }
            Slot::Body(b2) => {
                let sub = split_pair(
                    ctx,
                    tree,
                    alloc,
                    pos,
                    b,
                    b2,
                    child_center(center, half, q),
                    half / 2.0,
                );
                tree.children.write(ctx, node * 8 + q, enc_node(sub));
                ctx.unlock(lk);
                return;
            }
        }
    }
}

/// Lock-free insertion for trees only the caller writes (Merge's private
/// trees and Spatial's per-subspace subtrees).
fn insert_private(
    ctx: &Ctx,
    tree: &SharedTree,
    alloc: &mut impl FnMut(&Ctx) -> usize,
    pos: &SharedVec<[f64; 3]>,
    root: usize,
    b: usize,
) {
    let pb = pos.read(ctx, b);
    let mut node = root;
    loop {
        ctx.compute_steps(1);
        let (center, half) = tree.geom_of(ctx, node);
        let q = octant(pb, center);
        match dec(tree.children.read(ctx, node * 8 + q)) {
            Slot::Empty => {
                tree.children.write(ctx, node * 8 + q, enc_body(b));
                return;
            }
            Slot::Node(k) => node = k,
            Slot::Body(b2) => {
                let sub = split_pair(
                    ctx,
                    tree,
                    alloc,
                    pos,
                    b,
                    b2,
                    child_center(center, half, q),
                    half / 2.0,
                );
                tree.children.write(ctx, node * 8 + q, enc_node(sub));
                return;
            }
        }
    }
}

/// Recursively merges private cell `src` into global cell `dst` (same
/// geometry by construction). Locks one global cell at a time.
#[allow(clippy::too_many_arguments)]
fn merge_into(
    ctx: &Ctx,
    tree: &SharedTree,
    alloc: &mut impl FnMut(&Ctx) -> usize,
    pos: &SharedVec<[f64; 3]>,
    locks: &[LockRef],
    dst: usize,
    src: usize,
) {
    for q in 0..8 {
        let sv = dec(tree.children.read(ctx, src * 8 + q));
        if sv == Slot::Empty {
            continue;
        }
        ctx.compute_steps(1);
        let lk = locks[dst % locks.len()];
        ctx.lock(lk);
        let dv = dec(tree.children.read(ctx, dst * 8 + q));
        match (dv, sv) {
            (_, Slot::Empty) => unreachable!("empty source slots are skipped above"),
            (Slot::Empty, _) => {
                // Graft the whole private subtree (or body) in one write.
                let raw = tree.children.read(ctx, src * 8 + q);
                tree.children.write(ctx, dst * 8 + q, raw);
                ctx.unlock(lk);
            }
            (Slot::Node(dk), Slot::Node(sk)) => {
                ctx.unlock(lk);
                merge_into(ctx, tree, alloc, pos, locks, dk, sk);
            }
            (Slot::Node(dk), Slot::Body(b)) => {
                ctx.unlock(lk);
                let _ = dk;
                // Insert the single body below this (already shared) cell.
                insert_locked_below(ctx, tree, alloc, pos, locks, dst, q, b);
            }
            (Slot::Body(_), Slot::Node(sk)) => {
                // Take the dst body out, graft src subtree, reinsert body.
                let db = match dv {
                    Slot::Body(b) => b,
                    _ => unreachable!(),
                };
                let raw = tree.children.read(ctx, src * 8 + q);
                tree.children.write(ctx, dst * 8 + q, raw);
                ctx.unlock(lk);
                insert_locked_below(ctx, tree, alloc, pos, locks, dst, q, db);
                let _ = sk;
            }
            (Slot::Body(db), Slot::Body(sb)) => {
                let (center, half) = tree.geom_of(ctx, dst);
                let sub = split_pair(
                    ctx,
                    tree,
                    alloc,
                    pos,
                    sb,
                    db,
                    child_center(center, half, q),
                    half / 2.0,
                );
                tree.children.write(ctx, dst * 8 + q, enc_node(sub));
                ctx.unlock(lk);
            }
        }
    }
}

/// Inserts `b` into the subtree hanging off `parent`'s slot `q` (which must
/// currently hold an internal node).
#[allow(clippy::too_many_arguments)]
fn insert_locked_below(
    ctx: &Ctx,
    tree: &SharedTree,
    alloc: &mut impl FnMut(&Ctx) -> usize,
    pos: &SharedVec<[f64; 3]>,
    locks: &[LockRef],
    parent: usize,
    q: usize,
    b: usize,
) {
    match dec(tree.children.read(ctx, parent * 8 + q)) {
        Slot::Node(k) => insert_locked(ctx, tree, alloc, pos, locks, k, b),
        _ => {
            // The slot was grafted a moment ago by this same processor and
            // cannot have reverted; but fall back defensively.
            insert_locked(ctx, tree, alloc, pos, locks, parent, b)
        }
    }
}

/// Computes centres of mass below `node` (post-order), writing into the
/// shared `com` array. Only called on subtrees wholly assigned to one
/// processor, then on the top levels by processor 0.
fn com_below(
    ctx: &Ctx,
    tree: &SharedTree,
    node: usize,
    pos: &SharedVec<[f64; 3]>,
    mass: &SharedVec<f64>,
) -> [f64; 4] {
    let mut m = 0.0;
    let mut com = [0.0; 3];
    for q in 0..8 {
        match dec(tree.children.read(ctx, node * 8 + q)) {
            Slot::Empty => {}
            Slot::Body(b) => {
                let w = mass.read(ctx, b);
                let p = pos.read(ctx, b);
                m += w;
                for d in 0..3 {
                    com[d] += w * p[d];
                }
                ctx.compute_flops(4);
            }
            Slot::Node(k) => {
                let sub = com_below(ctx, tree, k, pos, mass);
                m += sub[3];
                for d in 0..3 {
                    com[d] += sub[3] * sub[d];
                }
                ctx.compute_flops(4);
            }
        }
    }
    if m > 0.0 {
        for d in com.iter_mut() {
            *d /= m;
        }
    }
    let out = [com[0], com[1], com[2], m];
    tree.com.write(ctx, node, out);
    out
}

/// Computes the acceleration on body `i` by traversing the shared tree.
fn acc_on_shared(
    ctx: &Ctx,
    tree: &SharedTree,
    i: usize,
    pos: &SharedVec<[f64; 3]>,
    mass: &SharedVec<f64>,
    theta: f64,
) -> [f64; 3] {
    let pi = pos.read(ctx, i);
    let mut acc = [0.0; 3];
    let mut stack = vec![0usize];
    while let Some(node) = stack.pop() {
        ctx.compute_steps(1);
        let cm = tree.com.read(ctx, node);
        let (_, half) = {
            let g = tree.geom.read(ctx, node);
            ([g[0], g[1], g[2]], g[3])
        };
        let d = [cm[0] - pi[0], cm[1] - pi[1], cm[2] - pi[2]];
        let r2 = d[0] * d[0] + d[1] * d[1] + d[2] * d[2];
        let size = half * 2.0;
        if size * size < theta * theta * r2 {
            let r2 = r2 + EPS2;
            let inv = cm[3] / (r2 * r2.sqrt());
            for k in 0..3 {
                acc[k] += inv * d[k];
            }
            ctx.compute_flops(INTERACT_FLOPS);
            continue;
        }
        for q in 0..8 {
            match dec(tree.children.read(ctx, node * 8 + q)) {
                Slot::Empty => {}
                Slot::Body(b) => {
                    if b != i {
                        let pb = pos.read(ctx, b);
                        let w = mass.read(ctx, b);
                        let d = [pb[0] - pi[0], pb[1] - pi[1], pb[2] - pi[2]];
                        let r2 = d[0] * d[0] + d[1] * d[1] + d[2] * d[2] + EPS2;
                        let inv = w / (r2 * r2.sqrt());
                        for k in 0..3 {
                            acc[k] += inv * d[k];
                        }
                        ctx.compute_flops(INTERACT_FLOPS);
                    }
                }
                Slot::Node(k) => stack.push(k),
            }
        }
    }
    acc
}

impl Workload for Barnes {
    fn name(&self) -> String {
        match self.variant {
            TreeBuild::Locked => "barnes".into(),
            TreeBuild::Merge => "barnes/merge".into(),
            TreeBuild::Spatial => "barnes/spatial".into(),
        }
    }

    fn problem(&self) -> String {
        format!("{} bodies", self.n_bodies)
    }

    fn build(&self, machine: &mut Machine) -> Job {
        let n = self.n_bodies;
        let theta = self.theta;
        let steps = self.steps;
        let variant = self.variant;
        let np = machine.nprocs();
        let capacity = 6 * n + 64 * np + 512;

        let pos = machine.shared_vec_labeled::<[f64; 3]>("bodies/pos", n, Placement::Blocked);
        let vel = machine.shared_vec::<[f64; 3]>(n, Placement::Blocked);
        let mass = machine.shared_vec_labeled::<f64>("bodies/mass", n, Placement::Blocked);
        let tree = SharedTree {
            children: machine.shared_vec_labeled::<i64>(
                "tree/children",
                capacity * 8,
                Placement::Blocked,
            ),
            geom: machine.shared_vec_labeled::<[f64; 4]>("tree/geom", capacity, Placement::Blocked),
            com: machine.shared_vec_labeled::<[f64; 4]>("tree/com", capacity, Placement::Blocked),
            capacity,
        };
        let n_locks = 512.min(capacity);
        let locks = Arc::new(machine.lock_array(n_locks));
        let next_node = machine.fetch_cell(1); // node 0 = root
        let bar = machine.barrier();
        // Spatial-exchange buckets: proc p publishes its bodies grouped by
        // subspace into its own region; subspace owners read them back.
        // bucket[(p * n_spaces + s) * cap_pp ..] holds the body ids, and
        // bucket_cnt[p * n_spaces + s] the count.
        // Spatial: roots of the supertree leaves (one per subspace).
        // Deep enough that every processor owns subspaces, shallow enough
        // that subspaces hold a useful number of bodies.
        let by_np: u32 = match np {
            1 => 0,
            2..=8 => 1,
            9..=64 => 2,
            _ => 3,
        };
        let by_n = ((n / 16).max(1).ilog2() / 3).max(1);
        let spatial_level = by_np.min(by_n);
        let n_spaces = 8usize.pow(spatial_level);
        let cap_pp = n.div_ceil(np) + 1;
        let bucket = machine.shared_vec::<i64>(np * n_spaces * cap_pp, Placement::Blocked);
        let bucket_cnt = machine.shared_vec::<i64>(np * n_spaces, Placement::Blocked);
        let (bucket2, bucket_cnt2) = (bucket.clone(), bucket_cnt.clone());

        let (p0, m0) = self.bodies();
        pos.copy_from_slice(&p0);
        mass.copy_from_slice(&m0);

        let (pos2, vel2, mass2) = (pos.clone(), vel.clone(), mass.clone());
        let tree2 = tree.clone();
        let locks2 = Arc::clone(&locks);

        let app = self.clone();
        let pos_out = pos.clone();
        let mass_out = mass.clone();
        let com_out = tree.com.clone();

        let body = move |ctx: &Ctx| {
            let p = ctx.id();
            let npr = ctx.nprocs();
            let my = chunk_range(n, npr, p);
            for _step in 0..steps {
                // --- Reset the tree (parallel over the node pool's used
                // prefix; on step 0 nothing is used yet except the root).
                if p == 0 {
                    tree2.init_node(ctx, 0, [WORLD / 2.0; 3], WORLD / 2.0);
                }
                ctx.barrier(bar);

                // --- Build ------------------------------------------------
                ctx.phase("tree-build");
                let mut alloc = |ctx: &Ctx| ctx.fetch_add(next_node, 1) as usize;
                match variant {
                    TreeBuild::Locked => {
                        for b in my.clone() {
                            insert_locked(ctx, &tree2, &mut alloc, &pos2, &locks2, 0, b);
                        }
                    }
                    TreeBuild::Merge => {
                        // Private tree over my bodies (no communication:
                        // my bodies, my fresh nodes)...
                        let my_root = alloc(ctx);
                        tree2.init_node(ctx, my_root, [WORLD / 2.0; 3], WORLD / 2.0);
                        for b in my.clone() {
                            insert_private(ctx, &tree2, &mut alloc, &pos2, my_root, b);
                        }
                        // ...then merge into the global tree. The first
                        // merger grafts cheaply; later ones do real work.
                        merge_into(ctx, &tree2, &mut alloc, &pos2, &locks2, 0, my_root);
                    }
                    TreeBuild::Spatial => {
                        // Subspace exchange: each processor scans only its
                        // own body block and publishes the ids, grouped by
                        // subspace, into its per-(proc, space) buckets
                        // (local writes, no atomics). Subspace owners then
                        // read exactly the buckets for their spaces.
                        let mut counts = vec![0usize; n_spaces];
                        for b in my.clone() {
                            let pb = pos2.read(ctx, b);
                            let sidx = space_of(pb, spatial_level);
                            let slot = (p * n_spaces + sidx) * cap_pp + counts[sidx];
                            bucket2.write(ctx, slot, b as i64);
                            counts[sidx] += 1;
                            ctx.compute_ops(4);
                        }
                        for (sidx, &cnt) in counts.iter().enumerate() {
                            bucket_cnt2.write(ctx, p * n_spaces + sidx, cnt as i64);
                        }
                        ctx.barrier(bar);
                        // Build subtrees for my subspaces, lock-free.
                        let my_spaces = chunk_range(n_spaces, npr, p);
                        let mut space_roots = vec![0usize; n_spaces];
                        // Supertree: processor 0 builds the top levels.
                        if p == 0 {
                            // Breadth-first expansion to `spatial_level`.
                            let mut frontier = vec![0usize];
                            for _ in 0..spatial_level {
                                let mut next = Vec::new();
                                for cell in frontier {
                                    let (c, h) = tree2.geom_of(ctx, cell);
                                    for q in 0..8 {
                                        let k = alloc(ctx);
                                        tree2.init_node(ctx, k, child_center(c, h, q), h / 2.0);
                                        tree2.children.write(ctx, cell * 8 + q, enc_node(k));
                                        next.push(k);
                                    }
                                }
                                frontier = next;
                            }
                        }
                        ctx.barrier(bar);
                        // Resolve subspace leaf ids (deterministic walk).
                        for (s, root) in space_roots.iter_mut().enumerate() {
                            let mut node = 0usize;
                            for level in (0..spatial_level).rev() {
                                let q = (s >> (3 * level)) & 7;
                                node = match dec(tree2.children.read(ctx, node * 8 + q)) {
                                    Slot::Node(k) => k,
                                    _ => unreachable!("supertree leaf missing"),
                                };
                            }
                            *root = node;
                        }
                        // Insert the bodies of my subspaces, gathered from
                        // every processor's bucket (the exchange reads are
                        // the communication the Spatial build pays).
                        for s in my_spaces.clone() {
                            for q in 0..npr {
                                let cnt = bucket_cnt2.read(ctx, q * n_spaces + s) as usize;
                                for slot in 0..cnt {
                                    let b = bucket2.read(ctx, (q * n_spaces + s) * cap_pp + slot)
                                        as usize;
                                    insert_private(
                                        ctx,
                                        &tree2,
                                        &mut alloc,
                                        &pos2,
                                        space_roots[s],
                                        b,
                                    );
                                }
                            }
                        }
                    }
                }
                ctx.barrier(bar);

                // --- Centres of mass -------------------------------------
                ctx.phase("center-of-mass");
                // Depth-2 subtrees are assigned round-robin; processor 0
                // finishes the top levels.
                let mut depth2 = Vec::new();
                for q in 0..8 {
                    if let Slot::Node(k) = dec(tree2.children.read(ctx, q)) {
                        for r in 0..8 {
                            if let Slot::Node(j) = dec(tree2.children.read(ctx, k * 8 + r)) {
                                depth2.push(j);
                            }
                        }
                    }
                }
                for (t, &sub) in depth2.iter().enumerate() {
                    if t % npr == p {
                        com_below(ctx, &tree2, sub, &pos2, &mass2);
                    }
                }
                ctx.barrier(bar);
                if p == 0 {
                    com_top(ctx, &tree2, 0, &pos2, &mass2, &depth2);
                }
                ctx.barrier(bar);

                // --- Forces & update -------------------------------------
                ctx.phase("force-calc");
                let mut newpos = Vec::with_capacity(my.len());
                for b in my.clone() {
                    let a = acc_on_shared(ctx, &tree2, b, &pos2, &mass2, theta);
                    let mut v = vel2.read(ctx, b);
                    let mut x = pos2.read(ctx, b);
                    for d in 0..3 {
                        v[d] += a[d] * DT;
                        x[d] = (x[d] + v[d] * DT).clamp(0.001, WORLD - 0.001);
                    }
                    vel2.write(ctx, b, v);
                    newpos.push(x);
                    ctx.compute_flops(12);
                }
                // Publish the new positions only after every processor has
                // finished its force pass: the tree walk reads any body's
                // position, so an in-place update races with (and
                // numerically perturbs) the other processors' evaluations.
                ctx.barrier(bar);
                ctx.phase("position-update");
                for (b, x) in my.clone().zip(newpos) {
                    pos2.write(ctx, b, x);
                }
                ctx.barrier(bar);
            }
        };

        let verify = move || {
            // Mass conservation at the root of the parallel tree.
            let root = com_out.get(0);
            let total: f64 = (0..n).map(|i| mass_out.get(i)).sum();
            if (root[3] - total).abs() > 1e-9 * total {
                return Err(format!("root mass {} != total {}", root[3], total));
            }
            // The parallel evolution must track the host BH evolution; the
            // only legitimate divergence is the θ-approximation difference
            // between (scheduling-dependent) tree shapes, which is orders
            // of magnitude below this tolerance after few steps.
            let reference = app.host_evolve();
            for (i, want) in reference.iter().enumerate() {
                let got = pos_out.get(i);
                for d in 0..3 {
                    if (got[d] - want[d]).abs() > 1e-4 {
                        return Err(format!(
                            "barnes position mismatch at body {i} dim {d}: {} vs {}",
                            got[d], want[d]
                        ));
                    }
                }
            }
            Ok(())
        };
        Job::new(body, verify)
    }
}

/// Subspace index of a position at octree level `level`.
fn space_of(p: [f64; 3], level: u32) -> usize {
    let mut s = 0usize;
    let mut center = [WORLD / 2.0; 3];
    let mut half = WORLD / 2.0;
    for _ in 0..level {
        let q = octant(p, center);
        s = (s << 3) | q;
        center = child_center(center, half, q);
        half /= 2.0;
    }
    s
}

/// Completes the centres of mass for the top two tree levels, reusing the
/// already-computed depth-2 subtree results.
fn com_top(
    ctx: &Ctx,
    tree: &SharedTree,
    root: usize,
    pos: &SharedVec<[f64; 3]>,
    mass: &SharedVec<f64>,
    done: &[usize],
) {
    fn descend(
        ctx: &Ctx,
        tree: &SharedTree,
        node: usize,
        pos: &SharedVec<[f64; 3]>,
        mass: &SharedVec<f64>,
        done: &[usize],
    ) -> [f64; 4] {
        if done.contains(&node) {
            return tree.com.read(ctx, node);
        }
        let mut m = 0.0;
        let mut com = [0.0; 3];
        for q in 0..8 {
            match dec(tree.children.read(ctx, node * 8 + q)) {
                Slot::Empty => {}
                Slot::Body(b) => {
                    let w = mass.read(ctx, b);
                    let p = pos.read(ctx, b);
                    m += w;
                    for d in 0..3 {
                        com[d] += w * p[d];
                    }
                }
                Slot::Node(k) => {
                    let sub = descend(ctx, tree, k, pos, mass, done);
                    m += sub[3];
                    for d in 0..3 {
                        com[d] += sub[3] * sub[d];
                    }
                }
            }
        }
        if m > 0.0 {
            for d in com.iter_mut() {
                *d /= m;
            }
        }
        let out = [com[0], com[1], com[2], m];
        tree.com.write(ctx, node, out);
        out
    }
    descend(ctx, tree, root, pos, mass, done);
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccnuma_sim::config::MachineConfig;

    fn run(app: &Barnes, np: usize) -> ccnuma_sim::stats::RunStats {
        let mut m = Machine::new(MachineConfig::origin2000_scaled(np, 64 << 10)).unwrap();
        let job = app.build(&mut m);
        let body = job.body;
        let stats = m.run(move |ctx| body(ctx)).unwrap();
        (job.verify)().unwrap();
        stats
    }

    #[test]
    fn host_bh_approximates_direct_sum() {
        let app = Barnes::new(256);
        let (pos, mass) = app.bodies();
        let direct = Barnes::direct_acc(&pos, &mass);
        let bh = app.host_bh_acc(&pos, &mass);
        for i in 0..pos.len() {
            let num: f64 = (0..3)
                .map(|d| (bh[i][d] - direct[i][d]).powi(2))
                .sum::<f64>();
            let den: f64 = (0..3).map(|d| direct[i][d].powi(2)).sum::<f64>().max(1e-12);
            assert!(
                (num / den).sqrt() < 0.35,
                "body {i} err {}",
                (num / den).sqrt()
            );
        }
    }

    #[test]
    fn locked_build_runs_and_verifies() {
        for np in [1usize, 4] {
            run(&Barnes::new(128), np);
        }
    }

    #[test]
    fn merge_build_runs_and_verifies() {
        let mut app = Barnes::new(128);
        app.variant = TreeBuild::Merge;
        for np in [1usize, 4, 7] {
            run(&app, np);
        }
    }

    #[test]
    fn spatial_build_runs_and_verifies() {
        let mut app = Barnes::new(128);
        app.variant = TreeBuild::Spatial;
        for np in [1usize, 4, 9] {
            run(&app, np);
        }
    }

    #[test]
    fn restructured_builds_reduce_lock_traffic() {
        let mk = |variant| {
            let mut a = Barnes::new(512);
            a.variant = variant;
            a
        };
        let locked = run(&mk(TreeBuild::Locked), 8);
        let merged = run(&mk(TreeBuild::Merge), 8);
        let spatial = run(&mk(TreeBuild::Spatial), 8);
        let locks = |s: &ccnuma_sim::stats::RunStats| s.total(|p| p.lock_acquires);
        assert!(
            locks(&merged) < locks(&locked),
            "{} vs {}",
            locks(&merged),
            locks(&locked)
        );
        assert!(
            locks(&spatial) < locks(&locked) / 4,
            "{} vs {}",
            locks(&spatial),
            locks(&locked)
        );
    }

    #[test]
    fn multi_step_stays_verified() {
        let mut app = Barnes::new(96);
        app.steps = 2;
        app.variant = TreeBuild::Merge;
        run(&app, 4);
    }

    #[test]
    fn morton_sorting_groups_neighbors() {
        let app = Barnes::new(512);
        let (pos, _) = app.bodies();
        // Consecutive bodies should usually be near each other.
        let mut near = 0;
        for i in 1..pos.len() {
            let d: f64 = (0..3).map(|k| (pos[i][k] - pos[i - 1][k]).powi(2)).sum();
            if d.sqrt() < 0.25 {
                near += 1;
            }
        }
        assert!(near > pos.len() * 3 / 4, "only {near} near pairs");
    }

    #[test]
    fn space_of_matches_octant_walk() {
        for level in 0..3u32 {
            let p = [0.9, 0.1, 0.6];
            let s = space_of(p, level);
            assert!(s < 8usize.pow(level).max(1));
        }
        assert_eq!(space_of([0.1, 0.1, 0.1], 1), 0);
        assert_eq!(space_of([0.9, 0.9, 0.9], 1), 7);
    }
}
