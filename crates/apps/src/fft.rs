//! The SPLASH-2 FFT kernel: a six-step, √n × √n radix-√n 1-D FFT with
//! blocked, staggered all-to-all transposes.
//!
//! The data set is an n-point complex array viewed as an m×m matrix
//! (m = √n). Each processor owns a contiguous block of rows (placed locally
//! under manual distribution). The three transposes are the communication
//! phases the paper studies: every processor reads a patch of every other
//! processor's rows, staggered so that processor *i* starts with the patch
//! of processor *i + first_peer_offset* to avoid hot spots (§7.1 examines
//! exactly this stagger and its interaction with two-processor nodes).
//!
//! The optional prefetch variant (§6.1) issues software prefetches for the
//! next remote patch while the current one is transposed.

use ccnuma_sim::ctx::Ctx;
use ccnuma_sim::machine::{Machine, Placement};
use ccnuma_sim::shared::SharedVec;

use crate::common::{chunk_range, Cx, Job, Workload, XorShift};

/// How row FFT inputs cross the matrix transpose.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransposeKind {
    /// A separate blocked transpose phase before each FFT phase
    /// (the SPLASH-2 structure).
    Explicit,
    /// No separate phase: each row FFT gathers its column directly with
    /// strided remote reads. The paper tried this to reduce communication
    /// burstiness and found it did not help (§5.1).
    Implicit,
}

/// Configuration of one FFT run.
#[derive(Debug, Clone)]
pub struct Fft {
    /// log₂ of the number of points (must be even so the matrix is square).
    pub log2n: u32,
    /// Transpose structure.
    pub transpose: TransposeKind,
    /// Stagger offset of the transpose: processor *i* starts reading the
    /// patch owned by processor *i + offset*. The SPLASH-2 default is 1,
    /// which under a linear mapping makes one processor of each node start
    /// on-node and the other off-node — the bad case of §7.1. Offset 2
    /// makes both start off-node.
    pub first_peer_offset: usize,
    /// Placement of the matrices: `true` = manual block distribution
    /// (each processor's rows local), `false` = machine default policy.
    pub manual_placement: bool,
    /// Seed for the input signal.
    pub seed: u64,
}

impl Fft {
    /// A standard FFT of `1 << log2n` points with the SPLASH defaults.
    ///
    /// # Panics
    ///
    /// Panics if `log2n` is odd or less than 4.
    pub fn new(log2n: u32) -> Self {
        assert!(
            log2n >= 4 && log2n.is_multiple_of(2),
            "log2n must be even and ≥ 4"
        );
        Fft {
            log2n,
            transpose: TransposeKind::Explicit,
            first_peer_offset: 1,
            manual_placement: true,
            seed: 0x5EED,
        }
    }

    /// Number of points.
    pub fn n(&self) -> usize {
        1 << self.log2n
    }

    /// Rows (= columns) of the matrix view.
    pub fn m(&self) -> usize {
        1 << (self.log2n / 2)
    }

    /// Generates the deterministic input signal.
    pub fn input(&self) -> Vec<Cx> {
        let mut rng = XorShift::new(self.seed);
        (0..self.n())
            .map(|_| Cx::new(rng.range_f64(-1.0, 1.0), rng.range_f64(-1.0, 1.0)))
            .collect()
    }

    /// The host-side reference DFT of the input (iterative radix-2 FFT).
    pub fn reference(&self) -> Vec<Cx> {
        let mut buf = self.input();
        fft_inplace(&mut buf);
        buf
    }
}

/// In-place iterative radix-2 decimation-in-time FFT (forward transform,
/// `e^{-2πi/n}` convention). Also used by the row FFTs of the parallel code.
///
/// # Panics
///
/// Panics if the length is not a power of two.
pub fn fft_inplace(buf: &mut [Cx]) {
    let n = buf.len();
    assert!(n.is_power_of_two(), "FFT length must be a power of two");
    // Bit-reversal permutation.
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = (i.reverse_bits() >> (usize::BITS - bits)) & (n - 1);
        if j > i {
            buf.swap(i, j);
        }
    }
    let mut len = 2;
    while len <= n {
        let ang = -2.0 * std::f64::consts::PI / len as f64;
        let wl = Cx::cis(ang);
        for start in (0..n).step_by(len) {
            let mut w = Cx::new(1.0, 0.0);
            for k in 0..len / 2 {
                let a = buf[start + k];
                let b = buf[start + k + len / 2].mul(w);
                buf[start + k] = a.add(b);
                buf[start + k + len / 2] = a.sub(b);
                w = w.mul(wl);
            }
        }
        len <<= 1;
    }
}

/// Flop count charged for one length-`m` row FFT (the standard 5·m·log₂m).
fn row_fft_flops(m: usize) -> u64 {
    5 * m as u64 * m.trailing_zeros() as u64
}

/// Transposes the patch of `src`'s rows into `dst` columns for processor
/// `p`: `dst[c][r] = src[r][c]` for `r` in `src_rows`, `c` in `my_rows`.
fn transpose_patch(
    ctx: &Ctx,
    src: &SharedVec<Cx>,
    dst: &SharedVec<Cx>,
    m: usize,
    src_rows: std::ops::Range<usize>,
    my_rows: std::ops::Range<usize>,
    prefetch_next: Option<(usize, usize)>,
) {
    // Prefetch the next patch's rows while we work on this one.
    if let Some((next_lo, next_hi)) = prefetch_next {
        for r in next_lo..next_hi {
            src.prefetch(ctx, r * m + my_rows.start, my_rows.len());
        }
    }
    for r in src_rows {
        // Contiguous (stride-one) read of the remote patch row.
        for c in my_rows.clone() {
            let v = src.read(ctx, r * m + c);
            dst.write(ctx, c * m + r, v);
        }
        ctx.compute_ops(my_rows.len() as u64);
    }
}

impl Workload for Fft {
    fn name(&self) -> String {
        match self.transpose {
            TransposeKind::Explicit => "fft".into(),
            TransposeKind::Implicit => "fft/implicit".into(),
        }
    }

    fn problem(&self) -> String {
        format!("2^{} points", self.log2n)
    }

    fn build(&self, machine: &mut Machine) -> Job {
        let n = self.n();
        let m = self.m();
        let placement = if self.manual_placement {
            Placement::Blocked
        } else {
            Placement::Policy
        };
        let a = machine.shared_vec::<Cx>(n, placement);
        let b = machine.shared_vec::<Cx>(n, placement);
        let bar = machine.barrier();
        a.copy_from_slice(&self.input());

        let offset = self.first_peer_offset;
        let transpose = self.transpose;
        let (a2, b2) = (a.clone(), b.clone());
        let expected = self.reference();
        let out = b.clone();

        let body = move |ctx: &Ctx| {
            let np = ctx.nprocs();
            let p = ctx.id();
            let my_rows = chunk_range(m, np, p);
            let mut buf = vec![Cx::default(); m];

            match transpose {
                TransposeKind::Explicit => {
                    // Step 1: transpose a → b, staggered all-to-all.
                    for k in 0..np {
                        let src_p = (p + offset + k) % np;
                        let next = if k + 1 < np {
                            let q = chunk_range(m, np, (p + offset + k + 1) % np);
                            Some((q.start, q.end))
                        } else {
                            None
                        };
                        transpose_patch(
                            ctx,
                            &a2,
                            &b2,
                            m,
                            chunk_range(m, np, src_p),
                            my_rows.clone(),
                            next,
                        );
                    }
                    ctx.barrier(bar);
                    // Step 2+3: row FFTs on b, then twiddle multiply.
                    for c in my_rows.clone() {
                        for (j, slot) in buf.iter_mut().enumerate() {
                            *slot = b2.read(ctx, c * m + j);
                        }
                        fft_inplace(&mut buf);
                        ctx.compute_flops(row_fft_flops(m));
                        for (k, v) in buf.iter().enumerate() {
                            let tw =
                                Cx::cis(-2.0 * std::f64::consts::PI * (c * k) as f64 / n as f64);
                            b2.write(ctx, c * m + k, v.mul(tw));
                        }
                        ctx.compute_flops(8 * m as u64);
                    }
                    ctx.barrier(bar);
                    // Step 4: transpose b → a.
                    for k in 0..np {
                        let src_p = (p + offset + k) % np;
                        let next = if k + 1 < np {
                            let q = chunk_range(m, np, (p + offset + k + 1) % np);
                            Some((q.start, q.end))
                        } else {
                            None
                        };
                        transpose_patch(
                            ctx,
                            &b2,
                            &a2,
                            m,
                            chunk_range(m, np, src_p),
                            my_rows.clone(),
                            next,
                        );
                    }
                    ctx.barrier(bar);
                    // Step 5: row FFTs on a.
                    for k in my_rows.clone() {
                        for (j, slot) in buf.iter_mut().enumerate() {
                            *slot = a2.read(ctx, k * m + j);
                        }
                        fft_inplace(&mut buf);
                        ctx.compute_flops(row_fft_flops(m));
                        for (j, v) in buf.iter().enumerate() {
                            a2.write(ctx, k * m + j, *v);
                        }
                    }
                    ctx.barrier(bar);
                }
                TransposeKind::Implicit => {
                    // Steps 1–3 fused: gather column c of `a` with strided
                    // remote reads, FFT it, twiddle, and write row c of `b`.
                    for c in my_rows.clone() {
                        for (r, slot) in buf.iter_mut().enumerate() {
                            *slot = a2.read(ctx, r * m + c);
                        }
                        fft_inplace(&mut buf);
                        ctx.compute_flops(row_fft_flops(m));
                        for (k, v) in buf.iter().enumerate() {
                            let tw =
                                Cx::cis(-2.0 * std::f64::consts::PI * (c * k) as f64 / n as f64);
                            b2.write(ctx, c * m + k, v.mul(tw));
                        }
                        ctx.compute_flops(8 * m as u64);
                    }
                    ctx.barrier(bar);
                    // Steps 4–5 fused: gather column k of `b`, FFT, write
                    // row k of `a`.
                    for k in my_rows.clone() {
                        for (r, slot) in buf.iter_mut().enumerate() {
                            *slot = b2.read(ctx, r * m + k);
                        }
                        fft_inplace(&mut buf);
                        ctx.compute_flops(row_fft_flops(m));
                        for (j, v) in buf.iter().enumerate() {
                            a2.write(ctx, k * m + j, *v);
                        }
                    }
                    ctx.barrier(bar);
                }
            }

            // Step 6: final transpose a → b restores natural order.
            for k in 0..np {
                let src_p = (p + offset + k) % np;
                transpose_patch(
                    ctx,
                    &a2,
                    &b2,
                    m,
                    chunk_range(m, np, src_p),
                    my_rows.clone(),
                    None,
                );
            }
            ctx.barrier(bar);
        };

        let verify = move || {
            let tol = 1e-6 * (n as f64);
            for (i, want) in expected.iter().enumerate() {
                let got = out.get(i);
                let err = got.sub(*want).norm_sq().sqrt();
                if err > tol {
                    return Err(format!(
                        "FFT mismatch at {i}: got ({}, {}), want ({}, {}), err {err}",
                        got.re, got.im, want.re, want.im
                    ));
                }
            }
            Ok(())
        };

        Job::new(body, verify)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccnuma_sim::config::MachineConfig;

    #[test]
    fn fft_inplace_matches_naive_dft() {
        let mut rng = XorShift::new(1);
        let n = 64;
        let input: Vec<Cx> = (0..n)
            .map(|_| Cx::new(rng.range_f64(-1.0, 1.0), rng.range_f64(-1.0, 1.0)))
            .collect();
        let mut fast = input.clone();
        fft_inplace(&mut fast);
        for (k, f) in fast.iter().enumerate() {
            let mut acc = Cx::default();
            for (j, x) in input.iter().enumerate() {
                acc = acc.add(x.mul(Cx::cis(
                    -2.0 * std::f64::consts::PI * (j * k) as f64 / n as f64,
                )));
            }
            assert!(f.sub(acc).norm_sq().sqrt() < 1e-9, "bin {k}");
        }
    }

    #[test]
    fn parallel_fft_matches_reference() {
        for np in [1usize, 4, 7] {
            let app = Fft::new(8); // 256 points, 16×16
            let mut m = Machine::new(MachineConfig::origin2000_scaled(np, 64 << 10)).unwrap();
            let job = app.build(&mut m);
            let body = job.body;
            m.run(move |ctx| body(ctx)).unwrap();
            (job.verify)().unwrap_or_else(|e| panic!("np={np}: {e}"));
        }
    }

    #[test]
    fn parallel_fft_with_prefetch_matches_reference() {
        let app = Fft::new(8);
        let mut cfg = MachineConfig::origin2000_scaled(8, 64 << 10);
        cfg.prefetch_enabled = true;
        let mut m = Machine::new(cfg).unwrap();
        let job = app.build(&mut m);
        let body = job.body;
        let stats = m.run(move |ctx| body(ctx)).unwrap();
        (job.verify)().unwrap();
        assert!(stats.total(|p| p.prefetches) > 0);
    }

    #[test]
    fn transposes_generate_remote_traffic() {
        let app = Fft::new(10);
        let mut m = Machine::new(MachineConfig::origin2000_scaled(8, 64 << 10)).unwrap();
        let job = app.build(&mut m);
        let body = job.body;
        let stats = m.run(move |ctx| body(ctx)).unwrap();
        (job.verify)().unwrap();
        assert!(
            stats.total(|p| p.misses_remote_clean + p.misses_remote_dirty) > 100,
            "all-to-all transpose must communicate"
        );
    }

    #[test]
    #[should_panic(expected = "even")]
    fn odd_log2n_rejected() {
        Fft::new(9);
    }

    #[test]
    fn implicit_transpose_matches_reference() {
        let mut app = Fft::new(8);
        app.transpose = TransposeKind::Implicit;
        for np in [1usize, 4, 7] {
            let mut m = Machine::new(MachineConfig::origin2000_scaled(np, 64 << 10)).unwrap();
            let job = app.build(&mut m);
            let body = job.body;
            m.run(move |ctx| body(ctx)).unwrap();
            (job.verify)().unwrap_or_else(|e| panic!("np={np}: {e}"));
        }
    }

    #[test]
    fn implicit_transpose_scatters_reads_across_lines() {
        // The whole point of the explicit blocked transpose: the implicit
        // version's column gathers touch one line per element.
        let run = |transpose| {
            let mut app = Fft::new(10);
            app.transpose = transpose;
            let mut m = Machine::new(MachineConfig::origin2000_scaled(8, 16 << 10)).unwrap();
            let job = app.build(&mut m);
            let body = job.body;
            let stats = m.run(move |ctx| body(ctx)).unwrap();
            (job.verify)().unwrap();
            stats.total(|p| p.misses())
        };
        let explicit = run(TransposeKind::Explicit);
        let implicit = run(TransposeKind::Implicit);
        assert!(implicit > explicit, "{implicit} vs {explicit}");
    }
}
