//! The SPLASH-2 Radix sort kernel and its local-buffer variant.
//!
//! Parallel radix sort proceeds digit by digit. Each pass builds per-
//! processor histograms, computes global bucket offsets, then *permutes*
//! keys into the destination array. The permutation's writes are temporally
//! scattered remote writes — the burst of write-based communication and
//! protocol traffic (ownership requests, invalidations, writebacks) that
//! makes Radix collapse at 128 processors in the paper (§4.1, §5.1).
//!
//! [`RadixVariant::LocalBuffer`] is the paper's *failed* restructuring: keys
//! are first staged in small contiguous local buffers and then copied to
//! the destination in contiguous chunks. It reduces write scatter but adds
//! a full extra copy, which the paper found to outweigh the savings. The
//! successful restructuring is a different algorithm entirely — see
//! [`crate::sample_sort`].

use ccnuma_sim::ctx::Ctx;
use ccnuma_sim::machine::{Machine, Placement};

use crate::common::{chunk_range, Job, Workload, XorShift};

/// Permutation strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RadixVariant {
    /// Write each key straight to its destination (SPLASH-2 original).
    Direct,
    /// Stage keys in per-bucket local buffers, flushing contiguously.
    LocalBuffer,
}

/// Configuration of one Radix sort run.
#[derive(Debug, Clone)]
pub struct Radix {
    /// Number of keys.
    pub n_keys: usize,
    /// Bits per digit (buckets per pass = 2^bits).
    pub radix_bits: u32,
    /// Total key bits (passes = key_bits / radix_bits).
    pub key_bits: u32,
    /// Permutation strategy.
    pub variant: RadixVariant,
    /// `true` = manual block distribution of the key arrays (each
    /// processor's share local), `false` = machine default policy
    /// (Table 3 of the paper compares these).
    pub manual_placement: bool,
    /// Seed for key generation.
    pub seed: u64,
}

impl Radix {
    /// A direct-permutation Radix sort of `n_keys` 16-bit keys with 256
    /// buckets (two passes), scaled from the SPLASH defaults.
    ///
    /// # Panics
    ///
    /// Panics if `n_keys` is zero.
    pub fn new(n_keys: usize) -> Self {
        assert!(n_keys > 0);
        Radix {
            n_keys,
            radix_bits: 8,
            key_bits: 16,
            variant: RadixVariant::Direct,
            manual_placement: true,
            seed: 0xADD,
        }
    }

    fn n_buckets(&self) -> usize {
        1 << self.radix_bits
    }

    fn n_passes(&self) -> u32 {
        self.key_bits.div_ceil(self.radix_bits)
    }

    /// The deterministic input keys.
    pub fn input(&self) -> Vec<u64> {
        let mut rng = XorShift::new(self.seed);
        let mask = (1u64 << self.key_bits) - 1;
        (0..self.n_keys).map(|_| rng.next_u64() & mask).collect()
    }
}

/// How many staged keys trigger a buffer flush in the LocalBuffer variant.
const FLUSH_KEYS: usize = 16;

impl Workload for Radix {
    fn name(&self) -> String {
        match self.variant {
            RadixVariant::Direct => "radix".into(),
            RadixVariant::LocalBuffer => "radix/localbuf".into(),
        }
    }

    fn problem(&self) -> String {
        format!("{} keys", self.n_keys)
    }

    fn build(&self, machine: &mut Machine) -> Job {
        let n = self.n_keys;
        let nbuckets = self.n_buckets();
        let npasses = self.n_passes();
        let radix_bits = self.radix_bits;
        let variant = self.variant;
        let np = machine.nprocs();

        let placement = if self.manual_placement {
            Placement::Blocked
        } else {
            Placement::Policy
        };
        let a = machine.shared_vec::<u64>(n, placement);
        let b = machine.shared_vec::<u64>(n, placement);
        // Parallel-prefix scratch: scan[p][stage][bucket], processor-major
        // so each processor's slices are local under block placement. The
        // final stage slot publishes the inclusive prefix so that everyone
        // can read the grand totals from the last processor.
        let stages = (usize::BITS - (np - 1).leading_zeros()) as usize;
        let scan = machine.shared_vec::<u64>(np * (stages + 1) * nbuckets, Placement::Blocked);
        // Staging buffers for the LocalBuffer variant (one region per proc).
        let stage =
            machine.shared_vec::<u64>(np * nbuckets.min(64) * FLUSH_KEYS, Placement::Blocked);
        let bar = machine.barrier();
        a.copy_from_slice(&self.input());

        let (a2, b2, scan2, stage2) = (a.clone(), b.clone(), scan.clone(), stage.clone());
        let mut expected = self.input();
        expected.sort_unstable();
        let out = if npasses.is_multiple_of(2) {
            a.clone()
        } else {
            b.clone()
        };

        let body = move |ctx: &Ctx| {
            let p = ctx.id();
            let npr = ctx.nprocs();
            let my = chunk_range(n, npr, p);
            let stage_cap = nbuckets.min(64) * FLUSH_KEYS;
            for pass in 0..npasses {
                let (src, dst) = if pass % 2 == 0 {
                    (&a2, &b2)
                } else {
                    (&b2, &a2)
                };
                let shift = pass * radix_bits;
                // Phase 1: local histogram.
                let mut local = vec![0u64; nbuckets];
                for i in my.clone() {
                    let k = src.read(ctx, i);
                    local[((k >> shift) as usize) & (nbuckets - 1)] += 1;
                    ctx.compute_ops(2);
                }
                // Phase 2: a Hillis-Steele dissemination scan over the
                // per-processor histogram vectors (the SPLASH-2 prefix
                // tree, O(B·log P) per processor instead of O(B·P)).
                let slot =
                    |q: usize, st: usize, bkt: usize| (q * (stages + 1) + st) * nbuckets + bkt;
                let mut incl = local.clone(); // inclusive prefix over procs ≤ p
                for st in 0..stages {
                    for (bkt, &v) in incl.iter().enumerate() {
                        scan2.write(ctx, slot(p, st, bkt), v);
                    }
                    ctx.barrier(bar);
                    if p >= (1 << st) {
                        let q = p - (1 << st);
                        for (bkt, vv) in incl.iter_mut().enumerate() {
                            *vv += scan2.read(ctx, slot(q, st, bkt));
                            ctx.compute_ops(1);
                        }
                    }
                }
                // Publish the inclusive prefixes; the last processor's row
                // holds the grand totals.
                for (bkt, &v) in incl.iter().enumerate() {
                    scan2.write(ctx, slot(p, stages, bkt), v);
                }
                ctx.barrier(bar);
                let mut offset = vec![0u64; nbuckets];
                let mut run = 0u64;
                for bkt in 0..nbuckets {
                    let total = scan2.read(ctx, slot(npr - 1, stages, bkt));
                    offset[bkt] = run + incl[bkt] - local[bkt];
                    run += total;
                    ctx.compute_ops(2);
                }
                ctx.barrier(bar);
                // Phase 3: permutation.
                match variant {
                    RadixVariant::Direct => {
                        for i in my.clone() {
                            let k = src.read(ctx, i);
                            let bkt = ((k >> shift) as usize) & (nbuckets - 1);
                            dst.write(ctx, offset[bkt] as usize, k);
                            offset[bkt] += 1;
                            ctx.compute_ops(3);
                        }
                    }
                    RadixVariant::LocalBuffer => {
                        // One small buffer per bucket: every key is first
                        // written to the local buffer, then read back and
                        // copied — contiguously — to the destination chunk.
                        // This is the paper's failed restructuring: the
                        // write scatter shrinks, but every key moves twice.
                        let mut bufs: Vec<Vec<(usize, u64)>> = (0..nbuckets)
                            .map(|_| Vec::with_capacity(FLUSH_KEYS))
                            .collect();
                        let my_stage = p * stage_cap;
                        let flush = |ctx: &Ctx, bkt: usize, bufs: &mut Vec<Vec<(usize, u64)>>| {
                            if bufs[bkt].is_empty() {
                                return;
                            }
                            let base = my_stage + (bkt % (stage_cap / FLUSH_KEYS)) * FLUSH_KEYS;
                            // Stage locally (timed local writes)...
                            for (slot, &(_, k)) in bufs[bkt].iter().enumerate() {
                                stage2.write(ctx, base + slot, k);
                            }
                            // ...then read back and copy to the (contiguous)
                            // destination run.
                            for (slot, &(pos, k)) in bufs[bkt].iter().enumerate() {
                                let _ = stage2.read(ctx, base + slot);
                                dst.write(ctx, pos, k);
                                ctx.compute_ops(2);
                            }
                            bufs[bkt].clear();
                        };
                        for i in my.clone() {
                            let k = src.read(ctx, i);
                            let bkt = ((k >> shift) as usize) & (nbuckets - 1);
                            bufs[bkt].push((offset[bkt] as usize, k));
                            offset[bkt] += 1;
                            ctx.compute_ops(3);
                            if bufs[bkt].len() == FLUSH_KEYS {
                                flush(ctx, bkt, &mut bufs);
                            }
                        }
                        for bkt in 0..nbuckets {
                            flush(ctx, bkt, &mut bufs);
                        }
                    }
                }
                ctx.barrier(bar);
            }
        };

        let verify = move || {
            for (i, want) in expected.iter().enumerate() {
                let got = out.get(i);
                if got != *want {
                    return Err(format!("radix mismatch at {i}: {got} vs {want}"));
                }
            }
            Ok(())
        };
        Job::new(body, verify)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccnuma_sim::config::MachineConfig;

    fn run(app: &Radix, np: usize) -> ccnuma_sim::stats::RunStats {
        let mut m = Machine::new(MachineConfig::origin2000_scaled(np, 64 << 10)).unwrap();
        let job = app.build(&mut m);
        let body = job.body;
        let stats = m.run(move |ctx| body(ctx)).unwrap();
        (job.verify)().unwrap();
        stats
    }

    #[test]
    fn sorts_at_many_proc_counts() {
        for np in [1usize, 4, 7] {
            run(&Radix::new(2000), np);
        }
    }

    #[test]
    fn local_buffer_variant_sorts_and_moves_every_key_twice() {
        let mut direct = Radix::new(4096);
        direct.seed = 99;
        let mut buffered = direct.clone();
        buffered.variant = RadixVariant::LocalBuffer;
        let sd = run(&direct, 8);
        let sb = run(&buffered, 8);
        // The mechanism behind the paper's finding that the restructuring
        // fails: the staging copy adds a full extra pass of traffic.
        // (Whether the copy outweighs the contention savings is scale-
        // dependent; the experiment harness measures that at full size.)
        assert!(
            sb.total(|p| p.accesses()) > sd.total(|p| p.accesses()) * 21 / 20,
            "staging must add traffic: {} vs {}",
            sb.total(|p| p.accesses()),
            sd.total(|p| p.accesses())
        );
        assert!(
            sb.total(|p| p.hits) > sd.total(|p| p.hits),
            "the staged copy is extra (mostly cache-hit) local traffic"
        );
    }

    #[test]
    fn permutation_generates_scattered_remote_writes() {
        let stats = run(&Radix::new(4096), 8);
        // Writes into other processors' partitions: remote misses and
        // invalidation/ownership traffic.
        assert!(stats.total(|p| p.misses_remote_clean + p.misses_remote_dirty) > 100);
        assert!(
            stats.total(|p| p.writebacks) > 0,
            "dirty lines must wash back"
        );
    }

    #[test]
    fn odd_pass_counts_land_in_the_right_array() {
        let mut app = Radix::new(512);
        app.key_bits = 24; // 3 passes → result in b
        run(&app, 4);
    }
}
