//! The [`Workload`] abstraction shared by every application, plus small
//! helpers (complex numbers, deterministic random generation).

use std::sync::Arc;

use ccnuma_sim::ctx::Ctx;
use ccnuma_sim::machine::Machine;
use ccnuma_sim::shared::SimValue;

/// A buildable parallel program: the study runner instantiates a workload
/// on a machine, runs it, and verifies the result.
pub trait Workload {
    /// Short identifier, e.g. `"fft"` or `"barnes/merge"`.
    fn name(&self) -> String;

    /// Human-readable problem size, e.g. `"64K points"`.
    fn problem(&self) -> String;

    /// Allocates shared data and synchronization objects on `machine` and
    /// returns the runnable job. The job's `verify` closure checks the
    /// computed result after the run.
    fn build(&self, machine: &mut Machine) -> Job;
}

/// A built job: the per-processor body and a post-run verifier.
pub struct Job {
    /// The body every simulated processor executes.
    pub body: Arc<dyn Fn(&Ctx) + Send + Sync>,
    /// Post-run result check; returns a description of any mismatch.
    pub verify: Box<dyn FnOnce() -> Result<(), String> + Send>,
}

impl Job {
    /// Creates a job from a body and a verifier.
    pub fn new(
        body: impl Fn(&Ctx) + Send + Sync + 'static,
        verify: impl FnOnce() -> Result<(), String> + Send + 'static,
    ) -> Self {
        Job {
            body: Arc::new(body),
            verify: Box::new(verify),
        }
    }

    /// A job whose result needs no verification (e.g. microbenchmarks).
    pub fn unchecked(body: impl Fn(&Ctx) + Send + Sync + 'static) -> Self {
        Job::new(body, || Ok(()))
    }
}

impl std::fmt::Debug for Job {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Job").finish_non_exhaustive()
    }
}

/// A complex number stored in simulated shared memory.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Cx {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl SimValue for Cx {}

// The `add`/`sub`/`mul` inherent methods intentionally mirror the operator
// names: applications chain them heavily in FFT butterflies and the
// non-generic inherent forms keep those hot paths free of trait dispatch
// ambiguity in rustdoc examples.
#[allow(clippy::should_implement_trait)]
impl Cx {
    /// Creates `re + im·i`.
    pub fn new(re: f64, im: f64) -> Self {
        Cx { re, im }
    }

    /// Complex multiplication.
    pub fn mul(self, o: Cx) -> Cx {
        Cx {
            re: self.re * o.re - self.im * o.im,
            im: self.re * o.im + self.im * o.re,
        }
    }

    /// Complex addition.
    pub fn add(self, o: Cx) -> Cx {
        Cx {
            re: self.re + o.re,
            im: self.im + o.im,
        }
    }

    /// Complex subtraction.
    pub fn sub(self, o: Cx) -> Cx {
        Cx {
            re: self.re - o.re,
            im: self.im - o.im,
        }
    }

    /// Squared magnitude.
    pub fn norm_sq(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// `e^{iθ}`.
    pub fn cis(theta: f64) -> Cx {
        Cx {
            re: theta.cos(),
            im: theta.sin(),
        }
    }
}

/// Splits `n` items into `nprocs` contiguous chunks; returns the half-open
/// range of chunk `p`. Remainder items go to the leading chunks.
///
/// # Examples
///
/// ```
/// use splash_apps::common::chunk_range;
/// assert_eq!(chunk_range(10, 4, 0), 0..3);
/// assert_eq!(chunk_range(10, 4, 1), 3..6);
/// assert_eq!(chunk_range(10, 4, 2), 6..8);
/// assert_eq!(chunk_range(10, 4, 3), 8..10);
/// ```
pub fn chunk_range(n: usize, nprocs: usize, p: usize) -> std::ops::Range<usize> {
    let base = n / nprocs;
    let rem = n % nprocs;
    let lo = p * base + p.min(rem);
    let hi = lo + base + usize::from(p < rem);
    lo..hi
}

/// A tiny deterministic xorshift generator for workload construction
/// (fast, seedable, dependency-free in hot paths).
#[derive(Debug, Clone)]
pub struct XorShift {
    state: u64,
}

impl XorShift {
    /// Creates a generator; `seed` is mixed so 0 is fine.
    pub fn new(seed: u64) -> Self {
        XorShift {
            state: seed.wrapping_mul(0x9E3779B97F4A7C15).max(1) | 1,
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x
    }

    /// Uniform in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0);
        self.next_u64() % bound
    }

    /// Uniform in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform in `[lo, hi)`.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        lo + self.unit_f64() * (hi - lo)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunks_cover_everything_once() {
        for n in [0usize, 1, 7, 64, 100] {
            for p in [1usize, 2, 3, 8] {
                let mut covered = vec![false; n];
                for i in 0..p {
                    for j in chunk_range(n, p, i) {
                        assert!(!covered[j], "{j} covered twice (n={n} p={p})");
                        covered[j] = true;
                    }
                }
                assert!(covered.iter().all(|&c| c), "gap for n={n} p={p}");
            }
        }
    }

    #[test]
    fn chunk_sizes_differ_by_at_most_one() {
        for n in [10usize, 97, 128] {
            for p in [3usize, 7, 16] {
                let sizes: Vec<usize> = (0..p).map(|i| chunk_range(n, p, i).len()).collect();
                let min = sizes.iter().min().unwrap();
                let max = sizes.iter().max().unwrap();
                assert!(max - min <= 1);
            }
        }
    }

    #[test]
    fn cx_arithmetic() {
        let a = Cx::new(1.0, 2.0);
        let b = Cx::new(3.0, -1.0);
        assert_eq!(a.mul(b), Cx::new(5.0, 5.0));
        assert_eq!(a.add(b), Cx::new(4.0, 1.0));
        assert_eq!(a.sub(b), Cx::new(-2.0, 3.0));
        let u = Cx::cis(std::f64::consts::FRAC_PI_2);
        assert!((u.re).abs() < 1e-12 && (u.im - 1.0).abs() < 1e-12);
    }

    #[test]
    fn xorshift_is_deterministic_and_varied() {
        let mut a = XorShift::new(7);
        let mut b = XorShift::new(7);
        let xs: Vec<u64> = (0..32).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..32).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
        let distinct: std::collections::HashSet<_> = xs.iter().collect();
        assert!(distinct.len() > 30);
        for _ in 0..1000 {
            let f = a.unit_f64();
            assert!((0.0..1.0).contains(&f));
            assert!(a.below(10) < 10);
        }
    }
}
