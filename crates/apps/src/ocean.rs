//! Ocean: a near-neighbor multigrid Poisson solver standing in for the
//! SPLASH-2 Ocean simulation.
//!
//! The grid is (dim+2)² with a fixed zero boundary; the solver runs V-cycles
//! of red-black Gauss-Seidel smoothing with full-weighting restriction and
//! bilinear-ish prolongation. Two partitionings are supported, matching the
//! paper's §5.1 discussion:
//!
//! * **Tiled** (the SPLASH-2 default): processors own 2-D tiles, stored
//!   tile-major (the "4-D array" data-structure optimization) so each tile
//!   is contiguous and placeable locally. Column boundaries fragment: a
//!   neighbour-column read touches one cache line per element.
//! * **Rowwise**: processors own strips of rows (better page-granularity
//!   behaviour — the SVM restructuring — at a worse inherent
//!   communication-to-computation ratio).
//!
//! Red-black sweeps are order-independent within a colour, so results are
//! bitwise identical across processor counts and partitionings; the
//! verifier exploits this.

use std::sync::Arc;

use ccnuma_sim::ctx::Ctx;
use ccnuma_sim::machine::{Machine, Placement};
use ccnuma_sim::shared::SharedVec;
use ccnuma_sim::sync::BarrierRef;

use crate::common::{chunk_range, Job, Workload};

/// Partitioning/data-layout strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OceanPartition {
    /// 2-D tiles in tile-major storage (SPLASH-2 "4-D arrays").
    Tiled,
    /// Contiguous row strips in row-major storage.
    Rowwise,
}

/// Configuration of one Ocean run.
#[derive(Debug, Clone)]
pub struct Ocean {
    /// Interior grid dimension (the full grid is `(dim+2)²`). Must be a
    /// power of two ≥ 8 so multigrid levels divide evenly.
    pub dim: usize,
    /// Partitioning strategy.
    pub partition: OceanPartition,
    /// Number of V-cycles.
    pub vcycles: usize,
    /// `true` = manual placement (each share local), `false` = policy.
    pub manual_placement: bool,
}

impl Ocean {
    /// A tiled Ocean of interior dimension `dim` running 2 V-cycles.
    ///
    /// # Panics
    ///
    /// Panics if `dim` is not a power of two or is below 8.
    pub fn new(dim: usize) -> Self {
        assert!(
            dim.is_power_of_two() && dim >= 8,
            "dim must be a power of two ≥ 8"
        );
        Ocean {
            dim,
            partition: OceanPartition::Tiled,
            vcycles: 2,
            manual_placement: true,
        }
    }

    fn levels(&self) -> usize {
        // Coarsen down to an 8×8 interior.
        (self.dim.trailing_zeros() as usize)
            .saturating_sub(2)
            .max(1)
    }

    /// The right-hand side: a smooth deterministic source field.
    fn rhs_at(i: usize, j: usize, dim: usize) -> f64 {
        let x = i as f64 / (dim + 1) as f64;
        let y = j as f64 / (dim + 1) as f64;
        (2.0 * std::f64::consts::PI * x).sin() * (2.0 * std::f64::consts::PI * y).sin()
    }

    /// Runs the identical algorithm on the host, returning the final fine
    /// grid (for verification) as a row-major `(dim+2)²` array.
    pub fn reference(&self) -> Vec<f64> {
        let mut solver = HostMultigrid::new(self.dim, self.levels());
        for _ in 0..self.vcycles {
            solver.vcycle(0);
        }
        solver.u.remove(0)
    }
}

// ---------------------------------------------------------------------------
// Layout: maps (i, j) on a (dim+2)² grid to a linear index.
// ---------------------------------------------------------------------------

/// Index layout for one grid level.
#[derive(Debug, Clone)]
struct Layout {
    dim: usize,
    /// For Tiled: processor grid (pr × pc) and per-cell base offsets.
    tiled: Option<TiledLayout>,
}

#[derive(Debug, Clone)]
struct TiledLayout {
    pr: usize,
    pc: usize,
    /// Row → (tile row, local row) for all dim+2 rows.
    row_of: Vec<(usize, usize)>,
    col_of: Vec<(usize, usize)>,
    /// Tile (ti, tj) → base offset; tile widths per tj.
    base: Vec<usize>,
    width: Vec<usize>,
}

/// Factors `p` into (pr, pc) with pr ≤ pc, pr as near √p as possible.
fn proc_grid(p: usize) -> (usize, usize) {
    let mut pr = (p as f64).sqrt() as usize;
    while pr > 1 && !p.is_multiple_of(pr) {
        pr -= 1;
    }
    (pr.max(1), p / pr.max(1))
}

impl Layout {
    fn new(dim: usize, partition: OceanPartition, nprocs: usize) -> Self {
        match partition {
            OceanPartition::Rowwise => Layout { dim, tiled: None },
            OceanPartition::Tiled => {
                let (pr, pc) = proc_grid(nprocs);
                let side = dim + 2;
                // Interior rows are chunked over pr; boundary rows join the
                // adjacent edge tiles.
                let mut row_of = vec![(0, 0); side];
                let mut heights = vec![0usize; pr];
                for (ti, height) in heights.iter_mut().enumerate() {
                    let r = chunk_range(dim, pr, ti);
                    let lo = if ti == 0 { 0 } else { r.start + 1 };
                    let hi = if ti == pr - 1 { dim + 2 } else { r.end + 1 };
                    for (local, i) in (lo..hi).enumerate() {
                        row_of[i] = (ti, local);
                    }
                    *height = hi - lo;
                }
                let mut col_of = vec![(0, 0); side];
                let mut widths = vec![0usize; pc];
                for (tj, width) in widths.iter_mut().enumerate() {
                    let c = chunk_range(dim, pc, tj);
                    let lo = if tj == 0 { 0 } else { c.start + 1 };
                    let hi = if tj == pc - 1 { dim + 2 } else { c.end + 1 };
                    for (local, j) in (lo..hi).enumerate() {
                        col_of[j] = (tj, local);
                    }
                    *width = hi - lo;
                }
                let mut base = vec![0usize; pr * pc];
                let mut acc = 0;
                for ti in 0..pr {
                    for tj in 0..pc {
                        base[ti * pc + tj] = acc;
                        acc += heights[ti] * widths[tj];
                    }
                }
                Layout {
                    dim,
                    tiled: Some(TiledLayout {
                        pr,
                        pc,
                        row_of,
                        col_of,
                        base,
                        width: widths,
                    }),
                }
            }
        }
    }

    #[inline]
    fn idx(&self, i: usize, j: usize) -> usize {
        match &self.tiled {
            None => i * (self.dim + 2) + j,
            Some(t) => {
                let (ti, li) = t.row_of[i];
                let (tj, lj) = t.col_of[j];
                t.base[ti * t.pc + tj] + li * t.width[tj] + lj
            }
        }
    }

    /// The interior row/column ranges owned by processor `p`.
    fn my_block(
        &self,
        nprocs: usize,
        p: usize,
    ) -> (std::ops::Range<usize>, std::ops::Range<usize>) {
        match &self.tiled {
            None => {
                let r = chunk_range(self.dim, nprocs, p);
                (1 + r.start..1 + r.end, 1..self.dim + 1)
            }
            Some(t) => {
                let (ti, tj) = (p / t.pc, p % t.pc);
                if ti >= t.pr {
                    return (0..0, 0..0);
                }
                let r = chunk_range(self.dim, t.pr, ti);
                let c = chunk_range(self.dim, t.pc, tj);
                (1 + r.start..1 + r.end, 1 + c.start..1 + c.end)
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Host reference solver (same arithmetic, same sweep structure).
// ---------------------------------------------------------------------------

struct HostMultigrid {
    dims: Vec<usize>,
    u: Vec<Vec<f64>>,
    f: Vec<Vec<f64>>,
    r: Vec<Vec<f64>>,
}

const SMOOTH_PRE: usize = 2;
const SMOOTH_POST: usize = 2;
const SMOOTH_COARSE: usize = 8;

impl HostMultigrid {
    fn new(dim: usize, levels: usize) -> Self {
        let mut dims = Vec::new();
        let mut d = dim;
        for _ in 0..levels {
            dims.push(d);
            d /= 2;
        }
        let alloc = |d: usize| vec![0.0; (d + 2) * (d + 2)];
        let mut f: Vec<Vec<f64>> = dims.iter().map(|&d| alloc(d)).collect();
        for i in 1..=dim {
            for j in 1..=dim {
                f[0][i * (dim + 2) + j] = Ocean::rhs_at(i, j, dim);
            }
        }
        HostMultigrid {
            u: dims.iter().map(|&d| alloc(d)).collect(),
            r: dims.iter().map(|&d| alloc(d)).collect(),
            f,
            dims,
        }
    }

    fn smooth(&mut self, l: usize, sweeps: usize) {
        let d = self.dims[l];
        let h2 = 1.0 / ((d + 1) * (d + 1)) as f64;
        for _ in 0..sweeps {
            for color in 0..2 {
                for i in 1..=d {
                    for j in 1..=d {
                        if (i + j) % 2 == color {
                            let s = self.u[l][(i - 1) * (d + 2) + j]
                                + self.u[l][(i + 1) * (d + 2) + j]
                                + self.u[l][i * (d + 2) + j - 1]
                                + self.u[l][i * (d + 2) + j + 1];
                            self.u[l][i * (d + 2) + j] =
                                0.25 * (s + h2 * self.f[l][i * (d + 2) + j]);
                        }
                    }
                }
            }
        }
    }

    fn vcycle(&mut self, l: usize) {
        if l == self.dims.len() - 1 {
            self.smooth(l, SMOOTH_COARSE);
            return;
        }
        self.smooth(l, SMOOTH_PRE);
        let d = self.dims[l];
        let h2 = 1.0 / ((d + 1) * (d + 1)) as f64;
        for i in 1..=d {
            for j in 1..=d {
                let s = self.u[l][(i - 1) * (d + 2) + j]
                    + self.u[l][(i + 1) * (d + 2) + j]
                    + self.u[l][i * (d + 2) + j - 1]
                    + self.u[l][i * (d + 2) + j + 1];
                self.r[l][i * (d + 2) + j] =
                    self.f[l][i * (d + 2) + j] - (4.0 * self.u[l][i * (d + 2) + j] - s) / h2;
            }
        }
        let dc = self.dims[l + 1];
        // Full-weighting restriction: coarse (i,j) ↔ fine (2i,2j).
        for i in 1..=dc {
            for j in 1..=dc {
                let rd = |fi: usize, fj: usize| self.r[l][fi * (d + 2) + fj];
                let (fi, fj) = (2 * i, 2 * j);
                let v = (4.0 * rd(fi, fj)
                    + 2.0 * (rd(fi - 1, fj) + rd(fi + 1, fj) + rd(fi, fj - 1) + rd(fi, fj + 1))
                    + rd(fi - 1, fj - 1)
                    + rd(fi - 1, fj + 1)
                    + rd(fi + 1, fj - 1)
                    + rd(fi + 1, fj + 1))
                    / 16.0;
                self.f[l + 1][i * (dc + 2) + j] = v;
                self.u[l + 1][i * (dc + 2) + j] = 0.0;
            }
        }
        self.vcycle(l + 1);
        // Bilinear prolongation of the coarse correction.
        for fi in 1..=d {
            for fj in 1..=d {
                let c = prolong_at(&self.u[l + 1], dc, fi, fj);
                self.u[l][fi * (d + 2) + fj] += c;
            }
        }
        self.smooth(l, SMOOTH_POST);
    }
}

/// Bilinear interpolation of a coarse-grid correction (coarse point (i,j)
/// coincides with fine point (2i,2j); outside 1..=dc the correction is 0).
fn prolong_at(coarse: &[f64], dc: usize, fi: usize, fj: usize) -> f64 {
    let cv = |i: usize, j: usize| -> f64 {
        if (1..=dc).contains(&i) && (1..=dc).contains(&j) {
            coarse[i * (dc + 2) + j]
        } else {
            0.0
        }
    };
    match (fi % 2, fj % 2) {
        (0, 0) => cv(fi / 2, fj / 2),
        (1, 0) => 0.5 * (cv(fi / 2, fj / 2) + cv(fi / 2 + 1, fj / 2)),
        (0, 1) => 0.5 * (cv(fi / 2, fj / 2) + cv(fi / 2, fj / 2 + 1)),
        _ => {
            0.25 * (cv(fi / 2, fj / 2)
                + cv(fi / 2 + 1, fj / 2)
                + cv(fi / 2, fj / 2 + 1)
                + cv(fi / 2 + 1, fj / 2 + 1))
        }
    }
}

// ---------------------------------------------------------------------------
// Parallel solver.
// ---------------------------------------------------------------------------

struct Level {
    dim: usize,
    layout: Layout,
    u: SharedVec<f64>,
    f: SharedVec<f64>,
    r: SharedVec<f64>,
}

fn smooth_parallel(ctx: &Ctx, lv: &Level, sweeps: usize, bar: BarrierRef) {
    ctx.phase("smooth");
    let d = lv.dim;
    let h2 = 1.0 / ((d + 1) * (d + 1)) as f64;
    let (rows, cols) = lv.layout.my_block(ctx.nprocs(), ctx.id());
    for _ in 0..sweeps {
        for color in 0..2 {
            for i in rows.clone() {
                for j in cols.clone() {
                    if (i + j) % 2 == color {
                        let s = lv.u.read(ctx, lv.layout.idx(i - 1, j))
                            + lv.u.read(ctx, lv.layout.idx(i + 1, j))
                            + lv.u.read(ctx, lv.layout.idx(i, j - 1))
                            + lv.u.read(ctx, lv.layout.idx(i, j + 1));
                        let f = lv.f.read(ctx, lv.layout.idx(i, j));
                        lv.u.write(ctx, lv.layout.idx(i, j), 0.25 * (s + h2 * f));
                        ctx.compute_flops(13);
                    }
                }
            }
            ctx.barrier(bar);
        }
    }
}

fn vcycle_parallel(ctx: &Ctx, levels: &[Level], l: usize, bar: BarrierRef) {
    if l == levels.len() - 1 {
        smooth_parallel(ctx, &levels[l], SMOOTH_COARSE, bar);
        return;
    }
    smooth_parallel(ctx, &levels[l], SMOOTH_PRE, bar);
    ctx.phase("residual+restrict");
    let lv = &levels[l];
    let d = lv.dim;
    let h2 = 1.0 / ((d + 1) * (d + 1)) as f64;
    let (rows, cols) = lv.layout.my_block(ctx.nprocs(), ctx.id());
    for i in rows.clone() {
        for j in cols.clone() {
            let s = lv.u.read(ctx, lv.layout.idx(i - 1, j))
                + lv.u.read(ctx, lv.layout.idx(i + 1, j))
                + lv.u.read(ctx, lv.layout.idx(i, j - 1))
                + lv.u.read(ctx, lv.layout.idx(i, j + 1));
            let c = lv.u.read(ctx, lv.layout.idx(i, j));
            let f = lv.f.read(ctx, lv.layout.idx(i, j));
            lv.r.write(ctx, lv.layout.idx(i, j), f - (4.0 * c - s) / h2);
            ctx.compute_flops(8);
        }
    }
    ctx.barrier(bar);
    // Full-weighting restriction: coarse (i,j) ↔ fine (2i,2j).
    let cv = &levels[l + 1];
    let dc = cv.dim;
    let (crows, ccols) = cv.layout.my_block(ctx.nprocs(), ctx.id());
    for i in crows.clone() {
        for j in ccols.clone() {
            let rd = |fi: usize, fj: usize| lv.r.read(ctx, lv.layout.idx(fi, fj));
            let (fi, fj) = (2 * i, 2 * j);
            let v = (4.0 * rd(fi, fj)
                + 2.0 * (rd(fi - 1, fj) + rd(fi + 1, fj) + rd(fi, fj - 1) + rd(fi, fj + 1))
                + rd(fi - 1, fj - 1)
                + rd(fi - 1, fj + 1)
                + rd(fi + 1, fj - 1)
                + rd(fi + 1, fj + 1))
                / 16.0;
            cv.f.write(ctx, cv.layout.idx(i, j), v);
            cv.u.write(ctx, cv.layout.idx(i, j), 0.0);
            ctx.compute_flops(12);
        }
    }
    ctx.barrier(bar);
    vcycle_parallel(ctx, levels, l + 1, bar);
    // Bilinear prolongation: every processor updates its own fine points.
    ctx.phase("prolong");
    let coarse_u = |ctx: &Ctx, i: usize, j: usize| -> f64 {
        if (1..=dc).contains(&i) && (1..=dc).contains(&j) {
            cv.u.read(ctx, cv.layout.idx(i, j))
        } else {
            0.0
        }
    };
    for fi in rows.clone() {
        for fj in cols.clone() {
            let c = match (fi % 2, fj % 2) {
                (0, 0) => coarse_u(ctx, fi / 2, fj / 2),
                (1, 0) => 0.5 * (coarse_u(ctx, fi / 2, fj / 2) + coarse_u(ctx, fi / 2 + 1, fj / 2)),
                (0, 1) => 0.5 * (coarse_u(ctx, fi / 2, fj / 2) + coarse_u(ctx, fi / 2, fj / 2 + 1)),
                _ => {
                    0.25 * (coarse_u(ctx, fi / 2, fj / 2)
                        + coarse_u(ctx, fi / 2 + 1, fj / 2)
                        + coarse_u(ctx, fi / 2, fj / 2 + 1)
                        + coarse_u(ctx, fi / 2 + 1, fj / 2 + 1))
                }
            };
            let fidx = lv.layout.idx(fi, fj);
            let cur = lv.u.read(ctx, fidx);
            lv.u.write(ctx, fidx, cur + c);
            ctx.compute_flops(3);
        }
    }
    ctx.barrier(bar);
    smooth_parallel(ctx, &levels[l], SMOOTH_POST, bar);
}

impl Workload for Ocean {
    fn name(&self) -> String {
        match self.partition {
            OceanPartition::Tiled => "ocean".into(),
            OceanPartition::Rowwise => "ocean/rowwise".into(),
        }
    }

    fn problem(&self) -> String {
        format!("{0}x{0} grid", self.dim + 2)
    }

    fn build(&self, machine: &mut Machine) -> Job {
        let placement = if self.manual_placement {
            Placement::Blocked
        } else {
            Placement::Policy
        };
        let nprocs = machine.nprocs();
        let mut levels = Vec::new();
        let mut d = self.dim;
        for _ in 0..self.levels() {
            let layout = Layout::new(d, self.partition, nprocs);
            let size = (d + 2) * (d + 2);
            let lv = Level {
                dim: d,
                layout,
                u: machine.shared_vec::<f64>(size, placement),
                f: machine.shared_vec::<f64>(size, placement),
                r: machine.shared_vec::<f64>(size, placement),
            };
            levels.push(lv);
            d /= 2;
        }
        // Initialize the fine-level RHS.
        let fine = &levels[0];
        for i in 1..=self.dim {
            for j in 1..=self.dim {
                fine.f
                    .set(fine.layout.idx(i, j), Ocean::rhs_at(i, j, self.dim));
            }
        }
        let bar = machine.barrier();
        let vcycles = self.vcycles;
        let levels = Arc::new(levels);
        let levels2 = Arc::clone(&levels);

        let expected = self.reference();
        let dim = self.dim;
        let out = levels[0].u.clone();
        let out_layout = levels[0].layout.clone();

        let body = move |ctx: &Ctx| {
            for _ in 0..vcycles {
                vcycle_parallel(ctx, &levels2, 0, bar);
            }
        };
        let verify = move || {
            for i in 1..=dim {
                for j in 1..=dim {
                    let got = out.get(out_layout.idx(i, j));
                    let want = expected[i * (dim + 2) + j];
                    if (got - want).abs() > 1e-12 {
                        return Err(format!("ocean mismatch at ({i},{j}): {got} vs {want}"));
                    }
                }
            }
            Ok(())
        };
        Job::new(body, verify)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccnuma_sim::config::MachineConfig;

    fn run(app: &Ocean, np: usize) -> ccnuma_sim::stats::RunStats {
        let mut m = Machine::new(MachineConfig::origin2000_scaled(np, 64 << 10)).unwrap();
        let job = app.build(&mut m);
        let body = job.body;
        let stats = m.run(move |ctx| body(ctx)).unwrap();
        (job.verify)().unwrap();
        stats
    }

    #[test]
    fn multigrid_reduces_residual() {
        let app = Ocean::new(32);
        let u = app.reference();
        let d = app.dim;
        // Residual of the multigrid solution should be far below the
        // initial RHS norm.
        let h2 = 1.0 / ((d + 1) * (d + 1)) as f64;
        let mut res = 0.0f64;
        let mut rhs = 0.0f64;
        for i in 1..=d {
            for j in 1..=d {
                let s = u[(i - 1) * (d + 2) + j]
                    + u[(i + 1) * (d + 2) + j]
                    + u[i * (d + 2) + j - 1]
                    + u[i * (d + 2) + j + 1];
                let f = Ocean::rhs_at(i, j, d);
                res += (f - (4.0 * u[i * (d + 2) + j] - s) / h2).powi(2);
                rhs += f * f;
            }
        }
        assert!(res.sqrt() < 0.05 * rhs.sqrt(), "res {res} rhs {rhs}");
    }

    #[test]
    fn tiled_matches_reference_at_many_proc_counts() {
        for np in [1usize, 4, 6] {
            run(&Ocean::new(16), np);
        }
    }

    #[test]
    fn rowwise_matches_reference() {
        let mut app = Ocean::new(16);
        app.partition = OceanPartition::Rowwise;
        for np in [2usize, 5] {
            run(&app, np);
        }
    }

    #[test]
    fn near_neighbor_communication_is_modest() {
        let stats = run(&Ocean::new(32), 8);
        let remote = stats.total(|p| p.misses_remote_clean + p.misses_remote_dirty);
        let total = stats.total(|p| p.accesses());
        assert!(remote > 0, "must communicate at boundaries");
        assert!(
            (remote as f64) < 0.25 * total as f64,
            "communication should be boundary-only"
        );
    }

    #[test]
    fn proc_grid_factors_reasonably() {
        assert_eq!(proc_grid(1), (1, 1));
        assert_eq!(proc_grid(4), (2, 2));
        assert_eq!(proc_grid(8), (2, 4));
        assert_eq!(proc_grid(6), (2, 3));
        assert_eq!(proc_grid(7), (1, 7));
        assert_eq!(proc_grid(64), (8, 8));
    }

    #[test]
    fn tiled_layout_is_a_bijection() {
        let l = Layout::new(16, OceanPartition::Tiled, 6);
        let side = 18;
        let mut seen = vec![false; side * side];
        for i in 0..side {
            for j in 0..side {
                let k = l.idx(i, j);
                assert!(!seen[k], "index {k} repeated at ({i},{j})");
                seen[k] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }
}
