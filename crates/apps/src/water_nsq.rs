//! Water-Nsquared: O(n²) molecular dynamics with the paper's loop-order
//! restructuring (§5.1).
//!
//! Molecules live in a contiguous array, partitioned into blocks of n/p.
//! Each molecule interacts with the following n/2 molecules (half of all
//! pairs, circularly). The **original** SPLASH-2 loop nest iterates over
//! local molecules in the outer loop, touching all n/2 partner molecules in
//! the inner loop: when those partners exceed the cache, every outer
//! iteration re-misses on *remote* data, generating artifactual
//! communication. The **interchanged** loop order touches each remote
//! partner once and reuses it against all local molecules — temporal
//! locality moves to the remote data, where misses are expensive.
//!
//! Cross-processor force contributions are accumulated in private arrays
//! and combined in a lock-protected, staggered reduction phase, as the
//! SPLASH-2 code does.

use std::sync::Arc;

use ccnuma_sim::ctx::Ctx;
use ccnuma_sim::machine::{Machine, Placement};
use ccnuma_sim::sync::LockRef;

use crate::common::{chunk_range, Job, Workload, XorShift};

/// Loop-nest order of the force phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoopOrder {
    /// Outer loop over local molecules (SPLASH-2 original).
    Original,
    /// Outer loop over partner molecules (the paper's restructuring).
    Interchanged,
}

/// Configuration of one Water-Nsquared run.
#[derive(Debug, Clone)]
pub struct WaterNsq {
    /// Number of molecules (must be even).
    pub n_mols: usize,
    /// Timesteps.
    pub steps: usize,
    /// Loop order variant.
    pub variant: LoopOrder,
    /// Seed for initial positions.
    pub seed: u64,
}

const DT: f64 = 1e-4;
/// Flops charged per pair interaction.
const PAIR_FLOPS: u64 = 20;
// The `aux` array allocated in `build()` models the SPLASH-2 molecule
// record (multipole moments, derivatives, …) read for every partner: its
// 64 B per molecule put the partner working set over cache at the same
// ratio as the original's ~680 B molecules against a 4 MB cache.

impl WaterNsq {
    /// An original-loop-order run of `n_mols` molecules for 1 step.
    ///
    /// # Panics
    ///
    /// Panics if `n_mols` is odd or less than 8.
    pub fn new(n_mols: usize) -> Self {
        assert!(
            n_mols >= 8 && n_mols.is_multiple_of(2),
            "n_mols must be even and ≥ 8"
        );
        WaterNsq {
            n_mols,
            steps: 1,
            variant: LoopOrder::Original,
            seed: 0x4A7E6,
        }
    }

    /// Deterministic initial positions in a unit-density box.
    pub fn initial_positions(&self) -> Vec<[f64; 3]> {
        let mut rng = XorShift::new(self.seed);
        let l = (self.n_mols as f64).cbrt() * 1.2;
        (0..self.n_mols)
            .map(|_| {
                [
                    rng.range_f64(0.0, l),
                    rng.range_f64(0.0, l),
                    rng.range_f64(0.0, l),
                ]
            })
            .collect()
    }

    /// Whether the (i, j) pair with partner offset `k` is computed by the
    /// owner of `i` (avoids double-counting the diametral pair).
    fn owns_pair(i: usize, k: usize, n: usize) -> bool {
        k < n / 2 || i < n / 2
    }

    /// Pairwise force of `a` on `b`'s partner: a softened Lennard-Jones-ish
    /// interaction, deterministic and smooth.
    fn pair_force(a: [f64; 3], b: [f64; 3]) -> [f64; 3] {
        let dx = [a[0] - b[0], a[1] - b[1], a[2] - b[2]];
        let r2 = dx[0] * dx[0] + dx[1] * dx[1] + dx[2] * dx[2] + 0.25;
        let inv = 1.0 / r2;
        let mag = inv * inv * (inv - 0.4);
        [mag * dx[0], mag * dx[1], mag * dx[2]]
    }

    /// Host reference: runs the same algorithm sequentially (original loop
    /// order; the physics is order-insensitive up to FP rounding).
    pub fn reference(&self) -> Vec<[f64; 3]> {
        let n = self.n_mols;
        let mut pos = self.initial_positions();
        let mut vel = vec![[0.0f64; 3]; n];
        for _ in 0..self.steps {
            let mut acc = vec![[0.0f64; 3]; n];
            for i in 0..n {
                for k in 1..=n / 2 {
                    if !Self::owns_pair(i, k, n) {
                        continue;
                    }
                    let j = (i + k) % n;
                    let f = Self::pair_force(pos[i], pos[j]);
                    for d in 0..3 {
                        acc[i][d] += f[d];
                        acc[j][d] -= f[d];
                    }
                }
            }
            for i in 0..n {
                for d in 0..3 {
                    vel[i][d] += acc[i][d] * DT;
                    pos[i][d] += vel[i][d] * DT;
                }
            }
        }
        pos
    }
}

/// Staggered, lock-protected reduction of private force contributions into
/// the shared acceleration array (the SPLASH-2 scheme).
fn reduce_forces(
    ctx: &Ctx,
    acc: &ccnuma_sim::shared::SharedVec<[f64; 3]>,
    local: &[[f64; 3]],
    locks: &[LockRef],
    n: usize,
) {
    let np = ctx.nprocs();
    let p = ctx.id();
    for t in 0..np {
        let b = (p + t) % np;
        let range = chunk_range(n, np, b);
        // Skip blocks we contributed nothing to.
        let touched = range.clone().any(|i| local[i] != [0.0; 3]);
        if !touched {
            continue;
        }
        ctx.lock(locks[b]);
        for i in range {
            if local[i] != [0.0; 3] {
                let mut v = acc.read(ctx, i);
                for d in 0..3 {
                    v[d] += local[i][d];
                }
                acc.write(ctx, i, v);
                ctx.compute_flops(3);
            }
        }
        ctx.unlock(locks[b]);
    }
}

impl Workload for WaterNsq {
    fn name(&self) -> String {
        match self.variant {
            LoopOrder::Original => "water-nsq".into(),
            LoopOrder::Interchanged => "water-nsq/interchanged".into(),
        }
    }

    fn problem(&self) -> String {
        format!("{} molecules", self.n_mols)
    }

    fn build(&self, machine: &mut Machine) -> Job {
        let n = self.n_mols;
        let steps = self.steps;
        let variant = self.variant;
        let np = machine.nprocs();

        let pos = machine.shared_vec::<[f64; 3]>(n, Placement::Blocked);
        let aux = machine.shared_vec::<[f64; 8]>(n, Placement::Blocked);
        let vel = machine.shared_vec::<[f64; 3]>(n, Placement::Blocked);
        let acc = machine.shared_vec::<[f64; 3]>(n, Placement::Blocked);
        let locks = Arc::new(machine.lock_array(np));
        let bar = machine.barrier();
        pos.copy_from_slice(&self.initial_positions());

        let (pos2, vel2, acc2, aux2) = (pos.clone(), vel.clone(), acc.clone(), aux.clone());
        let locks2 = Arc::clone(&locks);
        let expected = self.reference();
        let out = pos.clone();

        let body = move |ctx: &Ctx| {
            let p = ctx.id();
            let npr = ctx.nprocs();
            let my = chunk_range(n, npr, p);
            for _ in 0..steps {
                // Zero my block of the shared accelerations.
                for i in my.clone() {
                    acc2.write(ctx, i, [0.0; 3]);
                }
                ctx.barrier(bar);

                // Force phase into a private accumulation array.
                let mut local = vec![[0.0f64; 3]; n];
                match variant {
                    LoopOrder::Original => {
                        for i in my.clone() {
                            let pi = pos2.read(ctx, i);
                            for k in 1..=n / 2 {
                                if !WaterNsq::owns_pair(i, k, n) {
                                    continue;
                                }
                                let j = (i + k) % n;
                                let pj = pos2.read(ctx, j);
                                let _ = aux2.read(ctx, j);
                                let f = WaterNsq::pair_force(pi, pj);
                                for d in 0..3 {
                                    local[i][d] += f[d];
                                    local[j][d] -= f[d];
                                }
                                ctx.compute_flops(PAIR_FLOPS);
                            }
                        }
                    }
                    LoopOrder::Interchanged => {
                        // Outer loop over partners: each molecule j is read
                        // once and reused against every local i it pairs
                        // with. Partner indices span (my.start, my.end + n/2).
                        for jj in my.start + 1..my.end + n / 2 {
                            let j = jj % n;
                            let pj = pos2.read(ctx, j);
                            let _ = aux2.read(ctx, j);
                            let lo = my.start.max(jj.saturating_sub(n / 2));
                            let hi = my.end.min(jj);
                            for i in lo..hi {
                                let k = jj - i;
                                if !WaterNsq::owns_pair(i, k, n) {
                                    continue;
                                }
                                let pi = pos2.read(ctx, i);
                                let f = WaterNsq::pair_force(pi, pj);
                                for d in 0..3 {
                                    local[i][d] += f[d];
                                    local[j][d] -= f[d];
                                }
                                ctx.compute_flops(PAIR_FLOPS);
                            }
                        }
                    }
                }
                reduce_forces(ctx, &acc2, &local, &locks2, n);
                ctx.barrier(bar);

                // Update my molecules.
                for i in my.clone() {
                    let a = acc2.read(ctx, i);
                    let mut v = vel2.read(ctx, i);
                    let mut x = pos2.read(ctx, i);
                    for d in 0..3 {
                        v[d] += a[d] * DT;
                        x[d] += v[d] * DT;
                    }
                    vel2.write(ctx, i, v);
                    pos2.write(ctx, i, x);
                    ctx.compute_flops(12);
                }
                ctx.barrier(bar);
            }
        };

        let verify = move || {
            for (i, want) in expected.iter().enumerate() {
                let got = out.get(i);
                let want = *want;
                for d in 0..3 {
                    let err = (got[d] - want[d]).abs();
                    let scale = want[d].abs().max(1.0);
                    if err > 1e-9 * scale {
                        return Err(format!(
                            "water-nsq mismatch at mol {i} dim {d}: {} vs {} (err {err})",
                            got[d], want[d]
                        ));
                    }
                }
            }
            Ok(())
        };
        Job::new(body, verify)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccnuma_sim::config::MachineConfig;

    fn run(app: &WaterNsq, np: usize) -> ccnuma_sim::stats::RunStats {
        let mut m = Machine::new(MachineConfig::origin2000_scaled(np, 64 << 10)).unwrap();
        let job = app.build(&mut m);
        let body = job.body;
        let stats = m.run(move |ctx| body(ctx)).unwrap();
        (job.verify)().unwrap();
        stats
    }

    #[test]
    fn pair_ownership_covers_each_pair_once() {
        let n = 16;
        let mut seen = std::collections::HashSet::new();
        for i in 0..n {
            for k in 1..=n / 2 {
                if WaterNsq::owns_pair(i, k, n) {
                    let j = (i + k) % n;
                    let key = (i.min(j), i.max(j));
                    assert!(seen.insert(key), "pair {key:?} computed twice");
                }
            }
        }
        assert_eq!(seen.len(), n * (n - 1) / 2);
    }

    #[test]
    fn original_matches_reference() {
        for np in [1usize, 4, 6] {
            run(&WaterNsq::new(64), np);
        }
    }

    #[test]
    fn interchanged_matches_reference() {
        let mut app = WaterNsq::new(64);
        app.variant = LoopOrder::Interchanged;
        for np in [1usize, 4, 6] {
            run(&app, np);
        }
    }

    #[test]
    fn multi_step_runs_stay_correct() {
        let mut app = WaterNsq::new(32);
        app.steps = 3;
        app.variant = LoopOrder::Interchanged;
        run(&app, 4);
    }

    #[test]
    fn interchange_improves_remote_reuse_when_partners_exceed_cache() {
        // 4096 molecules × 24 B ≈ 96 KB of positions; partners (n/2 ≈ 48 KB)
        // plus locals overflow the 16 KB cache we configure here.
        let mk = |variant| {
            let mut a = WaterNsq::new(4096);
            a.variant = variant;
            a
        };
        let run_small_cache = |app: &WaterNsq| {
            let mut m = Machine::new(MachineConfig::origin2000_scaled(8, 16 << 10)).unwrap();
            let job = app.build(&mut m);
            let body = job.body;
            let stats = m.run(move |ctx| body(ctx)).unwrap();
            (job.verify)().unwrap();
            stats
        };
        let orig = run_small_cache(&mk(LoopOrder::Original));
        let inter = run_small_cache(&mk(LoopOrder::Interchanged));
        let remote = |s: &ccnuma_sim::stats::RunStats| {
            s.total(|p| p.misses_remote_clean + p.misses_remote_dirty)
        };
        assert!(
            remote(&inter) < remote(&orig) / 2,
            "interchange should slash remote misses: {} vs {}",
            remote(&inter),
            remote(&orig)
        );
        assert!(inter.wall_ns < orig.wall_ns);
    }
}
