//! A simple red-black SOR solver, used by §7.1 of the paper to corroborate
//! the Ocean topology-mapping findings on the plainest possible
//! near-neighbour kernel.
//!
//! Rowwise strip partitioning over a single `(dim+2)²` grid; a fixed number
//! of red/black sweeps. Results are bitwise identical across processor
//! counts (red-black updates are order-independent within a colour).

use ccnuma_sim::ctx::Ctx;
use ccnuma_sim::machine::{Machine, Placement};

use crate::common::{chunk_range, Job, Workload};

/// Configuration of one SOR run.
#[derive(Debug, Clone)]
pub struct Sor {
    /// Interior grid dimension (the full grid is `(dim+2)²`).
    pub dim: usize,
    /// Number of full red+black sweeps.
    pub sweeps: usize,
    /// Over-relaxation factor ω.
    pub omega: f64,
    /// `true` = manual placement (strips local), `false` = policy.
    pub manual_placement: bool,
}

impl Sor {
    /// A `dim²` SOR with 4 sweeps and ω = 1.5.
    ///
    /// # Panics
    ///
    /// Panics if `dim < 4`.
    pub fn new(dim: usize) -> Self {
        assert!(dim >= 4);
        Sor {
            dim,
            sweeps: 4,
            omega: 1.5,
            manual_placement: true,
        }
    }

    /// Fixed boundary condition along the top edge.
    fn boundary(j: usize, dim: usize) -> f64 {
        (std::f64::consts::PI * j as f64 / (dim + 1) as f64).sin()
    }

    /// Sequential reference grid after all sweeps.
    pub fn reference(&self) -> Vec<f64> {
        let d = self.dim;
        let side = d + 2;
        let mut u = vec![0.0; side * side];
        for (j, cell) in u.iter_mut().enumerate().take(side) {
            *cell = Self::boundary(j, d);
        }
        for _ in 0..self.sweeps {
            for color in 0..2 {
                for i in 1..=d {
                    for j in 1..=d {
                        if (i + j) % 2 == color {
                            let s = u[(i - 1) * side + j]
                                + u[(i + 1) * side + j]
                                + u[i * side + j - 1]
                                + u[i * side + j + 1];
                            u[i * side + j] =
                                (1.0 - self.omega) * u[i * side + j] + self.omega * 0.25 * s;
                        }
                    }
                }
            }
        }
        u
    }
}

impl Workload for Sor {
    fn name(&self) -> String {
        "sor".into()
    }

    fn problem(&self) -> String {
        format!("{0}x{0} grid", self.dim + 2)
    }

    fn build(&self, machine: &mut Machine) -> Job {
        let d = self.dim;
        let side = d + 2;
        let sweeps = self.sweeps;
        let omega = self.omega;
        let placement = if self.manual_placement {
            Placement::Blocked
        } else {
            Placement::Policy
        };
        let grid = machine.shared_vec::<f64>(side * side, placement);
        let bar = machine.barrier();
        for j in 0..side {
            grid.set(j, Self::boundary(j, d));
        }

        let g2 = grid.clone();
        let expected = self.reference();
        let out = grid.clone();

        let body = move |ctx: &Ctx| {
            let rows = chunk_range(d, ctx.nprocs(), ctx.id());
            for _ in 0..sweeps {
                for color in 0..2 {
                    for i in rows.clone().map(|r| r + 1) {
                        for j in 1..=d {
                            if (i + j) % 2 == color {
                                let s = g2.read(ctx, (i - 1) * side + j)
                                    + g2.read(ctx, (i + 1) * side + j)
                                    + g2.read(ctx, i * side + j - 1)
                                    + g2.read(ctx, i * side + j + 1);
                                let old = g2.read(ctx, i * side + j);
                                g2.write(ctx, i * side + j, (1.0 - omega) * old + omega * 0.25 * s);
                                ctx.compute_flops(26);
                            }
                        }
                    }
                    ctx.barrier(bar);
                }
            }
        };

        let verify = move || {
            for (i, want) in expected.iter().enumerate() {
                let (got, want) = (out.get(i), *want);
                if (got - want).abs() > 1e-12 {
                    return Err(format!("sor mismatch at {i}: {got} vs {want}"));
                }
            }
            Ok(())
        };
        Job::new(body, verify)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccnuma_sim::config::MachineConfig;

    fn run(app: &Sor, np: usize) -> ccnuma_sim::stats::RunStats {
        let mut m = Machine::new(MachineConfig::origin2000_scaled(np, 64 << 10)).unwrap();
        let job = app.build(&mut m);
        let body = job.body;
        let stats = m.run(move |ctx| body(ctx)).unwrap();
        (job.verify)().unwrap();
        stats
    }

    #[test]
    fn matches_reference() {
        for np in [1usize, 3, 8] {
            run(&Sor::new(24), np);
        }
    }

    #[test]
    fn boundary_heat_diffuses_inward() {
        let app = Sor::new(16);
        let u = app.reference();
        let side = 18;
        // After sweeps, the first interior row should be warm.
        let mid = u[side + 9];
        assert!(mid > 0.05, "interior stayed cold: {mid}");
    }

    #[test]
    fn communication_is_strip_boundary_only() {
        let stats = run(&Sor::new(64), 8);
        let remote = stats.total(|p| p.misses_remote_clean + p.misses_remote_dirty);
        let total = stats.total(|p| p.accesses());
        assert!(remote > 0);
        assert!((remote as f64) < 0.2 * total as f64, "{remote}/{total}");
    }
}
