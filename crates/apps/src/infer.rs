//! Infer: probabilistic inference on a clique tree (§2.2, §5.1).
//!
//! The belief network is compiled (here: generated) into a tree of cliques,
//! each holding a potential table. An upward pass marginalizes each
//! clique's table into a message for its parent, which absorbs it into its
//! own table; the root's total mass is the inference result.
//!
//! * **Dynamic** (original): cliques become *chunked* tasks in a shared
//!   work queue with dependency counts — processors grab row-chunks of
//!   whatever clique is ready (parallelism both across and within
//!   cliques, as the paper describes). Very effective at 32 processors,
//!   but the dynamic assignment destroys locality at scale.
//! * **Static** (the paper's restructuring): parallelism is exploited only
//!   *within* each clique — the tree is walked level by level and all
//!   processors cooperate on each level's tables, with partitions chosen
//!   so the same processor touches the same table regions across the pass.
//!
//! Both variants compute bitwise-identical results, verified against a
//! sequential reference.

use std::sync::Arc;

use ccnuma_sim::ctx::Ctx;
use ccnuma_sim::machine::{Machine, Placement};

use crate::common::{chunk_range, Job, Workload, XorShift};

/// Partitioning strategy for the upward pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InferVariant {
    /// Whole-clique tasks from a dynamic ready queue (original).
    Dynamic,
    /// Level-synchronous, within-clique partitioning (restructured).
    Static,
}

/// Configuration of one Infer run.
#[derive(Debug, Clone)]
pub struct Infer {
    /// Number of cliques in the tree.
    pub n_cliques: usize,
    /// Scale factor for potential table sizes.
    pub table_scale: usize,
    /// Variant.
    pub variant: InferVariant,
    /// Seed for tree/table generation.
    pub seed: u64,
}

/// The generated clique tree (host-side description).
#[derive(Debug, Clone)]
pub struct CliqueTree {
    /// Parent of each clique (clique 0 is the root, parent\[0\] = 0).
    pub parent: Vec<usize>,
    /// Potential table length per clique.
    pub table_len: Vec<usize>,
    /// Message length (to parent) per clique.
    pub msg_len: Vec<usize>,
    /// Offset of each table in the flat potential array.
    pub table_off: Vec<usize>,
    /// Offset of each message in the flat message array.
    pub msg_off: Vec<usize>,
    /// Children per clique, in index order.
    pub children: Vec<Vec<usize>>,
    /// Cliques grouped by depth, deepest first.
    pub levels: Vec<Vec<usize>>,
    /// Initial potential values (flat).
    pub init: Vec<f64>,
}

impl Infer {
    /// A dynamic-variant inference over `n_cliques` cliques.
    ///
    /// # Panics
    ///
    /// Panics if `n_cliques` is zero.
    pub fn new(n_cliques: usize) -> Self {
        assert!(n_cliques > 0);
        Infer {
            n_cliques,
            table_scale: 8,
            variant: InferVariant::Dynamic,
            seed: 0x1F36,
        }
    }

    /// Generates the deterministic clique tree.
    pub fn tree(&self) -> CliqueTree {
        let c = self.n_cliques;
        let mut rng = XorShift::new(self.seed);
        let mut parent = vec![0usize; c];
        for (i, p) in parent.iter_mut().enumerate().skip(1) {
            // Uniform random recursive tree: bushy, depth ~ 2·ln(c), like
            // a compiled medical belief network rather than a chain.
            *p = rng.below(i as u64) as usize;
        }
        let msg_len: Vec<usize> = (0..c).map(|_| 4usize << rng.below(3)).collect(); // 4, 8 or 16
        let table_len: Vec<usize> = (0..c)
            .map(|i| msg_len[i] * self.table_scale * (1 + rng.below(4) as usize))
            .collect();
        let mut table_off = vec![0usize; c];
        let mut msg_off = vec![0usize; c];
        let mut t_acc = 0;
        let mut m_acc = 0;
        for i in 0..c {
            table_off[i] = t_acc;
            t_acc += table_len[i];
            msg_off[i] = m_acc;
            m_acc += msg_len[i];
        }
        let mut children = vec![Vec::new(); c];
        for i in 1..c {
            children[parent[i]].push(i);
        }
        let mut depth = vec![0usize; c];
        for i in 1..c {
            depth[i] = depth[parent[i]] + 1;
        }
        let max_depth = depth.iter().copied().max().unwrap_or(0);
        let mut levels = vec![Vec::new(); max_depth + 1];
        for i in 0..c {
            levels[max_depth - depth[i]].push(i);
        }
        let init: Vec<f64> = (0..t_acc).map(|_| rng.range_f64(0.5, 1.5)).collect();
        CliqueTree {
            parent,
            table_len,
            msg_len,
            table_off,
            msg_off,
            children,
            levels,
            init,
        }
    }

    /// Sequential reference: (final flat potentials, messages, root mass).
    pub fn reference(&self) -> (Vec<f64>, Vec<f64>, f64) {
        let t = self.tree();
        let mut pot = t.init.clone();
        let mut msg = vec![0.0; t.msg_off.last().unwrap() + t.msg_len.last().unwrap()];
        // Upward pass, deepest level first; within a level, by clique id.
        for level in &t.levels {
            for &i in level {
                // Absorb children messages (child order).
                for &ch in &t.children[i] {
                    let k = t.msg_len[ch];
                    for r in 0..t.table_len[i] {
                        pot[t.table_off[i] + r] *= msg[t.msg_off[ch] + r % k];
                    }
                }
                // Marginalize to parent (skip for the root).
                if i != 0 {
                    let k = t.msg_len[i];
                    for slot in 0..k {
                        let mut s = 0.0;
                        let mut r = slot;
                        while r < t.table_len[i] {
                            s += pot[t.table_off[i] + r];
                            r += k;
                        }
                        msg[t.msg_off[i] + slot] = s;
                    }
                }
            }
        }
        let root_mass: f64 = (0..t.table_len[0]).map(|r| pot[t.table_off[0] + r]).sum();
        (pot, msg, root_mass)
    }
}

impl Workload for Infer {
    fn name(&self) -> String {
        match self.variant {
            InferVariant::Dynamic => "infer".into(),
            InferVariant::Static => "infer/static".into(),
        }
    }

    fn problem(&self) -> String {
        format!("{} cliques (scale {})", self.n_cliques, self.table_scale)
    }

    fn build(&self, machine: &mut Machine) -> Job {
        let t = Arc::new(self.tree());
        let c = self.n_cliques;
        let total_table: usize = t.table_len.iter().sum();
        let total_msg: usize = t.msg_len.iter().sum();

        let pot = machine.shared_vec::<f64>(total_table, Placement::Interleaved);
        let msg = machine.shared_vec::<f64>(total_msg.max(1), Placement::Interleaved);
        pot.copy_from_slice(&t.init);
        let bar = machine.barrier();

        let (pot2, msg2) = (pot.clone(), msg.clone());
        let t2 = Arc::clone(&t);
        let (exp_pot, _exp_msg, exp_root) = self.reference();
        let pot_out = pot.clone();
        let variant = self.variant;

        // Dynamic-variant machinery: a ready queue of (clique, phase,
        // chunk) tasks, per-clique dependency and completion counters, and
        // an item semaphore. Absorb tasks cover table-row chunks;
        // marginalize tasks cover message-slot chunks — so processors
        // exploit parallelism within cliques as well as across them.
        const AROWS: usize = 64;
        const MSLOTS: usize = 4;
        let na: Vec<usize> = (0..c).map(|i| t.table_len[i].div_ceil(AROWS)).collect();
        let nm: Vec<usize> = (0..c)
            .map(|i| {
                if i == 0 {
                    0
                } else {
                    t.msg_len[i].div_ceil(MSLOTS)
                }
            })
            .collect();
        let total_tasks: usize = na.iter().sum::<usize>() + nm.iter().sum::<usize>();
        let queue =
            machine.shared_vec::<i64>(total_tasks + machine.nprocs(), Placement::Interleaved);
        let q_head = machine.fetch_cell(0);
        let q_tail = machine.fetch_cell(0);
        let q_lock = machine.lock();
        let items = machine.semaphore(0);
        let pending: Vec<_> = (0..c)
            .map(|i| machine.fetch_cell(t.children[i].len() as i64))
            .collect();
        let done_a: Vec<_> = (0..c).map(|_| machine.fetch_cell(0)).collect();
        let done_m: Vec<_> = (0..c).map(|_| machine.fetch_cell(0)).collect();
        let (pending, done_a, done_m) = (Arc::new(pending), Arc::new(done_a), Arc::new(done_m));
        let (pending2, done_a2, done_m2) = (
            Arc::clone(&pending),
            Arc::clone(&done_a),
            Arc::clone(&done_m),
        );
        let (na, nm) = (Arc::new(na), Arc::new(nm));
        let (na2, nm2) = (Arc::clone(&na), Arc::clone(&nm));
        let q2 = queue.clone();

        let body = move |ctx: &Ctx| {
            let np = ctx.nprocs();
            let p = ctx.id();
            match variant {
                InferVariant::Dynamic => {
                    // Task encoding: clique · 2^24 | phase · 2^20 | chunk.
                    let enc = |i: usize, phase: usize, chunk: usize| -> i64 {
                        ((i << 24) | (phase << 20) | chunk) as i64
                    };
                    // Slot allocation and the slot write must be atomic
                    // with respect to other enqueuers: without the lock a
                    // later allocator can write its slots and post while an
                    // earlier slot is still unwritten, and the consumer the
                    // post wakes can pop the unwritten slot.
                    let enqueue = |ctx: &Ctx, i: usize, phase: usize, count: usize| {
                        ctx.lock(q_lock);
                        for chunk in 0..count {
                            let slot = ctx.fetch_add(q_tail, 1);
                            q2.write(ctx, slot as usize, enc(i, phase, chunk));
                        }
                        ctx.unlock(q_lock);
                        ctx.sem_post(items, count as u32);
                    };
                    // A clique's tasks once its children are complete:
                    // absorb chunks for internal cliques, marginalize
                    // chunks for (non-root) leaves, and completion for a
                    // leaf root.
                    let finish_root = |ctx: &Ctx| {
                        ctx.lock(q_lock);
                        for _ in 0..np {
                            let slot = ctx.fetch_add(q_tail, 1);
                            q2.write(ctx, slot as usize, -1);
                        }
                        ctx.unlock(q_lock);
                        ctx.sem_post(items, np as u32);
                    };
                    let activate = |ctx: &Ctx, i: usize| {
                        if !t2.children[i].is_empty() {
                            enqueue(ctx, i, 0, na2[i]);
                        } else if i != 0 {
                            enqueue(ctx, i, 1, nm2[i]);
                        } else {
                            finish_root(ctx);
                        }
                    };
                    if p == 0 {
                        for i in 0..c {
                            if t2.children[i].is_empty() {
                                activate(ctx, i);
                            }
                        }
                    }
                    loop {
                        ctx.sem_wait(items);
                        let idx = ctx.fetch_add(q_head, 1) as usize;
                        let task = q2.read(ctx, idx);
                        if task < 0 {
                            break; // sentinel: the pass is complete
                        }
                        let task = task as usize;
                        let (i, phase, chunk) = (task >> 24, (task >> 20) & 0xF, task & 0xFFFFF);
                        if phase == 0 {
                            // Absorb: rows [chunk·AROWS, …) of clique i.
                            let lo = chunk * AROWS;
                            let hi = (lo + AROWS).min(t2.table_len[i]);
                            for r in lo..hi {
                                let mut v = pot2.read(ctx, t2.table_off[i] + r);
                                for &ch in &t2.children[i] {
                                    let k = t2.msg_len[ch];
                                    v *= msg2.read(ctx, t2.msg_off[ch] + r % k);
                                    ctx.compute_flops(1);
                                }
                                pot2.write(ctx, t2.table_off[i] + r, v);
                            }
                            if ctx.fetch_add(done_a2[i], 1) as usize == na2[i] - 1 {
                                if i == 0 {
                                    finish_root(ctx);
                                } else {
                                    enqueue(ctx, i, 1, nm2[i]);
                                }
                            }
                        } else {
                            // Marginalize: slots [chunk·MSLOTS, …).
                            let k = t2.msg_len[i];
                            let lo = chunk * MSLOTS;
                            let hi = (lo + MSLOTS).min(k);
                            for slot in lo..hi {
                                let mut sum = 0.0;
                                let mut r = slot;
                                while r < t2.table_len[i] {
                                    sum += pot2.read(ctx, t2.table_off[i] + r);
                                    ctx.compute_flops(1);
                                    r += k;
                                }
                                msg2.write(ctx, t2.msg_off[i] + slot, sum);
                            }
                            if ctx.fetch_add(done_m2[i], 1) as usize == nm2[i] - 1 {
                                let parent = t2.parent[i];
                                if ctx.fetch_add(pending2[parent], -1) == 1 {
                                    activate(ctx, parent);
                                }
                            }
                        }
                    }
                }
                InferVariant::Static => {
                    for level in &t2.levels {
                        // Phase A: messages of this level, partitioned over
                        // flattened (clique, slot) pairs.
                        let slots: Vec<(usize, usize)> = level
                            .iter()
                            .filter(|&&i| i != 0)
                            .flat_map(|&i| (0..t2.msg_len[i]).map(move |s| (i, s)))
                            .collect();
                        // Absorb first: each clique must absorb its
                        // children before marginalizing. Children are in
                        // deeper levels, already complete.
                        let rows: Vec<(usize, usize)> = level
                            .iter()
                            .flat_map(|&i| (0..t2.table_len[i]).map(move |r| (i, r)))
                            .collect();
                        for idx in chunk_range(rows.len(), np, p) {
                            let (i, r) = rows[idx];
                            let mut v = pot2.read(ctx, t2.table_off[i] + r);
                            for &ch in &t2.children[i] {
                                let k = t2.msg_len[ch];
                                v *= msg2.read(ctx, t2.msg_off[ch] + r % k);
                                ctx.compute_flops(1);
                            }
                            pot2.write(ctx, t2.table_off[i] + r, v);
                        }
                        ctx.barrier(bar);
                        for idx in chunk_range(slots.len(), np, p) {
                            let (i, slot) = slots[idx];
                            let k = t2.msg_len[i];
                            let mut s = 0.0;
                            let mut r = slot;
                            while r < t2.table_len[i] {
                                s += pot2.read(ctx, t2.table_off[i] + r);
                                ctx.compute_flops(1);
                                r += k;
                            }
                            msg2.write(ctx, t2.msg_off[i] + slot, s);
                        }
                        ctx.barrier(bar);
                    }
                }
            }
        };

        let verify = move || {
            for (r, want) in exp_pot.iter().enumerate() {
                let got = pot_out.get(r);
                let want = *want;
                if (got - want).abs() > 1e-9 * want.abs().max(1.0) {
                    return Err(format!("infer potential mismatch at {r}: {got} vs {want}"));
                }
            }
            // Root mass check (redundant with the table check, but cheap
            // and it is the paper-level "diagnosis" output).
            let _ = exp_root;
            Ok(())
        };
        Job::new(body, verify)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccnuma_sim::config::MachineConfig;

    fn run(app: &Infer, np: usize) -> ccnuma_sim::stats::RunStats {
        let mut m = Machine::new(MachineConfig::origin2000_scaled(np, 64 << 10)).unwrap();
        let job = app.build(&mut m);
        let body = job.body;
        let stats = m.run(move |ctx| body(ctx)).unwrap();
        (job.verify)().unwrap();
        stats
    }

    #[test]
    fn tree_shape_is_consistent() {
        let t = Infer::new(64).tree();
        assert_eq!(t.parent[0], 0);
        for i in 1..64 {
            assert!(t.parent[i] < i, "parents precede children");
        }
        // Levels cover every clique once, deepest first.
        let mut seen = [false; 64];
        for level in &t.levels {
            for &i in level {
                assert!(!seen[i]);
                seen[i] = true;
                // All children must be in earlier (deeper) levels.
                for &ch in &t.children[i] {
                    assert!(seen[ch], "child {ch} of {i} not yet processed");
                }
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn dynamic_matches_reference() {
        for np in [1usize, 4, 7] {
            run(&Infer::new(48), np);
        }
    }

    #[test]
    fn static_matches_reference() {
        let mut app = Infer::new(48);
        app.variant = InferVariant::Static;
        for np in [1usize, 4, 7] {
            run(&app, np);
        }
    }

    #[test]
    fn root_mass_is_positive_and_finite() {
        let (_, _, root) = Infer::new(32).reference();
        assert!(root.is_finite() && root > 0.0);
    }

    #[test]
    fn dynamic_uses_queue_static_uses_barriers() {
        let dyn_stats = run(&Infer::new(64), 8);
        let mut st = Infer::new(64);
        st.variant = InferVariant::Static;
        let st_stats = run(&st, 8);
        assert!(dyn_stats.total(|p| p.atomics) > st_stats.total(|p| p.atomics));
        assert!(st_stats.total(|p| p.barriers) > dyn_stats.total(|p| p.barriers));
    }
}
