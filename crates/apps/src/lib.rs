//! # splash-apps — the application suite of the ISCA'99 scaling study
//!
//! Rust reimplementations of the workloads used by Jiang & Singh (ISCA
//! 1999), in their *original* optimized forms and the paper's *restructured*
//! forms, written against the [`ccnuma_sim`] shared-address-space API. Each
//! application computes real, verifiable results.

#![warn(missing_docs)]

pub mod barnes;
pub mod common;
pub mod fft;
pub mod infer;
pub mod ocean;
pub mod protein;
pub mod radix;
pub mod raytrace;
pub mod sample_sort;
pub mod shearwarp;
pub mod sor;
pub mod volrend;
pub mod water_nsq;
pub mod water_sp;
