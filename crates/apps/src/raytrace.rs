//! Raytrace: a sphere-scene ray tracer with a uniform-grid acceleration
//! structure and dynamically scheduled pixel tiles.
//!
//! The scene (spheres plus the 3-D grid of per-cell sphere lists) is
//! read-shared by all processors; large scenes give the "large and somewhat
//! diffuse working set of mostly remote data" the paper observes for
//! Raytrace (Figure 8). Tiles are claimed from a shared counter (dynamic
//! self-scheduling, standing in for SPLASH-2's task stealing).
//!
//! The original version takes a global **statistics lock** on every ray to
//! bump shared counters; the restructured version keeps statistics in
//! private counters and merges them once at the end. On SVM removing that
//! lock was worth 23×; on the Origin about 4% (§5.2) — the experiment
//! harness reproduces that contrast.

use ccnuma_sim::ctx::Ctx;
use ccnuma_sim::machine::{Machine, Placement};

use crate::common::{Job, Workload, XorShift};

/// Configuration of one Raytrace run.
#[derive(Debug, Clone)]
pub struct Raytrace {
    /// Image is `image_side × image_side` pixels.
    pub image_side: usize,
    /// Number of spheres in the scene.
    pub n_spheres: usize,
    /// Grid resolution per axis for the acceleration structure.
    pub grid_side: usize,
    /// Pixel tile edge for dynamic scheduling.
    pub tile: usize,
    /// Take the global statistics lock on every ray (original version).
    pub per_ray_stats_lock: bool,
    /// Seed for scene generation.
    pub seed: u64,
}

const WORLD: f64 = 16.0;
/// Flops charged per sphere intersection test.
const ISECT_FLOPS: u64 = 20;
/// Flops charged per shading evaluation.
const SHADE_FLOPS: u64 = 25;

#[derive(Debug, Clone, Copy)]
struct Hit {
    t: f64,
    sphere: usize,
}

/// Host-side scene representation (also used to build the shared copies).
#[derive(Debug, Clone)]
pub struct Scene {
    spheres: Vec<[f64; 4]>, // x, y, z, radius
    shades: Vec<f64>,       // per-sphere albedo
    grid_side: usize,
    cell_start: Vec<usize>,
    items: Vec<usize>,
}

impl Scene {
    fn generate(n_spheres: usize, grid_side: usize, seed: u64) -> Scene {
        let mut rng = XorShift::new(seed);
        let spheres: Vec<[f64; 4]> = (0..n_spheres)
            .map(|_| {
                [
                    rng.range_f64(1.0, WORLD - 1.0),
                    rng.range_f64(1.0, WORLD - 1.0),
                    rng.range_f64(1.0, WORLD - 1.0),
                    rng.range_f64(0.2, 0.9),
                ]
            })
            .collect();
        let shades: Vec<f64> = (0..n_spheres).map(|_| rng.range_f64(0.2, 1.0)).collect();
        // Bin spheres into all grid cells their bounding box overlaps.
        let g = grid_side;
        let cell_len = WORLD / g as f64;
        let ncells = g * g * g;
        let mut lists: Vec<Vec<usize>> = vec![Vec::new(); ncells];
        for (s, sp) in spheres.iter().enumerate() {
            let lo = |d: usize| (((sp[d] - sp[3]) / cell_len).floor().max(0.0) as usize).min(g - 1);
            let hi = |d: usize| (((sp[d] + sp[3]) / cell_len).floor().max(0.0) as usize).min(g - 1);
            for z in lo(2)..=hi(2) {
                for y in lo(1)..=hi(1) {
                    for x in lo(0)..=hi(0) {
                        lists[(z * g + y) * g + x].push(s);
                    }
                }
            }
        }
        let mut cell_start = Vec::with_capacity(ncells + 1);
        let mut items = Vec::new();
        cell_start.push(0);
        for l in &lists {
            items.extend_from_slice(l);
            cell_start.push(items.len());
        }
        Scene {
            spheres,
            shades,
            grid_side,
            cell_start,
            items,
        }
    }

    /// Traces one primary ray from pixel (px, py), reading sphere and grid
    /// data through the supplied closures (timed in the parallel version).
    /// Returns the pixel intensity. `depth` counts remaining bounces.
    #[allow(clippy::too_many_arguments)]
    fn trace(
        &self,
        origin: [f64; 3],
        dir: [f64; 3],
        depth: u32,
        read_sphere: &mut dyn FnMut(usize) -> [f64; 4],
        read_shade: &mut dyn FnMut(usize) -> f64,
        read_cell: &mut dyn FnMut(usize) -> (usize, usize),
        read_item: &mut dyn FnMut(usize) -> usize,
        work: &mut u64,
    ) -> f64 {
        let g = self.grid_side;
        let cell_len = WORLD / g as f64;
        // 3-D DDA through the grid.
        let mut cell = [0usize; 3];
        for d in 0..3 {
            cell[d] = ((origin[d] / cell_len).floor().max(0.0) as usize).min(g - 1);
        }
        let step: Vec<i64> = dir.iter().map(|&v| if v >= 0.0 { 1 } else { -1 }).collect();
        let mut tmax = [f64::INFINITY; 3];
        let mut tdelta = [f64::INFINITY; 3];
        for d in 0..3 {
            if dir[d].abs() > 1e-12 {
                let next = if dir[d] >= 0.0 {
                    (cell[d] as f64 + 1.0) * cell_len
                } else {
                    cell[d] as f64 * cell_len
                };
                tmax[d] = (next - origin[d]) / dir[d];
                tdelta[d] = cell_len / dir[d].abs();
            }
        }
        let mut best: Option<Hit> = None;
        loop {
            let c = (cell[2] * g + cell[1]) * g + cell[0];
            let (start, end) = read_cell(c);
            for t in start..end {
                let s = read_item(t);
                let sp = read_sphere(s);
                *work += ISECT_FLOPS;
                if let Some(t_hit) = ray_sphere(origin, dir, sp) {
                    if best.map(|b| t_hit < b.t).unwrap_or(true) {
                        best = Some(Hit {
                            t: t_hit,
                            sphere: s,
                        });
                    }
                }
            }
            // Stop when a hit lies within the current cell's exit distance.
            let exit = tmax[0].min(tmax[1]).min(tmax[2]);
            if let Some(b) = best {
                if b.t <= exit {
                    break;
                }
            }
            // Advance to the next cell.
            let axis = (0..3).min_by(|&a, &b| tmax[a].total_cmp(&tmax[b])).unwrap();
            let next = cell[axis] as i64 + step[axis];
            if next < 0 || next >= g as i64 {
                break;
            }
            cell[axis] = next as usize;
            tmax[axis] += tdelta[axis];
        }
        let Some(hit) = best else { return 0.05 }; // background
        let sp = read_sphere(hit.sphere);
        let albedo = read_shade(hit.sphere);
        *work += SHADE_FLOPS;
        let p = [
            origin[0] + dir[0] * hit.t,
            origin[1] + dir[1] * hit.t,
            origin[2] + dir[2] * hit.t,
        ];
        let nrm = normalize([p[0] - sp[0], p[1] - sp[1], p[2] - sp[2]]);
        let light = normalize([0.4, 0.7, -0.6]);
        let diff = (nrm[0] * light[0] + nrm[1] * light[1] + nrm[2] * light[2]).max(0.0);
        let mut shade = albedo * (0.15 + 0.85 * diff);
        if depth > 0 {
            // One reflection bounce.
            let d_dot_n = dir[0] * nrm[0] + dir[1] * nrm[1] + dir[2] * nrm[2];
            let rdir = normalize([
                dir[0] - 2.0 * d_dot_n * nrm[0],
                dir[1] - 2.0 * d_dot_n * nrm[1],
                dir[2] - 2.0 * d_dot_n * nrm[2],
            ]);
            let rorig = [
                p[0] + rdir[0] * 1e-6,
                p[1] + rdir[1] * 1e-6,
                p[2] + rdir[2] * 1e-6,
            ];
            let refl = self.trace(
                rorig,
                rdir,
                depth - 1,
                read_sphere,
                read_shade,
                read_cell,
                read_item,
                work,
            );
            shade = 0.8 * shade + 0.2 * refl;
        }
        shade
    }
}

fn normalize(v: [f64; 3]) -> [f64; 3] {
    let n = (v[0] * v[0] + v[1] * v[1] + v[2] * v[2]).sqrt().max(1e-12);
    [v[0] / n, v[1] / n, v[2] / n]
}

fn ray_sphere(o: [f64; 3], d: [f64; 3], sp: [f64; 4]) -> Option<f64> {
    let oc = [o[0] - sp[0], o[1] - sp[1], o[2] - sp[2]];
    let b = oc[0] * d[0] + oc[1] * d[1] + oc[2] * d[2];
    let c = oc[0] * oc[0] + oc[1] * oc[1] + oc[2] * oc[2] - sp[3] * sp[3];
    let disc = b * b - c;
    if disc < 0.0 {
        return None;
    }
    let t = -b - disc.sqrt();
    (t > 1e-9).then_some(t)
}

/// Ray origin/direction for pixel (px, py): orthographic, along +z.
fn primary_ray(px: usize, py: usize, side: usize) -> ([f64; 3], [f64; 3]) {
    let u = (px as f64 + 0.5) / side as f64 * (WORLD - 2.0) + 1.0;
    let v = (py as f64 + 0.5) / side as f64 * (WORLD - 2.0) + 1.0;
    ([u, v, 1e-3], [0.0, 0.0, 1.0])
}

impl Raytrace {
    /// A tracer of `image_side²` pixels over a generated scene whose sphere
    /// count scales with the image area.
    ///
    /// # Panics
    ///
    /// Panics if `image_side < 8`.
    pub fn new(image_side: usize) -> Self {
        assert!(image_side >= 8);
        Raytrace {
            image_side,
            n_spheres: (image_side * image_side / 16).max(32),
            grid_side: 8,
            tile: (image_side / 16).clamp(2, 8),
            per_ray_stats_lock: false,
            seed: 0xbea3,
        }
    }

    /// The scene this configuration generates.
    pub fn scene(&self) -> Scene {
        Scene::generate(self.n_spheres, self.grid_side, self.seed)
    }

    /// Sequential reference image.
    pub fn reference(&self) -> Vec<f64> {
        let scene = self.scene();
        let side = self.image_side;
        let mut img = vec![0.0; side * side];
        let mut work = 0u64;
        for py in 0..side {
            for px in 0..side {
                let (o, d) = primary_ray(px, py, side);
                img[py * side + px] = scene.trace(
                    o,
                    d,
                    1,
                    &mut |s| scene.spheres[s],
                    &mut |s| scene.shades[s],
                    &mut |c| (scene.cell_start[c], scene.cell_start[c + 1]),
                    &mut |t| scene.items[t],
                    &mut work,
                );
            }
        }
        img
    }
}

impl Workload for Raytrace {
    fn name(&self) -> String {
        if self.per_ray_stats_lock {
            "raytrace/statslock".into()
        } else {
            "raytrace".into()
        }
    }

    fn problem(&self) -> String {
        format!(
            "{0}x{0} image, {1} spheres",
            self.image_side, self.n_spheres
        )
    }

    fn build(&self, machine: &mut Machine) -> Job {
        let scene = self.scene();
        let side = self.image_side;
        let tile = self.tile;
        let use_stats_lock = self.per_ray_stats_lock;

        // Shared copies of the scene (read-only; interleaved homes).
        let spheres = machine.shared_vec::<[f64; 4]>(scene.spheres.len(), Placement::Interleaved);
        let shades = machine.shared_vec::<f64>(scene.shades.len(), Placement::Interleaved);
        let cells = machine.shared_vec::<u64>(scene.cell_start.len(), Placement::Interleaved);
        let items = machine.shared_vec::<u64>(scene.items.len().max(1), Placement::Interleaved);
        spheres.copy_from_slice(&scene.spheres);
        shades.copy_from_slice(&scene.shades);
        cells.copy_from_slice(
            &scene
                .cell_start
                .iter()
                .map(|&v| v as u64)
                .collect::<Vec<_>>(),
        );
        if !scene.items.is_empty() {
            items.copy_from_slice(&scene.items.iter().map(|&v| v as u64).collect::<Vec<_>>());
        }
        let image = machine.shared_vec::<f64>(side * side, Placement::Blocked);
        let next_tile = machine.fetch_cell(0);
        let stats_lock = machine.lock();
        let rays_traced = machine.shared_vec::<u64>(1, Placement::Node(0));

        let tiles_per_row = side.div_ceil(tile);
        let n_tiles = tiles_per_row * tiles_per_row;

        let (sp2, sh2, ce2, it2, im2, rt2) = (
            spheres.clone(),
            shades.clone(),
            cells.clone(),
            items.clone(),
            image.clone(),
            rays_traced.clone(),
        );
        let scene2 = std::sync::Arc::new(scene);
        let expected = self.reference();
        let out = image.clone();
        let rays_out = rays_traced.clone();

        let body = move |ctx: &Ctx| {
            let mut local_rays = 0u64;
            loop {
                let t = ctx.fetch_add(next_tile, 1);
                if t as usize >= n_tiles {
                    break;
                }
                let ty = t as usize / tiles_per_row;
                let tx = t as usize % tiles_per_row;
                for py in ty * tile..((ty + 1) * tile).min(side) {
                    for px in tx * tile..((tx + 1) * tile).min(side) {
                        let (o, d) = primary_ray(px, py, side);
                        let mut work = 0u64;
                        let v = scene2.trace(
                            o,
                            d,
                            1,
                            &mut |s| sp2.read(ctx, s),
                            &mut |s| sh2.read(ctx, s),
                            &mut |c| (ce2.read(ctx, c) as usize, ce2.read(ctx, c + 1) as usize),
                            &mut |t| it2.read(ctx, t) as usize,
                            &mut work,
                        );
                        ctx.compute_flops(work);
                        im2.write(ctx, py * side + px, v);
                        if use_stats_lock {
                            // The original's per-ray statistics lock.
                            ctx.lock(stats_lock);
                            rt2.update(ctx, 0, |r| r + 1);
                            ctx.unlock(stats_lock);
                        } else {
                            local_rays += 1;
                        }
                    }
                }
            }
            if !use_stats_lock && local_rays > 0 {
                ctx.lock(stats_lock);
                rt2.update(ctx, 0, |r| r + local_rays);
                ctx.unlock(stats_lock);
            }
        };

        let verify = move || {
            if rays_out.get(0) != (side * side) as u64 {
                return Err(format!(
                    "ray count {} != {} pixels",
                    rays_out.get(0),
                    side * side
                ));
            }
            for (i, want) in expected.iter().enumerate() {
                let (got, want) = (out.get(i), *want);
                if (got - want).abs() > 1e-12 {
                    return Err(format!("raytrace mismatch at pixel {i}: {got} vs {want}"));
                }
            }
            Ok(())
        };
        Job::new(body, verify)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccnuma_sim::config::MachineConfig;

    fn run(app: &Raytrace, np: usize) -> ccnuma_sim::stats::RunStats {
        let mut m = Machine::new(MachineConfig::origin2000_scaled(np, 64 << 10)).unwrap();
        let job = app.build(&mut m);
        let body = job.body;
        let stats = m.run(move |ctx| body(ctx)).unwrap();
        (job.verify)().unwrap();
        stats
    }

    #[test]
    fn image_matches_reference() {
        for np in [1usize, 4, 6] {
            run(&Raytrace::new(24), np);
        }
    }

    #[test]
    fn stats_lock_variant_matches_and_synchronizes_more() {
        let mut locked = Raytrace::new(24);
        locked.per_ray_stats_lock = true;
        let plain = Raytrace::new(24);
        let sl = run(&locked, 8);
        let sp = run(&plain, 8);
        assert!(
            sl.total(|p| p.lock_acquires) > sp.total(|p| p.lock_acquires) * 10,
            "per-ray locking should dominate acquires: {} vs {}",
            sl.total(|p| p.lock_acquires),
            sp.total(|p| p.lock_acquires)
        );
    }

    #[test]
    fn reference_image_has_content() {
        let app = Raytrace::new(24);
        let img = app.reference();
        let hits = img.iter().filter(|&&v| v > 0.06).count();
        assert!(hits > img.len() / 10, "scene should cover pixels: {hits}");
        let distinct: std::collections::BTreeSet<u64> =
            img.iter().map(|v| (v * 1e6) as u64).collect();
        assert!(distinct.len() > 16, "shading should vary");
    }

    #[test]
    fn dynamic_tiles_balance_load() {
        let stats = run(&Raytrace::new(32), 8);
        let busys: Vec<u64> = stats.procs.iter().map(|p| p.busy_ns).collect();
        let max = *busys.iter().max().unwrap() as f64;
        let min = *busys.iter().min().unwrap() as f64;
        assert!(
            min > 0.3 * max,
            "stealing should balance busy time: {busys:?}"
        );
    }
}
