//! The experiment catalog: which workloads, at which (scaled) problem
//! sizes, reproduce each table and figure of the paper.
//!
//! Problem sizes are geometrically scaled together with the machine's cache
//! (64 KB instead of 4 MB, a 1/64 factor) so that working-set/cache ratios
//! land in the paper's regimes; [`Scale::Quick`] shrinks everything further
//! for smoke-testing the full pipeline in seconds.

use splash_apps::barnes::{Barnes, TreeBuild};
use splash_apps::common::Workload;
use splash_apps::fft::Fft;
use splash_apps::infer::{Infer, InferVariant};
use splash_apps::ocean::Ocean;
use splash_apps::protein::Protein;
use splash_apps::radix::Radix;
use splash_apps::raytrace::Raytrace;
use splash_apps::sample_sort::SampleSort;
use splash_apps::shearwarp::{ShearWarp, ShearWarpVariant};
use splash_apps::sor::Sor;
use splash_apps::volrend::Volrend;
use splash_apps::water_nsq::{LoopOrder, WaterNsq};
use splash_apps::water_sp::WaterSpatial;

/// Experiment scale: `Full` reproduces the paper's machine sizes (32–128
/// processors); `Quick` is a fast smoke configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Seconds-long smoke runs on small machines.
    Quick,
    /// The paper's processor counts on scaled problem sizes.
    Full,
}

impl Scale {
    /// Processor counts measured at this scale (the paper's Figure 2 axis).
    pub fn procs(self) -> &'static [usize] {
        match self {
            Scale::Quick => &[2, 4, 8],
            Scale::Full => &[32, 64, 96, 128],
        }
    }

    /// The largest processor count at this scale ("the 128-processor
    /// machine").
    pub fn max_procs(self) -> usize {
        *self.procs().last().unwrap()
    }

    /// Per-processor L2 size of the scaled machine.
    pub fn cache_bytes(self) -> usize {
        match self {
            Scale::Quick => 16 << 10,
            Scale::Full => 64 << 10,
        }
    }

    fn pick(self, quick: usize, full: usize) -> usize {
        match self {
            Scale::Quick => quick,
            Scale::Full => full,
        }
    }
}

/// The applications of Table 2, by a stable identifier.
pub const APP_IDS: &[&str] = &[
    "barnes",
    "infer",
    "fft",
    "ocean",
    "protein",
    "radix",
    "raytrace",
    "shearwarp",
    "volrend",
    "water-nsq",
    "water-sp",
];

/// The "basic problem size" workload for an application (Table 2's rows,
/// scaled).
///
/// # Panics
///
/// Panics on an unknown id (see [`APP_IDS`]).
pub fn basic(id: &str, s: Scale) -> Box<dyn Workload> {
    match id {
        "barnes" => Box::new(Barnes::new(s.pick(256, 1024))),
        "infer" => {
            let mut a = Infer::new(s.pick(32, 192));
            a.table_scale = s.pick(8, 16);
            Box::new(a)
        }
        "fft" => Box::new(Fft::new(s.pick(10, 14) as u32)),
        "ocean" => Box::new(Ocean::new(s.pick(32, 128))),
        "protein" => Box::new(Protein::new(s.pick(48, 192))),
        "radix" => Box::new(Radix::new(s.pick(8 << 10, 128 << 10))),
        "raytrace" => Box::new(Raytrace::new(s.pick(24, 64))),
        "shearwarp" => Box::new(ShearWarp::new(s.pick(24, 48))),
        "volrend" => Box::new(Volrend::new(s.pick(24, 48))),
        "water-nsq" => Box::new(WaterNsq::new(s.pick(128, 512))),
        "water-sp" => Box::new(WaterSpatial::new(s.pick(256, 1024))),
        other => panic!("unknown application id {other:?}"),
    }
}

/// All Table-2 basic workloads, in the paper's alphabetical order.
pub fn all_basic(s: Scale) -> Vec<(&'static str, Box<dyn Workload>)> {
    APP_IDS.iter().map(|&id| (id, basic(id, s))).collect()
}

/// The problem-size sweep for an application (Figure 4's x-axis, scaled).
/// Sizes ascend; the middle entries bracket the basic size.
///
/// # Panics
///
/// Panics on an unknown id.
pub fn sweep(id: &str, s: Scale) -> Vec<Box<dyn Workload>> {
    match id {
        "barnes" => sizes(s, &[128, 256, 512], &[512, 1024, 2048, 4096])
            .map(|n| Box::new(Barnes::new(n)) as Box<dyn Workload>)
            .collect(),
        "infer" => sizes(s, &[2, 4, 8], &[8, 16, 32])
            .map(|k| {
                let mut a = Infer::new(s.pick(32, 192));
                a.table_scale = k;
                Box::new(a) as Box<dyn Workload>
            })
            .collect(),
        "fft" => sizes(s, &[8, 10, 12], &[12, 14, 16])
            .map(|m| Box::new(Fft::new(m as u32)) as Box<dyn Workload>)
            .collect(),
        "ocean" => sizes(s, &[16, 32, 64], &[64, 128, 256])
            .map(|d| Box::new(Ocean::new(d)) as Box<dyn Workload>)
            .collect(),
        "protein" => sizes(s, &[24, 48, 96], &[64, 128, 256])
            .map(|n| Box::new(Protein::new(n)) as Box<dyn Workload>)
            .collect(),
        "radix" => sizes(
            s,
            &[4 << 10, 8 << 10, 16 << 10],
            &[32 << 10, 128 << 10, 512 << 10],
        )
        .map(|n| Box::new(Radix::new(n)) as Box<dyn Workload>)
        .collect(),
        "raytrace" => sizes(s, &[16, 24, 32], &[32, 64, 96])
            .map(|n| Box::new(Raytrace::new(n)) as Box<dyn Workload>)
            .collect(),
        "shearwarp" => sizes(s, &[16, 24, 32], &[32, 48, 64])
            .map(|n| Box::new(ShearWarp::new(n)) as Box<dyn Workload>)
            .collect(),
        "volrend" => sizes(s, &[16, 24, 32], &[32, 48, 64])
            .map(|n| Box::new(Volrend::new(n)) as Box<dyn Workload>)
            .collect(),
        "water-nsq" => sizes(s, &[64, 128, 256], &[256, 512, 1024, 2048])
            .map(|n| Box::new(WaterNsq::new(n)) as Box<dyn Workload>)
            .collect(),
        "water-sp" => sizes(s, &[128, 256, 512], &[512, 1024, 2048, 4096, 8192])
            .map(|n| Box::new(WaterSpatial::new(n)) as Box<dyn Workload>)
            .collect(),
        other => panic!("unknown application id {other:?}"),
    }
}

fn sizes<'a>(s: Scale, quick: &'a [usize], full: &'a [usize]) -> impl Iterator<Item = usize> + 'a {
    match s {
        Scale::Quick => quick.iter().copied(),
        Scale::Full => full.iter().copied(),
    }
}

/// The restructuring comparisons of Figure 9: for each application, the
/// original workload and its restructured version(s), at the same problem
/// size (the basic size unless noted).
pub fn restructurings(s: Scale) -> Vec<Restructuring> {
    let mut out = Vec::new();

    let barnes_n = s.pick(256, 4096);
    out.push(Restructuring {
        app: "barnes",
        original: Box::new(Barnes::new(barnes_n)),
        restructured: vec![
            named(Box::new(with_barnes(barnes_n, TreeBuild::Merge))),
            named(Box::new(with_barnes(barnes_n, TreeBuild::Spatial))),
        ],
    });

    let sw = s.pick(24, 48);
    out.push(Restructuring {
        app: "shearwarp",
        original: Box::new(ShearWarp::new(sw)),
        restructured: vec![named(Box::new({
            let mut a = ShearWarp::new(sw);
            a.variant = ShearWarpVariant::Sweep;
            a
        }))],
    });

    let wn = s.pick(128, 2048);
    out.push(Restructuring {
        app: "water-nsq",
        original: Box::new(WaterNsq::new(wn)),
        restructured: vec![named(Box::new({
            let mut a = WaterNsq::new(wn);
            a.variant = LoopOrder::Interchanged;
            a
        }))],
    });

    let ic = s.pick(32, 192);
    let scale = s.pick(8, 16);
    out.push(Restructuring {
        app: "infer",
        original: Box::new({
            let mut a = Infer::new(ic);
            a.table_scale = scale;
            a
        }),
        restructured: vec![named(Box::new({
            let mut a = Infer::new(ic);
            a.table_scale = scale;
            a.variant = InferVariant::Static;
            a
        }))],
    });

    let rk = s.pick(8 << 10, 512 << 10);
    out.push(Restructuring {
        app: "radix",
        original: Box::new(Radix::new(rk)),
        restructured: vec![named(Box::new(SampleSort::new(rk)))],
    });

    out
}

/// The canonical version identifier of an application's original form.
pub const ORIGINAL_VERSION: &str = "orig";

/// The version identifiers available for an application:
/// [`ORIGINAL_VERSION`] first, then each restructured form of
/// [`restructurings`] in restructuring-depth order. Restructured version
/// ids are the suffix of the workload name (`"barnes/merge"` → `"merge"`),
/// or the whole name when the restructuring is a different program
/// (`"samplesort"` for radix). Apps without restructurings get only
/// `["orig"]`.
pub fn version_ids(app: &str) -> Vec<String> {
    let mut out = vec![ORIGINAL_VERSION.to_string()];
    for r in restructurings(Scale::Quick) {
        if r.app == app {
            for w in &r.restructured {
                let name = w.name();
                out.push(
                    name.strip_prefix(&format!("{app}/"))
                        .unwrap_or(&name)
                        .to_string(),
                );
            }
        }
    }
    out
}

/// Builds the workload for an `(application, version)` pair at scale `s`:
/// `"orig"` is the basic workload of [`basic`]; any other id selects the
/// matching restructured form from [`restructurings`] (which uses the
/// paper's Figure-9 problem sizes — identical to the basic sizes at
/// [`Scale::Quick`]). Returns `None` for an unknown app or version.
pub fn versioned(app: &str, version: &str, s: Scale) -> Option<Box<dyn Workload>> {
    if !APP_IDS.contains(&app) {
        return None;
    }
    if version == ORIGINAL_VERSION {
        return Some(basic(app, s));
    }
    for r in restructurings(s) {
        if r.app != app {
            continue;
        }
        for w in r.restructured {
            let name = w.name();
            if name == version || name == format!("{app}/{version}") {
                return Some(w);
            }
        }
    }
    None
}

fn with_barnes(n: usize, variant: TreeBuild) -> Barnes {
    let mut a = Barnes::new(n);
    a.variant = variant;
    a
}

fn named(w: Box<dyn Workload>) -> Box<dyn Workload> {
    w
}

/// One original-vs-restructured comparison (a panel of Figure 9).
pub struct Restructuring {
    /// Application id.
    pub app: &'static str,
    /// The original optimized version.
    pub original: Box<dyn Workload>,
    /// Restructured version(s), in increasing restructuring depth.
    pub restructured: Vec<Box<dyn Workload>>,
}

impl std::fmt::Debug for Restructuring {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Restructuring")
            .field("app", &self.app)
            .field("original", &self.original.name())
            .field(
                "restructured",
                &self
                    .restructured
                    .iter()
                    .map(|w| w.name())
                    .collect::<Vec<_>>(),
            )
            .finish()
    }
}

/// A standalone SOR workload for the §7.1 mapping corroboration.
pub fn sor(s: Scale) -> Sor {
    Sor::new(s.pick(24, 96))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_app_has_a_basic_workload() {
        for &id in APP_IDS {
            let w = basic(id, Scale::Quick);
            assert!(!w.name().is_empty());
            assert!(!w.problem().is_empty());
        }
        assert_eq!(APP_IDS.len(), 11, "the paper studies eleven applications");
    }

    #[test]
    fn sweeps_ascend_and_have_at_least_three_points() {
        for &id in APP_IDS {
            for s in [Scale::Quick, Scale::Full] {
                let ws = sweep(id, s);
                assert!(ws.len() >= 3, "{id} sweep too short");
            }
        }
    }

    #[test]
    fn restructurings_cover_the_papers_five() {
        let rs = restructurings(Scale::Quick);
        let apps: Vec<&str> = rs.iter().map(|r| r.app).collect();
        assert_eq!(apps, ["barnes", "shearwarp", "water-nsq", "infer", "radix"]);
        // Barnes has two progressively deeper restructurings.
        assert_eq!(rs[0].restructured.len(), 2);
    }

    #[test]
    #[should_panic(expected = "unknown application")]
    fn unknown_id_panics() {
        basic("nope", Scale::Quick);
    }

    #[test]
    fn version_catalog_matches_restructurings() {
        assert_eq!(version_ids("barnes"), ["orig", "merge", "spatial"]);
        assert_eq!(version_ids("radix"), ["orig", "samplesort"]);
        assert_eq!(version_ids("ocean"), ["orig"]);
        // Every advertised version builds, and its name round-trips.
        for &app in APP_IDS {
            for v in version_ids(app) {
                let w = versioned(app, &v, Scale::Quick)
                    .unwrap_or_else(|| panic!("{app}/{v} did not build"));
                if v == ORIGINAL_VERSION {
                    assert_eq!(w.name(), app);
                } else {
                    assert!(
                        w.name() == v || w.name() == format!("{app}/{v}"),
                        "{app}/{v} built {}",
                        w.name()
                    );
                }
            }
        }
        assert!(versioned("barnes", "nope", Scale::Quick).is_none());
        assert!(versioned("nope", "orig", Scale::Quick).is_none());
    }

    #[test]
    fn scales_expose_machine_shape() {
        assert_eq!(Scale::Full.max_procs(), 128);
        assert_eq!(Scale::Full.procs(), &[32, 64, 96, 128]);
        assert!(Scale::Quick.cache_bytes() < Scale::Full.cache_bytes());
    }
}
