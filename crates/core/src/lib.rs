//! # scaling-study — the methodology of the ISCA'99 scaling paper
//!
//! This crate packages the paper's *contribution* as a reusable library:
//!
//! * [`metrics`] — speedup, parallel efficiency, and the 60% "scales well"
//!   threshold used throughout the paper.
//! * [`runner`] — a measurement harness that runs
//!   [`Workload`](splash_apps::common::Workload)s on simulated machines,
//!   verifies their results, and caches sequential baselines.
//! * [`experiments`] — the catalog mapping every table and figure of the
//!   paper to concrete workloads at (scaled) problem sizes.
//! * [`report`] — the plain-text tables and CSV output the `repro` binary
//!   prints, including per-processor breakdown "continuums" (Figs 5–8).
//! * [`guidelines`] — §5.3's programming guidelines as a documented
//!   catalog.
//!
//! ```
//! use scaling_study::runner::Runner;
//! use splash_apps::fft::Fft;
//!
//! let mut runner = Runner::new(64 << 10);
//! let record = runner.run(&Fft::new(12), 8)?;
//! assert!(record.speedup() > 1.0);
//! println!("efficiency: {:.0}%", 100.0 * record.efficiency());
//! # Ok::<(), scaling_study::runner::StudyError>(())
//! ```

#![warn(missing_docs)]

pub mod experiments;
pub mod guidelines;
pub mod metrics;
pub mod report;
pub mod runner;
