//! The study's performance metrics: speedup, parallel efficiency and the
//! paper's 60% "scales well" threshold.

use ccnuma_sim::time::Ns;

/// The paper's threshold for "scaling well": 60% parallel efficiency
/// (a speedup of 76.8 on 128 processors).
pub const GOOD_EFFICIENCY: f64 = 0.60;

/// Speedup of a parallel run over the sequential baseline.
///
/// # Examples
///
/// ```
/// assert_eq!(scaling_study::metrics::speedup(1000, 250), 4.0);
/// ```
pub fn speedup(seq_ns: Ns, par_ns: Ns) -> f64 {
    if par_ns == 0 {
        return 0.0;
    }
    seq_ns as f64 / par_ns as f64
}

/// Parallel efficiency: speedup divided by processor count.
pub fn efficiency(seq_ns: Ns, par_ns: Ns, nprocs: usize) -> f64 {
    speedup(seq_ns, par_ns) / nprocs.max(1) as f64
}

/// Whether a run clears the paper's 60% bar.
pub fn scales_well(seq_ns: Ns, par_ns: Ns, nprocs: usize) -> bool {
    efficiency(seq_ns, par_ns, nprocs) >= GOOD_EFFICIENCY
}

/// Detects superlinear speedup (efficiency > 1), which the paper attributes
/// to aggregate cache-capacity effects (§2.3).
pub fn is_superlinear(seq_ns: Ns, par_ns: Ns, nprocs: usize) -> bool {
    efficiency(seq_ns, par_ns, nprocs) > 1.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn efficiency_and_threshold() {
        assert!((efficiency(1280, 10, 128) - 1.0).abs() < 1e-12);
        assert!(scales_well(768, 10, 128) && !scales_well(767, 10, 128));
        // 76.8 speedup on 128 processors is exactly the bar.
        assert!((GOOD_EFFICIENCY * 128.0 - 76.8).abs() < 1e-12);
    }

    #[test]
    fn degenerate_inputs_are_safe() {
        assert_eq!(speedup(100, 0), 0.0);
        assert_eq!(efficiency(0, 10, 0), 0.0);
    }

    #[test]
    fn superlinear_detection() {
        assert!(is_superlinear(2000, 10, 128)); // eff ≈ 1.56
        assert!(!is_superlinear(1280, 10, 128)); // exactly 1.0
    }
}
