//! Plain-text tables and CSV emission for the experiment harnesses —
//! mirrors the rows and series the paper reports.

use std::fmt;

/// A simple aligned text table.
#[derive(Debug, Clone)]
pub struct Table {
    /// Table caption.
    pub title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table with a title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row.
    ///
    /// # Panics
    ///
    /// Panics if the cell count differs from the header count.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The table rendered as RFC-4180-ish CSV (header line included).
    pub fn to_csv(&self) -> String {
        let esc = |s: &str| {
            if s.contains([',', '"', '\n']) {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        let mut out = String::new();
        out.push_str(
            &self
                .headers
                .iter()
                .map(|h| esc(h))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for r in &self.rows {
            out.push_str(&r.iter().map(|c| esc(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        writeln!(f, "== {} ==", self.title)?;
        let line = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            let mut parts = Vec::with_capacity(cells.len());
            for (i, c) in cells.iter().enumerate() {
                parts.push(format!("{:<width$}", c, width = widths[i]));
            }
            writeln!(f, "| {} |", parts.join(" | "))
        };
        line(f, &self.headers)?;
        let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        writeln!(f, "|-{}-|", sep.join("-|-"))?;
        for row in &self.rows {
            line(f, row)?;
        }
        Ok(())
    }
}

/// Formats a fraction as a percentage with one decimal, e.g. `"61.3%"`.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", 100.0 * x)
}

/// Formats a float with two decimals.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// Renders a per-processor breakdown "continuum" (Figures 5–8 of the
/// paper) as compact text: processors are bucketed into `buckets` groups
/// and each group shows its average busy/memory/sync split.
pub fn breakdown_continuum(stats: &ccnuma_sim::stats::RunStats, buckets: usize) -> Table {
    let mut t = Table::new(
        format!("per-processor time breakdown ({} procs)", stats.nprocs()),
        &["procs", "busy", "memory", "sync"],
    );
    let n = stats.procs.len();
    let buckets = buckets.max(1).min(n.max(1));
    for b in 0..buckets {
        let lo = b * n / buckets;
        let hi = ((b + 1) * n / buckets).max(lo + 1).min(n);
        let (mut busy, mut mem, mut sync) = (0.0, 0.0, 0.0);
        for p in &stats.procs[lo..hi] {
            let (pb, pm, ps) = p.breakdown_pct();
            busy += pb;
            mem += pm;
            sync += ps;
        }
        let k = (hi - lo) as f64;
        t.row(vec![
            format!("{lo}-{}", hi - 1),
            format!("{:.1}%", busy / k),
            format!("{:.1}%", mem / k),
            format!("{:.1}%", sync / k),
        ]);
    }
    t
}

/// Renders the per-data-structure profile of a run (the pixie/prof analog
/// the paper's authors lacked; see
/// [`ccnuma_sim::profile`]).
pub fn range_profile_table(stats: &ccnuma_sim::stats::RunStats) -> Table {
    let mut t = Table::new(
        "per-data-structure profile",
        &[
            "structure",
            "reads",
            "writes",
            "hits",
            "local misses",
            "remote misses",
            "stall",
        ],
    );
    for r in &stats.ranges {
        t.row(vec![
            r.name.clone(),
            r.reads.to_string(),
            r.writes.to_string(),
            r.hits.to_string(),
            r.misses_local.to_string(),
            r.misses_remote.to_string(),
            ccnuma_sim::time::Span(r.stall_ns).to_string(),
        ]);
    }
    t
}

/// Renders a run's per-phase busy/memory/sync breakdown (aggregated over
/// processors), with memory stall split local/remote.
pub fn phase_breakdown_table(stats: &ccnuma_sim::stats::RunStats) -> Table {
    let mut t = Table::new(
        "per-phase time breakdown",
        &[
            "phase",
            "busy",
            "memory",
            "mem local",
            "mem remote",
            "sync",
            "share",
        ],
    );
    let grand: u64 = stats.phases.iter().map(|p| p.total().total_ns()).sum();
    for ph in &stats.phases {
        let tot = ph.total();
        if tot.total_ns() == 0 {
            continue;
        }
        let span = |ns| ccnuma_sim::time::Span(ns).to_string();
        t.row(vec![
            ph.name.clone(),
            span(tot.busy_ns),
            span(tot.mem_ns),
            span(tot.mem_local_ns),
            span(tot.mem_remote_ns),
            span(tot.sync_ns()),
            pct(tot.total_ns() as f64 / grand.max(1) as f64),
        ]);
    }
    t
}

/// Renders the memory-stall attribution of a run: for each machine
/// resource, the uncontended service time vs. the queueing delay charged to
/// it, plus the residual ("other": L2 hit time and prefetch overlap). The
/// rows sum to the run's total memory stall exactly.
pub fn stall_attribution_table(stats: &ccnuma_sim::stats::RunStats) -> Table {
    use ccnuma_sim::attrib::ResourceClass;
    let mut t = Table::new(
        "memory-stall attribution (service vs queueing)",
        &["resource", "service", "queueing", "total", "share"],
    );
    let bd = stats.mem_breakdown();
    let grand = stats.total(|p| p.mem_ns).max(1);
    let span = |ns| ccnuma_sim::time::Span(ns).to_string();
    for r in ResourceClass::ALL {
        let (s, q) = bd.get(r);
        t.row(vec![
            r.name().to_string(),
            span(s),
            span(q),
            span(s + q),
            pct((s + q) as f64 / grand as f64),
        ]);
    }
    t.row(vec![
        "other (hit/overlap)".into(),
        span(bd.other_ns),
        span(0),
        span(bd.other_ns),
        pct(bd.other_ns as f64 / grand as f64),
    ]);
    t
}

/// Renders the miss-cause mix of a run: counts and stall time per cause
/// (cold, capacity, conflict, true sharing, false sharing), plus the stall
/// charged to unclassified accesses (hits, upgrades, and everything when
/// classification is off).
pub fn miss_cause_table(stats: &ccnuma_sim::stats::RunStats) -> Table {
    use ccnuma_sim::attrib::{MissCause, CAUSE_OTHER};
    let mut t = Table::new(
        "miss-cause mix",
        &["cause", "misses", "share", "stall", "stall share"],
    );
    let counts = stats.cause_counts();
    let stall = stats.cause_stall_ns();
    let misses = stats.total(|p| p.misses()).max(1);
    let grand: u64 = stall.iter().sum::<u64>().max(1);
    let span = |ns| ccnuma_sim::time::Span(ns).to_string();
    for c in MissCause::ALL {
        t.row(vec![
            c.name().to_string(),
            counts[c.index()].to_string(),
            pct(counts[c.index()] as f64 / misses as f64),
            span(stall[c.index()]),
            pct(stall[c.index()] as f64 / grand as f64),
        ]);
    }
    t.row(vec![
        "other (hit/upgrade)".into(),
        "-".into(),
        "-".into(),
        span(stall[CAUSE_OTHER]),
        pct(stall[CAUSE_OTHER] as f64 / grand as f64),
    ]);
    t
}

/// Renders the sharing-hottest cache lines of the labelled data structures:
/// for each hot line, its coherence-miss count and the top
/// producer→consumer processor pairs observed on it.
pub fn sharing_hot_table(stats: &ccnuma_sim::stats::RunStats) -> Table {
    let mut t = Table::new(
        "sharing-hot lines",
        &["structure", "line", "coh misses", "producer→consumer"],
    );
    for r in &stats.ranges {
        for h in &r.sharing_hot {
            let pairs = h
                .pairs
                .iter()
                .map(|(prod, cons, n)| format!("p{prod}→p{cons}×{n}"))
                .collect::<Vec<_>>()
                .join(", ");
            t.row(vec![
                r.name.clone(),
                format!("{:#x}", h.line_addr),
                h.coherence_misses.to_string(),
                pairs,
            ]);
        }
    }
    t
}

/// Renders the per-phase attribution: memory stall, the queueing slice of
/// it, and the stall charged to each miss cause — the cause × phase plane
/// of the attribution cube.
pub fn phase_attribution_table(stats: &ccnuma_sim::stats::RunStats) -> Table {
    use ccnuma_sim::attrib::MissCause;
    let mut headers = vec!["phase", "memory", "queueing"];
    headers.extend(MissCause::ALL.iter().map(|c| c.name()));
    let mut t = Table::new("per-phase stall attribution", &headers);
    let span = |ns| ccnuma_sim::time::Span(ns).to_string();
    for ph in &stats.phases {
        let tot = ph.total();
        if tot.mem_ns == 0 {
            continue;
        }
        let mut row = vec![
            ph.name.clone(),
            span(tot.mem_ns),
            span(tot.mem_breakdown.queue_total()),
        ];
        row.extend(
            MissCause::ALL
                .iter()
                .map(|c| span(tot.mem_cause_ns[c.index()])),
        );
        t.row(row);
    }
    t
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Serializes a run's attribution data — stall breakdown by resource,
/// miss-cause mix, and per-structure sharing hot spots — as a small
/// self-contained JSON document (no external dependencies).
pub fn attrib_json(label: &str, stats: &ccnuma_sim::stats::RunStats) -> String {
    use ccnuma_sim::attrib::{MissCause, ResourceClass, CAUSE_OTHER};
    let bd = stats.mem_breakdown();
    let counts = stats.cause_counts();
    let stall = stats.cause_stall_ns();
    let mut s = String::with_capacity(1024);
    s.push_str("{\n");
    s.push_str(&format!(
        "  \"version\": 1,\n  \"label\": \"{}\",\n",
        json_escape(label)
    ));
    s.push_str(&format!("  \"wall_ns\": {},\n", stats.wall_ns));
    s.push_str(&format!(
        "  \"mem_stall_ns\": {},\n",
        stats.total(|p| p.mem_ns)
    ));
    s.push_str(&format!(
        "  \"avg_miss_hops\": {:.4},\n",
        stats.avg_miss_hops()
    ));
    s.push_str("  \"resources\": {");
    for (i, r) in ResourceClass::ALL.iter().enumerate() {
        let (sv, q) = bd.get(*r);
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!(
            "\n    \"{}\": {{\"service_ns\": {sv}, \"queue_ns\": {q}}}",
            r.name()
        ));
    }
    s.push_str(&format!("\n  }},\n  \"other_ns\": {},\n", bd.other_ns));
    s.push_str("  \"causes\": {");
    for (i, c) in MissCause::ALL.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!(
            "\n    \"{}\": {{\"misses\": {}, \"stall_ns\": {}}}",
            c.name(),
            counts[c.index()],
            stall[c.index()]
        ));
    }
    s.push_str(&format!(
        "\n  }},\n  \"unclassified_stall_ns\": {},\n",
        stall[CAUSE_OTHER]
    ));
    s.push_str("  \"ranges\": [");
    for (i, r) in stats.ranges.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!(
            "\n    {{\"name\": \"{}\", \"stall_ns\": {}, \"cause_misses\": [{}], \"hot_lines\": [",
            json_escape(&r.name),
            r.stall_ns,
            r.cause_misses
                .iter()
                .map(|n| n.to_string())
                .collect::<Vec<_>>()
                .join(", ")
        ));
        for (j, h) in r.sharing_hot.iter().enumerate() {
            if j > 0 {
                s.push(',');
            }
            let pairs = h
                .pairs
                .iter()
                .map(|(p, c, n)| format!("[{p}, {c}, {n}]"))
                .collect::<Vec<_>>()
                .join(", ");
            s.push_str(&format!(
                "\n      {{\"line\": {}, \"coherence_misses\": {}, \"pairs\": [{pairs}]}}",
                h.line_addr, h.coherence_misses
            ));
        }
        s.push_str("]}");
    }
    s.push_str("\n  ]\n}\n");
    s
}

/// Renders sanitizer findings per experiment cell as a table: one row
/// per `(app, version, procs)` with the `[races, lock cycles, lints]`
/// counts and a pass/FAIL verdict.
pub fn sanitize_table(rows: &[(String, String, usize, [u64; 3])]) -> Table {
    let mut t = Table::new(
        "sanitize findings",
        &[
            "app", "version", "procs", "races", "cycles", "lints", "verdict",
        ],
    );
    for (app, version, procs, [races, cycles, lints]) in rows {
        let clean = races + cycles + lints == 0;
        t.row(vec![
            app.clone(),
            version.clone(),
            procs.to_string(),
            races.to_string(),
            cycles.to_string(),
            lints.to_string(),
            if clean { "pass" } else { "FAIL" }.to_string(),
        ]);
    }
    t
}

/// Serializes one run's [`SanitizeReport`](ccnuma_sim::sanitize::SanitizeReport)
/// as a small self-contained JSON document (hand-rolled, like
/// [`attrib_json`]; the workspace takes no serde dependency).
pub fn sanitize_json(label: &str, rep: &ccnuma_sim::sanitize::SanitizeReport) -> String {
    let access = |a: &ccnuma_sim::sanitize::AccessInfo| {
        format!(
            "{{\"proc\": {}, \"phase\": \"{}\", \"addr\": {}, \"bytes\": {}, \
             \"is_write\": {}, \"locks\": [{}]}}",
            a.proc,
            json_escape(&a.phase),
            a.addr,
            a.bytes,
            a.is_write,
            a.locks
                .iter()
                .map(|l| l.to_string())
                .collect::<Vec<_>>()
                .join(", ")
        )
    };
    let mut s = String::with_capacity(512);
    s.push_str("{\n");
    s.push_str(&format!(
        "  \"version\": 1,\n  \"label\": \"{}\",\n",
        json_escape(label)
    ));
    s.push_str(&format!(
        "  \"granularity\": \"{}\",\n",
        rep.granularity.name()
    ));
    s.push_str("  \"races\": [");
    for (i, r) in rep.races.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!(
            "\n    {{\"addr\": {}, \"bytes\": {}, \"prior\": {}, \"current\": {}}}",
            r.addr,
            r.bytes,
            access(&r.prior),
            access(&r.current)
        ));
    }
    s.push_str("\n  ],\n  \"lock_cycles\": [");
    for (i, c) in rep.lock_cycles.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!(
            "\n    [{}]",
            c.locks
                .iter()
                .map(|l| l.to_string())
                .collect::<Vec<_>>()
                .join(", ")
        ));
    }
    s.push_str("\n  ],\n  \"lints\": [");
    for (i, l) in rep.lints.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!(
            "\n    {{\"kind\": \"{}\", \"message\": \"{}\"}}",
            l.kind.name(),
            json_escape(&l.message)
        ));
    }
    s.push_str("\n  ]\n}\n");
    s
}

/// Renders critical-path shares per experiment cell as a table: one row
/// per labelled run with the on-path busy / memory / sync split, the
/// dominant limiter, and the ideal-sync speedup projection.
pub fn critpath_table(rows: &[(String, ccnuma_sim::critpath::CritReport)]) -> Table {
    let mut t = Table::new(
        "critical-path shares",
        &["run", "busy", "memory", "sync", "limiter", "sync=0 speedup"],
    );
    for (label, rep) in rows {
        let (busy, mem, sync) = rep.share_pct();
        let limiter = rep
            .headline()
            .split(',')
            .next()
            .unwrap_or_default()
            .trim()
            .to_string();
        t.row(vec![
            label.clone(),
            format!("{busy:.1}%"),
            format!("{mem:.1}%"),
            format!("{sync:.1}%"),
            limiter,
            format!("{:.2}x", rep.speedup("sync=0")),
        ]);
    }
    t
}

/// Renders one run's what-if projections as a table: the projected wall
/// clock and speedup of each re-weighted cost scenario.
pub fn whatif_table(label: &str, rep: &ccnuma_sim::critpath::CritReport) -> Table {
    let mut t = Table::new(
        format!("what-if projections ({label})"),
        &["scenario", "wall (us)", "speedup"],
    );
    for w in &rep.whatif {
        t.row(vec![
            w.name.clone(),
            format!("{:.3}", w.wall_ns as f64 / 1000.0),
            format!("{:.2}x", rep.speedup(&w.name)),
        ]);
    }
    t
}

/// Serializes one run's [`CritReport`](ccnuma_sim::critpath::CritReport)
/// as a small self-contained JSON document (hand-rolled, like
/// [`attrib_json`]; the workspace takes no serde dependency).
pub fn critpath_json(label: &str, rep: &ccnuma_sim::critpath::CritReport) -> String {
    let buckets = |b: &ccnuma_sim::critpath::CritBuckets| {
        format!(
            "{{\"busy_ns\": {}, \"sync_op_ns\": {}, \"mem_local_ns\": {},              \"mem_remote_ns\": {}, \"lock_wait_ns\": {}, \"barrier_wait_ns\": {},              \"sem_wait_ns\": {}}}",
            b.busy_ns,
            b.sync_op_ns,
            b.mem_local_ns,
            b.mem_remote_ns,
            b.lock_wait_ns,
            b.barrier_wait_ns,
            b.sem_wait_ns
        )
    };
    let nums = |ns: &[u64]| {
        ns.iter()
            .map(|n| n.to_string())
            .collect::<Vec<_>>()
            .join(", ")
    };
    let mut s = String::with_capacity(1024);
    s.push_str("{\n");
    s.push_str(&format!(
        "  \"version\": 1,\n  \"label\": \"{}\",\n  \"wall_ns\": {},\n",
        json_escape(label),
        rep.wall_ns
    ));
    s.push_str(&format!("  \"total\": {},\n", buckets(&rep.total)));
    s.push_str(&format!(
        "  \"mem_cause_ns\": [{}],\n  \"mem_queue_ns\": [{}],\n  \"mem_service_ns\": [{}],\n",
        nums(&rep.mem_cause_ns),
        nums(&rep.mem_queue_ns),
        nums(&rep.mem_service_ns)
    ));
    s.push_str("  \"phases\": [");
    for (i, ph) in rep.phases.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!(
            "\n    {{\"name\": \"{}\", \"path\": {}}}",
            json_escape(&ph.name),
            buckets(&ph.path)
        ));
    }
    s.push_str("\n  ],\n  \"whatif\": [");
    for (i, w) in rep.whatif.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!(
            "\n    {{\"scenario\": \"{}\", \"wall_ns\": {}}}",
            json_escape(&w.name),
            w.wall_ns
        ));
    }
    s.push_str("\n  ]\n}\n");
    s
}

/// Renders a trace's machine-wide gauge time series (miss rate, resource
/// occupancies, outstanding misses) as a table, one row per sample —
/// mainly useful via [`Table::to_csv`].
pub fn gauge_table(trace: &ccnuma_sim::trace::Trace) -> Table {
    let mut t = Table::new(
        "machine gauges",
        &[
            "t_us",
            "interval_us",
            "miss %",
            "hub occ %",
            "mem occ %",
            "router occ %",
            "outstanding",
        ],
    );
    for g in &trace.gauges {
        t.row(vec![
            format!("{:.3}", g.t as f64 / 1000.0),
            format!("{:.3}", g.interval_ns as f64 / 1000.0),
            format!("{:.2}", g.miss_pct),
            format!("{:.2}", g.hub_occ_pct),
            format!("{:.2}", g.mem_occ_pct),
            format!("{:.2}", g.router_occ_pct),
            format!("{:.2}", g.outstanding),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_aligns_columns() {
        let mut t = Table::new("demo", &["app", "speedup"]);
        t.row(vec!["fft".into(), "61.10".into()]);
        t.row(vec!["water-nsq".into(), "9.00".into()]);
        let s = t.to_string();
        assert!(s.contains("== demo =="));
        // All data lines have the same width.
        let lens: Vec<usize> = s.lines().skip(1).map(|l| l.chars().count()).collect();
        assert!(lens.windows(2).all(|w| w[0] == w[1]), "{s}");
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_mismatch_panics() {
        Table::new("t", &["a", "b"]).row(vec!["x".into()]);
    }

    #[test]
    fn csv_escapes() {
        let mut t = Table::new("t", &["a", "b"]);
        t.row(vec!["x,y".into(), "say \"hi\"".into()]);
        let csv = t.to_csv();
        assert_eq!(csv.lines().nth(1).unwrap(), "\"x,y\",\"say \"\"hi\"\"\"");
    }

    #[test]
    fn csv_escapes_newlines_and_quoted_headers() {
        let mut t = Table::new("t", &["plain", "has,comma"]);
        t.row(vec!["line1\nline2".into(), "ok".into()]);
        let csv = t.to_csv();
        // Header with a comma is quoted; embedded newline is kept inside
        // one quoted field (so the record spans two physical lines).
        assert_eq!(csv, "plain,\"has,comma\"\n\"line1\nline2\",ok\n");
    }

    #[test]
    fn empty_table_renders_headers_only() {
        let t = Table::new("empty", &["a", "b"]);
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
        assert_eq!(t.to_csv(), "a,b\n");
        let s = t.to_string();
        assert!(s.contains("== empty =="));
        assert!(s.contains("| a | b |"));
        // Title, header line, separator — and nothing else.
        assert_eq!(s.lines().count(), 3);
    }

    #[test]
    fn helpers_format() {
        assert_eq!(pct(0.613), "61.3%");
        assert_eq!(f2(1.005), "1.00");
    }

    #[test]
    fn continuum_buckets() {
        use ccnuma_sim::stats::{ProcStats, RunStats};
        let procs: Vec<ProcStats> = (0..8)
            .map(|i| ProcStats {
                busy_ns: 100 - i,
                mem_ns: i,
                ..Default::default()
            })
            .collect();
        let rs = RunStats {
            procs,
            wall_ns: 100,
            page_migrations: 0,
            resources: Default::default(),
            ranges: Vec::new(),
            phases: Vec::new(),
            trace: None,
            sanitize: None,
            critpath: None,
            events: 0,
        };
        let t = breakdown_continuum(&rs, 4);
        assert_eq!(t.len(), 4);
        let t1 = breakdown_continuum(&rs, 100); // clamped to nprocs
        assert_eq!(t1.len(), 8);
    }

    fn attrib_stats() -> ccnuma_sim::stats::RunStats {
        use ccnuma_sim::attrib::LatencyBreakdown;
        use ccnuma_sim::profile::{HotLine, RangeProfile};
        use ccnuma_sim::stats::{ProcStats, RunStats};
        let mut p = ProcStats {
            misses_local: 10,
            misses_remote_clean: 5,
            misses_cold: 6,
            misses_capacity: 5,
            misses_conflict: 2,
            misses_coherence: 4,
            misses_false_share: 1,
            miss_hops: 30,
            mem_ns: 1_000,
            ..Default::default()
        };
        p.mem_breakdown = LatencyBreakdown {
            service: [100, 200, 300, 50],
            queue: [40, 60, 0, 25],
            other_ns: 225,
        };
        p.mem_cause_ns = [100, 200, 300, 150, 50, 200];
        let range = RangeProfile {
            name: "grid".into(),
            stall_ns: 800,
            cause_misses: [6, 3, 2, 3, 1],
            sharing_hot: vec![HotLine {
                line_addr: 0x1080,
                coherence_misses: 4,
                pairs: vec![(0, 1, 3), (0, 2, 1)],
            }],
            ..Default::default()
        };
        RunStats {
            procs: vec![p],
            wall_ns: 5_000,
            page_migrations: 0,
            resources: Default::default(),
            ranges: vec![range],
            phases: Vec::new(),
            trace: None,
            sanitize: None,
            critpath: None,
            events: 0,
        }
    }

    #[test]
    fn stall_attribution_sums_cover_mem_stall() {
        let rs = attrib_stats();
        let t = stall_attribution_table(&rs);
        assert_eq!(t.len(), 5, "four resources plus the other row");
        let s = t.to_string();
        // 100+40 hub, 200+60 memory, 300 directory, 50+25 network, 225 other
        // — shares of the 1000 ns stall.
        assert!(s.contains("14.0%"), "{s}");
        assert!(s.contains("22.5%"), "{s}");
    }

    #[test]
    fn miss_cause_table_splits_refined_counters() {
        let rs = attrib_stats();
        let t = miss_cause_table(&rs);
        let csv = t.to_csv();
        // cold 6, capacity 5-2=3, conflict 2, coh-true 4-1=3, coh-false 1.
        assert!(csv.contains("cold,6,"), "{csv}");
        assert!(csv.contains("capacity,3,"), "{csv}");
        assert!(csv.contains("conflict,2,"), "{csv}");
        assert!(csv.contains("coh-true,3,"), "{csv}");
        assert!(csv.contains("coh-false,1,"), "{csv}");
    }

    #[test]
    fn sharing_hot_table_formats_pairs() {
        let rs = attrib_stats();
        let t = sharing_hot_table(&rs);
        assert_eq!(t.len(), 1);
        let s = t.to_string();
        assert!(s.contains("grid") && s.contains("0x1080"), "{s}");
        assert!(s.contains("p0→p1×3, p0→p2×1"), "{s}");
    }

    #[test]
    fn attrib_json_is_structurally_sound() {
        let rs = attrib_stats();
        let j = attrib_json("fft/2^14 points/8p", &rs);
        assert!(j.contains("\"version\": 1"));
        assert!(j.contains("\"label\": \"fft/2^14 points/8p\""));
        assert!(j.contains("\"hub\": {\"service_ns\": 100, \"queue_ns\": 40}"));
        assert!(j.contains("\"cold\": {\"misses\": 6, \"stall_ns\": 100}"));
        assert!(j.contains("\"cause_misses\": [6, 3, 2, 3, 1]"));
        assert!(j.contains("\"pairs\": [[0, 1, 3], [0, 2, 1]]"));
        // Balanced braces/brackets (no nested strings with braces here).
        let bal = |open, close| j.matches(open).count() == j.matches(close).count();
        assert!(bal('{', '}') && bal('[', ']'), "{j}");
    }

    #[test]
    fn phase_table_skips_empty_phases() {
        use ccnuma_sim::stats::{PhaseBreakdown, PhaseStats, ProcStats, RunStats};
        let ph = |name: &str, busy: u64| PhaseStats {
            name: name.into(),
            procs: vec![PhaseBreakdown {
                busy_ns: busy,
                ..Default::default()
            }],
        };
        let rs = RunStats {
            procs: vec![ProcStats::default()],
            wall_ns: 0,
            page_migrations: 0,
            resources: Default::default(),
            ranges: Vec::new(),
            phases: vec![ph("main", 0), ph("solve", 300), ph("reduce", 100)],
            trace: None,
            sanitize: None,
            critpath: None,
            events: 0,
        };
        let t = phase_breakdown_table(&rs);
        assert_eq!(t.len(), 2, "the empty main phase is omitted");
        let csv = t.to_csv();
        assert!(csv.contains("solve") && csv.contains("75.0%"), "{csv}");
    }

    #[test]
    fn sanitize_table_verdicts_and_csv_escaping() {
        let rows = vec![
            ("fft".to_string(), "base".to_string(), 4, [0u64, 0, 0]),
            (
                "water,nsq".to_string(),
                "opt \"v2\"".to_string(),
                16,
                [2, 0, 1],
            ),
        ];
        let t = sanitize_table(&rows);
        assert_eq!(t.len(), 2);
        let csv = t.to_csv();
        let mut lines = csv.lines().skip(1);
        assert_eq!(lines.next().unwrap(), "fft,base,4,0,0,0,pass");
        // App/version cells with commas and quotes survive round-trip
        // escaping; nonzero counts flip the verdict.
        assert_eq!(
            lines.next().unwrap(),
            "\"water,nsq\",\"opt \"\"v2\"\"\",16,2,0,1,FAIL"
        );
    }

    #[test]
    fn sanitize_json_shape() {
        use ccnuma_sim::sanitize::{
            AccessInfo, LintFinding, LintKind, RaceFinding, SanitizeGranularity, SanitizeReport,
        };
        let acc = |proc, is_write| AccessInfo {
            proc,
            phase: "solve".into(),
            addr: 0x400,
            bytes: 8,
            is_write,
            locks: vec![1],
        };
        let rep = SanitizeReport {
            granularity: SanitizeGranularity::Word,
            races: vec![RaceFinding {
                addr: 0x400,
                bytes: 8,
                prior: acc(0, true),
                current: acc(1, false),
            }],
            lock_cycles: Vec::new(),
            lints: vec![LintFinding {
                kind: LintKind::AtomicPlainMix,
                message: "cell 0 at 0x80 \"mixed\"".into(),
            }],
        };
        let json = sanitize_json("fft/2^14 points/4p", &rep);
        assert!(json.contains("\"version\": 1"));
        assert!(json.contains("\"granularity\": \"word\""));
        assert!(json.contains("\"proc\": 0"));
        assert!(json.contains("\"locks\": [1]"));
        assert!(json.contains("\"kind\": \"atomic-plain-mix\""));
        // Embedded quotes in lint messages are escaped.
        assert!(json.contains("\\\"mixed\\\""), "{json}");
        assert!(json.contains("\"lock_cycles\": ["));
    }

    fn crit_report() -> ccnuma_sim::critpath::CritReport {
        use ccnuma_sim::critpath::{CritBuckets, CritReport, PhasePath, WhatIf};
        let total = CritBuckets {
            busy_ns: 400,
            sync_op_ns: 50,
            mem_local_ns: 100,
            mem_remote_ns: 150,
            lock_wait_ns: 100,
            barrier_wait_ns: 150,
            sem_wait_ns: 50,
        };
        CritReport {
            wall_ns: 1000,
            total,
            mem_cause_ns: [0; ccnuma_sim::attrib::CAUSE_SLOTS],
            mem_queue_ns: [0; 4],
            mem_service_ns: [0; 4],
            phases: vec![PhasePath {
                name: "solve \"fine\"".into(),
                path: total,
            }],
            whatif: vec![
                WhatIf {
                    name: "measured".into(),
                    wall_ns: 1000,
                },
                WhatIf {
                    name: "sync=0".into(),
                    wall_ns: 500,
                },
            ],
            segments: Vec::new(),
        }
    }

    #[test]
    fn critpath_table_shares_and_speedup() {
        let rows = vec![("fft/orig/4p".to_string(), crit_report())];
        let t = critpath_table(&rows);
        assert_eq!(t.len(), 1);
        let csv = t.to_csv();
        let line = csv.lines().nth(1).unwrap();
        assert!(line.starts_with("fft/orig/4p,40.0%,25.0%,35.0%"), "{line}");
        assert!(line.ends_with("2.00x"), "{line}");
    }

    #[test]
    fn whatif_table_lists_every_scenario() {
        let t = whatif_table("fft/orig/4p", &crit_report());
        assert_eq!(t.len(), 2);
        let csv = t.to_csv();
        assert!(csv.contains("measured,1.000,1.00x"), "{csv}");
        assert!(csv.contains("sync=0,0.500,2.00x"), "{csv}");
    }

    #[test]
    fn critpath_json_shape() {
        let json = critpath_json("fft/2^14 points/4p", &crit_report());
        assert!(json.contains("\"version\": 1"));
        assert!(json.contains("\"wall_ns\": 1000"));
        assert!(json.contains("\"busy_ns\": 400"));
        assert!(json.contains("\"scenario\": \"sync=0\""));
        // Embedded quotes in phase names are escaped.
        assert!(json.contains("\\\"fine\\\""), "{json}");
        assert!(json.contains("\"mem_cause_ns\": [0, 0, 0, 0, 0, 0]"));
    }
}
