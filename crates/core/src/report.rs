//! Plain-text tables and CSV emission for the experiment harnesses —
//! mirrors the rows and series the paper reports.

use std::fmt;

/// A simple aligned text table.
#[derive(Debug, Clone)]
pub struct Table {
    /// Table caption.
    pub title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table with a title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row.
    ///
    /// # Panics
    ///
    /// Panics if the cell count differs from the header count.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The table rendered as RFC-4180-ish CSV (header line included).
    pub fn to_csv(&self) -> String {
        let esc = |s: &str| {
            if s.contains([',', '"', '\n']) {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        let mut out = String::new();
        out.push_str(
            &self
                .headers
                .iter()
                .map(|h| esc(h))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for r in &self.rows {
            out.push_str(&r.iter().map(|c| esc(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        writeln!(f, "== {} ==", self.title)?;
        let line = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            let mut parts = Vec::with_capacity(cells.len());
            for (i, c) in cells.iter().enumerate() {
                parts.push(format!("{:<width$}", c, width = widths[i]));
            }
            writeln!(f, "| {} |", parts.join(" | "))
        };
        line(f, &self.headers)?;
        let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        writeln!(f, "|-{}-|", sep.join("-|-"))?;
        for row in &self.rows {
            line(f, row)?;
        }
        Ok(())
    }
}

/// Formats a fraction as a percentage with one decimal, e.g. `"61.3%"`.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", 100.0 * x)
}

/// Formats a float with two decimals.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// Renders a per-processor breakdown "continuum" (Figures 5–8 of the
/// paper) as compact text: processors are bucketed into `buckets` groups
/// and each group shows its average busy/memory/sync split.
pub fn breakdown_continuum(stats: &ccnuma_sim::stats::RunStats, buckets: usize) -> Table {
    let mut t = Table::new(
        format!("per-processor time breakdown ({} procs)", stats.nprocs()),
        &["procs", "busy", "memory", "sync"],
    );
    let n = stats.procs.len();
    let buckets = buckets.max(1).min(n.max(1));
    for b in 0..buckets {
        let lo = b * n / buckets;
        let hi = ((b + 1) * n / buckets).max(lo + 1).min(n);
        let (mut busy, mut mem, mut sync) = (0.0, 0.0, 0.0);
        for p in &stats.procs[lo..hi] {
            let (pb, pm, ps) = p.breakdown_pct();
            busy += pb;
            mem += pm;
            sync += ps;
        }
        let k = (hi - lo) as f64;
        t.row(vec![
            format!("{lo}-{}", hi - 1),
            format!("{:.1}%", busy / k),
            format!("{:.1}%", mem / k),
            format!("{:.1}%", sync / k),
        ]);
    }
    t
}

/// Renders the per-data-structure profile of a run (the pixie/prof analog
/// the paper's authors lacked; see
/// [`ccnuma_sim::profile`]).
pub fn range_profile_table(stats: &ccnuma_sim::stats::RunStats) -> Table {
    let mut t = Table::new(
        "per-data-structure profile",
        &[
            "structure",
            "reads",
            "writes",
            "hits",
            "local misses",
            "remote misses",
            "stall",
        ],
    );
    for r in &stats.ranges {
        t.row(vec![
            r.name.clone(),
            r.reads.to_string(),
            r.writes.to_string(),
            r.hits.to_string(),
            r.misses_local.to_string(),
            r.misses_remote.to_string(),
            ccnuma_sim::time::Span(r.stall_ns).to_string(),
        ]);
    }
    t
}

/// Renders a run's per-phase busy/memory/sync breakdown (aggregated over
/// processors), with memory stall split local/remote.
pub fn phase_breakdown_table(stats: &ccnuma_sim::stats::RunStats) -> Table {
    let mut t = Table::new(
        "per-phase time breakdown",
        &[
            "phase",
            "busy",
            "memory",
            "mem local",
            "mem remote",
            "sync",
            "share",
        ],
    );
    let grand: u64 = stats.phases.iter().map(|p| p.total().total_ns()).sum();
    for ph in &stats.phases {
        let tot = ph.total();
        if tot.total_ns() == 0 {
            continue;
        }
        let span = |ns| ccnuma_sim::time::Span(ns).to_string();
        t.row(vec![
            ph.name.clone(),
            span(tot.busy_ns),
            span(tot.mem_ns),
            span(tot.mem_local_ns),
            span(tot.mem_remote_ns),
            span(tot.sync_ns()),
            pct(tot.total_ns() as f64 / grand.max(1) as f64),
        ]);
    }
    t
}

/// Renders a trace's machine-wide gauge time series (miss rate, resource
/// occupancies, outstanding misses) as a table, one row per sample —
/// mainly useful via [`Table::to_csv`].
pub fn gauge_table(trace: &ccnuma_sim::trace::Trace) -> Table {
    let mut t = Table::new(
        "machine gauges",
        &[
            "t_us",
            "interval_us",
            "miss %",
            "hub occ %",
            "mem occ %",
            "router occ %",
            "outstanding",
        ],
    );
    for g in &trace.gauges {
        t.row(vec![
            format!("{:.3}", g.t as f64 / 1000.0),
            format!("{:.3}", g.interval_ns as f64 / 1000.0),
            format!("{:.2}", g.miss_pct),
            format!("{:.2}", g.hub_occ_pct),
            format!("{:.2}", g.mem_occ_pct),
            format!("{:.2}", g.router_occ_pct),
            format!("{:.2}", g.outstanding),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_aligns_columns() {
        let mut t = Table::new("demo", &["app", "speedup"]);
        t.row(vec!["fft".into(), "61.10".into()]);
        t.row(vec!["water-nsq".into(), "9.00".into()]);
        let s = t.to_string();
        assert!(s.contains("== demo =="));
        // All data lines have the same width.
        let lens: Vec<usize> = s.lines().skip(1).map(|l| l.chars().count()).collect();
        assert!(lens.windows(2).all(|w| w[0] == w[1]), "{s}");
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_mismatch_panics() {
        Table::new("t", &["a", "b"]).row(vec!["x".into()]);
    }

    #[test]
    fn csv_escapes() {
        let mut t = Table::new("t", &["a", "b"]);
        t.row(vec!["x,y".into(), "say \"hi\"".into()]);
        let csv = t.to_csv();
        assert_eq!(csv.lines().nth(1).unwrap(), "\"x,y\",\"say \"\"hi\"\"\"");
    }

    #[test]
    fn csv_escapes_newlines_and_quoted_headers() {
        let mut t = Table::new("t", &["plain", "has,comma"]);
        t.row(vec!["line1\nline2".into(), "ok".into()]);
        let csv = t.to_csv();
        // Header with a comma is quoted; embedded newline is kept inside
        // one quoted field (so the record spans two physical lines).
        assert_eq!(csv, "plain,\"has,comma\"\n\"line1\nline2\",ok\n");
    }

    #[test]
    fn empty_table_renders_headers_only() {
        let t = Table::new("empty", &["a", "b"]);
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
        assert_eq!(t.to_csv(), "a,b\n");
        let s = t.to_string();
        assert!(s.contains("== empty =="));
        assert!(s.contains("| a | b |"));
        // Title, header line, separator — and nothing else.
        assert_eq!(s.lines().count(), 3);
    }

    #[test]
    fn helpers_format() {
        assert_eq!(pct(0.613), "61.3%");
        assert_eq!(f2(1.005), "1.00");
    }

    #[test]
    fn continuum_buckets() {
        use ccnuma_sim::stats::{ProcStats, RunStats};
        let procs: Vec<ProcStats> = (0..8)
            .map(|i| ProcStats {
                busy_ns: 100 - i,
                mem_ns: i,
                ..Default::default()
            })
            .collect();
        let rs = RunStats {
            procs,
            wall_ns: 100,
            page_migrations: 0,
            resources: Default::default(),
            ranges: Vec::new(),
            phases: Vec::new(),
            trace: None,
        };
        let t = breakdown_continuum(&rs, 4);
        assert_eq!(t.len(), 4);
        let t1 = breakdown_continuum(&rs, 100); // clamped to nprocs
        assert_eq!(t1.len(), 8);
    }

    #[test]
    fn phase_table_skips_empty_phases() {
        use ccnuma_sim::stats::{PhaseBreakdown, PhaseStats, ProcStats, RunStats};
        let ph = |name: &str, busy: u64| PhaseStats {
            name: name.into(),
            procs: vec![PhaseBreakdown {
                busy_ns: busy,
                ..Default::default()
            }],
        };
        let rs = RunStats {
            procs: vec![ProcStats::default()],
            wall_ns: 0,
            page_migrations: 0,
            resources: Default::default(),
            ranges: Vec::new(),
            phases: vec![ph("main", 0), ph("solve", 300), ph("reduce", 100)],
            trace: None,
        };
        let t = phase_breakdown_table(&rs);
        assert_eq!(t.len(), 2, "the empty main phase is omitted");
        let csv = t.to_csv();
        assert!(csv.contains("solve") && csv.contains("75.0%"), "{csv}");
    }
}
