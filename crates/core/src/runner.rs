//! Running workloads on simulated machines with cached sequential
//! baselines — the measurement harness of the study.

use std::collections::HashMap;

use ccnuma_sim::config::MachineConfig;
use ccnuma_sim::critpath::CritReport;
use ccnuma_sim::error::SimError;
use ccnuma_sim::machine::Machine;
use ccnuma_sim::sanitize::SanitizeReport;
use ccnuma_sim::stats::RunStats;
use ccnuma_sim::time::Ns;
use ccnuma_sim::trace::{Trace, TraceConfig};
use splash_apps::common::Workload;

use crate::metrics;

/// An error while running a study measurement.
#[derive(Debug)]
#[non_exhaustive]
pub enum StudyError {
    /// The simulation failed (configuration, deadlock, panic).
    Sim(SimError),
    /// The workload ran but produced a wrong result.
    Verify(String),
}

impl std::fmt::Display for StudyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StudyError::Sim(e) => write!(f, "simulation failed: {e}"),
            StudyError::Verify(msg) => write!(f, "result verification failed: {msg}"),
        }
    }
}

impl std::error::Error for StudyError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StudyError::Sim(e) => Some(e),
            StudyError::Verify(_) => None,
        }
    }
}

impl From<SimError> for StudyError {
    fn from(e: SimError) -> Self {
        StudyError::Sim(e)
    }
}

/// One verified measurement.
#[derive(Debug, Clone)]
pub struct RunRecord {
    /// Workload name (e.g. `"fft"`, `"barnes/merge"`).
    pub app: String,
    /// Problem description (e.g. `"2^14 points"`).
    pub problem: String,
    /// Processors used.
    pub nprocs: usize,
    /// Parallel wall-clock (virtual ns).
    pub wall_ns: Ns,
    /// Sequential baseline wall-clock (virtual ns).
    pub seq_ns: Ns,
    /// Full per-processor statistics of the parallel run.
    pub stats: RunStats,
}

impl RunRecord {
    /// Speedup over the sequential baseline.
    pub fn speedup(&self) -> f64 {
        metrics::speedup(self.seq_ns, self.wall_ns)
    }

    /// Parallel efficiency (speedup / processors).
    pub fn efficiency(&self) -> f64 {
        metrics::efficiency(self.seq_ns, self.wall_ns, self.nprocs)
    }
}

/// The measurement harness: builds machines, runs workloads, verifies
/// results, and caches sequential baselines per (app, problem, machine
/// fingerprint).
#[derive(Debug)]
pub struct Runner {
    /// Cache size of the scaled machine (see
    /// [`MachineConfig::origin2000_scaled`]).
    cache_bytes: usize,
    baselines: HashMap<(String, String, String), Ns>,
    /// When set, parallel runs are traced with this configuration and the
    /// resulting traces collected in [`Runner::traces`].
    trace: Option<TraceConfig>,
    traces: Vec<(String, Trace)>,
    /// When true, parallel runs classify misses and each run's attribution
    /// JSON is collected in `attribs`.
    attrib: bool,
    attribs: Vec<(String, String)>,
    /// When true, parallel runs race-check their event stream and each
    /// run's [`SanitizeReport`] is collected in `sanitizes`.
    sanitize: bool,
    sanitizes: Vec<(String, SanitizeReport)>,
    /// When true, parallel runs profile their critical path and each
    /// run's [`CritReport`] is collected in `critpaths`.
    critpath: bool,
    critpaths: Vec<(String, CritReport)>,
    /// When set, parallel runs execute under the seeded schedule
    /// perturbation; sequential baselines always stay unperturbed.
    schedule_seed: Option<u64>,
}

impl Runner {
    /// A runner whose machines use `cache_bytes` of L2 per processor.
    pub fn new(cache_bytes: usize) -> Self {
        Runner {
            cache_bytes,
            baselines: HashMap::new(),
            trace: None,
            traces: Vec::new(),
            attrib: false,
            attribs: Vec::new(),
            sanitize: false,
            sanitizes: Vec::new(),
            critpath: false,
            critpaths: Vec::new(),
            schedule_seed: None,
        }
    }

    /// Enables (or, with `None`, disables) event tracing of parallel runs.
    /// Each traced run's [`Trace`] is collected under a
    /// `"app/problem/NNp"` label; drain them with [`Runner::take_traces`].
    /// Sequential baseline runs are never traced.
    pub fn set_trace(&mut self, trace: Option<TraceConfig>) {
        self.trace = trace;
    }

    /// Whether event tracing of parallel runs is currently enabled.
    pub fn trace_enabled(&self) -> bool {
        self.trace.is_some()
    }

    /// The traces collected so far, labelled `"app/problem/NNp"`, without
    /// draining them.
    pub fn traces(&self) -> &[(String, Trace)] {
        &self.traces
    }

    /// Takes the traces collected so far, labelled `"app/problem/NNp"`.
    pub fn take_traces(&mut self) -> Vec<(String, Trace)> {
        std::mem::take(&mut self.traces)
    }

    /// Enables (or disables) miss-classification and stall attribution of
    /// parallel runs. While enabled, every parallel run forces
    /// [`MachineConfig::classify_misses`] and its attribution JSON (see
    /// [`crate::report::attrib_json`]) is collected under an
    /// `"app/problem/NNp"` label; drain them with [`Runner::take_attribs`].
    pub fn set_attrib(&mut self, on: bool) {
        self.attrib = on;
    }

    /// Whether stall attribution of parallel runs is currently enabled.
    pub fn attrib_enabled(&self) -> bool {
        self.attrib
    }

    /// Takes the attribution JSON documents collected so far, labelled
    /// `"app/problem/NNp"`.
    pub fn take_attribs(&mut self) -> Vec<(String, String)> {
        std::mem::take(&mut self.attribs)
    }

    /// Enables (or disables) happens-before sanitizing of parallel runs.
    /// While enabled, every parallel run forces
    /// [`MachineConfig::sanitize`] on and the resulting
    /// [`SanitizeReport`] is collected under an `"app/problem/NNp"`
    /// label; drain them with [`Runner::take_sanitizes`]. Sanitizing is
    /// observational: it never changes simulated timing.
    pub fn set_sanitize(&mut self, on: bool) {
        self.sanitize = on;
    }

    /// Whether happens-before sanitizing of parallel runs is enabled.
    pub fn sanitize_enabled(&self) -> bool {
        self.sanitize
    }

    /// Takes the sanitize reports collected so far, labelled
    /// `"app/problem/NNp"`.
    pub fn take_sanitizes(&mut self) -> Vec<(String, SanitizeReport)> {
        std::mem::take(&mut self.sanitizes)
    }

    /// Enables (or disables) critical-path profiling of parallel runs.
    /// While enabled, every parallel run forces
    /// [`MachineConfig::critpath`] on and the resulting [`CritReport`]
    /// is collected under an `"app/problem/NNp"` label; drain them with
    /// [`Runner::take_critpaths`]. Profiling is observational: it never
    /// changes simulated timing.
    pub fn set_critpath(&mut self, on: bool) {
        self.critpath = on;
    }

    /// Whether critical-path profiling of parallel runs is enabled.
    pub fn critpath_enabled(&self) -> bool {
        self.critpath
    }

    /// Takes the critical-path reports collected so far, labelled
    /// `"app/problem/NNp"`.
    pub fn take_critpaths(&mut self) -> Vec<(String, CritReport)> {
        std::mem::take(&mut self.critpaths)
    }

    /// Sets (or, with `None`, clears) the schedule-perturbation seed.
    /// While set, every parallel run executes under
    /// [`ScheduleConfig::random`](ccnuma_sim::schedule::ScheduleConfig::random)
    /// with this seed — a different but bit-reproducible interleaving.
    /// Sequential baselines are never perturbed: speedups stay measured
    /// against the one unperturbed denominator.
    pub fn set_schedule_seed(&mut self, seed: Option<u64>) {
        self.schedule_seed = seed;
    }

    /// The schedule-perturbation seed currently applied to parallel runs.
    pub fn schedule_seed(&self) -> Option<u64> {
        self.schedule_seed
    }

    /// The default scaled machine configuration for `nprocs` processors.
    pub fn machine_for(&self, nprocs: usize) -> MachineConfig {
        MachineConfig::origin2000_scaled(nprocs, self.cache_bytes)
    }

    fn fingerprint(cfg: &MachineConfig) -> String {
        // The baseline depends on everything that affects a uniprocessor
        // run: cache geometry, latencies, page policy, cost model.
        format!(
            "{}b/{}w/{}l/{}pg/{:?}/{}mem/{}",
            cfg.cache.size_bytes,
            cfg.cache.assoc,
            cfg.cache.line_bytes,
            cfg.page_bytes,
            cfg.placement,
            cfg.mem_per_node_bytes,
            cfg.latency.name,
        ) + &format!("/{}ns", cfg.latency.local_ns)
    }

    /// Runs `workload` on a machine configured by `cfg`, verifying the
    /// result.
    ///
    /// # Errors
    ///
    /// Returns [`StudyError::Sim`] on simulation failure and
    /// [`StudyError::Verify`] if the computed result is wrong.
    pub fn run_on(
        &mut self,
        workload: &dyn Workload,
        cfg: MachineConfig,
    ) -> Result<RunRecord, StudyError> {
        let seq_ns = self.sequential_ns(workload, &cfg)?;
        let mut cfg = cfg;
        if let Some(tc) = &self.trace {
            cfg.trace = tc.clone();
        }
        if self.attrib {
            cfg.classify_misses = true;
        }
        if self.sanitize {
            cfg.sanitize.enabled = true;
        }
        if self.critpath {
            cfg.critpath = true;
        }
        if let Some(seed) = self.schedule_seed {
            cfg.schedule = Some(ccnuma_sim::schedule::ScheduleConfig::random(seed));
        }
        let (wall_ns, mut stats) = Self::execute(workload, cfg.clone())?;
        let label = format!("{}/{}/{}p", workload.name(), workload.problem(), cfg.nprocs);
        if let Some(trace) = stats.trace.take() {
            self.traces.push((label.clone(), trace));
        }
        if self.attrib {
            let json = crate::report::attrib_json(&label, &stats);
            self.attribs.push((label.clone(), json));
        }
        if let Some(rep) = stats.sanitize.clone() {
            self.sanitizes.push((label.clone(), rep));
        }
        if let Some(rep) = stats.critpath.clone() {
            self.critpaths.push((label, rep));
        }
        Ok(RunRecord {
            app: workload.name(),
            problem: workload.problem(),
            nprocs: cfg.nprocs,
            wall_ns,
            seq_ns,
            stats,
        })
    }

    /// Runs `workload` on the default scaled machine with `nprocs`
    /// processors.
    ///
    /// # Errors
    ///
    /// As [`Runner::run_on`].
    pub fn run(&mut self, workload: &dyn Workload, nprocs: usize) -> Result<RunRecord, StudyError> {
        self.run_on(workload, self.machine_for(nprocs))
    }

    /// The cached sequential (1-processor) baseline for `workload` on a
    /// machine like `cfg`.
    ///
    /// # Errors
    ///
    /// As [`Runner::run_on`].
    pub fn sequential_ns(
        &mut self,
        workload: &dyn Workload,
        cfg: &MachineConfig,
    ) -> Result<Ns, StudyError> {
        let key = (workload.name(), workload.problem(), Self::fingerprint(cfg));
        if let Some(&ns) = self.baselines.get(&key) {
            return Ok(ns);
        }
        let mut seq_cfg = cfg.clone();
        seq_cfg.nprocs = 1;
        seq_cfg.mapping = ccnuma_sim::mapping::ProcessMapping::Linear;
        // The baseline is the unperturbed denominator: one cached run
        // shared by every schedule seed of the cell.
        seq_cfg.schedule = None;
        let (ns, _) = Self::execute(workload, seq_cfg)?;
        self.baselines.insert(key, ns);
        Ok(ns)
    }

    fn execute(workload: &dyn Workload, cfg: MachineConfig) -> Result<(Ns, RunStats), StudyError> {
        execute_workload(workload, cfg)
    }
}

/// Runs `workload` once on a machine configured by `cfg`, verifying the
/// computed result, and returns the wall-clock and full statistics.
///
/// This is the stateless core of [`Runner::run_on`] — it needs no `&mut
/// Runner`, holds no caches, and everything it touches is plain data, so
/// parallel drivers (the `sweep` engine) can call it concurrently from
/// many host threads, constructing the workload inside each worker.
///
/// # Errors
///
/// Returns [`StudyError::Sim`] on simulation failure and
/// [`StudyError::Verify`] if the computed result is wrong.
pub fn execute_workload(
    workload: &dyn Workload,
    cfg: MachineConfig,
) -> Result<(Ns, RunStats), StudyError> {
    let mut machine = Machine::new(cfg)?;
    let job = workload.build(&mut machine);
    let body = job.body;
    let stats = machine.run(move |ctx| body(ctx))?;
    (job.verify)().map_err(StudyError::Verify)?;
    Ok((stats.wall_ns, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use splash_apps::fft::Fft;
    use splash_apps::sor::Sor;

    #[test]
    fn run_produces_sane_speedup() {
        let mut r = Runner::new(64 << 10);
        let rec = r.run(&Fft::new(14), 8).unwrap();
        assert!(rec.speedup() > 1.5, "speedup {}", rec.speedup());
        assert!(rec.efficiency() <= 1.5);
        assert_eq!(rec.nprocs, 8);
        assert_eq!(rec.app, "fft");
    }

    #[test]
    fn baselines_are_cached() {
        let mut r = Runner::new(64 << 10);
        let w = Sor::new(16);
        let cfg = r.machine_for(4);
        let a = r.sequential_ns(&w, &cfg).unwrap();
        let before = r.baselines.len();
        let b = r.sequential_ns(&w, &cfg).unwrap();
        assert_eq!(a, b);
        assert_eq!(r.baselines.len(), before);
    }

    #[test]
    fn different_machines_get_different_baselines() {
        let mut r = Runner::new(64 << 10);
        let w = Sor::new(16);
        let cfg_a = r.machine_for(4);
        let mut cfg_b = cfg_a.clone();
        cfg_b.cache = ccnuma_sim::config::CacheConfig::scaled(16 << 10);
        r.sequential_ns(&w, &cfg_a).unwrap();
        r.sequential_ns(&w, &cfg_b).unwrap();
        assert_eq!(r.baselines.len(), 2);
    }

    #[test]
    fn attrib_collects_labelled_json() {
        let mut r = Runner::new(64 << 10);
        assert!(!r.attrib_enabled());
        r.set_attrib(true);
        let w = Sor::new(16);
        r.run(&w, 4).unwrap();
        let attribs = r.take_attribs();
        assert_eq!(attribs.len(), 1);
        let (label, json) = &attribs[0];
        assert!(
            label.starts_with("sor/") && label.ends_with("/4p"),
            "{label}"
        );
        assert!(json.contains("\"version\": 1"));
        assert!(json.contains("\"resources\""));
        // Classification was forced on: the causes section carries counts.
        assert!(json.contains("\"cold\""), "{json}");
        // Drained: a second take returns nothing.
        assert!(r.take_attribs().is_empty());
    }

    #[test]
    fn verification_failures_surface() {
        use splash_apps::common::Job;
        struct Broken;
        impl Workload for Broken {
            fn name(&self) -> String {
                "broken".into()
            }
            fn problem(&self) -> String {
                "n/a".into()
            }
            fn build(&self, _m: &mut Machine) -> Job {
                Job::new(|_ctx| {}, || Err("intentionally wrong".into()))
            }
        }
        let mut r = Runner::new(64 << 10);
        match r.run(&Broken, 2) {
            Err(StudyError::Verify(msg)) => assert!(msg.contains("intentionally")),
            other => panic!("expected verify error, got {other:?}"),
        }
    }
}
