//! The paper's §5.3 programming guidelines for scalability and performance
//! portability, encoded as a documented catalog with the applications that
//! motivated each one.

/// One of the paper's early programming guidelines (§5.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum Guideline {
    /// Partition as statically, and with as much control over locality, as
    /// possible — even at the cost of available parallelism. Very dynamic
    /// load-balancing approaches often don't scale.
    PartitionStatically,
    /// Load balance is the biggest problem at moderate scale, but at large
    /// scale (or on clusters) communication — often via the contention it
    /// causes — becomes the greater bottleneck.
    CommunicationBeatsBalanceAtScale,
    /// Separate partitions into large, well-structured chunks; fine-grained
    /// read-write sharing that is fine at 32 processors breaks down beyond.
    SeparatePartitions,
    /// Structure algorithms to be single-writer per datum (or cache line,
    /// or page): multiple writers mean both communication and — on SVM —
    /// very expensive synchronization.
    SingleWriter,
    /// Beware loss of locality *across* computational phases; trading some
    /// in-phase load balance or communication to preserve it is often a
    /// win.
    CrossPhaseLocality,
    /// Given a choice, exploit temporal locality on *remote* data rather
    /// than local on CC-NUMA machines: remote misses are the expensive
    /// ones.
    RemoteTemporalLocality,
    /// Interact well with large system granularities (cache lines, pages),
    /// even at the cost of inherent algorithm properties.
    RespectGranularity,
    /// Reduce the need for task stealing where synchronization is
    /// expensive.
    ReduceStealing,
    /// Structure and distribute data properly across physical memories.
    DistributeData,
}

impl Guideline {
    /// All guidelines, in the paper's order of presentation.
    pub const ALL: [Guideline; 9] = [
        Guideline::PartitionStatically,
        Guideline::CommunicationBeatsBalanceAtScale,
        Guideline::SeparatePartitions,
        Guideline::SingleWriter,
        Guideline::CrossPhaseLocality,
        Guideline::RemoteTemporalLocality,
        Guideline::RespectGranularity,
        Guideline::ReduceStealing,
        Guideline::DistributeData,
    ];

    /// One-line description.
    pub fn description(self) -> &'static str {
        match self {
            Guideline::PartitionStatically => {
                "partition as statically as possible, even sacrificing available parallelism"
            }
            Guideline::CommunicationBeatsBalanceAtScale => {
                "at large scale, communication (contention) outweighs load balance"
            }
            Guideline::SeparatePartitions => {
                "separate computation and data into large well-structured partitions"
            }
            Guideline::SingleWriter => "make each datum single-writer within a phase",
            Guideline::CrossPhaseLocality => "preserve locality across computational phases",
            Guideline::RemoteTemporalLocality => {
                "prefer temporal locality on remote data over local data"
            }
            Guideline::RespectGranularity => {
                "match partitioning to system granularities (lines, pages)"
            }
            Guideline::ReduceStealing => "reduce task stealing where synchronization is expensive",
            Guideline::DistributeData => "distribute data properly across memories",
        }
    }

    /// Application ids (see [`crate::experiments::APP_IDS`]) whose
    /// restructuring in the paper exemplifies this guideline.
    pub fn exemplars(self) -> &'static [&'static str] {
        match self {
            Guideline::PartitionStatically => &["infer", "shearwarp"],
            Guideline::CommunicationBeatsBalanceAtScale => &["barnes"],
            Guideline::SeparatePartitions => &["barnes"],
            Guideline::SingleWriter => &["barnes", "shearwarp"],
            Guideline::CrossPhaseLocality => &["shearwarp"],
            Guideline::RemoteTemporalLocality => &["water-nsq"],
            Guideline::RespectGranularity => &["ocean"],
            Guideline::ReduceStealing => &["volrend", "raytrace"],
            Guideline::DistributeData => &["fft", "radix", "ocean"],
        }
    }
}

impl std::fmt::Display for Guideline {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.description())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::APP_IDS;

    #[test]
    fn every_guideline_has_known_exemplars() {
        for g in Guideline::ALL {
            assert!(!g.description().is_empty());
            assert!(!g.exemplars().is_empty(), "{g:?}");
            for app in g.exemplars() {
                assert!(APP_IDS.contains(app), "{app} not a known application");
            }
        }
    }

    #[test]
    fn guidelines_are_distinct() {
        let set: std::collections::HashSet<_> = Guideline::ALL.iter().collect();
        assert_eq!(set.len(), Guideline::ALL.len());
    }
}
