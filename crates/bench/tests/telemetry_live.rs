//! Live telemetry, end to end: the observer-passivity pin (telemetry
//! on or off, a run is bit-identical), the crash-safe epoch log, the
//! HTTP endpoints over a real sweep, and trace-gauge reconciliation.

use std::path::PathBuf;
use std::time::Duration;

use ccnuma_sweep::matrix::MatrixSpec;
use ccnuma_sweep::{sweep, SweepConfig};
use ccnuma_telemetry::hub::{Hub, HubConfig};
use scaling_study::runner::execute_workload;
use study_bench::live;

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("bench-telemetry-{}-{name}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// The pin behind the whole design: telemetry observes and never
/// participates. The same cell, simulated with no observer and then
/// with the full stack running (registry refresher at a hot 2 ms
/// epoch, HTTP server, JSONL epoch log), must produce bit-identical
/// `RunStats`, the same wall clock, the same attribution JSON, and the
/// same `RunKey` hash.
#[test]
fn telemetry_is_observer_passive() {
    let spec = MatrixSpec::parse("apps=fft versions=orig procs=4 attrib=on")
        .unwrap()
        .cells()
        .remove(0);
    let key_off = spec.key().hash_hex();
    let (ns_off, stats_off) =
        execute_workload(spec.workload().unwrap().as_ref(), spec.machine()).expect("bare run");
    let attrib_off = scaling_study::report::attrib_json(&spec.label(), &stats_off);

    let wiring = live::Wiring::start(Duration::from_millis(2));
    let log = temp_dir("passive").join("epochs.jsonl");
    let hub = Hub::start(
        wiring.registry.clone(),
        HubConfig {
            epoch: Duration::from_millis(2),
            addr: Some("127.0.0.1:0".into()),
            log_path: Some(log),
        },
    )
    .expect("hub starts");
    let (ns_on, stats_on) =
        execute_workload(spec.workload().unwrap().as_ref(), spec.machine()).expect("observed run");
    let key_on = spec.key().hash_hex();
    wiring.stop();
    hub.shutdown();

    assert_eq!(ns_off, ns_on, "wall clock must not see the observer");
    assert_eq!(stats_off, stats_on, "RunStats must be bit-identical");
    assert_eq!(
        attrib_off,
        scaling_study::report::attrib_json(&spec.label(), &stats_on),
        "attribution JSON must be bit-identical"
    );
    assert_eq!(key_off, key_on, "RunKey is telemetry-independent");
}

/// A real quick sweep with the epoch log on: every JSONL record must
/// parse, `seq` must be strictly increasing, `t_ms` monotone, and the
/// final record must account for every cell.
#[test]
fn live_log_is_parseable_and_monotone() {
    let dir = temp_dir("log");
    let log = dir.join("epochs.jsonl");
    let matrix = MatrixSpec::parse("apps=fft versions=orig procs=2,4").unwrap();
    let cells = matrix.cells().len();

    let wiring = live::Wiring::start(Duration::from_millis(5));
    let hub = Hub::start(
        wiring.registry.clone(),
        HubConfig {
            epoch: Duration::from_millis(5),
            addr: None,
            log_path: Some(log.clone()),
        },
    )
    .expect("hub starts");
    let mut cfg = SweepConfig {
        jobs: 2,
        store_path: dir.join("results.jsonl"),
        ..Default::default()
    };
    cfg.events = Some(wiring.event_recorder(cells, Some(hub.handle()), false));
    let out = sweep(&matrix, &cfg).expect("sweep runs");
    assert_eq!(out.executed, cells);
    wiring.ingest_traces(&out.gauges);
    wiring.stop();
    hub.shutdown();

    let text = std::fs::read_to_string(&log).expect("log written");
    let lines: Vec<&str> = text.lines().collect();
    assert!(!lines.is_empty(), "at least the final epoch is logged");
    let mut prev_seq = 0u64;
    let mut prev_t = 0u64;
    for line in &lines {
        let rec = live::parse_epoch_record(line)
            .unwrap_or_else(|| panic!("unparseable epoch record: {line}"));
        assert!(rec.seq > prev_seq, "seq must strictly increase");
        assert!(rec.t_ms >= prev_t, "t_ms must be monotone");
        prev_seq = rec.seq;
        prev_t = rec.t_ms;
    }
    let last = live::last_log_record(&log).expect("final record");
    assert_eq!(
        last.get("sweep_cells_done_total{status=ok}"),
        Some(cells as f64),
        "final epoch accounts for every cell: {last:?}"
    );
    assert!(
        last.get("sim_runs_finished_total").unwrap_or(0.0) >= cells as f64,
        "sim-layer counters flowed into the same log: {last:?}"
    );
}

/// The HTTP endpoints over real sweep data: /metrics is well-formed
/// Prometheus exposition, /snapshot parses as an epoch record, and
/// both agree with what the sweep did.
#[test]
fn endpoints_serve_real_sweep_data() {
    use std::io::{Read, Write};

    let dir = temp_dir("http");
    let matrix = MatrixSpec::parse("apps=fft versions=orig procs=2").unwrap();
    let wiring = live::Wiring::start(Duration::from_millis(5));
    let hub = Hub::start(
        wiring.registry.clone(),
        HubConfig {
            epoch: Duration::from_millis(5),
            addr: Some("127.0.0.1:0".into()),
            log_path: None,
        },
    )
    .expect("hub starts");
    let addr = hub.local_addr().expect("bound");

    let mut cfg = SweepConfig {
        store_path: dir.join("results.jsonl"),
        ..Default::default()
    };
    cfg.events = Some(wiring.event_recorder(1, Some(hub.handle()), false));
    sweep(&matrix, &cfg).expect("sweep runs");
    // One refresher epoch so the registry has mirrored the final state.
    std::thread::sleep(Duration::from_millis(30));

    let mut s = std::net::TcpStream::connect(addr).unwrap();
    write!(
        s,
        "GET /metrics HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n"
    )
    .unwrap();
    let mut metrics = String::new();
    s.read_to_string(&mut metrics).unwrap();
    assert!(metrics.starts_with("HTTP/1.1 200 OK\r\n"), "{metrics}");
    assert!(
        metrics.contains("# TYPE sim_events_total counter"),
        "{metrics}"
    );
    assert!(
        metrics.contains("sweep_cells_done_total{status=\"ok\"} 1"),
        "{metrics}"
    );
    assert!(
        metrics.contains("sweep_cell_host_ms_bucket{le=\"+Inf\"} 1"),
        "{metrics}"
    );

    let snap = live::fetch_snapshot(&addr.to_string()).expect("snapshot parses");
    assert_eq!(snap.get("sweep_cells_done_total{status=ok}"), Some(1.0));
    assert!(
        snap.get("sim_accesses_total").unwrap_or(0.0) > 0.0,
        "{snap:?}"
    );

    wiring.stop();
    hub.shutdown();
}

/// Trace gauges flow from a really-traced run into the registry and
/// reconcile exactly — one source of truth for occupancy numbers.
#[test]
fn trace_gauges_reconcile_from_a_real_run() {
    let dir = temp_dir("gauges");
    let matrix = MatrixSpec::parse("apps=fft versions=orig procs=4 trace=on").unwrap();
    let cfg = SweepConfig {
        store_path: dir.join("results.jsonl"),
        ..Default::default()
    };
    let out = sweep(&matrix, &cfg).expect("sweep runs");
    assert_eq!(out.gauges.len(), 1, "one traced cell hands back gauges");
    let (label, samples) = &out.gauges[0];
    assert!(!samples.is_empty(), "traced run sampled at least one epoch");

    let registry = ccnuma_telemetry::Registry::new();
    let last = live::ingest_gauges(&registry, label, samples).expect("samples ingest");
    assert_eq!(live::reconcile(&registry, label, &last), Ok(()));
}
