//! The host profiler, end to end: the observer-passivity pin
//! (`cfg.profile` on or off, a run is bit-identical), the region
//! coverage of a profiled run, and the exports over real data.
//!
//! The profiler's aggregation pool is process-global, so every test
//! touching it serializes on `PROF_LOCK`.

use std::sync::Mutex;

use ccnuma_sim::prof::{self, Region};
use ccnuma_sweep::matrix::MatrixSpec;
use scaling_study::runner::execute_workload;

static PROF_LOCK: Mutex<()> = Mutex::new(());

/// The pin the tentpole stands on: `profile` observes host time and
/// never participates in the simulation. The same cell with the knob
/// off and on must produce bit-identical `RunStats`, the same virtual
/// wall clock, and the same `RunKey` hash — while the profiled run
/// actually collects data.
#[test]
fn profile_knob_is_observer_passive() {
    let _g = PROF_LOCK.lock().unwrap();
    let spec = MatrixSpec::parse("apps=ocean versions=orig procs=4")
        .unwrap()
        .cells()
        .remove(0);
    let w = spec.workload().unwrap();
    let cfg_off = spec.machine();
    let mut cfg_on = spec.machine();
    cfg_on.profile = true;
    assert_eq!(
        cfg_off.stable_fingerprint(),
        cfg_on.stable_fingerprint(),
        "profile is excluded from the stable fingerprint (RunKey)"
    );

    prof::reset();
    let (ns_off, stats_off) = execute_workload(w.as_ref(), cfg_off).expect("bare run");
    assert!(
        prof::snapshot().is_empty(),
        "profile off must record nothing"
    );

    let (ns_on, stats_on) = execute_workload(w.as_ref(), cfg_on).expect("profiled run");
    assert_eq!(ns_off, ns_on, "wall clock must not see the profiler");
    assert_eq!(stats_off, stats_on, "RunStats must be bit-identical");

    let p = prof::take();
    assert!(!p.is_empty(), "profile on must collect data");
    let dispatch = &p.regions[Region::EngineDispatch.index()];
    assert_eq!(
        dispatch.calls, stats_on.events,
        "one dispatch span per engine event"
    );
    let memsys = &p.regions[Region::MemsysService.index()];
    assert!(memsys.calls > 0, "memsys service spans under dispatch");
    // Self/child accounting: dispatch's self time excludes nested
    // memsys time, so it is strictly below its total.
    assert!(
        dispatch.self_ns <= dispatch.total_ns,
        "self <= total for the root region"
    );
    // Optional subsystems were off, so their regions stayed silent.
    for r in [Region::Attrib, Region::Sanitize, Region::Trace] {
        assert_eq!(p.regions[r.index()].calls, 0, "{} off", r.name());
    }
}

/// A profiled run's exports render real data: the text table names the
/// hot regions, the collapsed form has `parent;child count` lines, and
/// the Chrome trace is a complete JSON document.
#[test]
fn profiled_run_exports_render() {
    let _g = PROF_LOCK.lock().unwrap();
    let spec = MatrixSpec::parse("apps=fft versions=orig procs=4")
        .unwrap()
        .cells()
        .remove(0);
    let mut cfg = spec.machine();
    cfg.profile = true;
    prof::reset();
    execute_workload(spec.workload().unwrap().as_ref(), cfg).expect("profiled run");
    let p = prof::take();

    let table = p.text_table();
    assert!(table.contains("engine_dispatch"), "{table}");
    assert!(table.contains("memsys_service"), "{table}");

    let collapsed = p.collapsed();
    assert!(
        collapsed
            .lines()
            .any(|l| l.starts_with("engine_dispatch;memsys_service ")),
        "{collapsed}"
    );

    let chrome = p.chrome_trace();
    assert!(chrome.starts_with("{\"traceEvents\":["), "{chrome}");
    assert!(chrome.contains("\"engine_dispatch\""), "{chrome}");
    assert!(chrome.trim_end().ends_with('}'), "{chrome}");
}

/// Cumulative counters only grow, even across `take()`, so the live
/// telemetry mirror never sees them move backwards.
#[test]
fn cumulative_counters_survive_take() {
    let _g = PROF_LOCK.lock().unwrap();
    let spec = MatrixSpec::parse("apps=fft versions=orig procs=2")
        .unwrap()
        .cells()
        .remove(0);
    let mut cfg = spec.machine();
    cfg.profile = true;
    let (before, _) = prof::cumulative();
    execute_workload(spec.workload().unwrap().as_ref(), cfg.clone()).expect("first run");
    let _ = prof::take(); // drains the pool, not the cumulative view
    let (mid, _) = prof::cumulative();
    execute_workload(spec.workload().unwrap().as_ref(), cfg).expect("second run");
    let (after, _) = prof::cumulative();
    let i = Region::EngineDispatch.index();
    assert!(mid[i] >= before[i], "monotone across a run");
    assert!(after[i] > mid[i], "still growing after take()");
}
