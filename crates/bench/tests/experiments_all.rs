//! Every experiment `repro` advertises must actually run at quick scale
//! and produce at least one non-empty table — the guarantee behind
//! `repro all --quick`, checked through the same dispatch function the
//! binary uses so the catalog and the dispatcher cannot drift apart.

use scaling_study::experiments::Scale;
use study_bench::figures;

#[test]
fn every_advertised_experiment_runs_at_quick_scale() {
    let mut runner = figures::runner_for(Scale::Quick);
    for name in figures::EXPERIMENT_NAMES {
        let tables = figures::run_experiment(name, &mut runner, Scale::Quick)
            .unwrap_or_else(|| panic!("{name} is advertised but not dispatchable"))
            .unwrap_or_else(|e| panic!("{name} failed at quick scale: {e}"));
        assert!(!tables.is_empty(), "{name} produced no tables");
        for t in &tables {
            assert!(!t.title.is_empty(), "{name} produced an untitled table");
        }
    }
}

#[test]
fn unknown_experiments_are_rejected_not_dispatched() {
    let mut runner = figures::runner_for(Scale::Quick);
    for bogus in ["fig11", "table9", "", "al", "allx"] {
        assert!(
            figures::run_experiment(bogus, &mut runner, Scale::Quick).is_none(),
            "{bogus:?} must not dispatch"
        );
        assert!(!figures::is_experiment(bogus));
    }
}
