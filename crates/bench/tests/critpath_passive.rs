//! The critical-path profiler, end to end at the bench level: the
//! observer-passivity pin (`cfg.critpath` on or off, a run is
//! bit-identical), and the harness invariants `bench critpath` gates on
//! — the path partitioning the wall and the what-if projections
//! bracketing it — over a real matrix cell.

use ccnuma_sweep::matrix::MatrixSpec;
use scaling_study::runner::execute_workload;

/// The pin the tentpole stands on: `critpath` observes the dependency
/// structure of the run and never participates in it. The same cell
/// with the knob off and on must produce the same machine fingerprint
/// (and so the same RunKey), the same virtual wall clock, and
/// bit-identical `RunStats` once the report itself is set aside —
/// while the profiled run actually collects a path.
#[test]
fn critpath_knob_is_observer_passive() {
    let spec = MatrixSpec::parse("apps=ocean versions=orig procs=4")
        .unwrap()
        .cells()
        .remove(0);
    let w = spec.workload().unwrap();
    let cfg_off = spec.machine();
    let mut cfg_on = spec.machine();
    cfg_on.critpath = true;
    assert_eq!(
        cfg_off.stable_fingerprint(),
        cfg_on.stable_fingerprint(),
        "critpath is excluded from the stable fingerprint (RunKey)"
    );

    let (ns_off, stats_off) = execute_workload(w.as_ref(), cfg_off).expect("bare run");
    let (ns_on, mut stats_on) = execute_workload(w.as_ref(), cfg_on).expect("profiled run");
    assert_eq!(ns_off, ns_on, "wall clock must not see the profiler");
    assert!(stats_off.critpath.is_none(), "critpath off records nothing");
    let rep = stats_on.critpath.take().expect("critpath on collects");
    assert_eq!(stats_off, stats_on, "RunStats must be bit-identical");

    // The collected report satisfies the reconciliation the gate
    // relies on: the path partitions the wall to the nanosecond and
    // every projection is bracketed by [busy bound, measured].
    assert_eq!(rep.wall_ns, ns_on);
    assert_eq!(rep.total.total_ns(), ns_on, "path sums to wall");
    let measured = rep
        .whatif
        .iter()
        .find(|s| s.name == "measured")
        .expect("measured scenario");
    assert_eq!(measured.wall_ns, ns_on, "replay reproduces the wall");
    let busy_bound = stats_on.procs.iter().map(|p| p.busy_ns).max().unwrap();
    for s in &rep.whatif {
        assert!(s.wall_ns <= ns_on, "{}: projection ≤ measured", s.name);
        assert!(
            s.wall_ns >= busy_bound,
            "{}: projection ≥ busy bound",
            s.name
        );
    }
}
