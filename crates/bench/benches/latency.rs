//! Microbenchmarks of the simulator's memory-system hot paths, doubling as
//! a host-side performance regression net for the Table-1 latency probe.
//! Plain timing harness (no external benchmark framework): each case is
//! warmed up, then timed over a fixed iteration count.

use std::time::Instant;

use ccnuma_sim::config::MachineConfig;
use ccnuma_sim::latency::LatencyProfile;
use ccnuma_sim::memsys::{AccessKind, MemorySystem};
use study_bench::probes::measure_latencies;

fn bench<F: FnMut() -> R, R>(name: &str, iters: u32, mut f: F) {
    for _ in 0..iters / 10 + 1 {
        std::hint::black_box(f());
    }
    let t0 = Instant::now();
    for _ in 0..iters {
        std::hint::black_box(f());
    }
    let per = t0.elapsed().as_nanos() as f64 / f64::from(iters);
    println!("{name:<40} {per:>12.1} ns/iter ({iters} iters)");
}

fn main() {
    for profile in LatencyProfile::table1_machines() {
        let p = profile.clone();
        bench(&format!("table1_probe/{}", profile.name), 20, move || {
            measure_latencies(p.clone())
        });
    }

    {
        let cfg = MachineConfig::origin2000_scaled(8, 64 << 10);
        let perm: Vec<usize> = (0..8).collect();
        let mut mem = MemorySystem::new(&cfg, &perm);
        mem.access(0, 0x1000, AccessKind::Read, 0);
        let mut now = 1000u64;
        bench("memsys_access/cache_hit", 100_000, move || {
            now += 10;
            mem.access(0, 0x1000, AccessKind::Read, now)
        });
    }
    {
        let cfg = MachineConfig::origin2000_scaled(8, 64 << 10);
        let perm: Vec<usize> = (0..8).collect();
        let mut mem = MemorySystem::new(&cfg, &perm);
        let mut addr = 0u64;
        let mut now = 0u64;
        bench("memsys_access/local_miss_stream", 100_000, move || {
            addr += 128;
            now += 1000;
            mem.access(0, addr, AccessKind::Read, now)
        });
    }
    {
        let cfg = MachineConfig::origin2000_scaled(8, 64 << 10);
        let perm: Vec<usize> = (0..8).collect();
        let mut mem = MemorySystem::new(&cfg, &perm);
        let mut now = 0u64;
        let mut who = 0usize;
        bench("memsys_access/remote_dirty_pingpong", 100_000, move || {
            now += 2000;
            who = (who + 2) % 8;
            mem.access(who, 0x8000, AccessKind::Write, now)
        });
    }
}
