//! Criterion microbenchmarks of the simulator's memory-system hot paths,
//! doubling as a host-side performance regression net for the Table-1
//! latency probe.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use ccnuma_sim::config::MachineConfig;
use ccnuma_sim::latency::LatencyProfile;
use ccnuma_sim::memsys::{AccessKind, MemorySystem};
use study_bench::probes::measure_latencies;

fn bench_table1_probe(c: &mut Criterion) {
    let mut g = c.benchmark_group("table1_probe");
    for profile in LatencyProfile::table1_machines() {
        g.bench_with_input(BenchmarkId::from_parameter(profile.name), &profile, |b, p| {
            b.iter(|| measure_latencies(p.clone()))
        });
    }
    g.finish();
}

fn bench_access_paths(c: &mut Criterion) {
    let mut g = c.benchmark_group("memsys_access");
    g.bench_function("cache_hit", |b| {
        let cfg = MachineConfig::origin2000_scaled(8, 64 << 10);
        let perm: Vec<usize> = (0..8).collect();
        let mut mem = MemorySystem::new(&cfg, &perm);
        mem.access(0, 0x1000, AccessKind::Read, 0);
        let mut now = 1000u64;
        b.iter(|| {
            now += 10;
            mem.access(0, 0x1000, AccessKind::Read, now)
        });
    });
    g.bench_function("local_miss_stream", |b| {
        let cfg = MachineConfig::origin2000_scaled(8, 64 << 10);
        let perm: Vec<usize> = (0..8).collect();
        let mut mem = MemorySystem::new(&cfg, &perm);
        let mut addr = 0u64;
        let mut now = 0u64;
        b.iter(|| {
            addr += 128;
            now += 1000;
            mem.access(0, addr, AccessKind::Read, now)
        });
    });
    g.bench_function("remote_dirty_pingpong", |b| {
        let cfg = MachineConfig::origin2000_scaled(8, 64 << 10);
        let perm: Vec<usize> = (0..8).collect();
        let mut mem = MemorySystem::new(&cfg, &perm);
        let mut now = 0u64;
        let mut who = 0usize;
        b.iter(|| {
            now += 2000;
            who = (who + 2) % 8;
            mem.access(who, 0x8000, AccessKind::Write, now)
        });
    });
    g.finish();
}

criterion_group!(benches, bench_table1_probe, bench_access_paths);
criterion_main!(benches);
