//! Benchmarks of the §6.3 synchronization microprobes: lock and barrier
//! episodes under LL/SC vs at-memory fetch&op. Plain timing harness.

use std::time::Instant;

use ccnuma_sim::config::{BarrierImpl, LockImpl};
use study_bench::probes::{barrier_probe, lock_probe};

fn bench<F: FnMut() -> R, R>(name: &str, iters: u32, mut f: F) {
    std::hint::black_box(f());
    let t0 = Instant::now();
    for _ in 0..iters {
        std::hint::black_box(f());
    }
    let per = t0.elapsed().as_secs_f64() * 1e3 / f64::from(iters);
    println!("{name:<40} {per:>10.2} ms/iter ({iters} iters)");
}

fn main() {
    for imp in [LockImpl::TicketLlsc, LockImpl::TicketFetchOp] {
        bench(&format!("lock_probe_16p/{imp:?}"), 10, move || {
            lock_probe(imp, 16, 10)
        });
    }
    for imp in [
        BarrierImpl::TournamentLlsc,
        BarrierImpl::CentralLlsc,
        BarrierImpl::CentralFetchOp,
    ] {
        bench(&format!("barrier_probe_16p/{imp:?}"), 10, move || {
            barrier_probe(imp, 16, 10)
        });
    }
}
