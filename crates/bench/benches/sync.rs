//! Criterion benchmarks of the §6.3 synchronization microprobes: lock and
//! barrier episodes under LL/SC vs at-memory fetch&op.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use ccnuma_sim::config::{BarrierImpl, LockImpl};
use study_bench::probes::{barrier_probe, lock_probe};

fn bench_locks(c: &mut Criterion) {
    let mut g = c.benchmark_group("lock_probe_16p");
    g.sample_size(10);
    for imp in [LockImpl::TicketLlsc, LockImpl::TicketFetchOp] {
        g.bench_with_input(BenchmarkId::from_parameter(format!("{imp:?}")), &imp, |b, &i| {
            b.iter(|| lock_probe(i, 16, 10))
        });
    }
    g.finish();
}

fn bench_barriers(c: &mut Criterion) {
    let mut g = c.benchmark_group("barrier_probe_16p");
    g.sample_size(10);
    for imp in [BarrierImpl::TournamentLlsc, BarrierImpl::CentralLlsc, BarrierImpl::CentralFetchOp] {
        g.bench_with_input(BenchmarkId::from_parameter(format!("{imp:?}")), &imp, |b, &i| {
            b.iter(|| barrier_probe(i, 16, 10))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_locks, bench_barriers);
criterion_main!(benches);
