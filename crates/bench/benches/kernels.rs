//! Benchmarks of whole (small) application runs on the simulated machine —
//! one per workload family, guarding end-to-end harness performance. Plain
//! timing harness.

use std::time::Instant;

use scaling_study::runner::Runner;
use splash_apps::barnes::Barnes;
use splash_apps::fft::Fft;
use splash_apps::ocean::Ocean;
use splash_apps::radix::Radix;
use splash_apps::water_nsq::WaterNsq;

fn bench<F: FnMut() -> R, R>(name: &str, iters: u32, mut f: F) {
    std::hint::black_box(f());
    let t0 = Instant::now();
    for _ in 0..iters {
        std::hint::black_box(f());
    }
    let per = t0.elapsed().as_secs_f64() * 1e3 / f64::from(iters);
    println!("{name:<40} {per:>10.2} ms/iter ({iters} iters)");
}

fn main() {
    bench("app_run_8p/fft_2e10", 10, || {
        Runner::new(16 << 10).run(&Fft::new(10), 8).unwrap()
    });
    bench("app_run_8p/ocean_32", 10, || {
        Runner::new(16 << 10).run(&Ocean::new(32), 8).unwrap()
    });
    bench("app_run_8p/radix_8k", 10, || {
        Runner::new(16 << 10).run(&Radix::new(8 << 10), 8).unwrap()
    });
    bench("app_run_8p/barnes_256", 10, || {
        Runner::new(16 << 10).run(&Barnes::new(256), 8).unwrap()
    });
    bench("app_run_8p/water_nsq_128", 10, || {
        Runner::new(16 << 10).run(&WaterNsq::new(128), 8).unwrap()
    });
}
