//! Criterion benchmarks of whole (small) application runs on the simulated
//! machine — one per workload family, guarding end-to-end harness
//! performance.

use criterion::{criterion_group, criterion_main, Criterion};

use scaling_study::runner::Runner;
use splash_apps::barnes::Barnes;
use splash_apps::fft::Fft;
use splash_apps::ocean::Ocean;
use splash_apps::radix::Radix;
use splash_apps::water_nsq::WaterNsq;

fn bench_kernels(c: &mut Criterion) {
    let mut g = c.benchmark_group("app_run_8p");
    g.sample_size(10);
    g.bench_function("fft_2e10", |b| {
        b.iter(|| Runner::new(16 << 10).run(&Fft::new(10), 8).unwrap())
    });
    g.bench_function("ocean_32", |b| {
        b.iter(|| Runner::new(16 << 10).run(&Ocean::new(32), 8).unwrap())
    });
    g.bench_function("radix_8k", |b| {
        b.iter(|| Runner::new(16 << 10).run(&Radix::new(8 << 10), 8).unwrap())
    });
    g.bench_function("barnes_256", |b| {
        b.iter(|| Runner::new(16 << 10).run(&Barnes::new(256), 8).unwrap())
    });
    g.bench_function("water_nsq_128", |b| {
        b.iter(|| Runner::new(16 << 10).run(&WaterNsq::new(128), 8).unwrap())
    });
    g.finish();
}

criterion_group!(benches, bench_kernels);
criterion_main!(benches);
