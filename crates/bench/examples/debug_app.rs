//! Ad-hoc diagnostic: dump detailed counters for one workload run.
use scaling_study::experiments::{basic, Scale};
use scaling_study::runner::Runner;
use splash_apps::common::Workload;
use splash_apps::sample_sort::SampleSort;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let id = args.first().map(|s| s.as_str()).unwrap_or("radix");
    let np: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(32);
    let mut r = Runner::new(Scale::Full.cache_bytes());
    let w: Box<dyn Workload> = if id == "samplesort" {
        Box::new(SampleSort::new(
            std::env::args()
                .nth(3)
                .and_then(|s| s.parse().ok())
                .unwrap_or(512 << 10),
        ))
    } else {
        basic(id, Scale::Full)
    };
    let rec = r.run(w.as_ref(), np).unwrap();
    let s = &rec.stats;
    println!(
        "{} {} np={} speedup={:.2} eff={:.1}%",
        rec.app,
        rec.problem,
        np,
        rec.speedup(),
        100.0 * rec.efficiency()
    );
    println!("seq={} wall={}", rec.seq_ns, rec.wall_ns);
    let (b, m, sy) = s.avg_breakdown_pct();
    println!("busy={b:.1}% mem={m:.1}% sync={sy:.1}%");
    println!(
        "accesses={} hits={} local={} rclean={} rdirty={} upg={} invals={} wb={}",
        s.total(|p| p.accesses()),
        s.total(|p| p.hits),
        s.total(|p| p.misses_local),
        s.total(|p| p.misses_remote_clean),
        s.total(|p| p.misses_remote_dirty),
        s.total(|p| p.upgrades),
        s.total(|p| p.invals_sent),
        s.total(|p| p.writebacks)
    );
    println!(
        "mem_ns={} mem_local={} mem_remote={} atomics={} barriers={} lockacq={}",
        s.total(|p| p.mem_ns),
        s.total(|p| p.mem_local_ns),
        s.total(|p| p.mem_remote_ns),
        s.total(|p| p.atomics),
        s.total(|p| p.barriers),
        s.total(|p| p.lock_acquires)
    );
    println!(
        "resource busy/wait: hubs={}/{} mems={}/{} routers={}/{} metas={}/{}",
        s.resources[0].busy_ns,
        s.resources[0].wait_ns,
        s.resources[1].busy_ns,
        s.resources[1].wait_ns,
        s.resources[2].busy_ns,
        s.resources[2].wait_ns,
        s.resources[3].busy_ns,
        s.resources[3].wait_ns
    );
    let mn = s.procs.iter().map(|p| p.total_ns()).min().unwrap();
    let mx = s.procs.iter().map(|p| p.total_ns()).max().unwrap();
    println!("proc total ns min={mn} max={mx}");
    let mut by_busy: Vec<usize> = (0..s.procs.len()).collect();
    by_busy.sort_by_key(|&i| {
        std::cmp::Reverse(s.procs[i].busy_ns + s.procs[i].mem_ns + s.procs[i].sync_op_ns)
    });
    for &i in by_busy.iter().take(3).chain(by_busy.iter().rev().take(3)) {
        let p = &s.procs[i];
        println!(
            "proc {i}: busy={} mem={} sync_wait={} sync_op={} atomics={} reads={}",
            p.busy_ns, p.mem_ns, p.sync_wait_ns, p.sync_op_ns, p.atomics, p.reads
        );
    }
}
// (extended diagnostics appended by maintainers during calibration)
