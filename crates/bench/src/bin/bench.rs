//! `bench` — attribution regression harness.
//!
//! ```text
//! bench regress [--check] [--baseline <file>] [--tolerance <pct>]
//!
//! regress             run the pinned workload matrix and write the
//!                     attribution snapshot to BENCH_attrib.json
//! --check             compare the current tree against the committed
//!                     baseline instead of overwriting it; exit 1 on drift
//!                     (the fresh measurement is left in
//!                     BENCH_attrib.current.json for inspection)
//! --baseline <file>   baseline path (default BENCH_attrib.json)
//! --tolerance <pct>   allowed relative drift per metric (default 2.0)
//! ```

use study_bench::regress;

const DEFAULT_BASELINE: &str = "BENCH_attrib.json";

fn usage(code: i32) -> ! {
    eprintln!("usage: bench regress [--check] [--baseline <file>] [--tolerance <pct>]");
    std::process::exit(code);
}

fn fail(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(1);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut check = false;
    let mut baseline = DEFAULT_BASELINE.to_string();
    let mut tolerance = 100.0 * regress::DEFAULT_TOLERANCE;
    let mut subcommand = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--check" => check = true,
            "--baseline" => match it.next() {
                Some(f) => baseline = f.clone(),
                None => usage(2),
            },
            "--tolerance" => match it.next().map(|t| t.parse::<f64>()) {
                Some(Ok(t)) if t >= 0.0 => tolerance = t,
                _ => usage(2),
            },
            "--help" | "-h" => usage(0),
            "regress" if subcommand.is_none() => subcommand = Some("regress"),
            other => {
                eprintln!("error: unexpected argument {other:?}");
                usage(2);
            }
        }
    }
    if subcommand != Some("regress") {
        usage(2);
    }

    eprintln!(
        "[bench] measuring the pinned matrix ({} apps x {} proc counts)...",
        regress::MATRIX_APPS.len(),
        regress::MATRIX_PROCS.len()
    );
    let t0 = std::time::Instant::now();
    let current = match regress::measure() {
        Ok(c) => c,
        Err(e) => fail(&format!("measurement failed: {e}")),
    };
    eprintln!(
        "[bench] measured {} points in {:.1?}",
        current.len(),
        t0.elapsed()
    );

    if !check {
        if let Err(e) = std::fs::write(&baseline, regress::to_json(&current)) {
            fail(&format!("cannot write {baseline}: {e}"));
        }
        eprintln!("[bench] wrote baseline {baseline}");
        return;
    }

    let doc = match std::fs::read_to_string(&baseline) {
        Ok(d) => d,
        Err(e) => fail(&format!(
            "cannot read baseline {baseline}: {e} (generate it with `bench regress`)"
        )),
    };
    let base = match regress::parse(&doc) {
        Ok(b) => b,
        Err(e) => fail(&format!("malformed baseline {baseline}: {e}")),
    };
    let msgs = regress::compare(&base, &current, tolerance / 100.0);
    if msgs.is_empty() {
        eprintln!(
            "[bench] OK: {} points within {tolerance}% of {baseline}",
            current.len()
        );
        return;
    }
    let current_path = format!("{baseline}.current.json");
    let current_path = current_path.replace(".json.current.json", ".current.json");
    if let Err(e) = std::fs::write(&current_path, regress::to_json(&current)) {
        eprintln!("warning: cannot write {current_path}: {e}");
    } else {
        eprintln!("[bench] fresh measurement written to {current_path}");
    }
    eprintln!("[bench] FAIL: {} drift(s) vs {baseline}:", msgs.len());
    for m in &msgs {
        eprintln!("  {m}");
    }
    std::process::exit(1);
}
