//! `bench` — attribution regression harness and matrix sweep driver.
//!
//! ```text
//! bench regress [--check] [--baseline <file>] [--tolerance <pct>] [--jobs <n>]
//!               [--telemetry]
//!
//! regress             run the pinned workload matrix and write the
//!                     attribution snapshot to BENCH_attrib.json
//! --check             compare the current tree against the committed
//!                     baseline instead of overwriting it; exit 1 on drift
//!                     (the fresh measurement is left in
//!                     BENCH_attrib.current.json for inspection)
//! --baseline <file>   baseline path (default BENCH_attrib.json)
//! --tolerance <pct>   allowed relative drift per metric (default 2.0)
//! --jobs <n>          simulate matrix points on n host threads (default 1;
//!                     results are bit-identical at any job count)
//! --telemetry         measure with the full live-telemetry observer
//!                     running (registry, rate pipeline, loopback HTTP
//!                     server); with --check this is the observer-
//!                     passivity gate — results must stay bit-identical
//!
//! bench critpath [--check] [--baseline <file>] [--tolerance <pct>] [--jobs <n>]
//!
//! critpath            run the pinned workload matrix with the
//!                     critical-path profiler on, print the on-path
//!                     busy/memory/sync split and headline what-if
//!                     speedups, and write the snapshot to
//!                     BENCH_critpath.json
//! --check             gate against the committed baseline instead of
//!                     overwriting it; exit 1 on drift (the fresh
//!                     measurement lands in BENCH_critpath.current.json)
//! --baseline <file>   baseline path (default BENCH_critpath.json)
//! --tolerance <pct>   allowed relative drift per metric (default 2.0)
//! --jobs <n>          simulate matrix points on n host threads (default 1;
//!                     output is bit-identical at any job count)
//!
//! bench perf [--check] [--baseline <file>] [--tolerance <pct>] [--jobs <n>]
//!            [--reps <k>] [--json <file>] [--profile <file>] [--no-overhead]
//!
//! perf                time the pinned workload matrix on the host clock
//!                     (median of --reps repetitions after a discarded
//!                     warmup) and write the throughput snapshot to
//!                     BENCH_engine.json; also measures the host-time
//!                     overhead of each optional subsystem (attrib,
//!                     trace, sanitize, profile, live) against an
//!                     all-off pass
//! --check             gate against the committed baseline instead of
//!                     overwriting it; exit 1 on drift (the fresh
//!                     measurement lands in BENCH_engine.current.json).
//!                     Event counts must match exactly; ns/event drift
//!                     is judged after dividing out the matrix-wide
//!                     machine-speed factor, so only *relative* per-cell
//!                     regressions fail
//! --baseline <file>   baseline path (default BENCH_engine.json)
//! --tolerance <pct>   allowed relative ns/event drift (default 35.0)
//! --reps <k>          timed repetitions per cell (default 3)
//! --json <file>       also write the full report (entries + overhead
//!                     rows) to <file>
//! --profile <file>    run one profiled pass (cfg.profile=on) and write
//!                     the aggregate host profile as Chrome-trace JSON
//!                     to <file> (chrome://tracing, Perfetto)
//! --no-overhead       skip the subsystem-overhead passes
//! --jobs <n>          measure cells on n host threads (events stay
//!                     deterministic; timings are per-cell, not wall)
//!
//! bench sweep [key=value ...] [--jobs <n>] [--store <file>] [--resume]
//!             [--retry-quarantined] [--retries <n>] [--timeout-s <s>]
//!             [--attrib-dir <dir>] [--trace-dir <dir>]
//!             [--inject-panic <label>] [--require-cached] [--quiet]
//!
//! sweep               expand an apps × versions × procs matrix and run
//!                     every cell, appending results to a crash-safe JSONL
//!                     store keyed by content hash
//!   key=value ...     matrix DSL, e.g.:
//!                       apps=fft,ocean versions=orig procs=2,4,8
//!                       scale=quick sizes=sweep attrib=on trace=on
//!                     defaults: scale=quick apps=all versions=both
//!                     procs=scale sizes=basic attrib=off trace=off
//! --jobs <n>          worker threads (default 1)
//! --store <file>      JSONL result store (default sweep_results.jsonl)
//! --resume            skip cells whose key hash is already in the store
//! --retry-quarantined with --resume, also re-run non-ok cells
//! --retries <n>       extra attempts after a panic/timeout (default 0)
//! --timeout-s <s>     per-attempt wall-clock budget in seconds
//! --attrib-dir <dir>  write per-cell attribution JSON here (use attrib=on)
//! --trace-dir <dir>   write per-cell Chrome traces here (use trace=on)
//! --inject-panic <l>  make the cell labelled <l> panic (fault injection)
//! --require-cached    exit 2 if any cell had to execute (CI resume check)
//! --quiet             suppress per-cell progress lines
//! --live <addr>       serve live telemetry over HTTP while the sweep
//!                     runs: /metrics (Prometheus text), /snapshot
//!                     (JSON epoch record), /events (SSE epoch samples
//!                     + per-cell lifecycle events); e.g. 127.0.0.1:9100
//! --live-log <file>   append one JSON epoch record per sampling epoch
//!                     to <file> (crash-safe JSONL, `bench top --log`
//!                     renders it)
//! --epoch-ms <n>      telemetry sampling period (default 250)
//!
//! bench top (--addr <host:port> | --log <file>) [--watch] [--json]
//!           [--interval-ms <n>] [--count <n>]
//!
//! top                 render a terminal dashboard from a live /snapshot
//!                     endpoint or a --live-log JSONL file; one-shot by
//!                     default, --watch redraws every --interval-ms
//!                     (default 1000) until --count frames (default: no
//!                     limit)
//! --json              print the raw epoch record as one JSON line
//!                     instead of the dashboard (same shape as the
//!                     --live-log JSONL and /snapshot body)
//!
//! bench serve [--addr <host:port>] [--store <file>] [--jobs <n>]
//!             [--idle-timeout-s <s>] [--retries <n>] [--timeout-s <s>]
//!             [--epoch-ms <n>]
//!
//! serve               run the sweep daemon: a long-lived server that
//!                     accepts matrix submissions from many clients over
//!                     HTTP, deduplicates cells against one shared
//!                     content-addressed store, and streams per-job
//!                     progress over SSE. Routes: POST /sweep (matrix
//!                     DSL body), GET /jobs/<id>, GET /jobs/<id>/events,
//!                     GET /cell/<key>, GET /healthz /metrics /snapshot,
//!                     POST /shutdown. `bench top --addr` works against
//!                     it directly
//! --addr <host:port>  listen address (default 127.0.0.1:9900)
//! --store <file>      shared JSONL result store (default
//!                     sweepd_store.jsonl); resumed on restart
//! --jobs <n>          simulation worker threads (default 1)
//! --idle-timeout-s <s> shut down after <s> seconds with no requests
//!                     and no running work
//! --retries / --timeout-s   per-cell run options, as for sweep
//! --epoch-ms <n>      telemetry sampling period (default 250)
//!
//! bench submit --server <host:port> [key=value ...] [--wait] [--poll-ms <n>]
//!
//! submit              submit a matrix to a running daemon; with --wait,
//!                     poll until every cell has a record and print the
//!                     per-cell table (exit 1 if any cell quarantined)
//!
//! bench sanitize [key=value ...] [--jobs <n>] [--store <file>] [--resume]
//!                [--retries <n>] [--timeout-s <s>] [--out <file>] [--quiet]
//!                [--schedules <n>] [--seed-base <s>]
//!
//! sanitize            run the matrix through the happens-before sanitizer
//!                     and gate on its findings: exit 1 if any cell has
//!                     races, lock cycles, or lints; exit 2 if any cell
//!                     is quarantined or lost its report (infrastructure,
//!                     not verdict)
//!   key=value ...     matrix DSL, appended to the default
//!                     `scale=quick procs=1,4,16`; `sanitize=on` is forced
//! --schedules <n>     run every cell under n seeded schedule
//!                     perturbations (seeds base..base+n-1; DSL
//!                     `schedules=n`); findings are deduplicated across
//!                     seeds and reported with the seeds exposing them
//! --seed-base <s>     first schedule seed (default 1; DSL `sched-seed=s`)
//! --out <file>        write a findings JSON document (counts per cell
//!                     plus every full report) to <file>
//!                     (other flags as for sweep)
//!
//! exit status: 0 clean; 1 quarantined cells, drift, or sanitizer
//! findings (sanitize: findings only); 2 usage, a --require-cached miss,
//! or sanitize infrastructure failures (quarantined / missing reports).
//! ```

use std::path::PathBuf;
use std::time::Duration;

use ccnuma_sweep::matrix::MatrixSpec;
use ccnuma_sweep::{sweep, SweepConfig};
use ccnuma_telemetry::hub::{Hub, HubConfig};
use study_bench::{critpath, live, perf, regress, schedsan};

const DEFAULT_BASELINE: &str = "BENCH_attrib.json";
const DEFAULT_PERF_BASELINE: &str = "BENCH_engine.json";
const DEFAULT_CRITPATH_BASELINE: &str = "BENCH_critpath.json";

fn usage(code: i32) -> ! {
    eprintln!(
        "usage: bench regress [--check] [--baseline <file>] [--tolerance <pct>] [--jobs <n>]\n\
         \x20                  [--telemetry]"
    );
    eprintln!(
        "       bench critpath [--check] [--baseline <file>] [--tolerance <pct>] [--jobs <n>]"
    );
    eprintln!(
        "       bench perf [--check] [--baseline <file>] [--tolerance <pct>] [--jobs <n>]\n\
         \x20                  [--reps <k>] [--json <file>] [--profile <file>] [--no-overhead]"
    );
    eprintln!(
        "       bench sweep [key=value ...] [--jobs <n>] [--store <file>] [--resume]\n\
         \x20                  [--retry-quarantined] [--retries <n>] [--timeout-s <s>]\n\
         \x20                  [--attrib-dir <dir>] [--trace-dir <dir>]\n\
         \x20                  [--inject-panic <label>] [--require-cached] [--quiet]\n\
         \x20                  [--live <addr>] [--live-log <file>] [--epoch-ms <n>]"
    );
    eprintln!(
        "       bench serve [--addr <host:port>] [--store <file>] [--jobs <n>]\n\
         \x20                  [--idle-timeout-s <s>] [--retries <n>] [--timeout-s <s>]\n\
         \x20                  [--epoch-ms <n>]"
    );
    eprintln!("       bench submit --server <host:port> [key=value ...] [--wait] [--poll-ms <n>]");
    eprintln!(
        "       bench sanitize [key=value ...] [--jobs <n>] [--store <file>] [--resume]\n\
         \x20                  [--retries <n>] [--timeout-s <s>] [--out <file>] [--quiet]\n\
         \x20                  [--schedules <n>] [--seed-base <s>]"
    );
    eprintln!(
        "       bench top (--addr <host:port> | --log <file>) [--watch] [--json]\n\
         \x20                  [--interval-ms <n>] [--count <n>]"
    );
    std::process::exit(code);
}

fn fail(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(1);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("regress") => cmd_regress(&args[1..]),
        Some("critpath") => cmd_critpath(&args[1..]),
        Some("perf") => cmd_perf(&args[1..]),
        Some("sweep") => cmd_sweep(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some("submit") => cmd_submit(&args[1..]),
        Some("sanitize") => cmd_sanitize(&args[1..]),
        Some("top") => cmd_top(&args[1..]),
        Some("--help" | "-h") => usage(0),
        _ => usage(2),
    }
}

fn parse_count(it: &mut std::slice::Iter<'_, String>, flag: &str) -> usize {
    match it.next().map(|v| v.parse::<usize>()) {
        Some(Ok(n)) if n >= 1 => n,
        _ => {
            eprintln!("error: {flag} needs a positive integer");
            usage(2);
        }
    }
}

fn cmd_regress(args: &[String]) -> ! {
    let mut check = false;
    let mut baseline = DEFAULT_BASELINE.to_string();
    let mut tolerance = 100.0 * regress::DEFAULT_TOLERANCE;
    let mut jobs = 1;
    let mut telemetry = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--check" => check = true,
            "--baseline" => match it.next() {
                Some(f) => baseline = f.clone(),
                None => usage(2),
            },
            "--tolerance" => match it.next().map(|t| t.parse::<f64>()) {
                Some(Ok(t)) if t >= 0.0 => tolerance = t,
                _ => usage(2),
            },
            "--jobs" => jobs = parse_count(&mut it, "--jobs"),
            "--telemetry" => telemetry = true,
            "--help" | "-h" => usage(0),
            other => {
                eprintln!("error: unexpected argument {other:?}");
                usage(2);
            }
        }
    }

    eprintln!(
        "[bench] measuring the pinned matrix ({} apps x {} proc counts, {jobs} job(s))...",
        regress::MATRIX_APPS.len(),
        regress::MATRIX_PROCS.len()
    );
    // With --telemetry the whole observer stack runs during the
    // measurement: the registry refresher, the rate pipeline, and the
    // HTTP/SSE server on a loopback port. The comparison below is then
    // the observer-passivity gate: telemetry on or off, the attribution
    // numbers must be bit-identical.
    let observer = telemetry.then(|| {
        let wiring = live::Wiring::start(Duration::from_millis(100));
        let hub = Hub::start(
            wiring.registry.clone(),
            HubConfig {
                epoch: Duration::from_millis(100),
                addr: Some("127.0.0.1:0".into()),
                log_path: None,
            },
        )
        .unwrap_or_else(|e| fail(&format!("cannot start telemetry hub: {e}")));
        eprintln!(
            "[bench] telemetry observer live at http://{}/metrics",
            hub.local_addr().expect("hub bound")
        );
        (wiring, hub)
    });
    let t0 = std::time::Instant::now();
    let current = match regress::measure_with_jobs(jobs) {
        Ok(c) => c,
        Err(e) => fail(&format!("measurement failed: {e}")),
    };
    if let Some((wiring, hub)) = observer {
        wiring.stop();
        hub.shutdown();
    }
    eprintln!(
        "[bench] measured {} points in {:.1?}",
        current.len(),
        t0.elapsed()
    );

    if !check {
        if let Err(e) = std::fs::write(&baseline, regress::to_json(&current)) {
            fail(&format!("cannot write {baseline}: {e}"));
        }
        eprintln!("[bench] wrote baseline {baseline}");
        std::process::exit(0);
    }

    let doc = match std::fs::read_to_string(&baseline) {
        Ok(d) => d,
        Err(e) => fail(&format!(
            "cannot read baseline {baseline}: {e} (generate it with `bench regress`)"
        )),
    };
    let base = match regress::parse(&doc) {
        Ok(b) => b,
        Err(e) => fail(&format!("malformed baseline {baseline}: {e}")),
    };
    let msgs = regress::compare(&base, &current, tolerance / 100.0);
    if msgs.is_empty() {
        eprintln!(
            "[bench] OK: {} points within {tolerance}% of {baseline}",
            current.len()
        );
        std::process::exit(0);
    }
    let current_path = format!("{baseline}.current.json");
    let current_path = current_path.replace(".json.current.json", ".current.json");
    if let Err(e) = std::fs::write(&current_path, regress::to_json(&current)) {
        eprintln!("warning: cannot write {current_path}: {e}");
    } else {
        eprintln!("[bench] fresh measurement written to {current_path}");
    }
    eprintln!("[bench] FAIL: {} drift(s) vs {baseline}:", msgs.len());
    for m in &msgs {
        eprintln!("  {m}");
    }
    std::process::exit(1);
}

/// `bench critpath`: run the pinned matrix with the critical-path
/// profiler on and (with `--check`) gate the on-path composition and
/// what-if projections against `BENCH_critpath.json`.
fn cmd_critpath(args: &[String]) -> ! {
    let mut check = false;
    let mut baseline = DEFAULT_CRITPATH_BASELINE.to_string();
    let mut tolerance = 100.0 * critpath::DEFAULT_TOLERANCE;
    let mut jobs = 1;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--check" => check = true,
            "--baseline" => match it.next() {
                Some(f) => baseline = f.clone(),
                None => usage(2),
            },
            "--tolerance" => match it.next().map(|t| t.parse::<f64>()) {
                Some(Ok(t)) if t >= 0.0 => tolerance = t,
                _ => usage(2),
            },
            "--jobs" => jobs = parse_count(&mut it, "--jobs"),
            "--help" | "-h" => usage(0),
            other => {
                eprintln!("error: unexpected argument {other:?}");
                usage(2);
            }
        }
    }

    eprintln!(
        "[bench] profiling the pinned matrix ({} apps x {} proc counts, {jobs} job(s))...",
        regress::MATRIX_APPS.len(),
        regress::MATRIX_PROCS.len()
    );
    let t0 = std::time::Instant::now();
    let current = match critpath::measure_with_jobs(jobs) {
        Ok(c) => c,
        Err(e) => fail(&format!("measurement failed: {e}")),
    };
    eprintln!(
        "[bench] profiled {} points in {:.1?}",
        current.len(),
        t0.elapsed()
    );
    eprint!("{}", critpath::table(&current));

    if !check {
        if let Err(e) = std::fs::write(&baseline, critpath::to_json(&current)) {
            fail(&format!("cannot write {baseline}: {e}"));
        }
        eprintln!("[bench] wrote baseline {baseline}");
        std::process::exit(0);
    }

    let doc = match std::fs::read_to_string(&baseline) {
        Ok(d) => d,
        Err(e) => fail(&format!(
            "cannot read baseline {baseline}: {e} (generate it with `bench critpath`)"
        )),
    };
    let base = match critpath::parse(&doc) {
        Ok(b) => b,
        Err(e) => fail(&format!("malformed baseline {baseline}: {e}")),
    };
    let msgs = critpath::compare(&base, &current, tolerance / 100.0);
    if msgs.is_empty() {
        eprintln!(
            "[bench] OK: {} points within {tolerance}% of {baseline}",
            current.len()
        );
        std::process::exit(0);
    }
    let current_path = format!("{baseline}.current.json");
    let current_path = current_path.replace(".json.current.json", ".current.json");
    if let Err(e) = std::fs::write(&current_path, critpath::to_json(&current)) {
        eprintln!("warning: cannot write {current_path}: {e}");
    } else {
        eprintln!("[bench] fresh measurement written to {current_path}");
    }
    eprintln!("[bench] FAIL: {} drift(s) vs {baseline}:", msgs.len());
    for m in &msgs {
        eprintln!("  {m}");
    }
    std::process::exit(1);
}

/// `bench perf`: time the pinned matrix, report subsystem overhead, and
/// (with `--check`) gate host throughput against `BENCH_engine.json`.
fn cmd_perf(args: &[String]) -> ! {
    let mut check = false;
    let mut baseline = DEFAULT_PERF_BASELINE.to_string();
    let mut tolerance = 100.0 * perf::DEFAULT_TOLERANCE;
    let mut jobs = 1;
    let mut reps = perf::DEFAULT_REPS;
    let mut json_out: Option<PathBuf> = None;
    let mut profile_out: Option<PathBuf> = None;
    let mut overhead = true;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--check" => check = true,
            "--baseline" => match it.next() {
                Some(f) => baseline = f.clone(),
                None => usage(2),
            },
            "--tolerance" => match it.next().map(|t| t.parse::<f64>()) {
                Some(Ok(t)) if t >= 0.0 => tolerance = t,
                _ => usage(2),
            },
            "--jobs" => jobs = parse_count(&mut it, "--jobs"),
            "--reps" => reps = parse_count(&mut it, "--reps"),
            "--json" => match it.next() {
                Some(f) => json_out = Some(PathBuf::from(f)),
                None => usage(2),
            },
            "--profile" => match it.next() {
                Some(f) => profile_out = Some(PathBuf::from(f)),
                None => usage(2),
            },
            "--no-overhead" => overhead = false,
            "--help" | "-h" => usage(0),
            other => {
                eprintln!("error: unexpected argument {other:?}");
                usage(2);
            }
        }
    }

    eprintln!(
        "[bench] timing the pinned matrix ({} apps x {} proc counts, \
         {reps} rep(s) + warmup, {jobs} job(s))...",
        regress::MATRIX_APPS.len(),
        regress::MATRIX_PROCS.len()
    );
    let t0 = std::time::Instant::now();
    let current = match perf::measure_with_jobs(jobs, reps) {
        Ok(c) => c,
        Err(e) => fail(&format!("measurement failed: {e}")),
    };
    eprintln!(
        "[bench] measured {} cells in {:.1?}",
        current.len(),
        t0.elapsed()
    );
    print!("{}", perf::table(&current));

    let overheads = if overhead {
        eprintln!(
            "[bench] measuring optional-subsystem overhead (min of {reps} passes per mode)..."
        );
        let rows = match perf::measure_overheads(jobs, reps) {
            Ok(r) => r,
            Err(e) => fail(&format!("overhead measurement failed: {e}")),
        };
        print!("{}", perf::overhead_table(&rows));
        Some(rows)
    } else {
        None
    };

    if let Some(path) = &profile_out {
        eprintln!("[bench] profiling one matrix pass...");
        let p = match perf::profile_matrix(jobs) {
            Ok(p) => p,
            Err(e) => fail(&format!("profiled pass failed: {e}")),
        };
        print!("{}", p.text_table());
        if let Err(e) = std::fs::write(path, p.chrome_trace()) {
            fail(&format!("cannot write {}: {e}", path.display()));
        }
        eprintln!(
            "[bench] wrote Chrome-trace host profile to {}",
            path.display()
        );
    }

    if let Some(path) = &json_out {
        let mut doc = perf::to_json(reps, &current)
            .trim_end()
            .strip_suffix('}')
            .expect("to_json ends with }")
            .trim_end()
            .to_string();
        if let Some(rows) = &overheads {
            doc.push_str(",\n  \"overheads\": [");
            for (i, r) in rows.iter().enumerate() {
                if i > 0 {
                    doc.push(',');
                }
                doc.push_str(&format!(
                    "\n    {{\"mode\": \"{}\", \"total_ns\": {}, \"overhead_pct\": {:.3}}}",
                    r.mode, r.total_ns, r.overhead_pct
                ));
            }
            doc.push_str("\n  ]");
        }
        doc.push_str("\n}\n");
        if let Err(e) = std::fs::write(path, doc) {
            fail(&format!("cannot write {}: {e}", path.display()));
        }
        eprintln!("[bench] wrote perf report to {}", path.display());
    }

    if !check {
        if let Err(e) = std::fs::write(&baseline, perf::to_json(reps, &current)) {
            fail(&format!("cannot write {baseline}: {e}"));
        }
        eprintln!("[bench] wrote baseline {baseline}");
        std::process::exit(0);
    }

    let doc = match std::fs::read_to_string(&baseline) {
        Ok(d) => d,
        Err(e) => fail(&format!(
            "cannot read baseline {baseline}: {e} (generate it with `bench perf`)"
        )),
    };
    let (model, _, base) = match perf::parse(&doc) {
        Ok(p) => p,
        Err(e) => fail(&format!("malformed baseline {baseline}: {e}")),
    };
    let msgs = perf::compare(&model, &base, &current, tolerance / 100.0);
    if msgs.is_empty() {
        eprintln!(
            "[bench] OK: {} cells within {tolerance}% (relative) of {baseline}",
            current.len()
        );
        std::process::exit(0);
    }
    let current_path = format!("{baseline}.current.json");
    let current_path = current_path.replace(".json.current.json", ".current.json");
    if let Err(e) = std::fs::write(&current_path, perf::to_json(reps, &current)) {
        eprintln!("warning: cannot write {current_path}: {e}");
    } else {
        eprintln!("[bench] fresh measurement written to {current_path}");
    }
    eprintln!("[bench] FAIL: {} violation(s) vs {baseline}:", msgs.len());
    for m in &msgs {
        eprintln!("  {m}");
    }
    std::process::exit(1);
}

fn cmd_sweep(args: &[String]) -> ! {
    let mut dsl: Vec<&str> = Vec::new();
    let mut cfg = SweepConfig::default();
    let mut require_cached = false;
    let mut quiet = false;
    let mut live_addr: Option<String> = None;
    let mut live_log: Option<PathBuf> = None;
    let mut epoch = Duration::from_millis(250);
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--jobs" => cfg.jobs = parse_count(&mut it, "--jobs"),
            "--store" => match it.next() {
                Some(f) => cfg.store_path = PathBuf::from(f),
                None => usage(2),
            },
            "--resume" => cfg.resume = true,
            "--retry-quarantined" => cfg.retry_quarantined = true,
            "--retries" => match it.next().map(|v| v.parse::<u32>()) {
                Some(Ok(n)) => cfg.opts.retries = n,
                _ => usage(2),
            },
            "--timeout-s" => match it.next().map(|v| v.parse::<u64>()) {
                Some(Ok(s)) if s >= 1 => cfg.opts.timeout = Some(Duration::from_secs(s)),
                _ => usage(2),
            },
            "--attrib-dir" => match it.next() {
                Some(d) => cfg.attrib_dir = Some(PathBuf::from(d)),
                None => usage(2),
            },
            "--trace-dir" => match it.next() {
                Some(d) => cfg.trace_dir = Some(PathBuf::from(d)),
                None => usage(2),
            },
            "--inject-panic" => match it.next() {
                Some(l) => cfg.opts.inject_panic = Some(l.clone()),
                None => usage(2),
            },
            "--require-cached" => require_cached = true,
            "--quiet" => quiet = true,
            "--live" => match it.next() {
                Some(a) => live_addr = Some(a.clone()),
                None => usage(2),
            },
            "--live-log" => match it.next() {
                Some(f) => live_log = Some(PathBuf::from(f)),
                None => usage(2),
            },
            "--epoch-ms" => {
                epoch = Duration::from_millis(parse_count(&mut it, "--epoch-ms") as u64)
            }
            "--help" | "-h" => usage(0),
            other if other.starts_with("--") => {
                eprintln!("error: unknown flag {other:?}");
                usage(2);
            }
            tok => dsl.push(tok),
        }
    }
    if cfg.retry_quarantined && !cfg.resume {
        eprintln!("error: --retry-quarantined only makes sense with --resume");
        usage(2);
    }

    let matrix = match MatrixSpec::parse(&dsl.join(" ")) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("error: bad matrix: {e}");
            usage(2);
        }
    };
    let cells = matrix.cells();
    eprintln!(
        "[sweep] {} cell(s), {} job(s), store {}",
        cells.len(),
        cfg.jobs,
        cfg.store_path.display()
    );

    // The observer stack. The wiring (registry + refresher) always
    // runs so per-cell lifecycle lands in one registry; the hub (HTTP
    // server and/or JSONL epoch log) only when asked for. Progress now
    // comes from the event recorder — one line per finished cell —
    // instead of the sweep driver's ETA lines, so the same summary is
    // printed with or without --live.
    let wiring = live::Wiring::start(epoch);
    let hub = if live_addr.is_some() || live_log.is_some() {
        let hub = Hub::start(
            wiring.registry.clone(),
            HubConfig {
                epoch,
                addr: live_addr,
                log_path: live_log,
            },
        )
        .unwrap_or_else(|e| fail(&format!("cannot start telemetry hub: {e}")));
        if let Some(addr) = hub.local_addr() {
            eprintln!("[sweep] live telemetry at http://{addr}/metrics | /snapshot | /events");
        }
        Some(hub)
    } else {
        None
    };
    cfg.events = Some(wiring.event_recorder(cells.len(), hub.as_ref().map(|h| h.handle()), !quiet));

    let t0 = std::time::Instant::now();
    let out = match sweep(&matrix, &cfg) {
        Ok(o) => o,
        Err(e) => fail(&format!("sweep failed: {e}")),
    };

    // Teardown order: ingest post-mortem trace gauges and critical-path
    // shares first so the final epoch sample (taken by hub.shutdown)
    // carries them, then a final counter mirror, then the hub's last
    // sample + `end` frame.
    wiring.ingest_traces(&out.gauges);
    wiring.ingest_critpaths(&out.critpaths);
    wiring.stop();
    if let Some(hub) = hub {
        hub.shutdown();
    }

    if out.dropped_lines > 0 {
        eprintln!(
            "[sweep] dropped {} torn/foreign store line(s); their cells re-ran",
            out.dropped_lines
        );
    }
    eprintln!(
        "[sweep] done in {:.1?}: {} cell(s) — executed {}, cached {}, quarantined {}, steals {}",
        t0.elapsed(),
        out.records.len(),
        out.executed,
        out.cached,
        out.quarantined.len(),
        out.steals,
    );
    if !out.quarantined.is_empty() {
        for label in &out.quarantined {
            let rec = out
                .records
                .iter()
                .find(|r| &r.label == label)
                .expect("quarantined label has a record");
            eprintln!(
                "[sweep] quarantined: {label} ({}{})",
                rec.status.name(),
                rec.error
                    .as_deref()
                    .map(|e| format!(": {e}"))
                    .unwrap_or_default()
            );
        }
        std::process::exit(1);
    }
    if require_cached && out.executed > 0 {
        eprintln!(
            "error: --require-cached, but {} cell(s) executed (resume cache miss)",
            out.executed
        );
        std::process::exit(2);
    }
    std::process::exit(0);
}

/// `bench serve`: run the sweep daemon until shutdown.
fn cmd_serve(args: &[String]) -> ! {
    if args.iter().any(|a| a == "--help" || a == "-h") {
        usage(0);
    }
    let opts = match study_bench::daemon::ServeOpts::parse(args) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            usage(2);
        }
    };
    std::process::exit(study_bench::daemon::serve(opts));
}

/// `bench submit`: submit a matrix to a running daemon.
fn cmd_submit(args: &[String]) -> ! {
    if args.iter().any(|a| a == "--help" || a == "-h") {
        usage(0);
    }
    let opts = match study_bench::daemon::SubmitOpts::parse(args) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            usage(2);
        }
    };
    std::process::exit(study_bench::daemon::submit(opts));
}

/// `bench top`: render the live dashboard from a `/snapshot` endpoint
/// or a `--live-log` JSONL file.
fn cmd_top(args: &[String]) -> ! {
    let mut addr: Option<String> = None;
    let mut log: Option<PathBuf> = None;
    let mut watch = false;
    let mut json = false;
    let mut interval = Duration::from_millis(1000);
    let mut count: Option<usize> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--addr" => match it.next() {
                Some(a) => addr = Some(a.clone()),
                None => usage(2),
            },
            "--log" => match it.next() {
                Some(f) => log = Some(PathBuf::from(f)),
                None => usage(2),
            },
            "--watch" => watch = true,
            "--json" => json = true,
            "--interval-ms" => {
                interval = Duration::from_millis(parse_count(&mut it, "--interval-ms") as u64)
            }
            "--count" => count = Some(parse_count(&mut it, "--count")),
            "--help" | "-h" => usage(0),
            other => {
                eprintln!("error: unexpected argument {other:?}");
                usage(2);
            }
        }
    }
    let fetch: Box<dyn Fn() -> Result<live::EpochRecord, String>> = match (&addr, &log) {
        (Some(a), None) => {
            let a = a.clone();
            Box::new(move || live::fetch_snapshot(&a))
        }
        (None, Some(p)) => {
            let p = p.clone();
            Box::new(move || live::last_log_record(&p))
        }
        _ => {
            eprintln!("error: top needs exactly one of --addr or --log");
            usage(2);
        }
    };

    let mut frames = 0usize;
    loop {
        match fetch() {
            Ok(rec) => {
                if json {
                    // Machine-readable one-shot / per-frame output: the
                    // epoch record in the exact JSONL shape the log and
                    // /snapshot use.
                    println!("{}", rec.to_json());
                } else {
                    if watch {
                        // Clear the screen and home the cursor between frames.
                        print!("\x1b[2J\x1b[H");
                    }
                    print!("{}", live::render_top(&rec));
                }
            }
            Err(e) if watch => eprintln!("[top] {e}"),
            Err(e) => fail(&e),
        }
        frames += 1;
        if !watch || count.is_some_and(|n| frames >= n) {
            std::process::exit(0);
        }
        std::thread::sleep(interval);
    }
}

/// `bench sanitize`: sweep the matrix with the happens-before sanitizer
/// on and gate on what it finds.
fn cmd_sanitize(args: &[String]) -> ! {
    let mut dsl: Vec<&str> = Vec::new();
    let mut cfg = SweepConfig {
        progress: true,
        store_path: PathBuf::from("sanitize_results.jsonl"),
        ..Default::default()
    };
    let mut out_path: Option<PathBuf> = None;
    let mut schedules: Option<u32> = None;
    let mut seed_base: Option<u64> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--jobs" => cfg.jobs = parse_count(&mut it, "--jobs"),
            "--store" => match it.next() {
                Some(f) => cfg.store_path = PathBuf::from(f),
                None => usage(2),
            },
            "--resume" => cfg.resume = true,
            "--retries" => match it.next().map(|v| v.parse::<u32>()) {
                Some(Ok(n)) => cfg.opts.retries = n,
                _ => usage(2),
            },
            "--timeout-s" => match it.next().map(|v| v.parse::<u64>()) {
                Some(Ok(s)) if s >= 1 => cfg.opts.timeout = Some(Duration::from_secs(s)),
                _ => usage(2),
            },
            "--out" => match it.next() {
                Some(f) => out_path = Some(PathBuf::from(f)),
                None => usage(2),
            },
            "--schedules" => match it.next().map(|v| v.parse::<u32>()) {
                Some(Ok(n)) if n >= 1 => schedules = Some(n),
                _ => usage(2),
            },
            "--seed-base" => match it.next().map(|v| v.parse::<u64>()) {
                Some(Ok(s)) => seed_base = Some(s),
                _ => usage(2),
            },
            "--quiet" => cfg.progress = false,
            "--help" | "-h" => usage(0),
            other if other.starts_with("--") => {
                eprintln!("error: unknown flag {other:?}");
                usage(2);
            }
            tok => dsl.push(tok),
        }
    }

    // Defaults first so the user's tokens override them; `sanitize=on`
    // (and the schedule flags, which are just DSL spellings) last so
    // they cannot be turned off — a clean exit must mean the sanitizer
    // actually looked at what was asked for.
    let mut dsl = format!("scale=quick procs=1,4,16 {} sanitize=on", dsl.join(" "));
    if let Some(n) = schedules {
        dsl.push_str(&format!(" schedules={n}"));
    }
    if let Some(s) = seed_base {
        dsl.push_str(&format!(" sched-seed={s}"));
    }
    let matrix = match MatrixSpec::parse(&dsl) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("error: bad matrix: {e}");
            usage(2);
        }
    };
    let cells = matrix.cells();
    eprintln!(
        "[sanitize] {} cell(s), {} job(s), store {}",
        cells.len(),
        cfg.jobs,
        cfg.store_path.display()
    );
    let t0 = std::time::Instant::now();
    let out = match sweep(&matrix, &cfg) {
        Ok(o) => o,
        Err(e) => fail(&format!("sweep failed: {e}")),
    };
    eprintln!(
        "[sanitize] done in {:.1?}: executed {}, cached {}, quarantined {}",
        t0.elapsed(),
        out.executed,
        out.cached,
        out.quarantined.len(),
    );

    // Per-cell verdicts. A missing count on an ok cell cannot happen
    // (sanitize=on is part of the run key), but if it ever does it must
    // read as a failure, not a silent pass.
    let mut missing = 0usize;
    for rec in &out.records {
        if rec.sanitize.is_none() && rec.status == ccnuma_sweep::store::CellStatus::Ok {
            eprintln!("[sanitize] {}: ok cell carries no report", rec.label);
            missing += 1;
        }
    }

    // Fold the schedule-seed axis: one row per base cell, findings
    // deduplicated across seeds with the seeds that exposed them.
    let seeded = matrix.schedules > 0 || matrix.sched_seed.is_some();
    let seed_rows = schedsan::seed_rows(&out.records);
    let dirty = seed_rows
        .iter()
        .filter(|r| r.seeds_with_findings > 0)
        .count();
    if seeded {
        println!("{}", schedsan::seed_table(&seed_rows));
    } else {
        let mut rows = Vec::new();
        for rec in &out.records {
            if let Some(counts) = rec.sanitize {
                rows.push((rec.app.clone(), rec.version.clone(), rec.nprocs, counts));
            }
        }
        println!("{}", scaling_study::report::sanitize_table(&rows));
    }

    if let Some(path) = &out_path {
        if let Err(e) = std::fs::write(path, findings_json(&dsl, &out)) {
            fail(&format!("cannot write {}: {e}", path.display()));
        }
        eprintln!(
            "[sanitize] wrote findings ({} full report(s)) to {}",
            out.sanitizes.len(),
            path.display()
        );
    }

    let fmt_seeds = |seeds: &[Option<u64>]| {
        seeds
            .iter()
            .map(|s| s.map_or("default".into(), |s| s.to_string()))
            .collect::<Vec<_>>()
            .join(",")
    };
    for g in schedsan::group(&out.sanitizes) {
        if g.is_clean() {
            continue;
        }
        let [r, c, l] = g.counts();
        eprintln!(
            "[sanitize] {}: {r} race(s), {c} lock cycle(s), {l} lint(s) \
             across {} of {} schedule(s)",
            g.label,
            g.seeds_with_findings().len(),
            g.seeds_run.len(),
        );
        for f in &g.races {
            let r = &f.finding;
            eprintln!(
                "  race on {:#x}+{}: {} vs {} [seeds {}]",
                r.addr,
                r.bytes,
                r.prior,
                r.current,
                fmt_seeds(&f.seeds)
            );
        }
        for f in &g.cycles {
            eprintln!(
                "  lock cycle: {:?} [seeds {}]",
                f.finding.locks,
                fmt_seeds(&f.seeds)
            );
        }
        for f in &g.lints {
            eprintln!(
                "  {}: {} [seeds {}]",
                f.finding.kind.name(),
                f.finding.message,
                fmt_seeds(&f.seeds)
            );
        }
    }
    if !out.quarantined.is_empty() {
        for label in &out.quarantined {
            eprintln!("[sanitize] quarantined: {label}");
        }
    }
    // Infrastructure failures (a cell that never produced a verdict)
    // exit 2; sanitizer findings — a real verdict — exit 1. Infra wins
    // when both happen: the finding list is incomplete.
    if missing > 0 || !out.quarantined.is_empty() {
        eprintln!(
            "[sanitize] FAIL (infrastructure): {missing} missing report(s), {} quarantined \
             ({dirty} cell(s) with findings so far)",
            out.quarantined.len()
        );
        std::process::exit(2);
    }
    if dirty > 0 {
        eprintln!("[sanitize] FAIL: {dirty} cell(s) with findings");
        std::process::exit(1);
    }
    eprintln!(
        "[sanitize] OK: {} cell(s) race-free{}",
        seed_rows.len(),
        if seeded {
            format!(
                " across {} schedule run(s)",
                seed_rows.iter().map(|r| r.seeds_run).sum::<usize>()
            )
        } else {
            String::new()
        }
    );
    std::process::exit(0);
}

/// The `--out` findings document: counts per cell plus every full
/// report produced this invocation.
fn findings_json(dsl: &str, out: &ccnuma_sweep::SweepOutcome) -> String {
    let esc = |s: &str| s.replace('\\', "\\\\").replace('"', "\\\"");
    let mut s = String::from("{\n  \"version\": 1,\n");
    s.push_str(&format!("  \"matrix\": \"{}\",\n", esc(dsl)));
    s.push_str("  \"cells\": [");
    for (i, rec) in out.records.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let counts = rec
            .sanitize
            .map(|[r, c, l]| format!("[{r}, {c}, {l}]"))
            .unwrap_or_else(|| "null".into());
        s.push_str(&format!(
            "\n    {{\"label\": \"{}\", \"status\": \"{}\", \"sanitize\": {counts}}}",
            esc(&rec.label),
            rec.status.name()
        ));
    }
    s.push_str("\n  ],\n  \"reports\": [");
    for (i, (label, rep)) in out.sanitizes.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push('\n');
        s.push_str(scaling_study::report::sanitize_json(label, rep).trim_end());
    }
    s.push_str("\n  ]\n}\n");
    s
}
