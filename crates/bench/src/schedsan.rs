//! Cross-schedule deduplication of sanitizer findings.
//!
//! `bench sanitize --schedules N` runs every matrix cell under N seeded
//! schedule perturbations (plus, conceptually, the default schedule the
//! performance sweeps use). Each perturbed run is its own sweep cell —
//! label `fft/orig/4p@s3`, its own run key, its own [`SanitizeReport`]
//! — but to a human the N runs are *one experiment*: "does any schedule
//! of this cell expose a finding, and which seed do I replay to see
//! it?"
//!
//! This module folds the seed axis back down:
//!
//! - [`group`] collects the per-seed reports of each base cell and
//!   dedupes findings on **stable keys** that identify the underlying
//!   defect rather than the run that happened to catch it — a race is
//!   keyed by `(granule, access kinds, proc pair, phases)`, a lock
//!   cycle by its (already sorted) lock set, a lint by `(kind,
//!   message)`. The same bug caught by three seeds is one finding with
//!   three exposing seeds.
//! - [`seed_rows`] summarizes the stored per-cell counts into the
//!   `seeds-run / seeds-with-findings / first-seed` table, covering
//!   cached cells (which carry counts but no full report).
//!
//! Ordering everywhere is deterministic: groups sort by base label,
//! findings by key, seeds ascending with the default (seedless)
//! schedule first — so output is bit-identical for any `--jobs`.

use ccnuma_sim::sanitize::{LintFinding, LockCycleFinding, RaceFinding, SanitizeReport};
use ccnuma_sweep::matrix::CellSpec;
use ccnuma_sweep::store::CellRecord;

/// One sanitizer finding, deduplicated across the schedule seeds of a
/// cell, with the seeds that exposed it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DedupFinding<F> {
    /// A representative instance (from the first exposing seed).
    pub finding: F,
    /// Seeds whose schedule exposed the finding, ascending; `None` is
    /// the default (unperturbed) schedule.
    pub seeds: Vec<Option<u64>>,
}

impl<F> DedupFinding<F> {
    /// The first (lowest) exposing seed — the one to replay.
    pub fn first_seed(&self) -> Option<u64> {
        self.seeds.first().copied().flatten()
    }
}

/// All findings of one base cell, folded across its schedule seeds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScheduleGroup {
    /// Base cell label, seed suffix stripped (`fft/orig/4p`).
    pub label: String,
    /// Every seed a report was collected for, ascending, default first.
    pub seeds_run: Vec<Option<u64>>,
    /// Deduplicated races, sorted by stable key.
    pub races: Vec<DedupFinding<RaceFinding>>,
    /// Deduplicated lock-order cycles, sorted by lock set.
    pub cycles: Vec<DedupFinding<LockCycleFinding>>,
    /// Deduplicated lints, sorted by `(kind, message)`.
    pub lints: Vec<DedupFinding<LintFinding>>,
}

impl ScheduleGroup {
    /// Deduplicated finding counts `[races, cycles, lints]`.
    pub fn counts(&self) -> [u64; 3] {
        [
            self.races.len() as u64,
            self.cycles.len() as u64,
            self.lints.len() as u64,
        ]
    }

    /// Whether no schedule of this cell exposed anything.
    pub fn is_clean(&self) -> bool {
        self.races.is_empty() && self.cycles.is_empty() && self.lints.is_empty()
    }

    /// Seeds that exposed at least one finding, ascending.
    pub fn seeds_with_findings(&self) -> Vec<Option<u64>> {
        let mut seeds: Vec<Option<u64>> = self
            .races
            .iter()
            .flat_map(|f| f.seeds.iter().copied())
            .chain(self.cycles.iter().flat_map(|f| f.seeds.iter().copied()))
            .chain(self.lints.iter().flat_map(|f| f.seeds.iter().copied()))
            .collect();
        seeds.sort_unstable();
        seeds.dedup();
        seeds
    }

    /// The first exposing seed of any finding, if one exists. The outer
    /// `Option` is "were there findings at all"; the inner is `None`
    /// when the *default* schedule already exposes one.
    pub fn first_seed(&self) -> Option<Option<u64>> {
        self.seeds_with_findings().first().copied()
    }
}

/// The stable identity of a race: `(granule address, granule bytes,
/// canonically ordered endpoints)`, each endpoint reduced to
/// `(proc, is_write, phase)`.
pub type RaceKey = (u64, u64, Vec<(usize, bool, String)>);

/// Computes the [`RaceKey`] of a finding: the granule, and both
/// endpoints reduced to `(proc, is_write, phase)` in canonical order.
/// Two seeds that catch the same unordered access pair — possibly with
/// prior and current swapped, because the perturbed schedule reversed
/// which ran first — map to one key.
pub fn race_key(r: &RaceFinding) -> RaceKey {
    let mut ends = vec![
        (r.prior.proc, r.prior.is_write, r.prior.phase.clone()),
        (r.current.proc, r.current.is_write, r.current.phase.clone()),
    ];
    ends.sort();
    (r.addr, r.bytes, ends)
}

/// Folds label-sorted `(label, report)` pairs — the
/// [`SweepOutcome::sanitizes`](ccnuma_sweep::SweepOutcome) shape — into
/// one [`ScheduleGroup`] per base cell, sorted by base label.
pub fn group(reports: &[(String, SanitizeReport)]) -> Vec<ScheduleGroup> {
    use std::collections::BTreeMap;
    // Key types are Ord, so BTreeMaps give the sorted dedup for free.
    type Seeds = Vec<Option<u64>>;
    #[derive(Default)]
    struct Acc {
        seeds_run: Seeds,
        races: BTreeMap<RaceKey, (RaceFinding, Seeds)>,
        cycles: BTreeMap<Vec<usize>, (LockCycleFinding, Seeds)>,
        lints: BTreeMap<(&'static str, String), (LintFinding, Seeds)>,
    }
    let mut by_base: BTreeMap<String, Acc> = BTreeMap::new();
    for (label, rep) in reports {
        let (base, seed) = CellSpec::split_label(label);
        let acc = by_base.entry(base.to_string()).or_default();
        acc.seeds_run.push(seed);
        for r in &rep.races {
            let e = acc
                .races
                .entry(race_key(r))
                .or_insert_with(|| (r.clone(), Vec::new()));
            e.1.push(seed);
        }
        for c in &rep.lock_cycles {
            let e = acc
                .cycles
                .entry(c.locks.clone())
                .or_insert_with(|| (c.clone(), Vec::new()));
            e.1.push(seed);
        }
        for l in &rep.lints {
            let e = acc
                .lints
                .entry((l.kind.name(), l.message.clone()))
                .or_insert_with(|| (l.clone(), Vec::new()));
            e.1.push(seed);
        }
    }
    let finish = |mut seeds: Seeds| {
        seeds.sort_unstable();
        seeds.dedup();
        seeds
    };
    by_base
        .into_iter()
        .map(|(label, acc)| ScheduleGroup {
            label,
            seeds_run: finish(acc.seeds_run),
            races: acc
                .races
                .into_values()
                .map(|(finding, seeds)| DedupFinding {
                    finding,
                    seeds: finish(seeds),
                })
                .collect(),
            cycles: acc
                .cycles
                .into_values()
                .map(|(finding, seeds)| DedupFinding {
                    finding,
                    seeds: finish(seeds),
                })
                .collect(),
            lints: acc
                .lints
                .into_values()
                .map(|(finding, seeds)| DedupFinding {
                    finding,
                    seeds: finish(seeds),
                })
                .collect(),
        })
        .collect()
}

/// One row of the per-cell seed summary table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SeedRow {
    /// Base cell label.
    pub label: String,
    /// Schedules run (the default schedule counts as one).
    pub seeds_run: usize,
    /// Schedules with at least one finding (by stored counts — covers
    /// cached cells, which carry no full report).
    pub seeds_with_findings: usize,
    /// First exposing seed: `Some(None)` = the default schedule,
    /// `Some(Some(s))` = seed `s`, `None` = clean everywhere.
    pub first_seed: Option<Option<u64>>,
    /// Sum of stored `[races, cycles, lints]` counts across seeds
    /// (pre-dedup; the deduped counts need full reports).
    pub counts: [u64; 3],
}

impl SeedRow {
    /// `first_seed` for humans: `-` clean, `default`, or the number.
    pub fn first_seed_str(&self) -> String {
        match self.first_seed {
            None => "-".into(),
            Some(None) => "default".into(),
            Some(Some(s)) => s.to_string(),
        }
    }
}

/// Summarizes stored cell records into per-base-cell seed rows, sorted
/// by base label. Records without sanitizer counts (quarantined cells)
/// are skipped — the caller reports those separately.
pub fn seed_rows(records: &[CellRecord]) -> Vec<SeedRow> {
    use std::collections::BTreeMap;
    type SeedCounts = Vec<(Option<u64>, [u64; 3])>;
    let mut by_base: BTreeMap<String, SeedCounts> = BTreeMap::new();
    for rec in records {
        if let Some(counts) = rec.sanitize {
            let (base, seed) = CellSpec::split_label(&rec.label);
            by_base
                .entry(base.to_string())
                .or_default()
                .push((seed, counts));
        }
    }
    by_base
        .into_iter()
        .map(|(label, mut seeds)| {
            seeds.sort_unstable();
            seeds.dedup();
            let dirty: Vec<&(Option<u64>, [u64; 3])> = seeds
                .iter()
                .filter(|(_, c)| c.iter().sum::<u64>() > 0)
                .collect();
            let mut counts = [0u64; 3];
            for (_, c) in &seeds {
                for (t, v) in counts.iter_mut().zip(c) {
                    *t += v;
                }
            }
            SeedRow {
                label,
                seeds_run: seeds.len(),
                seeds_with_findings: dirty.len(),
                first_seed: dirty.first().map(|(s, _)| *s),
                counts,
            }
        })
        .collect()
}

/// Renders the seed summary as an aligned text table.
pub fn seed_table(rows: &[SeedRow]) -> String {
    let mut w = rows.iter().map(|r| r.label.len()).max().unwrap_or(4);
    w = w.max("cell".len());
    let mut s = format!(
        "{:<w$}  seeds-run  seeds-with-findings  first-seed\n",
        "cell"
    );
    for r in rows {
        s.push_str(&format!(
            "{:<w$}  {:>9}  {:>19}  {:>10}\n",
            r.label,
            r.seeds_run,
            r.seeds_with_findings,
            r.first_seed_str(),
        ));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccnuma_sim::sanitize::{AccessInfo, LintKind, SanitizeGranularity};

    fn access(proc: usize, is_write: bool, phase: &str) -> AccessInfo {
        AccessInfo {
            proc,
            phase: phase.into(),
            addr: 0x1000,
            bytes: 8,
            is_write,
            locks: vec![],
        }
    }

    fn race(prior: AccessInfo, current: AccessInfo) -> RaceFinding {
        RaceFinding {
            addr: 0x1000,
            bytes: 8,
            prior,
            current,
        }
    }

    fn report(races: Vec<RaceFinding>) -> SanitizeReport {
        SanitizeReport {
            granularity: SanitizeGranularity::Word,
            races,
            lock_cycles: vec![],
            lints: vec![],
        }
    }

    #[test]
    fn race_key_is_endpoint_order_independent() {
        let a = race(access(0, true, "p"), access(1, false, "p"));
        let b = race(access(1, false, "p"), access(0, true, "p"));
        assert_eq!(race_key(&a), race_key(&b));
        let c = race(access(0, true, "q"), access(1, false, "p"));
        assert_ne!(race_key(&a), race_key(&c), "phase is part of the key");
        let d = race(access(2, true, "p"), access(1, false, "p"));
        assert_ne!(race_key(&a), race_key(&d), "proc pair is part of the key");
    }

    #[test]
    fn group_dedupes_the_same_race_across_seeds() {
        let r = race(access(0, true, "p"), access(1, false, "p"));
        let swapped = race(access(1, false, "p"), access(0, true, "p"));
        let reports = vec![
            ("fft/orig/4p@s1".to_string(), report(vec![])),
            ("fft/orig/4p@s2".to_string(), report(vec![r.clone()])),
            ("fft/orig/4p@s3".to_string(), report(vec![swapped])),
            ("fft/orig/4p".to_string(), report(vec![])),
            ("ocean/orig/4p@s1".to_string(), report(vec![])),
        ];
        let groups = group(&reports);
        assert_eq!(groups.len(), 2);
        let g = &groups[0];
        assert_eq!(g.label, "fft/orig/4p");
        assert_eq!(g.seeds_run, [None, Some(1), Some(2), Some(3)]);
        assert_eq!(g.counts(), [1, 0, 0], "one race, not two");
        assert_eq!(g.races[0].seeds, [Some(2), Some(3)]);
        assert_eq!(g.races[0].first_seed(), Some(2));
        assert_eq!(g.seeds_with_findings(), [Some(2), Some(3)]);
        assert_eq!(g.first_seed(), Some(Some(2)));
        assert!(groups[1].is_clean());
        assert_eq!(groups[1].first_seed(), None);
    }

    #[test]
    fn group_dedupes_cycles_and_lints() {
        let mut a = report(vec![]);
        a.lock_cycles.push(LockCycleFinding { locks: vec![0, 1] });
        a.lints.push(LintFinding {
            kind: LintKind::BarrierDivergence,
            message: "m".into(),
        });
        let mut b = a.clone();
        b.lock_cycles.push(LockCycleFinding { locks: vec![2, 3] });
        let reports = vec![("c/v/2p@s1".to_string(), a), ("c/v/2p@s2".to_string(), b)];
        let g = &group(&reports)[0];
        assert_eq!(g.counts(), [0, 2, 1]);
        assert_eq!(g.cycles[0].seeds, [Some(1), Some(2)]);
        assert_eq!(g.cycles[1].seeds, [Some(2)]);
        assert_eq!(g.lints[0].seeds, [Some(1), Some(2)]);
        // Default schedule sorts before every numbered seed.
        assert_eq!(g.first_seed(), Some(Some(1)));
    }

    fn rec(label: &str, sanitize: Option<[u64; 3]>) -> CellRecord {
        CellRecord {
            key: label.to_string(),
            label: label.to_string(),
            app: "a".into(),
            version: "v".into(),
            problem: String::new(),
            nprocs: 2,
            scale: "quick".into(),
            status: ccnuma_sweep::store::CellStatus::Ok,
            attempts: 1,
            host_ms: 0,
            wall_ns: 0,
            seq_ns: 0,
            busy_ns: 0,
            mem_ns: 0,
            sync_ns: 0,
            misses: 0,
            events: 0,
            causes: [0; 5],
            sanitize,
            critpath: None,
            error: None,
        }
    }

    #[test]
    fn seed_rows_summarize_counts_per_base_cell() {
        let records = vec![
            rec("a/v/2p@s1", Some([0, 0, 0])),
            rec("a/v/2p@s2", Some([1, 0, 0])),
            rec("a/v/2p@s3", Some([1, 0, 1])),
            rec("b/v/2p", Some([0, 0, 0])),
            rec("c/v/2p", None), // quarantined: skipped
        ];
        let rows = seed_rows(&records);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].label, "a/v/2p");
        assert_eq!(rows[0].seeds_run, 3);
        assert_eq!(rows[0].seeds_with_findings, 2);
        assert_eq!(rows[0].first_seed, Some(Some(2)));
        assert_eq!(rows[0].first_seed_str(), "2");
        assert_eq!(rows[0].counts, [2, 0, 1]);
        assert_eq!(rows[1].label, "b/v/2p");
        assert_eq!(rows[1].seeds_with_findings, 0);
        assert_eq!(rows[1].first_seed_str(), "-");
        let table = seed_table(&rows);
        assert!(table.contains("seeds-with-findings"));
        assert!(table.contains("a/v/2p"));
    }

    #[test]
    fn default_schedule_finding_reads_as_default() {
        let rows = seed_rows(&[rec("a/v/2p", Some([1, 0, 0]))]);
        assert_eq!(rows[0].first_seed, Some(None));
        assert_eq!(rows[0].first_seed_str(), "default");
    }
}
