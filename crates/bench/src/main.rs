//! `repro` — regenerate the tables and figures of Jiang & Singh (ISCA'99).
//!
//! ```text
//! repro <experiment> [--quick] [--csv] [--trace <out.json>] [--out <dir>]
//!
//! experiments:
//!   table1 table2 fig2 fig3 fig4 fig5-8 fig9 fig10 table3
//!   prefetch migration sync mapping nodeshare phases guidelines all
//!
//! --quick          small machines and problems (seconds instead of minutes)
//! --csv            emit CSV instead of aligned text tables
//! --trace <file>   trace every parallel run and write one merged Chrome
//!                  trace-event JSON file (load it in Perfetto or
//!                  chrome://tracing)
//! --out <dir>      also write each table to <dir> as both .txt and .csv
//! ```

use std::path::{Path, PathBuf};

use ccnuma_sim::trace::{chrome_trace_file, Trace, TraceConfig};
use scaling_study::experiments::Scale;
use scaling_study::report::Table;
use study_bench::figures;

struct Opts {
    csv: bool,
    scale: Scale,
    trace: Option<PathBuf>,
    out: Option<PathBuf>,
}

/// Turns a table title into a safe file stem, e.g.
/// `"Figure 3: average breakdown"` → `"figure-3-average-breakdown"`.
fn slug(title: &str) -> String {
    let mut s = String::with_capacity(title.len());
    for c in title.chars() {
        if c.is_ascii_alphanumeric() {
            s.push(c.to_ascii_lowercase());
        } else if !s.ends_with('-') {
            s.push('-');
        }
    }
    let s = s.trim_matches('-').to_string();
    if s.is_empty() {
        "table".into()
    } else {
        s
    }
}

fn emit_tables(tables: &[Table], opts: &Opts) -> std::io::Result<()> {
    for t in tables {
        if opts.csv {
            println!("# {}", t.title);
            print!("{}", t.to_csv());
        } else {
            println!("{t}");
        }
    }
    if let Some(dir) = &opts.out {
        for t in tables {
            let stem = slug(&t.title);
            std::fs::write(dir.join(format!("{stem}.txt")), t.to_string())?;
            std::fs::write(dir.join(format!("{stem}.csv")), t.to_csv())?;
        }
    }
    Ok(())
}

fn run_one(
    name: &str,
    opts: &Opts,
    traces: &mut Vec<(String, Trace)>,
) -> Result<(), Box<dyn std::error::Error>> {
    let scale = opts.scale;
    let mut runner = figures::runner_for(scale);
    if opts.trace.is_some() {
        runner.set_trace(Some(TraceConfig::on()));
    }
    let tables: Vec<Table> = match name {
        "table1" => vec![figures::table1()],
        "table2" => vec![figures::table2(&mut runner, scale)?],
        "fig2" => vec![figures::fig2(&mut runner, scale)?],
        "fig3" => vec![figures::fig3(&mut runner, scale)?],
        "fig4" => figures::fig4(&mut runner, scale)?,
        "fig5-8" | "fig5" | "fig6" | "fig7" | "fig8" => figures::figs5to8(&mut runner, scale)?,
        "fig9" => vec![figures::fig9(&mut runner, scale)?],
        "fig10" => vec![figures::fig10(&mut runner, scale)?],
        "table3" => vec![figures::table3(&mut runner, scale)?],
        "prefetch" => vec![figures::prefetch(&mut runner, scale)?],
        "migration" => vec![figures::migration(&mut runner, scale)?],
        "sync" => figures::sync(&mut runner, scale)?,
        "mapping" => vec![figures::mapping(&mut runner, scale)?],
        "nodeshare" => vec![figures::nodeshare(&mut runner, scale)?],
        "svm" => vec![figures::svm(&mut runner, scale)?],
        "ablation" => vec![figures::ablation(&mut runner, scale)?],
        "profile" => figures::profile(&mut runner, scale)?,
        "phases" => figures::phases(&mut runner, scale)?,
        "guidelines" => vec![figures::guidelines()],
        other => return Err(format!("unknown experiment {other:?} (try --help)").into()),
    };
    emit_tables(&tables, opts)?;
    if opts.trace.is_some() {
        for (label, trace) in runner.take_traces() {
            traces.push((format!("{name}: {label}"), trace));
        }
    }
    Ok(())
}

const ALL: &[&str] = &[
    "table1",
    "table2",
    "fig2",
    "fig3",
    "fig4",
    "fig5-8",
    "fig9",
    "fig10",
    "table3",
    "prefetch",
    "migration",
    "sync",
    "mapping",
    "nodeshare",
    "svm",
    "profile",
    "phases",
    "ablation",
    "guidelines",
];

fn usage(code: i32) -> ! {
    eprintln!("usage: repro <experiment>... [--quick] [--csv] [--trace <out.json>] [--out <dir>]");
    eprintln!("experiments: {} all", ALL.join(" "));
    std::process::exit(code);
}

fn parse_opts(args: &[String]) -> (Opts, Vec<String>) {
    let mut opts = Opts {
        csv: false,
        scale: Scale::Full,
        trace: None,
        out: None,
    };
    let mut names = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--csv" => opts.csv = true,
            "--quick" => opts.scale = Scale::Quick,
            "--trace" => match it.next() {
                Some(f) => opts.trace = Some(PathBuf::from(f)),
                None => {
                    eprintln!("error: --trace needs a file argument");
                    usage(2);
                }
            },
            "--out" => match it.next() {
                Some(d) => opts.out = Some(PathBuf::from(d)),
                None => {
                    eprintln!("error: --out needs a directory argument");
                    usage(2);
                }
            },
            "--help" | "-h" => usage(0),
            other if other.starts_with("--") => {
                eprintln!("error: unknown flag {other:?}");
                usage(2);
            }
            other => names.push(other.to_string()),
        }
    }
    (opts, names)
}

fn write_trace_file(path: &Path, traces: &[(String, Trace)]) -> std::io::Result<()> {
    let refs: Vec<(String, &Trace)> = traces.iter().map(|(l, t)| (l.clone(), t)).collect();
    std::fs::write(path, chrome_trace_file(&refs))?;
    eprintln!(
        "[repro] wrote {} trace(s) to {}",
        traces.len(),
        path.display()
    );
    Ok(())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (opts, names) = parse_opts(&args);
    if names.is_empty() {
        usage(2);
    }
    if let Some(dir) = &opts.out {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("error: cannot create {}: {e}", dir.display());
            std::process::exit(1);
        }
    }
    let selected: Vec<String> = if names.iter().any(|n| n == "all") {
        ALL.iter().map(|s| s.to_string()).collect()
    } else {
        names
    };
    let mut traces: Vec<(String, Trace)> = Vec::new();
    for name in &selected {
        eprintln!("[repro] running {name} ({:?} scale)...", opts.scale);
        let t0 = std::time::Instant::now();
        if let Err(e) = run_one(name, &opts, &mut traces) {
            eprintln!("error: {name}: {e}");
            std::process::exit(1);
        }
        eprintln!("[repro] {name} done in {:.1?}", t0.elapsed());
    }
    if let Some(path) = &opts.trace {
        // A bare filename lands next to the tables when --out is given.
        let path = match &opts.out {
            Some(dir) if path.parent().is_some_and(|p| p.as_os_str().is_empty()) => dir.join(path),
            _ => path.clone(),
        };
        if let Err(e) = write_trace_file(&path, &traces) {
            eprintln!("error: writing trace file: {e}");
            std::process::exit(1);
        }
    }
}
