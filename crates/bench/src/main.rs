//! `repro` — regenerate the tables and figures of Jiang & Singh (ISCA'99).
//!
//! ```text
//! repro <experiment> [--quick] [--csv] [--trace <out.json>] [--out <dir>]
//!                   [--attrib <dir>] [--sanitize] [--schedule-seed <s>]
//!
//! experiments:
//!   table1 table2 fig2 fig3 fig4 fig5-8 fig9 fig10 table3
//!   prefetch migration sync mapping nodeshare phases attrib guidelines all
//!
//! --quick          small machines and problems (seconds instead of minutes)
//! --csv            emit CSV instead of aligned text tables
//! --trace <file>   trace every parallel run and write one merged Chrome
//!                  trace-event JSON file (load it in Perfetto or
//!                  chrome://tracing)
//! --out <dir>      also write each table to <dir> as both .txt and .csv,
//!                  plus a manifest.json listing every emitted file
//! --attrib <dir>   classify misses on every parallel run and write one
//!                  attribution JSON per run to <dir>
//! --sanitize       race-check every parallel run with the happens-before
//!                  sanitizer; findings are summarized on stderr and, with
//!                  --out, written to sanitize-findings.json in the
//!                  manifest
//! --schedule-seed <s>  perturb every parallel run's schedule with seed s
//!                  (seeded tie-breaks, lock-grant and semaphore-wake
//!                  order); the same seed replays the same interleaving
//!                  bit-for-bit, so a finding from `bench sanitize
//!                  --schedules N` can be re-examined here. Sequential
//!                  baselines stay unperturbed
//! ```

use std::path::{Path, PathBuf};

use ccnuma_sim::sanitize::SanitizeReport;
use ccnuma_sim::trace::{chrome_trace_file, Trace, TraceConfig};
use scaling_study::experiments::Scale;
use scaling_study::report::Table;
use study_bench::figures;

struct Opts {
    csv: bool,
    scale: Scale,
    trace: Option<PathBuf>,
    out: Option<PathBuf>,
    attrib: Option<PathBuf>,
    sanitize: bool,
    schedule_seed: Option<u64>,
}

/// Turns a table title into a safe file stem, e.g.
/// `"Figure 3: average breakdown"` → `"figure-3-average-breakdown"`.
fn slug(title: &str) -> String {
    let mut s = String::with_capacity(title.len());
    for c in title.chars() {
        if c.is_ascii_alphanumeric() {
            s.push(c.to_ascii_lowercase());
        } else if !s.ends_with('-') {
            s.push('-');
        }
    }
    let s = s.trim_matches('-').to_string();
    if s.is_empty() {
        "table".into()
    } else {
        s
    }
}

fn emit_tables(tables: &[Table], opts: &Opts, emitted: &mut Vec<String>) -> std::io::Result<()> {
    for t in tables {
        if opts.csv {
            println!("# {}", t.title);
            print!("{}", t.to_csv());
        } else {
            println!("{t}");
        }
    }
    if let Some(dir) = &opts.out {
        for t in tables {
            let stem = slug(&t.title);
            for (ext, body) in [("txt", t.to_string()), ("csv", t.to_csv())] {
                let file = format!("{stem}.{ext}");
                std::fs::write(dir.join(&file), body)?;
                emitted.push(file);
            }
        }
    }
    Ok(())
}

#[allow(clippy::too_many_arguments)]
fn run_one(
    name: &str,
    opts: &Opts,
    traces: &mut Vec<(String, Trace)>,
    attribs: &mut Vec<(String, String)>,
    sanitizes: &mut Vec<(String, SanitizeReport)>,
    emitted: &mut Vec<String>,
) -> Result<(), Box<dyn std::error::Error>> {
    let scale = opts.scale;
    let mut runner = figures::runner_for(scale);
    if opts.trace.is_some() {
        runner.set_trace(Some(TraceConfig::on()));
    }
    if opts.attrib.is_some() {
        runner.set_attrib(true);
    }
    if opts.sanitize {
        runner.set_sanitize(true);
    }
    runner.set_schedule_seed(opts.schedule_seed);
    let tables: Vec<Table> = figures::run_experiment(name, &mut runner, scale)
        .ok_or_else(|| format!("unknown experiment {name:?} (try --help)"))??;
    emit_tables(&tables, opts, emitted)?;
    if opts.trace.is_some() {
        for (label, trace) in runner.take_traces() {
            traces.push((format!("{name}: {label}"), trace));
        }
    }
    if opts.attrib.is_some() {
        for (label, json) in runner.take_attribs() {
            attribs.push((format!("{name}: {label}"), json));
        }
    }
    if opts.sanitize {
        for (label, rep) in runner.take_sanitizes() {
            sanitizes.push((format!("{name}: {label}"), rep));
        }
    }
    Ok(())
}

fn usage(code: i32) -> ! {
    eprintln!(
        "usage: repro <experiment>... [--quick] [--csv] [--trace <out.json>] [--out <dir>] [--attrib <dir>] [--sanitize] [--schedule-seed <s>]"
    );
    eprintln!("experiments: {} all", figures::EXPERIMENT_NAMES.join(" "));
    std::process::exit(code);
}

fn parse_opts(args: &[String]) -> (Opts, Vec<String>) {
    let mut opts = Opts {
        csv: false,
        scale: Scale::Full,
        trace: None,
        out: None,
        attrib: None,
        sanitize: false,
        schedule_seed: None,
    };
    let mut names = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--csv" => opts.csv = true,
            "--quick" => opts.scale = Scale::Quick,
            "--trace" => match it.next() {
                Some(f) => opts.trace = Some(PathBuf::from(f)),
                None => {
                    eprintln!("error: --trace needs a file argument");
                    usage(2);
                }
            },
            "--out" => match it.next() {
                Some(d) => opts.out = Some(PathBuf::from(d)),
                None => {
                    eprintln!("error: --out needs a directory argument");
                    usage(2);
                }
            },
            "--attrib" => match it.next() {
                Some(d) => opts.attrib = Some(PathBuf::from(d)),
                None => {
                    eprintln!("error: --attrib needs a directory argument");
                    usage(2);
                }
            },
            "--sanitize" => opts.sanitize = true,
            "--schedule-seed" => match it.next().map(|v| v.parse::<u64>()) {
                Some(Ok(s)) => opts.schedule_seed = Some(s),
                _ => {
                    eprintln!("error: --schedule-seed needs an integer seed");
                    usage(2);
                }
            },
            "--help" | "-h" => usage(0),
            other if other.starts_with("--") => {
                eprintln!("error: unknown flag {other:?}");
                usage(2);
            }
            other => names.push(other.to_string()),
        }
    }
    (opts, names)
}

fn write_trace_file(path: &Path, traces: &[(String, Trace)]) -> std::io::Result<()> {
    let refs: Vec<(String, &Trace)> = traces.iter().map(|(l, t)| (l.clone(), t)).collect();
    std::fs::write(path, chrome_trace_file(&refs))?;
    eprintln!(
        "[repro] wrote {} trace(s) to {}",
        traces.len(),
        path.display()
    );
    Ok(())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (opts, names) = parse_opts(&args);
    if names.is_empty() {
        usage(2);
    }
    if let Some(dir) = &opts.out {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("error: cannot create {}: {e}", dir.display());
            std::process::exit(1);
        }
    }
    let selected: Vec<String> = if names.iter().any(|n| n == "all") {
        figures::EXPERIMENT_NAMES
            .iter()
            .map(|s| s.to_string())
            .collect()
    } else {
        names
    };
    // Validate every name up front: a typo anywhere in the list fails
    // fast with the catalog on stderr, instead of surfacing only after
    // the experiments before it have run.
    let unknown: Vec<&String> = selected
        .iter()
        .filter(|n| !figures::is_experiment(n))
        .collect();
    if !unknown.is_empty() {
        for n in &unknown {
            eprintln!("error: unknown experiment {n:?}");
        }
        eprintln!("experiments: {} all", figures::EXPERIMENT_NAMES.join(" "));
        std::process::exit(2);
    }
    let mut traces: Vec<(String, Trace)> = Vec::new();
    let mut attribs: Vec<(String, String)> = Vec::new();
    let mut sanitizes: Vec<(String, SanitizeReport)> = Vec::new();
    let mut emitted: Vec<String> = Vec::new();
    for name in &selected {
        eprintln!("[repro] running {name} ({:?} scale)...", opts.scale);
        let t0 = std::time::Instant::now();
        if let Err(e) = run_one(
            name,
            &opts,
            &mut traces,
            &mut attribs,
            &mut sanitizes,
            &mut emitted,
        ) {
            eprintln!("error: {name}: {e}");
            std::process::exit(1);
        }
        eprintln!("[repro] {name} done in {:.1?}", t0.elapsed());
    }
    if let Some(path) = &opts.trace {
        // A bare filename lands next to the tables when --out is given.
        let path = match &opts.out {
            Some(dir) if path.parent().is_some_and(|p| p.as_os_str().is_empty()) => dir.join(path),
            _ => path.clone(),
        };
        if let Err(e) = write_trace_file(&path, &traces) {
            eprintln!("error: writing trace file: {e}");
            std::process::exit(1);
        }
        if opts.out.as_deref() == path.parent() {
            if let Some(name) = path.file_name() {
                emitted.push(name.to_string_lossy().into_owned());
            }
        }
    }
    if let Some(dir) = &opts.attrib {
        if let Err(e) = write_attrib_files(dir, &attribs, &opts, &mut emitted) {
            eprintln!("error: writing attribution files: {e}");
            std::process::exit(1);
        }
    }
    if opts.sanitize {
        let dirty = sanitizes.iter().filter(|(_, r)| !r.is_clean()).count();
        eprintln!(
            "[repro] sanitize: {} run(s) checked, {dirty} with findings",
            sanitizes.len()
        );
        for (label, rep) in &sanitizes {
            if !rep.is_clean() {
                eprintln!("[repro]   {label}: {}", rep.summary());
            }
        }
        if let Some(dir) = &opts.out {
            let mut doc = String::from("{\n  \"version\": 1,\n  \"reports\": [");
            for (i, (label, rep)) in sanitizes.iter().enumerate() {
                if i > 0 {
                    doc.push(',');
                }
                doc.push('\n');
                doc.push_str(scaling_study::report::sanitize_json(label, rep).trim_end());
            }
            doc.push_str("\n  ]\n}\n");
            let file = "sanitize-findings.json";
            if let Err(e) = std::fs::write(dir.join(file), doc) {
                eprintln!("error: writing {file}: {e}");
                std::process::exit(1);
            }
            emitted.push(file.to_string());
        }
    }
    if let Some(dir) = &opts.out {
        if let Err(e) = write_manifest(dir, &emitted) {
            eprintln!("error: writing manifest: {e}");
            std::process::exit(1);
        }
    }
}

/// Writes one attribution JSON per run to `dir` (created if missing).
/// Files written into the `--out` directory are also recorded in the
/// manifest.
fn write_attrib_files(
    dir: &Path,
    attribs: &[(String, String)],
    opts: &Opts,
    emitted: &mut Vec<String>,
) -> std::io::Result<()> {
    std::fs::create_dir_all(dir)?;
    for (label, json) in attribs {
        let file = format!("{}.json", slug(label));
        std::fs::write(dir.join(&file), json)?;
        if opts.out.as_deref() == Some(dir) {
            emitted.push(file);
        }
    }
    eprintln!(
        "[repro] wrote {} attribution file(s) to {}",
        attribs.len(),
        dir.display()
    );
    Ok(())
}

/// Writes `manifest.json` into the `--out` directory, listing every file
/// emitted there by this invocation.
fn write_manifest(dir: &Path, emitted: &[String]) -> std::io::Result<()> {
    let mut s = String::from("{\n  \"version\": 1,\n  \"files\": [");
    for (i, f) in emitted.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!(
            "\n    \"{}\"",
            f.replace('\\', "\\\\").replace('"', "\\\"")
        ));
    }
    s.push_str("\n  ]\n}\n");
    std::fs::write(dir.join("manifest.json"), s)?;
    eprintln!(
        "[repro] wrote manifest.json ({} file(s)) to {}",
        emitted.len(),
        dir.display()
    );
    Ok(())
}
