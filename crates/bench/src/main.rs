//! `repro` — regenerate the tables and figures of Jiang & Singh (ISCA'99).
//!
//! ```text
//! repro <experiment> [--quick] [--csv]
//!
//! experiments:
//!   table1 table2 fig2 fig3 fig4 fig5-8 fig9 fig10 table3
//!   prefetch migration sync mapping nodeshare guidelines all
//!
//! --quick   small machines and problems (seconds instead of minutes)
//! --csv     emit CSV instead of aligned text tables
//! ```

use scaling_study::experiments::Scale;
use scaling_study::report::Table;
use study_bench::figures;

fn print_tables(tables: &[Table], csv: bool) {
    for t in tables {
        if csv {
            println!("# {}", t.title);
            print!("{}", t.to_csv());
        } else {
            println!("{t}");
        }
    }
}

fn run_one(name: &str, scale: Scale, csv: bool) -> Result<(), Box<dyn std::error::Error>> {
    let mut runner = figures::runner_for(scale);
    let tables: Vec<Table> = match name {
        "table1" => vec![figures::table1()],
        "table2" => vec![figures::table2(&mut runner, scale)?],
        "fig2" => vec![figures::fig2(&mut runner, scale)?],
        "fig3" => vec![figures::fig3(&mut runner, scale)?],
        "fig4" => figures::fig4(&mut runner, scale)?,
        "fig5-8" | "fig5" | "fig6" | "fig7" | "fig8" => figures::figs5to8(&mut runner, scale)?,
        "fig9" => vec![figures::fig9(&mut runner, scale)?],
        "fig10" => vec![figures::fig10(&mut runner, scale)?],
        "table3" => vec![figures::table3(&mut runner, scale)?],
        "prefetch" => vec![figures::prefetch(&mut runner, scale)?],
        "migration" => vec![figures::migration(&mut runner, scale)?],
        "sync" => figures::sync(&mut runner, scale)?,
        "mapping" => vec![figures::mapping(&mut runner, scale)?],
        "nodeshare" => vec![figures::nodeshare(&mut runner, scale)?],
        "svm" => vec![figures::svm(&mut runner, scale)?],
        "ablation" => vec![figures::ablation(&mut runner, scale)?],
        "profile" => figures::profile(&mut runner, scale)?,
        "guidelines" => vec![figures::guidelines()],
        other => return Err(format!("unknown experiment {other:?} (try --help)").into()),
    };
    print_tables(&tables, csv);
    Ok(())
}

const ALL: &[&str] = &[
    "table1", "table2", "fig2", "fig3", "fig4", "fig5-8", "fig9", "fig10", "table3", "prefetch",
    "migration", "sync", "mapping", "nodeshare", "svm", "profile", "ablation", "guidelines",
];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let csv = args.iter().any(|a| a == "--csv");
    let scale = if args.iter().any(|a| a == "--quick") { Scale::Quick } else { Scale::Full };
    let names: Vec<&str> =
        args.iter().filter(|a| !a.starts_with("--")).map(|s| s.as_str()).collect();
    if (names.is_empty() && !args.iter().any(|a| a == "--help"))
        || args.iter().any(|a| a == "--help")
    {
        eprintln!("usage: repro <experiment>... [--quick] [--csv]");
        eprintln!("experiments: {} all", ALL.join(" "));
        std::process::exit(if names.is_empty() { 2 } else { 0 });
    }
    let selected: Vec<&str> = if names.contains(&"all") { ALL.to_vec() } else { names };
    for name in selected {
        eprintln!("[repro] running {name} ({scale:?} scale)...");
        let t0 = std::time::Instant::now();
        if let Err(e) = run_one(name, scale, csv) {
            eprintln!("error: {name}: {e}");
            std::process::exit(1);
        }
        eprintln!("[repro] {name} done in {:.1?}", t0.elapsed());
    }
}
