//! The engine-throughput harness behind `bench perf`: times the pinned
//! workload matrix on the host clock, snapshots events-per-second and
//! ns-per-event to `BENCH_engine.json`, and gates changes against the
//! committed baseline with a *relative* tolerance.
//!
//! Unlike `bench regress` (which compares bit-deterministic simulated
//! numbers), this harness measures wall-clock throughput, which varies
//! with the host. Two things make the gate portable anyway:
//!
//! * the per-cell engine-event count ([`PerfEntry::events`]) is
//!   deterministic and compared exactly — a change means the engine's
//!   work changed, not the machine speed;
//! * ns-per-event drift is judged *after* dividing out the matrix-wide
//!   geometric-mean speed factor between baseline and current host, so
//!   a uniformly slower runner passes and only per-cell *relative*
//!   regressions fail.

use std::time::Instant;

use ccnuma_sim::config::MachineConfig;
use ccnuma_sim::prof::{self, HostProfile};
use scaling_study::experiments::{basic, Scale};
use scaling_study::runner::{execute_workload, StudyError};

use crate::regress::{MATRIX_APPS, MATRIX_PROCS};

/// Default relative tolerance of the throughput gate. Deliberately far
/// looser than the accuracy gate's 2%: wall clocks on shared CI runners
/// jitter by tens of percent.
pub const DEFAULT_TOLERANCE: f64 = 0.35;

/// Default timed repetitions per cell (a discarded warmup rep runs
/// first).
pub const DEFAULT_REPS: usize = 3;

/// Optional-subsystem overhead modes measured by
/// [`measure_overheads`], in report order. `"baseline"` (all off) is
/// implicit; `"live"` runs the full telemetry wiring (registry +
/// refresher) beside an unmodified config.
pub const OVERHEAD_MODES: &[&str] = &["attrib", "trace", "sanitize", "profile", "live"];

/// One measured point of the throughput matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct PerfEntry {
    /// Workload name (e.g. `"ocean"`).
    pub app: String,
    /// Problem description (e.g. `"34x34 grid"`).
    pub problem: String,
    /// Processors used.
    pub nprocs: usize,
    /// Engine events processed — deterministic, compared exactly.
    pub events: u64,
    /// Median host nanoseconds per engine event across the timed reps.
    pub ns_per_event: u64,
}

impl PerfEntry {
    /// The `"app/problem/NNp"` key identifying this point.
    pub fn key(&self) -> String {
        format!("{}/{}/{}p", self.app, self.problem, self.nprocs)
    }

    /// Simulated events per host second implied by the median rep.
    pub fn events_per_sec(&self) -> f64 {
        if self.ns_per_event == 0 {
            0.0
        } else {
            1e9 / self.ns_per_event as f64
        }
    }
}

/// One row of the subsystem-overhead report.
#[derive(Debug, Clone, PartialEq)]
pub struct OverheadEntry {
    /// Mode name (`"baseline"` or one of [`OVERHEAD_MODES`]).
    pub mode: &'static str,
    /// Summed per-cell host nanoseconds for one matrix pass.
    pub total_ns: u64,
    /// Percent overhead versus the all-off baseline pass.
    pub overhead_pct: f64,
}

/// The matrix points, in pinned order.
fn points() -> Vec<(&'static str, usize)> {
    MATRIX_APPS
        .iter()
        .flat_map(|&id| MATRIX_PROCS.iter().map(move |&np| (id, np)))
        .collect()
}

/// The cell's machine config with one optional subsystem switched on.
fn mode_config(np: usize, scale: Scale, mode: &str) -> MachineConfig {
    let mut cfg = MachineConfig::origin2000_scaled(np, scale.cache_bytes());
    match mode {
        "attrib" => cfg.classify_misses = true,
        "trace" => cfg.trace = ccnuma_sim::trace::TraceConfig::on(),
        "sanitize" => cfg.sanitize.enabled = true,
        "profile" => cfg.profile = true,
        _ => {}
    }
    cfg
}

/// Times the pinned matrix: per cell, one discarded warmup rep then
/// `reps` timed reps, reporting the median. Cells fan out over `jobs`
/// host threads (each cell's reps stay on one thread).
///
/// # Errors
///
/// Propagates the first simulation or verification failure in matrix
/// order.
pub fn measure_with_jobs(jobs: usize, reps: usize) -> Result<Vec<PerfEntry>, StudyError> {
    let scale = Scale::Quick;
    let reps = reps.max(1);
    let pts = points();
    let (results, _) = ccnuma_sweep::pool::run(&pts, jobs, |&(id, np)| {
        let w = basic(id, scale);
        let cfg = mode_config(np, scale, "baseline");
        let mut times = Vec::with_capacity(reps);
        let mut events = 0u64;
        for rep in 0..=reps {
            let t = Instant::now();
            let (_, stats) = execute_workload(w.as_ref(), cfg.clone())?;
            let dt = t.elapsed().as_nanos() as u64;
            debug_assert!(
                rep == 0 || events == stats.events,
                "events are deterministic"
            );
            events = stats.events;
            if rep > 0 {
                times.push(dt); // warmup rep discarded
            }
        }
        times.sort_unstable();
        let median = times[times.len() / 2];
        Ok(PerfEntry {
            app: w.name(),
            problem: w.problem(),
            nprocs: np,
            events,
            ns_per_event: median / events.max(1),
        })
    });
    results.into_iter().collect()
}

/// One single-rep pass over the matrix in `mode`; returns the per-cell
/// host nanoseconds in matrix order (per-cell times keep the numbers
/// comparable at any job count, unlike the pass's wall clock).
fn matrix_pass(jobs: usize, mode: &str) -> Result<Vec<u64>, StudyError> {
    let scale = Scale::Quick;
    let pts = points();
    let (results, _) =
        ccnuma_sweep::pool::run(&pts, jobs, |&(id, np)| -> Result<u64, StudyError> {
            let w = basic(id, scale);
            let cfg = mode_config(np, scale, mode);
            let t = Instant::now();
            execute_workload(w.as_ref(), cfg)?;
            Ok(t.elapsed().as_nanos() as u64)
        });
    results.into_iter().collect()
}

/// Measures the host-time cost of each optional subsystem by comparing
/// a composite matrix pass of each mode against the all-off baseline.
/// Three defenses against host noise: the composite is the sum of
/// *per-cell minima* across passes (scheduler interference only ever
/// adds time, and taking the minimum per cell discards it cell by cell
/// instead of requiring one whole pass to get lucky end to end);
/// passes are *round-robin interleaved* — pass `i` of every mode runs
/// before pass `i+1` of any, so a machine whose speed drifts over
/// seconds (turbo, co-tenants) exposes every mode to the same fast and
/// slow windows; and the caller picks the pass count. The `"live"` row
/// runs the full telemetry wiring (registry, refresher, rate pipeline)
/// for the duration of its passes.
///
/// # Errors
///
/// Propagates the first simulation or verification failure.
pub fn measure_overheads(jobs: usize, passes: usize) -> Result<Vec<OverheadEntry>, StudyError> {
    let passes = passes.max(1);
    let n_cells = points().len();
    let mut best = vec![vec![u64::MAX; n_cells]; OVERHEAD_MODES.len() + 1];
    let fold = |best: &mut Vec<u64>, pass: Vec<u64>| {
        for (b, t) in best.iter_mut().zip(pass) {
            *b = (*b).min(t);
        }
    };
    for _ in 0..passes {
        let pass = matrix_pass(jobs, "baseline")?;
        fold(&mut best[0], pass);
        for (i, &mode) in OVERHEAD_MODES.iter().enumerate() {
            let wiring = (mode == "live")
                .then(|| crate::live::Wiring::start(std::time::Duration::from_millis(100)));
            let pass = matrix_pass(jobs, mode);
            if let Some(w) = wiring {
                w.stop();
            }
            fold(&mut best[i + 1], pass?);
        }
    }
    let base: u64 = best[0].iter().sum();
    let mut out = vec![OverheadEntry {
        mode: "baseline",
        total_ns: base,
        overhead_pct: 0.0,
    }];
    for (i, &mode) in OVERHEAD_MODES.iter().enumerate() {
        let total: u64 = best[i + 1].iter().sum();
        out.push(OverheadEntry {
            mode,
            total_ns: total,
            overhead_pct: 100.0 * (total as f64 / base.max(1) as f64 - 1.0),
        });
    }
    Ok(out)
}

/// Runs one profiled pass over the matrix (`cfg.profile = on`) and
/// hands back the drained aggregate host profile — the input for the
/// Chrome-trace and collapsed-stack exports.
///
/// # Errors
///
/// Propagates the first simulation or verification failure.
pub fn profile_matrix(jobs: usize) -> Result<HostProfile, StudyError> {
    prof::reset();
    matrix_pass(jobs, "profile")?;
    Ok(prof::take())
}

/// Serializes entries as the `BENCH_engine.json` document. The model
/// fingerprint pins which engine produced the numbers; a fingerprint
/// bump forces a baseline regeneration rather than a spurious drift
/// report.
pub fn to_json(reps: usize, entries: &[PerfEntry]) -> String {
    let esc = |s: &str| s.replace('\\', "\\\\").replace('"', "\\\"");
    let mut out = format!(
        "{{\n  \"version\": 1,\n  \"model\": \"{}\",\n  \"reps\": {},\n  \"entries\": [",
        esc(ccnuma_sim::MODEL_FINGERPRINT),
        reps
    );
    for (i, e) in entries.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"app\": \"{}\", \"problem\": \"{}\", \"nprocs\": {}, \
             \"events\": {}, \"ns_per_event\": {}}}",
            esc(&e.app),
            esc(&e.problem),
            e.nprocs,
            e.events,
            e.ns_per_event
        ));
    }
    out.push_str("\n  ]\n}\n");
    out
}

fn str_field(obj: &str, key: &str) -> Result<String, String> {
    let pat = format!("\"{key}\": \"");
    let start = obj.find(&pat).ok_or_else(|| format!("missing {key}"))? + pat.len();
    let mut out = String::new();
    let mut chars = obj[start..].chars();
    loop {
        match chars.next() {
            Some('"') => return Ok(out),
            Some('\\') => match chars.next() {
                Some(c @ ('"' | '\\')) => out.push(c),
                _ => return Err(format!("bad escape in {key}")),
            },
            Some(c) => out.push(c),
            None => return Err(format!("unterminated {key}")),
        }
    }
}

fn num_field(obj: &str, key: &str) -> Result<u64, String> {
    let pat = format!("\"{key}\": ");
    let start = obj.find(&pat).ok_or_else(|| format!("missing {key}"))? + pat.len();
    let digits: String = obj[start..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect();
    digits.parse().map_err(|_| format!("bad number for {key}"))
}

/// Parses a `BENCH_engine.json` document produced by [`to_json`];
/// returns `(model, reps, entries)`. Minimal parser for exactly that
/// shape, like the `regress` one.
///
/// # Errors
///
/// Returns a description of the first malformed field found.
pub fn parse(doc: &str) -> Result<(String, usize, Vec<PerfEntry>), String> {
    let entries_at = doc
        .find("\"entries\"")
        .ok_or_else(|| "missing entries array".to_string())?;
    let head = &doc[..entries_at];
    let model = str_field(head, "model")?;
    let reps = num_field(head, "reps")? as usize;
    let mut out = Vec::new();
    let mut rest = &doc[entries_at..];
    while let Some(open) = rest.find('{') {
        let close = rest[open..]
            .find('}')
            .ok_or_else(|| "unterminated entry object".to_string())?;
        let obj = &rest[open..open + close + 1];
        out.push(PerfEntry {
            app: str_field(obj, "app")?,
            problem: str_field(obj, "problem")?,
            nprocs: num_field(obj, "nprocs")? as usize,
            events: num_field(obj, "events")?,
            ns_per_event: num_field(obj, "ns_per_event")?,
        });
        rest = &rest[open + close + 1..];
    }
    Ok((model, reps, out))
}

/// Geometric mean of the per-cell current/baseline ns-per-event ratios
/// — the matrix-wide machine-speed factor between the two runs.
fn speed_factor(pairs: &[(&PerfEntry, &PerfEntry)]) -> f64 {
    let mut sum_ln = 0.0;
    let mut n = 0usize;
    for (b, c) in pairs {
        if b.ns_per_event > 0 && c.ns_per_event > 0 {
            sum_ln += (c.ns_per_event as f64 / b.ns_per_event as f64).ln();
            n += 1;
        }
    }
    if n == 0 {
        1.0
    } else {
        (sum_ln / n as f64).exp()
    }
}

/// Compares `current` against `baseline`: event counts exactly,
/// ns-per-event with relative `tolerance` *after* dividing out the
/// matrix-wide speed factor. Returns one message per violation; empty
/// means the gate passes.
pub fn compare(
    model: &str,
    baseline: &[PerfEntry],
    current: &[PerfEntry],
    tolerance: f64,
) -> Vec<String> {
    let mut out = Vec::new();
    if model != ccnuma_sim::MODEL_FINGERPRINT {
        out.push(format!(
            "model fingerprint changed (baseline {model:?}, current {:?}): \
             regenerate with `bench perf`",
            ccnuma_sim::MODEL_FINGERPRINT
        ));
        return out;
    }
    let mut pairs: Vec<(&PerfEntry, &PerfEntry)> = Vec::new();
    for b in baseline {
        match current.iter().find(|c| c.key() == b.key()) {
            Some(c) => pairs.push((b, c)),
            None => out.push(format!("{}: missing from current run", b.key())),
        }
    }
    for c in current {
        if !baseline.iter().any(|b| b.key() == c.key()) {
            out.push(format!(
                "{}: not in baseline (regenerate with `bench perf`)",
                c.key()
            ));
        }
    }
    let speed = speed_factor(&pairs);
    for (b, c) in &pairs {
        if c.events != b.events {
            out.push(format!(
                "{}: engine events changed (baseline {}, current {}) — \
                 the engine's work changed, regenerate with `bench perf`",
                b.key(),
                b.events,
                c.events
            ));
        }
        let rel = (c.ns_per_event as f64 / b.ns_per_event.max(1) as f64) / speed - 1.0;
        if rel.abs() > tolerance {
            out.push(format!(
                "{}: ns/event drifted {:+.1}% relative to the matrix \
                 (baseline {}, current {}, machine-speed factor {:.2}x)",
                b.key(),
                100.0 * rel,
                b.ns_per_event,
                c.ns_per_event,
                speed
            ));
        }
    }
    out
}

/// Renders the per-cell throughput table.
pub fn table(entries: &[PerfEntry]) -> String {
    let mut out =
        String::from("cell                                    events    ns/event      Mev/s\n");
    for e in entries {
        out.push_str(&format!(
            "{:<38} {:>8} {:>11} {:>10.2}\n",
            e.key(),
            e.events,
            e.ns_per_event,
            e.events_per_sec() / 1e6
        ));
    }
    out
}

/// Renders the subsystem-overhead table.
pub fn overhead_table(rows: &[OverheadEntry]) -> String {
    let mut out = String::from("subsystem    total host ms   overhead\n");
    for r in rows {
        out.push_str(&format!(
            "{:<12} {:>13.1} {:>+9.1}%\n",
            r.mode,
            r.total_ns as f64 / 1e6,
            r.overhead_pct
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(app: &str, np: usize, events: u64, ns: u64) -> PerfEntry {
        PerfEntry {
            app: app.into(),
            problem: "p".into(),
            nprocs: np,
            events,
            ns_per_event: ns,
        }
    }

    #[test]
    fn json_roundtrips_with_model_and_reps() {
        let entries = vec![entry("fft", 4, 10_000, 250), entry("ocean", 8, 44_000, 310)];
        let doc = to_json(3, &entries);
        let (model, reps, back) = parse(&doc).unwrap();
        assert_eq!(model, ccnuma_sim::MODEL_FINGERPRINT);
        assert_eq!(reps, 3);
        assert_eq!(back, entries);
    }

    #[test]
    fn uniform_machine_slowdown_passes_the_gate() {
        let base = vec![entry("fft", 4, 100, 200), entry("ocean", 8, 300, 400)];
        // A 3x slower host, same per-cell shape: the speed factor
        // absorbs it entirely.
        let slow: Vec<PerfEntry> = base
            .iter()
            .map(|e| PerfEntry {
                ns_per_event: e.ns_per_event * 3,
                ..e.clone()
            })
            .collect();
        let msgs = compare(ccnuma_sim::MODEL_FINGERPRINT, &base, &slow, 0.05);
        assert!(msgs.is_empty(), "{msgs:?}");
    }

    #[test]
    fn per_cell_skew_and_event_changes_fail_the_gate() {
        let base = vec![
            entry("fft", 4, 100, 200),
            entry("ocean", 8, 300, 400),
            entry("radix", 4, 500, 100),
        ];
        let mut cur = base.clone();
        cur[0].ns_per_event = 600; // 3x this cell only
        cur[1].events = 999; // deterministic count changed
        let msgs = compare(ccnuma_sim::MODEL_FINGERPRINT, &base, &cur, 0.35);
        assert!(
            msgs.iter()
                .any(|m| m.contains("fft/p/4p") && m.contains("ns/event drifted")),
            "{msgs:?}"
        );
        assert!(
            msgs.iter()
                .any(|m| m.contains("ocean/p/8p") && m.contains("events changed")),
            "{msgs:?}"
        );
    }

    #[test]
    fn shape_and_model_changes_are_flagged() {
        let base = vec![entry("fft", 4, 100, 200), entry("ocean", 8, 300, 400)];
        let cur = vec![entry("fft", 4, 100, 200), entry("radix", 4, 500, 100)];
        let msgs = compare(ccnuma_sim::MODEL_FINGERPRINT, &base, &cur, 0.35);
        assert!(
            msgs.iter().any(|m| m.contains("ocean/p/8p: missing")),
            "{msgs:?}"
        );
        assert!(
            msgs.iter()
                .any(|m| m.contains("radix/p/4p: not in baseline")),
            "{msgs:?}"
        );
        let msgs = compare("some-old-model", &base, &base, 0.35);
        assert_eq!(msgs.len(), 1, "{msgs:?}");
        assert!(msgs[0].contains("model fingerprint changed"), "{msgs:?}");
    }

    #[test]
    fn measure_covers_matrix_with_deterministic_events() {
        let a = measure_with_jobs(2, 1).unwrap();
        assert_eq!(a.len(), MATRIX_APPS.len() * MATRIX_PROCS.len());
        for e in &a {
            assert!(e.events > 0, "{}", e.key());
            assert!(e.ns_per_event > 0, "{}", e.key());
        }
        // The timed half varies run to run; the event counts must not.
        let b = measure_with_jobs(1, 1).unwrap();
        let ae: Vec<(String, u64)> = a.iter().map(|e| (e.key(), e.events)).collect();
        let be: Vec<(String, u64)> = b.iter().map(|e| (e.key(), e.events)).collect();
        assert_eq!(ae, be, "events are jobs- and rep-invariant");
    }
}
