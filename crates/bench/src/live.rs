//! Live-telemetry wiring for the `bench` binary: the registry schema,
//! the refresher that mirrors the process-wide live counters (sim
//! engine, sweep pool, result store) into it and differentiates them
//! into rates, the sweep lifecycle-event recorder, trace-gauge
//! ingestion, and the `bench top` snapshot readers/renderer.
//!
//! Everything here observes; the sim and sweep layers never read any
//! of these values back, so enabling the wiring cannot change a run
//! (pinned bit-identical in `tests/telemetry_live.rs`).

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use ccnuma_sim::live::{LIVE_CAUSES, LIVE_CLASSES};
use ccnuma_sim::trace::GaugeSample;
use ccnuma_sweep::events::{EventSink, ExecEvent};
use ccnuma_sweep::store::CellStatus;
use ccnuma_telemetry::hub::HubHandle;
use ccnuma_telemetry::{Counter, Gauge, Histogram, RateFilter, Registry};

/// Label values for the five classified miss-cause slots (the `attrib`
/// taxonomy order).
pub const CAUSE_LABELS: [&str; LIVE_CAUSES] =
    ["cold", "capacity", "conflict", "coh_true", "coh_false"];

/// Label values for the four resource classes (the `attrib` taxonomy
/// order: hub, memory, directory, network).
pub const CLASS_LABELS: [&str; LIVE_CLASSES] = ["hub", "memory", "directory", "network"];

/// The smoothing time constant for all rate gauges, seconds.
const RATE_TAU_S: f64 = 2.0;

/// The running wiring: a registry fed by a background refresher thread
/// that mirrors the sim/pool/store live counters every epoch and
/// differentiates them into rate gauges.
pub struct Wiring {
    /// The registry every observer (hub, tests) snapshots.
    pub registry: Registry,
    stop: Arc<AtomicBool>,
    refresher: Option<std::thread::JoinHandle<()>>,
}

impl std::fmt::Debug for Wiring {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Wiring({:?})", self.registry)
    }
}

/// Per-class rate state owned by the refresher.
struct ClassRates {
    service: Counter,
    queue: Counter,
    occupancy: Gauge,
    depth: Gauge,
    service_rate: RateFilter,
    queue_rate: RateFilter,
}

impl Wiring {
    /// Registers the schema and starts the refresher at the given epoch.
    pub fn start(epoch: Duration) -> Wiring {
        let epoch = if epoch.is_zero() {
            Duration::from_millis(250)
        } else {
            epoch
        };
        let r = Registry::new();

        // --- sim engine/memsys layer -------------------------------
        let runs_started = r.counter("sim_runs_started_total", "Simulation runs started");
        let runs_finished = r.counter("sim_runs_finished_total", "Simulation runs finished");
        let events = r.counter("sim_events_total", "Engine events processed");
        let accesses = r.counter("sim_accesses_total", "Line-granular memory accesses");
        let hits = r.counter("sim_hits_total", "Cache hits");
        let misses = r.counter("sim_misses_total", "Cache misses");
        let causes: Vec<Counter> = CAUSE_LABELS
            .iter()
            .map(|c| {
                r.counter_with(
                    "sim_miss_cause_total",
                    &[("cause", c)],
                    "Classified misses by cause (attrib taxonomy)",
                )
            })
            .collect();
        let stall = r.counter("sim_stall_ns_total", "Memory-stall nanoseconds charged");
        let sim_ns = r.counter("sim_time_ns_total", "Simulated nanoseconds completed");
        let ev_rate_g = r.gauge("sim_events_per_sec", "Engine events per host second (EWMA)");
        let miss_rate_g = r.gauge("sim_misses_per_sec", "Cache misses per host second (EWMA)");
        let classes: Vec<ClassRates> = CLASS_LABELS
            .iter()
            .map(|c| ClassRates {
                service: r.counter_with(
                    "sim_class_service_ns_total",
                    &[("class", c)],
                    "Uncontended service ns per resource class",
                ),
                queue: r.counter_with(
                    "sim_class_queue_ns_total",
                    &[("class", c)],
                    "Queueing-delay ns per resource class",
                ),
                occupancy: r.gauge_with(
                    "sim_class_occupancy_ns_per_sec",
                    &[("class", c)],
                    "Simulated service ns charged per host second (EWMA)",
                ),
                depth: r.gauge_with(
                    "sim_class_queue_depth",
                    &[("class", c)],
                    "Queueing delay accumulated per host time: average \
                     simulated transactions queued at the class, scaled by \
                     sim/host speed (Little's law on d(queue_ns)/dt)",
                ),
                service_rate: RateFilter::new(RATE_TAU_S),
                queue_rate: RateFilter::new(RATE_TAU_S),
            })
            .collect();

        // --- sweep pool and store layer ----------------------------
        let pool_done = r.counter("sweep_pool_tasks_done_total", "Pool tasks completed");
        let pool_steals = r.counter("sweep_pool_steals_total", "Pool steal batches");
        let store_bytes = r.counter("sweep_store_bytes_total", "Bytes appended to result stores");
        let store_recs = r.counter(
            "sweep_store_records_total",
            "Records appended to result stores",
        );

        // --- host self-profiler (ccnuma_sim::prof) -----------------
        let prof_series: Vec<(Counter, Counter, Gauge, RateFilter)> = ccnuma_sim::prof::Region::ALL
            .iter()
            .map(|reg| {
                let name = reg.name();
                (
                    r.counter_with(
                        "host_prof_self_ns_total",
                        &[("region", name)],
                        "Host nanoseconds of self time per profiled region",
                    ),
                    r.counter_with(
                        "host_prof_calls_total",
                        &[("region", name)],
                        "Profiled span entries per region",
                    ),
                    r.gauge_with(
                        "host_prof_busy_ratio",
                        &[("region", name)],
                        "Fraction of one host core spent in the region \
                         (EWMA of d(self_ns)/dt / 1e9)",
                    ),
                    RateFilter::new(RATE_TAU_S),
                )
            })
            .collect();

        // --- bench itself ------------------------------------------
        // Constant-1 gauge whose labels carry the build identity, so a
        // scraper can assert what it is talking to without parsing
        // /snapshot.
        r.gauge_with(
            "build_info",
            &[
                ("version", env!("CARGO_PKG_VERSION")),
                ("model", ccnuma_sim::MODEL_FINGERPRINT),
            ],
            "Always 1; the labels carry the crate version and the model fingerprint",
        )
        .set(1.0);
        let uptime = r.gauge("bench_uptime_seconds", "Seconds since telemetry started");
        let epochs = r.counter("bench_epochs_total", "Refresher epochs completed");

        let stop = Arc::new(AtomicBool::new(false));
        let registry = r.clone();
        let stop2 = Arc::clone(&stop);
        let refresher = std::thread::Builder::new()
            .name("bench-live-refresh".into())
            .spawn(move || {
                let t0 = Instant::now();
                let mut last = Instant::now();
                let mut ev_rate = RateFilter::new(RATE_TAU_S);
                let mut miss_rate = RateFilter::new(RATE_TAU_S);
                let mut classes = classes;
                let mut prof_series = prof_series;
                loop {
                    let stopping = stop2.load(Ordering::SeqCst);
                    let dt = last.elapsed().as_secs_f64();
                    last = Instant::now();
                    let snap = ccnuma_sim::live::LIVE.snapshot();
                    runs_started.mirror(snap.runs_started);
                    runs_finished.mirror(snap.runs_finished);
                    events.mirror(snap.events);
                    accesses.mirror(snap.accesses);
                    hits.mirror(snap.hits);
                    misses.mirror(snap.misses);
                    for (i, c) in causes.iter().enumerate() {
                        c.mirror(snap.miss_causes[i]);
                    }
                    stall.mirror(snap.mem_stall_ns);
                    sim_ns.mirror(snap.sim_ns);
                    ev_rate_g.set(ev_rate.update(snap.events, dt));
                    miss_rate_g.set(miss_rate.update(snap.misses, dt));
                    for (i, cr) in classes.iter_mut().enumerate() {
                        cr.service.mirror(snap.service_ns[i]);
                        cr.queue.mirror(snap.queue_ns[i]);
                        cr.occupancy
                            .set(cr.service_rate.update(snap.service_ns[i], dt));
                        // d(queue_ns)/dt has units sim-ns of queueing per
                        // host second; dividing by 1e9 yields queued
                        // transactions x (sim seconds / host seconds).
                        cr.depth
                            .set(cr.queue_rate.update(snap.queue_ns[i], dt) / 1e9);
                    }
                    let (prof_self, prof_calls) = ccnuma_sim::prof::cumulative();
                    for (i, (self_c, calls_c, busy_g, busy_rate)) in
                        prof_series.iter_mut().enumerate()
                    {
                        self_c.mirror(prof_self[i]);
                        calls_c.mirror(prof_calls[i]);
                        // d(self_ns)/dt is host ns of region time per host
                        // second; /1e9 yields cores busy in the region.
                        busy_g.set(busy_rate.update(prof_self[i], dt) / 1e9);
                    }
                    let pl = &ccnuma_sweep::pool::LIVE;
                    pool_done.mirror(pl.tasks_done.load(Ordering::Relaxed));
                    pool_steals.mirror(pl.steals.load(Ordering::Relaxed));
                    for (w, s) in pl.worker_steals.iter().enumerate() {
                        let v = s.load(Ordering::Relaxed);
                        if v > 0 {
                            // Lazily registered so idle worker slots do
                            // not clutter the exposition.
                            registry
                                .counter_with(
                                    "sweep_pool_worker_steals_total",
                                    &[("worker", &w.to_string())],
                                    "Steal batches per worker slot",
                                )
                                .mirror(v);
                        }
                    }
                    store_bytes
                        .mirror(ccnuma_sweep::store::LIVE_BYTES_APPENDED.load(Ordering::Relaxed));
                    store_recs
                        .mirror(ccnuma_sweep::store::LIVE_RECORDS_APPENDED.load(Ordering::Relaxed));
                    uptime.set(t0.elapsed().as_secs_f64());
                    epochs.inc();
                    if stopping {
                        return;
                    }
                    let next = last + epoch;
                    while Instant::now() < next && !stop2.load(Ordering::SeqCst) {
                        std::thread::sleep(Duration::from_millis(10).min(epoch));
                    }
                }
            })
            .expect("spawn refresher");
        Wiring {
            registry: r,
            stop,
            refresher: Some(refresher),
        }
    }

    /// Stops the refresher after one final mirror pass, so the registry
    /// holds the terminal counter state.
    pub fn stop(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.refresher.take() {
            let _ = h.join();
        }
    }

    /// Builds a sweep event sink that records per-cell lifecycle into
    /// the registry, optionally forwards each event to an SSE hub, and
    /// optionally prints a live one-line progress summary to stderr.
    pub fn event_recorder(
        &self,
        total_cells: usize,
        hub: Option<HubHandle>,
        progress: bool,
    ) -> EventSink {
        recorder(&self.registry, total_cells, hub, progress)
    }

    /// Mirrors the final epoch-sampled machine gauges of post-mortem
    /// traces into the registry (one `cell`-labeled gauge set per
    /// traced cell), asserting per-cell reconciliation along the way.
    pub fn ingest_traces(&self, gauges: &[(String, Vec<GaugeSample>)]) {
        for (label, samples) in gauges {
            if let Some(last) = ingest_gauges(&self.registry, label, samples) {
                debug_assert_eq!(
                    reconcile(&self.registry, label, &last),
                    Ok(()),
                    "trace gauges and registry must agree for {label}"
                );
            }
        }
    }

    /// Mirrors per-cell critical-path shares (and the headline `sync=0`
    /// projection) into the registry, one `cell`-labeled gauge set per
    /// profiled cell.
    pub fn ingest_critpaths(&self, reports: &[(String, ccnuma_sim::critpath::CritReport)]) {
        for (label, rep) in reports {
            ingest_critpath(&self.registry, label, rep);
        }
    }
}

/// Sets the `cell`-labeled critical-path gauges from one cell's report:
/// the busy/memory/sync on-path percentage split (which sums to 100 by
/// construction) and the projected `sync=0` speedup.
pub fn ingest_critpath(registry: &Registry, label: &str, rep: &ccnuma_sim::critpath::CritReport) {
    let (busy, mem, sync) = rep.share_pct();
    let fields: [(&str, f64); 4] = [
        ("critpath_busy_pct", busy),
        ("critpath_mem_pct", mem),
        ("critpath_sync_pct", sync),
        ("critpath_sync0_speedup", rep.speedup("sync=0")),
    ];
    for (name, v) in fields {
        registry
            .gauge_with(
                name,
                &[("cell", label)],
                "Critical-path share of the cell's simulated wall clock",
            )
            .set(v);
    }
}

/// State shared by one event-recorder closure.
struct RecorderState {
    started: Counter,
    running: Gauge,
    live_started: AtomicU64,
    live_finished: AtomicU64,
    done_ok: Counter,
    done_panic: Counter,
    done_timeout: Counter,
    done_failed: Counter,
    cache_hits: Counter,
    retries: Counter,
    host_ms: Histogram,
    total: usize,
    finished: AtomicU64,
    quarantined: AtomicU64,
    hits_seen: AtomicU64,
    hub: Option<HubHandle>,
    progress: bool,
}

/// Builds the sweep event sink over `registry`.
pub fn recorder(
    registry: &Registry,
    total_cells: usize,
    hub: Option<HubHandle>,
    progress: bool,
) -> EventSink {
    registry
        .gauge("sweep_cells_total", "Cells in the requested matrix")
        .set(total_cells as f64);
    let st = Arc::new(RecorderState {
        started: registry.counter("sweep_cells_started_total", "Cell attempts begun"),
        running: registry.gauge("sweep_cells_running", "Cells executing right now"),
        live_started: AtomicU64::new(0),
        live_finished: AtomicU64::new(0),
        done_ok: registry.counter_with(
            "sweep_cells_done_total",
            &[("status", "ok")],
            "Cells finished, by terminal status",
        ),
        done_panic: registry.counter_with(
            "sweep_cells_done_total",
            &[("status", "panic")],
            "Cells finished, by terminal status",
        ),
        done_timeout: registry.counter_with(
            "sweep_cells_done_total",
            &[("status", "timeout")],
            "Cells finished, by terminal status",
        ),
        done_failed: registry.counter_with(
            "sweep_cells_done_total",
            &[("status", "failed")],
            "Cells finished, by terminal status",
        ),
        cache_hits: registry.counter(
            "sweep_cells_cache_hits_total",
            "Cells satisfied from the store without re-running",
        ),
        retries: registry.counter("sweep_cell_retries_total", "Per-cell retry attempts"),
        host_ms: registry.histogram(
            "sweep_cell_host_ms",
            "Host milliseconds per executed cell (log2 buckets)",
        ),
        total: total_cells,
        finished: AtomicU64::new(0),
        quarantined: AtomicU64::new(0),
        hits_seen: AtomicU64::new(0),
        hub,
        progress,
    });
    Arc::new(move |ev: &ExecEvent| {
        match ev {
            ExecEvent::Started { .. } => {
                st.started.inc();
                let live = st.live_started.fetch_add(1, Ordering::SeqCst) + 1
                    - st.live_finished.load(Ordering::SeqCst);
                st.running.set(live as f64);
            }
            ExecEvent::Retried { .. } => st.retries.inc(),
            ExecEvent::Finished {
                status,
                cache_hit,
                host_ms,
                ..
            } => {
                match status {
                    CellStatus::Ok => st.done_ok.inc(),
                    CellStatus::Panicked => st.done_panic.inc(),
                    CellStatus::TimedOut => st.done_timeout.inc(),
                    CellStatus::Failed => st.done_failed.inc(),
                }
                if *cache_hit {
                    st.cache_hits.inc();
                    st.hits_seen.fetch_add(1, Ordering::SeqCst);
                } else {
                    st.host_ms.observe(*host_ms);
                    let fin = st.live_finished.fetch_add(1, Ordering::SeqCst) + 1;
                    let run = st.live_started.load(Ordering::SeqCst).saturating_sub(fin);
                    st.running.set(run as f64);
                }
                if status.quarantined() {
                    st.quarantined.fetch_add(1, Ordering::SeqCst);
                }
                let done = st.finished.fetch_add(1, Ordering::SeqCst) + 1;
                if st.progress {
                    let q = st.quarantined.load(Ordering::SeqCst);
                    let hits = st.hits_seen.load(Ordering::SeqCst);
                    // Explicit zero guard: a zero-cell matrix (or a
                    // hand-driven sink) must never put NaN in the
                    // summary line.
                    let pct = if done == 0 {
                        0.0
                    } else {
                        100.0 * hits as f64 / done as f64
                    };
                    eprintln!(
                        "[sweep] {done}/{} done, {q} quarantined, {pct:.0}% cache hits",
                        st.total
                    );
                }
            }
        }
        if let Some(h) = &st.hub {
            h.publish("cell", &ev.to_json());
        }
    })
}

/// Sets the `cell`-labeled trace gauges from the last epoch sample of a
/// post-mortem trace; asserts the series is monotone in time. Returns
/// the last sample, or `None` for gauge-less traces.
pub fn ingest_gauges(
    registry: &Registry,
    label: &str,
    samples: &[GaugeSample],
) -> Option<GaugeSample> {
    assert!(
        samples.windows(2).all(|w| w[0].t <= w[1].t),
        "trace gauge series for {label} must be monotone in virtual time"
    );
    let last = samples.last()?;
    let fields: [(&str, f64); 6] = [
        ("trace_miss_pct", last.miss_pct),
        ("trace_hub_occ_pct", last.hub_occ_pct),
        ("trace_mem_occ_pct", last.mem_occ_pct),
        ("trace_router_occ_pct", last.router_occ_pct),
        ("trace_outstanding", last.outstanding),
        ("trace_queue_pct", last.queue_pct),
    ];
    for (name, v) in fields {
        registry
            .gauge_with(
                name,
                &[("cell", label)],
                "Final epoch-sampled machine gauge from the cell's trace",
            )
            .set(v);
    }
    Some(*last)
}

/// Reconciliation: the registry's `cell`-labeled trace gauges must
/// read back exactly the values of the trace sample they were fed from
/// — one source of truth for post-mortem and live occupancy numbers.
pub fn reconcile(registry: &Registry, label: &str, sample: &GaugeSample) -> Result<(), String> {
    let check = |name: &str, want: f64| -> Result<(), String> {
        let got = registry.gauge_with(name, &[("cell", label)], "").get();
        if got == want {
            Ok(())
        } else {
            Err(format!(
                "{name}{{cell={label}}}: registry {got} != trace {want}"
            ))
        }
    };
    check("trace_miss_pct", sample.miss_pct)?;
    check("trace_hub_occ_pct", sample.hub_occ_pct)?;
    check("trace_mem_occ_pct", sample.mem_occ_pct)?;
    check("trace_router_occ_pct", sample.router_occ_pct)?;
    check("trace_outstanding", sample.outstanding)?;
    check("trace_queue_pct", sample.queue_pct)
}

// ---------------------------------------------------------------- top

/// One parsed epoch record, as served by `/snapshot` or logged to the
/// `--live-log` JSONL file.
#[derive(Debug, Clone, PartialEq)]
pub struct EpochRecord {
    /// Epoch sequence number (strictly increasing).
    pub seq: u64,
    /// Milliseconds since the observer started.
    pub t_ms: u64,
    /// Flat series values, in emission order. `None` for JSON `null`
    /// (non-finite gauges).
    pub metrics: Vec<(String, Option<f64>)>,
}

impl EpochRecord {
    /// Looks up one series by exact key.
    pub fn get(&self, key: &str) -> Option<f64> {
        self.metrics
            .iter()
            .find(|(k, _)| k == key)
            .and_then(|(_, v)| *v)
    }

    /// Re-serializes the record in the exact one-line shape
    /// [`parse_epoch_record`] reads — what `bench top --json` prints, so
    /// scripts get machine-readable output without scraping the
    /// dashboard.
    pub fn to_json(&self) -> String {
        let mut out = format!(
            "{{\"seq\":{},\"t_ms\":{},\"metrics\":{{",
            self.seq, self.t_ms
        );
        for (i, (k, v)) in self.metrics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('"');
            out.push_str(&escape_json(k));
            out.push_str("\":");
            match v {
                Some(x) => out.push_str(&format!("{x}")),
                None => out.push_str("null"),
            }
        }
        out.push_str("}}");
        out
    }
}

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            _ => out.push(c),
        }
    }
    out
}

/// Parses one epoch record line
/// (`{"seq":N,"t_ms":T,"metrics":{"k":v,...}}`). Returns `None` on any
/// malformed shape — including torn trailing JSONL lines.
pub fn parse_epoch_record(line: &str) -> Option<EpochRecord> {
    let line = line.trim();
    let rest = line.strip_prefix("{\"seq\":")?;
    let comma = rest.find(',')?;
    let seq: u64 = rest[..comma].parse().ok()?;
    let rest = rest[comma + 1..].strip_prefix("\"t_ms\":")?;
    let comma = rest.find(',')?;
    let t_ms: u64 = rest[..comma].parse().ok()?;
    let rest = rest[comma + 1..].strip_prefix("\"metrics\":{")?;
    let body = rest.strip_suffix("}}")?;
    let mut metrics = Vec::new();
    if !body.is_empty() {
        for pair in split_top_level(body) {
            let pair = pair.trim();
            let k = pair.strip_prefix('"')?;
            let q = find_close_quote(k)?;
            let key = unescape_json(&k[..q]);
            let v = k[q + 1..].trim().strip_prefix(':')?.trim();
            let value = if v == "null" {
                None
            } else {
                Some(v.parse().ok()?)
            };
            metrics.push((key, value));
        }
    }
    Some(EpochRecord { seq, t_ms, metrics })
}

/// Splits `"k":v,"k2":v2` on commas that are not inside a quoted key.
fn split_top_level(s: &str) -> Vec<&str> {
    let mut parts = Vec::new();
    let (mut start, mut in_str, mut esc) = (0usize, false, false);
    for (i, c) in s.char_indices() {
        match c {
            _ if esc => esc = false,
            '\\' if in_str => esc = true,
            '"' => in_str = !in_str,
            ',' if !in_str => {
                parts.push(&s[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    parts.push(&s[start..]);
    parts
}

/// Index of the closing quote of a JSON string body starting at 0.
fn find_close_quote(s: &str) -> Option<usize> {
    let mut esc = false;
    for (i, c) in s.char_indices() {
        match c {
            _ if esc => esc = false,
            '\\' => esc = true,
            '"' => return Some(i),
            _ => {}
        }
    }
    None
}

fn unescape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('n') => out.push('\n'),
            Some('r') => out.push('\r'),
            Some('t') => out.push('\t'),
            Some(other) => out.push(other),
            None => {}
        }
    }
    out
}

/// Fetches `/snapshot` from a running hub over a raw TCP GET and parses
/// the body as an epoch record.
pub fn fetch_snapshot(addr: &str) -> Result<EpochRecord, String> {
    use std::io::{Read, Write};
    let mut s = std::net::TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    s.set_read_timeout(Some(Duration::from_secs(5))).ok();
    write!(
        s,
        "GET /snapshot HTTP/1.1\r\nHost: bench\r\nConnection: close\r\n\r\n"
    )
    .map_err(|e| format!("send: {e}"))?;
    let mut buf = String::new();
    s.read_to_string(&mut buf)
        .map_err(|e| format!("read: {e}"))?;
    let body = buf
        .split_once("\r\n\r\n")
        .map(|(_, b)| b)
        .ok_or("malformed HTTP response")?;
    parse_epoch_record(body).ok_or_else(|| format!("malformed snapshot body: {body}"))
}

/// Reads the last complete epoch record of a `--live-log` JSONL file,
/// tolerating a torn final line.
pub fn last_log_record(path: &std::path::Path) -> Result<EpochRecord, String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("read {}: {e}", path.display()))?;
    text.lines()
        .rev()
        .find_map(parse_epoch_record)
        .ok_or_else(|| format!("{}: no complete epoch record", path.display()))
}

/// Renders the `bench top` dashboard from one epoch record.
pub fn render_top(rec: &EpochRecord) -> String {
    let g = |k: &str| rec.get(k).unwrap_or(0.0);
    let mut out = String::new();
    out.push_str(&format!(
        "epoch {}  t={:.1}s  uptime={:.1}s\n",
        rec.seq,
        rec.t_ms as f64 / 1e3,
        g("bench_uptime_seconds"),
    ));
    out.push_str(&format!(
        "sim    {:>12.0} ev/s {:>12.0} miss/s   runs {:.0}/{:.0}   sim-time {:.2}ms\n",
        g("sim_events_per_sec"),
        g("sim_misses_per_sec"),
        g("sim_runs_finished_total"),
        g("sim_runs_started_total"),
        g("sim_time_ns_total") / 1e6,
    ));
    let busy = |region: &str| g(&format!("host_prof_busy_ratio{{region={region}}}"));
    let host_total: f64 = ccnuma_sim::prof::Region::ALL
        .iter()
        .map(|r| busy(r.name()))
        .sum();
    out.push_str(&format!(
        "host   {:>8.2} core(s) profiled   engine {:.2}   memsys {:.2}   directory {:.2}\n",
        host_total,
        busy("engine_dispatch"),
        busy("memsys_service"),
        busy("directory"),
    ));
    for c in CLASS_LABELS {
        let occ = g(&format!("sim_class_occupancy_ns_per_sec{{class={c}}}"));
        let depth = g(&format!("sim_class_queue_depth{{class={c}}}"));
        out.push_str(&format!(
            "class  {c:<10} occ {:>10.0} ns/s   queue depth {:>8.3} {}\n",
            occ,
            depth,
            bar(depth, 8.0)
        ));
    }
    let done = g("sweep_cells_done_total{status=ok}")
        + g("sweep_cells_done_total{status=panic}")
        + g("sweep_cells_done_total{status=timeout}")
        + g("sweep_cells_done_total{status=failed}");
    let quarantined = done - g("sweep_cells_done_total{status=ok}");
    out.push_str(&format!(
        "sweep  {:.0}/{:.0} done ({:.0} running), {:.0} quarantined, {:.0} cache hits, {:.0} retries\n",
        done,
        g("sweep_cells_total"),
        g("sweep_cells_running"),
        quarantined,
        g("sweep_cells_cache_hits_total"),
        g("sweep_cell_retries_total"),
    ));
    out.push_str(&format!(
        "cells  host ms p50 {:.0}  p90 {:.0}  p99 {:.0}  (of {:.0} executed)\n",
        g("sweep_cell_host_ms_p50"),
        g("sweep_cell_host_ms_p90"),
        g("sweep_cell_host_ms_p99"),
        g("sweep_cell_host_ms_count"),
    ));
    out.push_str(&format!(
        "store  {:.1} KiB in {:.0} record(s), pool {:.0} task(s), {:.0} steal(s)\n",
        g("sweep_store_bytes_total") / 1024.0,
        g("sweep_store_records_total"),
        g("sweep_pool_tasks_done_total"),
        g("sweep_pool_steals_total"),
    ));
    out
}

/// A 16-cell ASCII bar for a value in `[0, max]`.
fn bar(v: f64, max: f64) -> String {
    let cells = 16usize;
    let filled = ((v / max).clamp(0.0, 1.0) * cells as f64).round() as usize;
    format!("[{}{}]", "#".repeat(filled), ".".repeat(cells - filled))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_record_round_trips() {
        let line = r#"{"seq":7,"t_ms":1250,"metrics":{"a_total":42,"b":1.5,"c{class=hub}":0.25,"n":null}}"#;
        let rec = parse_epoch_record(line).expect("parses");
        assert_eq!(rec.seq, 7);
        assert_eq!(rec.t_ms, 1250);
        assert_eq!(rec.get("a_total"), Some(42.0));
        assert_eq!(rec.get("b"), Some(1.5));
        assert_eq!(rec.get("c{class=hub}"), Some(0.25));
        assert_eq!(rec.get("n"), None);
        assert_eq!(rec.metrics.len(), 4);
    }

    #[test]
    fn epoch_record_reserializes_in_parseable_shape() {
        let line = r#"{"seq":7,"t_ms":1250,"metrics":{"a_total":42,"b":1.5,"c{class=hub}":0.25,"n":null}}"#;
        let rec = parse_epoch_record(line).expect("parses");
        let back = parse_epoch_record(&rec.to_json()).expect("to_json parses back");
        assert_eq!(back, rec);
    }

    #[test]
    fn critpath_gauges_mirror_the_report_shares() {
        let mut cfg = ccnuma_sim::config::MachineConfig::origin2000_scaled(2, 16 << 10);
        cfg.critpath = true;
        let m = ccnuma_sim::machine::Machine::new(cfg).unwrap();
        let stats = m.run(|ctx| ctx.compute_ops(64)).unwrap();
        let rep = stats.critpath.expect("critpath report present");
        let r = Registry::new();
        ingest_critpath(&r, "fft/orig/2p", &rep);
        let (busy, mem, sync) = rep.share_pct();
        let g = |name: &str| r.gauge_with(name, &[("cell", "fft/orig/2p")], "").get();
        assert_eq!(g("critpath_busy_pct"), busy);
        assert_eq!(g("critpath_mem_pct"), mem);
        assert_eq!(g("critpath_sync_pct"), sync);
        assert_eq!(g("critpath_sync0_speedup"), rep.speedup("sync=0"));
        assert!((busy + mem + sync - 100.0).abs() < 0.5);
    }

    #[test]
    fn torn_lines_do_not_parse() {
        assert!(parse_epoch_record("{\"seq\":3,\"t_ms\":9,\"metrics\":{\"a\":1").is_none());
        assert!(parse_epoch_record("").is_none());
        assert!(parse_epoch_record("garbage").is_none());
    }

    #[test]
    fn recorder_counts_lifecycle() {
        let r = Registry::new();
        let sink = recorder(&r, 3, None, false);
        sink(&ExecEvent::Started {
            label: "fft/orig/4p".into(),
            nprocs: 4,
        });
        sink(&ExecEvent::Retried {
            label: "fft/orig/4p".into(),
            attempt: 1,
            error: "boom".into(),
        });
        sink(&ExecEvent::Finished {
            label: "fft/orig/4p".into(),
            status: CellStatus::Ok,
            cache_hit: false,
            attempts: 2,
            host_ms: 120,
        });
        sink(&ExecEvent::Finished {
            label: "fft/orig/2p".into(),
            status: CellStatus::Ok,
            cache_hit: true,
            attempts: 0,
            host_ms: 0,
        });
        let text = ccnuma_telemetry::expo::prometheus(&r.snapshot());
        assert!(text.contains("sweep_cells_started_total 1\n"), "{text}");
        assert!(text.contains("sweep_cell_retries_total 1\n"), "{text}");
        assert!(
            text.contains("sweep_cells_done_total{status=\"ok\"} 2\n"),
            "{text}"
        );
        assert!(text.contains("sweep_cells_cache_hits_total 1\n"), "{text}");
        assert!(text.contains("sweep_cells_running 0\n"), "{text}");
        assert!(text.contains("sweep_cell_host_ms_count 1\n"), "{text}");
        assert!(text.contains("sweep_cells_total 3\n"), "{text}");
    }

    #[test]
    fn ingest_and_reconcile_trace_gauges() {
        let r = Registry::new();
        let s = GaugeSample {
            t: 1000,
            interval_ns: 500,
            miss_pct: 3.5,
            hub_occ_pct: 40.0,
            mem_occ_pct: 25.0,
            router_occ_pct: 10.0,
            outstanding: 1.25,
            coherence_pct: 0.0,
            false_share_pct: 0.0,
            queue_pct: 12.0,
        };
        let mut s2 = s;
        s2.t = 2000;
        s2.hub_occ_pct = 55.0;
        let last = ingest_gauges(&r, "fft/orig/4p", &[s, s2]).expect("has samples");
        assert_eq!(last.hub_occ_pct, 55.0, "last sample wins");
        assert_eq!(reconcile(&r, "fft/orig/4p", &last), Ok(()));
        let mut wrong = last;
        wrong.hub_occ_pct = 99.0;
        assert!(reconcile(&r, "fft/orig/4p", &wrong).is_err());
    }

    #[test]
    #[should_panic(expected = "monotone")]
    fn ingest_rejects_time_travel() {
        let r = Registry::new();
        let mk = |t| GaugeSample {
            t,
            interval_ns: 1,
            miss_pct: 0.0,
            hub_occ_pct: 0.0,
            mem_occ_pct: 0.0,
            router_occ_pct: 0.0,
            outstanding: 0.0,
            coherence_pct: 0.0,
            false_share_pct: 0.0,
            queue_pct: 0.0,
        };
        ingest_gauges(&r, "x", &[mk(5), mk(3)]);
    }

    #[test]
    fn top_renders_the_headline_numbers() {
        let rec = EpochRecord {
            seq: 4,
            t_ms: 2000,
            metrics: vec![
                ("sim_events_per_sec".into(), Some(123456.0)),
                ("sweep_cells_total".into(), Some(10.0)),
                ("sweep_cells_done_total{status=ok}".into(), Some(6.0)),
                ("sweep_cells_done_total{status=panic}".into(), Some(1.0)),
                ("sweep_cells_cache_hits_total".into(), Some(2.0)),
                (
                    "host_prof_busy_ratio{region=engine_dispatch}".into(),
                    Some(0.42),
                ),
                ("sweep_cell_host_ms_p50".into(), Some(12.0)),
                ("sweep_cell_host_ms_p90".into(), Some(80.0)),
            ],
        };
        let out = render_top(&rec);
        assert!(out.contains("epoch 4"), "{out}");
        assert!(out.contains("123456 ev/s"), "{out}");
        assert!(out.contains("7/10 done"), "{out}");
        assert!(out.contains("1 quarantined"), "{out}");
        assert!(out.contains("2 cache hits"), "{out}");
        assert!(out.contains("engine 0.42"), "{out}");
        assert!(out.contains("p50 12"), "{out}");
        assert!(out.contains("p90 80"), "{out}");
    }

    #[test]
    fn zero_cell_matrix_keeps_summary_and_top_finite() {
        // The recorder on an empty matrix, fed a stray cache-hit event:
        // nothing it exports may be NaN (flat JSON renders non-finite
        // gauges as null).
        let r = Registry::new();
        let sink = recorder(&r, 0, None, true);
        sink(&ExecEvent::Finished {
            label: "x".into(),
            status: CellStatus::Ok,
            cache_hit: true,
            attempts: 0,
            host_ms: 0,
        });
        let j = ccnuma_telemetry::expo::json(&r.snapshot());
        assert!(!j.contains("NaN") && !j.contains("null"), "{j}");

        // And the dashboard over a completely empty epoch record.
        let out = render_top(&EpochRecord {
            seq: 0,
            t_ms: 0,
            metrics: vec![],
        });
        assert!(out.contains("0/0 done"), "{out}");
        assert!(!out.contains("NaN") && !out.contains("inf"), "{out}");
    }

    #[test]
    fn wiring_mirrors_live_counters_and_stops() {
        let w = Wiring::start(Duration::from_millis(10));
        std::thread::sleep(Duration::from_millis(40));
        let reg = w.registry.clone();
        w.stop();
        let rows = reg.snapshot();
        let epochs = rows
            .iter()
            .find(|r| r.name == "bench_epochs_total")
            .expect("registered");
        match epochs.value {
            ccnuma_telemetry::SampleValue::Counter(n) => assert!(n >= 1, "epochs {n}"),
            ref v => panic!("wrong type {v:?}"),
        }
        // The build-identity series carries the crate version and model
        // fingerprint as labels and always reads 1.
        let info = rows
            .iter()
            .find(|r| r.name == "build_info")
            .expect("build_info registered");
        assert_eq!(
            info.value,
            ccnuma_telemetry::SampleValue::Gauge(1.0),
            "build_info reads 1"
        );
        let label = |k: &str| {
            info.labels
                .iter()
                .find(|(lk, _)| lk == k)
                .map(|(_, v)| v.as_str())
        };
        assert_eq!(label("version"), Some(env!("CARGO_PKG_VERSION")));
        assert_eq!(label("model"), Some(ccnuma_sim::MODEL_FINGERPRINT));
        // One self-time series per profiled region.
        let prof_rows = rows
            .iter()
            .filter(|r| r.name == "host_prof_self_ns_total")
            .count();
        assert_eq!(prof_rows, ccnuma_sim::prof::N_REGIONS);
    }
}
