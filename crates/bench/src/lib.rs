//! # study-bench — harnesses regenerating the paper's tables and figures
//!
//! The [`figures`] module contains one function per table/figure; the
//! `repro` binary drives them (`repro all --quick` smoke-runs everything).
//! [`probes`] holds the raw memory-system microbenchmarks (Table 1, §6.3).
//! [`regress`] is the attribution regression harness behind the `bench`
//! binary (`bench regress --check` gates CI on `BENCH_attrib.json`).
//! [`live`] wires the `ccnuma-telemetry` registry, rate pipeline, and
//! streaming observer into sweeps (`bench sweep --live`, `bench top`).
//! [`perf`] is the host-throughput harness behind `bench perf`
//! (`bench perf --check` gates CI on `BENCH_engine.json`).
//! [`daemon`] is the sweep-as-a-service front end (`bench serve` runs a
//! `ccnuma-sweepd` daemon, `bench submit` is its client).
//! [`schedsan`] folds the schedule-seed axis of `bench sanitize
//! --schedules N` back into per-cell deduplicated findings.

#![warn(missing_docs)]

pub mod critpath;
pub mod daemon;
pub mod figures;
pub mod live;
pub mod perf;
pub mod probes;
pub mod regress;
pub mod schedsan;
