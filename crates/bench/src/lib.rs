//! # study-bench — harnesses regenerating the paper's tables and figures
//!
//! The [`figures`] module contains one function per table/figure; the
//! `repro` binary drives them (`repro all --quick` smoke-runs everything).
//! [`probes`] holds the raw memory-system microbenchmarks (Table 1, §6.3).

#![warn(missing_docs)]

pub mod figures;
pub mod probes;
