//! `bench serve` / `bench submit` — the sweep-as-a-service front end.
//!
//! `serve` runs a [`ccnuma_sweepd::Daemon`] with the bench live-telemetry
//! wiring attached, so the daemon's own health (queue depth, in-flight
//! cells, cache-hit ratio, store size) is served from the same registry
//! as the simulator counters and `bench top --addr` works against it
//! unchanged. `submit` is the thin client: POST a matrix DSL, optionally
//! wait for completion, print the per-cell table.

use std::path::PathBuf;
use std::time::Duration;

use ccnuma_sweep::store::CellRecord;
use ccnuma_sweepd::{client, Daemon, DaemonConfig};

use crate::live;

/// Parsed `bench serve` flags.
#[derive(Debug, Clone)]
pub struct ServeOpts {
    /// Daemon configuration (address, store, workers, idle timeout,
    /// per-cell run options).
    pub cfg: DaemonConfig,
    /// Telemetry sampling period for the live wiring.
    pub epoch: Duration,
}

impl ServeOpts {
    /// Parses `bench serve` arguments. `Err` is a usage message.
    pub fn parse(args: &[String]) -> Result<ServeOpts, String> {
        let mut cfg = DaemonConfig {
            addr: "127.0.0.1:9900".into(),
            store_path: PathBuf::from("sweepd_store.jsonl"),
            ..DaemonConfig::default()
        };
        let mut epoch = Duration::from_millis(250);
        let mut it = args.iter();
        while let Some(a) = it.next() {
            match a.as_str() {
                "--addr" => cfg.addr = it.next().ok_or("--addr needs host:port")?.clone(),
                "--store" => {
                    cfg.store_path = PathBuf::from(it.next().ok_or("--store needs a path")?)
                }
                "--jobs" => cfg.workers = parse_count(it.next(), "--jobs")?,
                "--idle-timeout-s" => {
                    cfg.idle_timeout = Some(Duration::from_secs(parse_count(
                        it.next(),
                        "--idle-timeout-s",
                    )? as u64))
                }
                "--retries" => {
                    cfg.opts.retries = it
                        .next()
                        .and_then(|v| v.parse().ok())
                        .ok_or("--retries needs an integer")?
                }
                "--timeout-s" => {
                    cfg.opts.timeout = Some(Duration::from_secs(parse_count(
                        it.next(),
                        "--timeout-s",
                    )? as u64))
                }
                "--epoch-ms" => {
                    epoch = Duration::from_millis(parse_count(it.next(), "--epoch-ms")? as u64)
                }
                other => return Err(format!("unexpected argument {other:?}")),
            }
        }
        Ok(ServeOpts { cfg, epoch })
    }
}

/// Parsed `bench submit` flags.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SubmitOpts {
    /// Daemon address, `host:port`.
    pub server: String,
    /// Matrix DSL tokens, joined with spaces (empty = default matrix).
    pub dsl: String,
    /// Poll until the job completes and print the per-cell table.
    pub wait: bool,
    /// Poll period while waiting.
    pub poll: Duration,
}

impl SubmitOpts {
    /// Parses `bench submit` arguments. `Err` is a usage message.
    pub fn parse(args: &[String]) -> Result<SubmitOpts, String> {
        let mut server: Option<String> = None;
        let mut dsl: Vec<&str> = Vec::new();
        let mut wait = false;
        let mut poll = Duration::from_millis(500);
        let mut it = args.iter();
        while let Some(a) = it.next() {
            match a.as_str() {
                "--server" => server = Some(it.next().ok_or("--server needs host:port")?.clone()),
                "--wait" => wait = true,
                "--poll-ms" => {
                    poll = Duration::from_millis(parse_count(it.next(), "--poll-ms")? as u64)
                }
                other if other.starts_with("--") => return Err(format!("unknown flag {other:?}")),
                tok => dsl.push(tok),
            }
        }
        Ok(SubmitOpts {
            server: server.ok_or("submit needs --server <host:port>")?,
            dsl: dsl.join(" "),
            wait,
            poll,
        })
    }
}

fn parse_count(v: Option<&String>, flag: &str) -> Result<usize, String> {
    match v.map(|v| v.parse::<usize>()) {
        Some(Ok(n)) if n >= 1 => Ok(n),
        _ => Err(format!("{flag} needs a positive integer")),
    }
}

/// Runs the daemon until shutdown (POST /shutdown, or the idle timeout).
/// Returns the process exit code.
pub fn serve(opts: ServeOpts) -> i32 {
    let wiring = live::Wiring::start(opts.epoch);
    let store = opts.cfg.store_path.clone();
    let daemon = match Daemon::start(opts.cfg, wiring.registry.clone()) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("error: cannot start sweepd: {e}");
            wiring.stop();
            return 1;
        }
    };
    eprintln!(
        "[serve] sweepd at http://{}/healthz | /metrics | /snapshot, store {} — \
         POST /sweep to submit, POST /shutdown to stop",
        daemon.local_addr(),
        store.display()
    );
    let summary = match daemon.join() {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: daemon failed: {e}");
            wiring.stop();
            return 1;
        }
    };
    wiring.stop();
    eprintln!(
        "[serve] stopped: {} job(s), {} cell(s) — {} cache hit(s), {} simulated, \
         {} quarantined, {} dropped; store {} record(s), {} byte(s)",
        summary.jobs,
        summary.cells,
        summary.cache_hits,
        summary.simulated,
        summary.quarantined,
        summary.dropped_tasks,
        summary.store.records,
        summary.store.bytes,
    );
    0
}

/// Submits a matrix to a running daemon. Returns the process exit code:
/// 0 clean, 1 on transport errors or (with `--wait`) quarantined cells.
pub fn submit(opts: SubmitOpts) -> i32 {
    let resp = match client::submit(&opts.server, &opts.dsl) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            return 1;
        }
    };
    println!(
        "[submit] job {}: {} cell(s) — cached {}, enqueued {}, pending {}",
        resp.job, resp.cells, resp.cached, resp.enqueued, resp.pending
    );
    if !opts.wait {
        println!(
            "[submit] follow with: GET http://{}/jobs/{} (or /jobs/{}/events for SSE)",
            opts.server, resp.job, resp.job
        );
        return 0;
    }
    let st = match client::wait(&opts.server, resp.job, opts.poll) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: {e}");
            return 1;
        }
    };
    print!(
        "{}",
        record_table(st.records.iter().flatten(), st.cached, st.executed)
    );
    if st.quarantined.is_empty() {
        0
    } else {
        for label in &st.quarantined {
            eprintln!("[submit] quarantined: {label}");
        }
        1
    }
}

/// Renders the per-cell result table a waited `submit` prints: one line
/// per record plus the cached/executed summary.
pub fn record_table<'a>(
    records: impl Iterator<Item = &'a CellRecord>,
    cached: usize,
    executed: usize,
) -> String {
    let mut out = format!(
        "{:<24} {:>8} {:>12} {:>12} {:>10}\n",
        "cell", "status", "wall_ms", "misses", "key"
    );
    let mut n = 0usize;
    for rec in records {
        n += 1;
        out.push_str(&format!(
            "{:<24} {:>8} {:>12.3} {:>12} {:>10}\n",
            rec.label,
            rec.status.name(),
            rec.wall_ns as f64 / 1e6,
            rec.misses,
            &rec.key[..rec.key.len().min(10)],
        ));
    }
    out.push_str(&format!(
        "[submit] complete: {n} cell(s) — {cached} from cache, {executed} executed\n"
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sv(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn serve_flags_parse_into_the_daemon_config() {
        let o = ServeOpts::parse(&sv(&[
            "--addr",
            "127.0.0.1:7777",
            "--store",
            "s.jsonl",
            "--jobs",
            "4",
            "--idle-timeout-s",
            "30",
            "--retries",
            "2",
            "--epoch-ms",
            "100",
        ]))
        .unwrap();
        assert_eq!(o.cfg.addr, "127.0.0.1:7777");
        assert_eq!(o.cfg.store_path, PathBuf::from("s.jsonl"));
        assert_eq!(o.cfg.workers, 4);
        assert_eq!(o.cfg.idle_timeout, Some(Duration::from_secs(30)));
        assert_eq!(o.cfg.opts.retries, 2);
        assert_eq!(o.epoch, Duration::from_millis(100));

        assert!(ServeOpts::parse(&sv(&["--jobs", "zero"])).is_err());
        assert!(ServeOpts::parse(&sv(&["--bogus"])).is_err());
    }

    #[test]
    fn submit_flags_require_a_server_and_collect_the_dsl() {
        let o = SubmitOpts::parse(&sv(&[
            "--server",
            "127.0.0.1:9900",
            "apps=fft",
            "--wait",
            "procs=2,4",
        ]))
        .unwrap();
        assert_eq!(o.server, "127.0.0.1:9900");
        assert_eq!(o.dsl, "apps=fft procs=2,4");
        assert!(o.wait);

        assert!(SubmitOpts::parse(&sv(&["apps=fft"])).is_err(), "no server");
        assert!(SubmitOpts::parse(&sv(&["--server", "x", "--nope"])).is_err());
    }

    #[test]
    fn record_table_lines_up_and_counts() {
        let rec = CellRecord {
            key: "deadbeefdeadbeef".into(),
            label: "fft/orig/4p".into(),
            app: "fft".into(),
            version: "orig".into(),
            problem: "2^10 points".into(),
            nprocs: 4,
            scale: "quick".into(),
            status: ccnuma_sweep::store::CellStatus::Ok,
            attempts: 1,
            host_ms: 12,
            wall_ns: 1_500_000,
            seq_ns: 3000,
            busy_ns: 2000,
            mem_ns: 700,
            sync_ns: 300,
            misses: 42,
            events: 5150,
            causes: [0; 5],
            sanitize: None,
            critpath: None,
            error: None,
        };
        let t = record_table([&rec].into_iter(), 1, 0);
        assert!(t.contains("fft/orig/4p"), "{t}");
        assert!(t.contains("1.500"), "{t}");
        assert!(t.contains("deadbeefde"), "{t}");
        assert!(t.contains("1 cell(s) — 1 from cache, 0 executed"), "{t}");
    }
}
