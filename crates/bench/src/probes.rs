//! Microbenchmark probes against the raw memory system: the Table-1
//! latency measurements and the §6.3 synchronization-primitive costs.

use ccnuma_sim::config::{BarrierImpl, LockImpl, MachineConfig};
use ccnuma_sim::latency::LatencyProfile;
use ccnuma_sim::machine::Machine;
use ccnuma_sim::memsys::{AccessKind, MemorySystem};
use ccnuma_sim::time::Ns;

/// Measured restart latencies of one machine profile (a Table-1 row).
#[derive(Debug, Clone, Copy)]
pub struct LatencyRow {
    /// Machine name.
    pub name: &'static str,
    /// Local (own-node) miss latency.
    pub local_ns: Ns,
    /// Remote clean (2-hop) miss latency.
    pub remote_clean_ns: Ns,
    /// Remote dirty (3-hop) miss latency.
    pub remote_dirty_ns: Ns,
}

impl LatencyRow {
    /// Remote-clean to local ratio.
    pub fn clean_ratio(&self) -> f64 {
        self.remote_clean_ns as f64 / self.local_ns as f64
    }

    /// Remote-dirty to local ratio.
    pub fn dirty_ratio(&self) -> f64 {
        self.remote_dirty_ns as f64 / self.local_ns as f64
    }
}

/// Measures back-to-back miss latencies on an idle 8-processor machine
/// with the given latency profile, as Table 1 of the paper reports them.
pub fn measure_latencies(profile: LatencyProfile) -> LatencyRow {
    let name = profile.name;
    let mut cfg = MachineConfig::origin2000_scaled(8, 64 << 10);
    cfg.latency = profile;
    let perm: Vec<usize> = (0..8).collect();
    let mut mem = MemorySystem::new(&cfg, &perm);
    // Local: a line homed on the requester's node, not yet cached.
    mem.place_range(0x10_000, 128, 0);
    let local = mem.access(0, 0x10_000, AccessKind::Read, 0).latency;
    // Remote clean: homed on a neighbouring node, uncached.
    mem.place_range(0x20_000, 128, 1);
    let clean = mem.access(0, 0x20_000, AccessKind::Read, 1_000_000).latency;
    // Remote dirty: homed on node 1, modified in node 2's cache.
    mem.place_range(0x30_000, 128, 1);
    mem.access(4, 0x30_000, AccessKind::Write, 2_000_000);
    let dirty = mem.access(0, 0x30_000, AccessKind::Read, 3_000_000).latency;
    LatencyRow {
        name,
        local_ns: local,
        remote_clean_ns: clean,
        remote_dirty_ns: dirty,
    }
}

/// Result of a synchronization microbenchmark (§6.3).
#[derive(Debug, Clone)]
pub struct SyncProbe {
    /// Primitive description.
    pub name: String,
    /// Average synchronization-operation overhead per episode (ns).
    pub op_ns: f64,
    /// Average wait time per episode (ns) — load imbalance, queueing.
    pub wait_ns: f64,
    /// Total run time.
    pub wall_ns: Ns,
}

/// Contended-lock microbenchmark: `nprocs` processors each acquire/release
/// a single lock `iters` times with a tiny critical section.
pub fn lock_probe(lock_impl: LockImpl, nprocs: usize, iters: usize) -> SyncProbe {
    let mut cfg = MachineConfig::origin2000_scaled(nprocs, 64 << 10);
    cfg.lock_impl = lock_impl;
    let mut m = Machine::new(cfg).unwrap();
    let l = m.lock();
    let stats = m
        .run(move |ctx| {
            for _ in 0..iters {
                ctx.lock(l);
                ctx.compute_ns(20);
                ctx.unlock(l);
            }
        })
        .unwrap();
    let episodes = (nprocs * iters) as f64;
    SyncProbe {
        name: format!("{lock_impl:?} lock"),
        op_ns: stats.total(|p| p.sync_op_ns) as f64 / episodes,
        wait_ns: stats.total(|p| p.sync_wait_ns) as f64 / episodes,
        wall_ns: stats.wall_ns,
    }
}

/// Barrier microbenchmark: `nprocs` processors cross a barrier `iters`
/// times with balanced tiny work in between.
pub fn barrier_probe(barrier_impl: BarrierImpl, nprocs: usize, iters: usize) -> SyncProbe {
    let mut cfg = MachineConfig::origin2000_scaled(nprocs, 64 << 10);
    cfg.barrier_impl = barrier_impl;
    let mut m = Machine::new(cfg).unwrap();
    let b = m.barrier();
    let stats = m
        .run(move |ctx| {
            for _ in 0..iters {
                ctx.compute_ns(100);
                ctx.barrier(b);
            }
        })
        .unwrap();
    let episodes = (nprocs * iters) as f64;
    SyncProbe {
        name: format!("{barrier_impl:?} barrier"),
        op_ns: stats.total(|p| p.sync_op_ns) as f64 / episodes,
        wait_ns: stats.total(|p| p.sync_wait_ns) as f64 / episodes,
        wall_ns: stats.wall_ns,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn origin_probe_reproduces_table1_ordering() {
        let row = measure_latencies(LatencyProfile::origin2000());
        assert!(row.local_ns >= 338);
        assert!(row.remote_clean_ns > row.local_ns);
        assert!(row.remote_dirty_ns > row.remote_clean_ns);
        // Ratios in the paper's ballpark (2:1 and 3:1, plus hop costs).
        assert!(
            row.clean_ratio() > 1.5 && row.clean_ratio() < 3.5,
            "{}",
            row.clean_ratio()
        );
        assert!(
            row.dirty_ratio() > 2.0 && row.dirty_ratio() < 5.0,
            "{}",
            row.dirty_ratio()
        );
    }

    #[test]
    fn all_table1_machines_probe_consistently() {
        for p in LatencyProfile::table1_machines() {
            let row = measure_latencies(p);
            assert!(row.local_ns < row.remote_clean_ns, "{}", row.name);
            assert!(row.remote_clean_ns < row.remote_dirty_ns, "{}", row.name);
        }
    }

    #[test]
    fn contended_lock_wait_dominates_op_cost() {
        // The §6.3 finding: with contention, waiting dwarfs the primitive.
        let p = lock_probe(LockImpl::TicketLlsc, 8, 20);
        assert!(p.wait_ns > p.op_ns, "wait {} op {}", p.wait_ns, p.op_ns);
    }

    #[test]
    fn fetchop_lock_has_cheaper_ops_than_llsc() {
        let llsc = lock_probe(LockImpl::TicketLlsc, 8, 20);
        let fo = lock_probe(LockImpl::TicketFetchOp, 8, 20);
        assert!(fo.op_ns < llsc.op_ns, "{} vs {}", fo.op_ns, llsc.op_ns);
    }

    #[test]
    fn barrier_probes_run_for_all_impls() {
        for imp in [
            BarrierImpl::TournamentLlsc,
            BarrierImpl::CentralLlsc,
            BarrierImpl::CentralFetchOp,
        ] {
            let p = barrier_probe(imp, 8, 5);
            assert!(p.wall_ns > 0);
            assert!(p.op_ns > 0.0);
        }
    }
}
