//! One function per table/figure of the paper: each runs the experiment on
//! the simulator and renders the same rows/series the paper reports.

use ccnuma_sim::config::{BarrierImpl, LockImpl, MigrationConfig, PagePlacement};
use ccnuma_sim::latency::LatencyProfile;
use ccnuma_sim::mapping::ProcessMapping;
use scaling_study::experiments::{all_basic, basic, restructurings, sor, sweep, Scale, APP_IDS};
use scaling_study::report::{breakdown_continuum, f2, pct, Table};
use scaling_study::runner::{Runner, StudyError};
use splash_apps::common::Workload;
use splash_apps::fft::Fft;
use splash_apps::ocean::Ocean;
use splash_apps::radix::Radix;
use splash_apps::raytrace::Raytrace;
use splash_apps::sample_sort::SampleSort;
use splash_apps::water_sp::WaterSpatial;

use crate::probes;

/// A runner sized for the scale's machine.
pub fn runner_for(scale: Scale) -> Runner {
    Runner::new(scale.cache_bytes())
}

/// Table 1: restart latencies of five CC-NUMA machines.
pub fn table1() -> Table {
    let mut t = Table::new(
        "Table 1: latencies and remote-to-local ratios (measured on the simulator)",
        &[
            "machine",
            "local (ns)",
            "remote clean (ns)",
            "remote dirty (ns)",
            "clean ratio",
            "dirty ratio",
        ],
    );
    for profile in LatencyProfile::table1_machines() {
        let r = probes::measure_latencies(profile);
        t.row(vec![
            r.name.into(),
            r.local_ns.to_string(),
            r.remote_clean_ns.to_string(),
            r.remote_dirty_ns.to_string(),
            format!("{:.1}:1", r.clean_ratio()),
            format!("{:.1}:1", r.dirty_ratio()),
        ]);
    }
    t
}

/// Table 2: basic problem sizes and sequential execution times.
pub fn table2(runner: &mut Runner, scale: Scale) -> Result<Table, StudyError> {
    let mut t = Table::new(
        "Table 2: applications, basic problem sizes, sequential times (simulated)",
        &["application", "basic problem size", "sequential time"],
    );
    for (id, w) in all_basic(scale) {
        let cfg = runner.machine_for(1);
        let seq = runner.sequential_ns(w.as_ref(), &cfg)?;
        t.row(vec![
            id.into(),
            w.problem(),
            ccnuma_sim::time::Span(seq).to_string(),
        ]);
    }
    Ok(t)
}

/// Figure 2: speedups for the basic problem sizes across processor counts.
pub fn fig2(runner: &mut Runner, scale: Scale) -> Result<Table, StudyError> {
    let mut headers = vec!["application".to_string()];
    headers.extend(scale.procs().iter().map(|p| format!("{p}p speedup")));
    let mut t = Table::new(
        "Figure 2: application speedups for basic problem sizes",
        &headers.iter().map(|s| s.as_str()).collect::<Vec<_>>(),
    );
    for (id, w) in all_basic(scale) {
        let mut row = vec![id.to_string()];
        for &np in scale.procs() {
            let rec = runner.run(w.as_ref(), np)?;
            row.push(f2(rec.speedup()));
        }
        t.row(row);
    }
    Ok(t)
}

/// Figure 3: average execution-time breakdown at the largest machine size.
pub fn fig3(runner: &mut Runner, scale: Scale) -> Result<Table, StudyError> {
    let np = scale.max_procs();
    let mut t = Table::new(
        format!("Figure 3: average breakdown, {np}-processor executions, basic sizes"),
        &["application", "busy", "memory", "sync"],
    );
    for (id, w) in all_basic(scale) {
        let rec = runner.run(w.as_ref(), np)?;
        let (b, m, s) = rec.stats.avg_breakdown_pct();
        t.row(vec![
            id.into(),
            format!("{b:.1}%"),
            format!("{m:.1}%"),
            format!("{s:.1}%"),
        ]);
    }
    Ok(t)
}

/// Figure 4: parallel efficiency vs problem size, one sub-table per
/// application, at three processor counts.
pub fn fig4(runner: &mut Runner, scale: Scale) -> Result<Vec<Table>, StudyError> {
    let procs: Vec<usize> = {
        // The paper plots 32/64/128 (omitting 96 for readability).
        let all = scale.procs();
        if all.len() >= 4 {
            vec![all[0], all[1], all[3]]
        } else {
            all.to_vec()
        }
    };
    let mut out = Vec::new();
    for &id in APP_IDS {
        let mut headers = vec!["problem".to_string()];
        headers.extend(procs.iter().map(|p| format!("{p}p eff")));
        let mut t = Table::new(
            format!("Figure 4 ({id}): parallel efficiency vs problem size"),
            &headers.iter().map(|s| s.as_str()).collect::<Vec<_>>(),
        );
        for w in sweep(id, scale) {
            let mut row = vec![w.problem()];
            for &np in &procs {
                let rec = runner.run(w.as_ref(), np)?;
                row.push(pct(rec.efficiency()));
            }
            t.row(row);
        }
        out.push(t);
    }
    Ok(out)
}

/// A (label, small workload, large workload) comparison triple.
type SizePair = (&'static str, Box<dyn Workload>, Box<dyn Workload>);

/// Figures 5–8: per-processor breakdown continuums for Water-Spatial, FFT,
/// Shear-Warp and Raytrace, each at a small and a large problem size.
pub fn figs5to8(runner: &mut Runner, scale: Scale) -> Result<Vec<Table>, StudyError> {
    let np = scale.max_procs();
    let mut out = Vec::new();
    let pairs: Vec<SizePair> = vec![
        (
            "Figure 5 (water-sp)",
            first(sweep("water-sp", scale)),
            last(sweep("water-sp", scale)),
        ),
        (
            "Figure 6 (fft)",
            first(sweep("fft", scale)),
            last(sweep("fft", scale)),
        ),
        (
            "Figure 7 (shearwarp)",
            first(sweep("shearwarp", scale)),
            last(sweep("shearwarp", scale)),
        ),
        (
            "Figure 8 (raytrace)",
            first(sweep("raytrace", scale)),
            last(sweep("raytrace", scale)),
        ),
    ];
    for (fig, small, large) in pairs {
        for (tag, w) in [("small", small), ("large", large)] {
            let rec = runner.run(w.as_ref(), np)?;
            let mut t = breakdown_continuum(&rec.stats, 8);
            t.title = format!("{fig}, {tag} problem ({}): {}", w.problem(), t.title);
            out.push(t);
        }
    }
    Ok(out)
}

fn first(mut v: Vec<Box<dyn Workload>>) -> Box<dyn Workload> {
    v.remove(0)
}

fn last(mut v: Vec<Box<dyn Workload>>) -> Box<dyn Workload> {
    v.pop().expect("nonempty sweep")
}

/// Figure 9: original vs restructured parallel efficiency across processor
/// counts.
pub fn fig9(runner: &mut Runner, scale: Scale) -> Result<Table, StudyError> {
    let mut headers = vec!["application".to_string(), "version".to_string()];
    headers.extend(scale.procs().iter().map(|p| format!("{p}p eff")));
    let mut t = Table::new(
        "Figure 9: impact of application restructuring on parallel efficiency",
        &headers.iter().map(|s| s.as_str()).collect::<Vec<_>>(),
    );
    for r in restructurings(scale) {
        let mut versions: Vec<(&str, &dyn Workload)> = vec![("original", r.original.as_ref())];
        for w in &r.restructured {
            versions.push(("restructured", w.as_ref()));
        }
        for (tag, w) in versions {
            let mut row = vec![r.app.to_string(), format!("{tag}: {}", w.name())];
            for &np in scale.procs() {
                let rec = runner.run(w, np)?;
                row.push(pct(rec.efficiency()));
            }
            t.row(row);
        }
    }
    Ok(t)
}

/// Figure 10: normalized execution-time breakdowns of the Barnes-Hut and
/// Water-Nsquared versions at the largest machine size.
pub fn fig10(runner: &mut Runner, scale: Scale) -> Result<Table, StudyError> {
    let np = scale.max_procs();
    let mut t = Table::new(
        format!("Figure 10: breakdowns of original vs restructured versions, {np} processors"),
        &["version", "total (norm)", "busy", "memory", "sync"],
    );
    for r in restructurings(scale) {
        if r.app != "barnes" && r.app != "water-nsq" {
            continue;
        }
        let base = runner.run(r.original.as_ref(), np)?;
        let mut rows = vec![(r.original.name(), base.wall_ns, base.stats.clone())];
        for w in &r.restructured {
            let rec = runner.run(w.as_ref(), np)?;
            rows.push((w.name(), rec.wall_ns, rec.stats));
        }
        for (name, wall, stats) in rows {
            let (b, m, s) = stats.avg_breakdown_pct();
            t.row(vec![
                name,
                format!("{:.2}", wall as f64 / base.wall_ns as f64),
                format!("{b:.1}%"),
                format!("{m:.1}%"),
                format!("{s:.1}%"),
            ]);
        }
    }
    Ok(t)
}

/// Table 3: manual vs round-robin vs round-robin+migration placement.
///
/// Problem sizes are chosen so each processor's share of the data exceeds
/// its cache — placement only matters for capacity misses, which is
/// exactly the paper's point about these three regular applications.
pub fn table3(runner: &mut Runner, scale: Scale) -> Result<Table, StudyError> {
    // The paper uses 64 processors and large problems.
    let np = scale.procs()[1.min(scale.procs().len() - 1)];
    let mut t = Table::new(
        format!("Table 3: speedup under data-distribution strategies, {np} processors"),
        &[
            "application",
            "problem",
            "manual",
            "round robin",
            "RR + migration",
        ],
    );
    let fft_log2n = if scale == Scale::Full { 18 } else { 12 };
    let radix_keys = if scale == Scale::Full {
        512 << 10
    } else {
        16 << 10
    };
    let ocean_dim = if scale == Scale::Full { 512 } else { 64 };
    let mk_fft = |manual| {
        let mut a = Fft::new(fft_log2n);
        a.manual_placement = manual;
        Box::new(a) as Box<dyn Workload>
    };
    let mk_radix = |manual| {
        let mut a = Radix::new(radix_keys);
        a.manual_placement = manual;
        Box::new(a) as Box<dyn Workload>
    };
    let mk_ocean = |manual| {
        let mut a = Ocean::new(ocean_dim);
        a.manual_placement = manual;
        a.vcycles = 1;
        Box::new(a) as Box<dyn Workload>
    };
    let apps: Vec<SizePair> = vec![
        ("fft", mk_fft(true), mk_fft(false)),
        ("radix", mk_radix(true), mk_radix(false)),
        ("ocean", mk_ocean(true), mk_ocean(false)),
    ];
    for (id, manual, auto) in apps {
        // Placement matters in the capacity-miss regime; run on the
        // full-latency machine (the paper's sizes are "quite large
        // compared to real usage" — memory-bound by construction).
        let mut cfg_manual = runner.machine_for(np);
        cfg_manual.latency = LatencyProfile::origin2000();
        let rec_manual = runner.run_on(manual.as_ref(), cfg_manual.clone())?;
        let mut cfg_rr = cfg_manual.clone();
        cfg_rr.placement = PagePlacement::RoundRobin;
        let rec_rr = runner.run_on(auto.as_ref(), cfg_rr.clone())?;
        let mut cfg_mig = cfg_rr;
        cfg_mig.migration = Some(MigrationConfig::default());
        let rec_mig = runner.run_on(auto.as_ref(), cfg_mig)?;
        t.row(vec![
            id.into(),
            manual.problem(),
            f2(rec_manual.speedup()),
            f2(rec_rr.speedup()),
            f2(rec_mig.speedup()),
        ]);
    }
    Ok(t)
}

/// §6.1: effect of prefetching remote data on FFT and Sample sort.
pub fn prefetch(runner: &mut Runner, scale: Scale) -> Result<Table, StudyError> {
    let mut headers = vec!["application".to_string(), "problem".to_string()];
    headers.extend(scale.procs().iter().map(|p| format!("{p}p gain")));
    let mut t = Table::new(
        "Section 6.1: execution-time improvement from software prefetch",
        &headers.iter().map(|s| s.as_str()).collect::<Vec<_>>(),
    );
    let apps: Vec<Box<dyn Workload>> = vec![
        Box::new(Fft::new(if scale == Scale::Full { 14 } else { 10 })),
        Box::new(SampleSort::new(if scale == Scale::Full {
            64 << 10
        } else {
            8 << 10
        })),
        Box::new(WaterSpatial::new(if scale == Scale::Full {
            1024
        } else {
            256
        })),
    ];
    for w in apps {
        let mut row = vec![w.name(), w.problem()];
        for &np in scale.procs() {
            let mut cfg_off = runner.machine_for(np);
            cfg_off.prefetch_enabled = false;
            let off = runner.run_on(w.as_ref(), cfg_off)?;
            let mut cfg_on = runner.machine_for(np);
            cfg_on.prefetch_enabled = true;
            let on = runner.run_on(w.as_ref(), cfg_on)?;
            let gain = 1.0 - on.wall_ns as f64 / off.wall_ns as f64;
            row.push(format!("{:+.1}%", 100.0 * gain));
        }
        t.row(row);
    }
    Ok(t)
}

/// §6.2: dynamic page migration with different thresholds, against manual
/// and plain round-robin placement.
pub fn migration(runner: &mut Runner, scale: Scale) -> Result<Table, StudyError> {
    let np = scale.procs()[scale.procs().len() / 2];
    let mut t = Table::new(
        format!("Section 6.2: page migration thresholds (FFT, {np} processors)"),
        &["placement", "speedup", "pages migrated"],
    );
    let manual = Fft::new(if scale == Scale::Full { 18 } else { 10 });
    let mut auto = manual.clone();
    auto.manual_placement = false;
    let mut cfg0 = runner.machine_for(np);
    cfg0.latency = LatencyProfile::origin2000();
    let rec = runner.run_on(&manual, cfg0.clone())?;
    t.row(vec!["manual".into(), f2(rec.speedup()), "0".into()]);
    let mut cfg = cfg0;
    cfg.placement = PagePlacement::RoundRobin;
    let rec = runner.run_on(&auto, cfg.clone())?;
    t.row(vec!["round robin".into(), f2(rec.speedup()), "0".into()]);
    for threshold in [16u32, 64, 256] {
        let mut cfg_m = cfg.clone();
        cfg_m.migration = Some(MigrationConfig {
            threshold,
            cooldown: threshold,
        });
        let rec = runner.run_on(&auto, cfg_m)?;
        t.row(vec![
            format!("RR + migration (threshold {threshold})"),
            f2(rec.speedup()),
            rec.stats.page_migrations.to_string(),
        ]);
    }
    Ok(t)
}

/// §6.3: synchronization primitives — microbenchmark costs and app-level
/// impact.
pub fn sync(runner: &mut Runner, scale: Scale) -> Result<Vec<Table>, StudyError> {
    let np = scale.max_procs().min(64);
    let mut micro = Table::new(
        format!("Section 6.3: synchronization microbenchmarks, {np} processors"),
        &["primitive", "op overhead/episode", "wait/episode"],
    );
    for imp in [LockImpl::TicketLlsc, LockImpl::TicketFetchOp] {
        let p = probes::lock_probe(imp, np, 10);
        micro.row(vec![
            p.name,
            format!("{:.0} ns", p.op_ns),
            format!("{:.0} ns", p.wait_ns),
        ]);
    }
    for imp in [
        BarrierImpl::TournamentLlsc,
        BarrierImpl::CentralLlsc,
        BarrierImpl::CentralFetchOp,
    ] {
        let p = probes::barrier_probe(imp, np, 10);
        micro.row(vec![
            p.name,
            format!("{:.0} ns", p.op_ns),
            format!("{:.0} ns", p.wait_ns),
        ]);
    }

    // Application level: the primitive choice barely matters (wait time
    // from imbalance dominates).
    let mut app = Table::new(
        "Section 6.3: app-level impact of the synchronization primitive",
        &[
            "application",
            "LL/SC ticket + tournament",
            "fetch&op + central",
        ],
    );
    let w = basic("water-nsq", scale);
    let a = runner.run_on(w.as_ref(), runner.machine_for(np))?;
    let mut cfg = runner.machine_for(np);
    cfg.lock_impl = LockImpl::TicketFetchOp;
    cfg.barrier_impl = BarrierImpl::CentralFetchOp;
    let b = runner.run_on(w.as_ref(), cfg)?;
    app.row(vec![
        "water-nsq".into(),
        ccnuma_sim::time::Span(a.wall_ns).to_string(),
        ccnuma_sim::time::Span(b.wall_ns).to_string(),
    ]);
    Ok(vec![micro, app])
}

/// §7.1: mapping processes to the network topology.
///
/// Run with the unscaled Origin network (50 ns per hop, 100 ns per
/// metarouter crossing): topology only matters when link costs are a
/// visible fraction of miss latency, which is the regime the paper
/// measured.
pub fn mapping(runner: &mut Runner, scale: Scale) -> Result<Table, StudyError> {
    let np = scale.max_procs();
    let mut t = Table::new(
        format!("Section 7.1: process-to-topology mapping, {np} processors"),
        &["application", "mapping", "wall time", "vs linear"],
    );
    let apps: Vec<(&str, Box<dyn Workload>)> = vec![
        ("barnes", basic("barnes", scale)),
        ("ocean", basic("ocean", scale)),
        ("fft", basic("fft", scale)),
        ("sor", Box::new(sor(scale))),
    ];
    for (id, w) in apps {
        let mut linear_ns = 0;
        for (tag, mapping) in [
            ("linear", ProcessMapping::Linear),
            ("random", ProcessMapping::Random { seed: 17 }),
            ("random pairs", ProcessMapping::RandomPairs { seed: 17 }),
        ] {
            let mut cfg = runner.machine_for(np);
            cfg.latency = LatencyProfile::origin2000();
            cfg.mapping = mapping;
            let rec = runner.run_on(w.as_ref(), cfg)?;
            if tag == "linear" {
                linear_ns = rec.wall_ns;
            }
            let rel = rec.wall_ns as f64 / linear_ns as f64;
            t.row(vec![
                id.into(),
                tag.into(),
                ccnuma_sim::time::Span(rec.wall_ns).to_string(),
                format!("{:+.1}%", 100.0 * (rel - 1.0)),
            ]);
        }
    }
    // Ocean's near-neighbour mapping: pair vertically-adjacent tiles of
    // the processor grid onto nodes so each node's two processors share a
    // tile boundary (the paper's "appropriate near-neighbor mapping of
    // process-pairs to nodes").
    {
        let pr = {
            let mut pr = (np as f64).sqrt() as usize;
            while pr > 1 && !np.is_multiple_of(pr) {
                pr -= 1;
            }
            pr.max(1)
        };
        let pc = np / pr;
        if pr % 2 == 0 {
            let mut perm = vec![0usize; np];
            for (p, slot) in perm.iter_mut().enumerate() {
                let (ti, tj) = (p / pc, p % pc);
                *slot = ((ti / 2) * pc + tj) * 2 + ti % 2;
            }
            let mut cfg = runner.machine_for(np);
            cfg.latency = LatencyProfile::origin2000();
            cfg.mapping = ProcessMapping::Explicit(perm);
            let w = basic("ocean", scale);
            let rec = runner.run_on(w.as_ref(), cfg.clone())?;
            let mut cfg_lin = cfg;
            cfg_lin.mapping = ProcessMapping::Linear;
            let lin = runner.run_on(w.as_ref(), cfg_lin)?;
            t.row(vec![
                "ocean".into(),
                "near-neighbor pairs".into(),
                ccnuma_sim::time::Span(rec.wall_ns).to_string(),
                format!(
                    "{:+.1}%",
                    100.0 * (rec.wall_ns as f64 / lin.wall_ns as f64 - 1.0)
                ),
            ]);
        }
    }

    // The FFT stagger interaction: offset 1 makes one processor per node
    // start on-node (bad); offset 2 makes both start off-node.
    let mut fft1 = Fft::new(if scale == Scale::Full { 14 } else { 10 });
    fft1.first_peer_offset = 1;
    let mut fft2 = fft1.clone();
    fft2.first_peer_offset = 2;
    let mut cfg_st = runner.machine_for(np);
    cfg_st.latency = LatencyProfile::origin2000();
    let a = runner.run_on(&fft1, cfg_st.clone())?;
    let b = runner.run_on(&fft2, cfg_st)?;
    t.row(vec![
        "fft".into(),
        "linear, stagger offset 2".into(),
        ccnuma_sim::time::Span(b.wall_ns).to_string(),
        format!(
            "{:+.1}%",
            100.0 * (b.wall_ns as f64 / a.wall_ns as f64 - 1.0)
        ),
    ]);
    Ok(t)
}

/// §7.2: one vs two processors per node.
pub fn nodeshare(runner: &mut Runner, scale: Scale) -> Result<Table, StudyError> {
    let np = scale.max_procs() / 2; // keep node counts feasible at 1 ppn
    let mut t = Table::new(
        format!("Section 7.2: two processors per node vs one, {np} processors"),
        &[
            "application",
            "problem",
            "2 procs/node",
            "1 proc/node",
            "1ppn gain",
        ],
    );
    let apps: Vec<Box<dyn Workload>> = vec![
        first(sweep("fft", scale)),
        last(sweep("fft", scale)),
        first(sweep("radix", scale)),
        last(sweep("radix", scale)),
        Box::new(SampleSort::new(if scale == Scale::Full {
            256 << 10
        } else {
            16 << 10
        })),
        last(sweep("ocean", scale)),
        Box::new(Raytrace::new(if scale == Scale::Full { 64 } else { 24 })),
    ];
    for w in apps {
        let two = runner.run(w.as_ref(), np)?;
        let mut cfg = runner.machine_for(np);
        cfg.procs_per_node = 1;
        cfg.mem_per_node_bytes /= 2; // same total memory, twice the nodes
        let one = runner.run_on(w.as_ref(), cfg)?;
        let gain = 1.0 - one.wall_ns as f64 / two.wall_ns as f64;
        t.row(vec![
            w.name(),
            w.problem(),
            ccnuma_sim::time::Span(two.wall_ns).to_string(),
            ccnuma_sim::time::Span(one.wall_ns).to_string(),
            format!("{:+.1}%", 100.0 * gain),
        ]);
    }
    Ok(t)
}

/// §5.2: performance portability to SVM clusters. Runs the paper's
/// restructuring pairs on a simulated 16-processor page-grain
/// shared-virtual-memory cluster (software coherence handlers, expensive
/// locks) next to a 16-processor hardware-DSM machine, reproducing the
/// comparison with \[6\]: the same restructurings that help scaling on the
/// Origin help — usually far more dramatically — on SVM, and some (the
/// Raytrace statistics lock) only matter there.
pub fn svm(runner: &mut Runner, scale: Scale) -> Result<Table, StudyError> {
    use ccnuma_sim::config::MachineConfig;
    use splash_apps::barnes::{Barnes, TreeBuild};
    use splash_apps::ocean::{Ocean, OceanPartition};
    use splash_apps::shearwarp::{ShearWarp, ShearWarpVariant};
    use splash_apps::volrend::Volrend;
    use splash_apps::water_nsq::{LoopOrder, WaterNsq};
    let np = 16;
    let big = scale == Scale::Full;
    // The SVM machine gets the same √(cache-scale) latency calibration as
    // the scaled hardware machine, so the two columns are comparable.
    let mut svm_cfg = MachineConfig::svm_cluster(np);
    svm_cfg.latency = svm_cfg.latency.scaled_by(8);
    let mut t = Table::new(
        format!("Section 5.2: restructurings on an SVM cluster vs hardware DSM, {np} processors"),
        &[
            "application",
            "version",
            "SVM speedup",
            "hardware DSM speedup",
        ],
    );
    let mut pairs: Vec<(&str, Vec<Box<dyn Workload>>)> = Vec::new();
    let bn = if big { 2048 } else { 256 };
    pairs.push((
        "barnes",
        vec![
            Box::new(Barnes::new(bn)),
            Box::new({
                let mut a = Barnes::new(bn);
                a.variant = TreeBuild::Merge;
                a
            }),
            Box::new({
                let mut a = Barnes::new(bn);
                a.variant = TreeBuild::Spatial;
                a
            }),
        ],
    ));
    let sw = if big { 48 } else { 24 };
    pairs.push((
        "shearwarp",
        vec![
            Box::new(ShearWarp::new(sw)),
            Box::new({
                let mut a = ShearWarp::new(sw);
                a.variant = ShearWarpVariant::Sweep;
                a
            }),
        ],
    ));
    let rt = if big { 64 } else { 24 };
    pairs.push((
        "raytrace",
        vec![
            Box::new({
                let mut a = Raytrace::new(rt);
                a.per_ray_stats_lock = true;
                a
            }),
            Box::new(Raytrace::new(rt)),
        ],
    ));
    let od = if big { 128 } else { 32 };
    pairs.push((
        "ocean",
        vec![
            Box::new(Ocean::new(od)),
            Box::new({
                let mut a = Ocean::new(od);
                a.partition = OceanPartition::Rowwise;
                a
            }),
        ],
    ));
    let vr = if big { 48 } else { 24 };
    pairs.push((
        "volrend",
        vec![
            Box::new(Volrend::new(vr)),
            Box::new({
                let mut a = Volrend::new(vr);
                a.static_partition = true;
                a
            }),
        ],
    ));
    let wn = if big { 512 } else { 128 };
    pairs.push((
        "water-nsq",
        vec![
            Box::new(WaterNsq::new(wn)),
            Box::new({
                let mut a = WaterNsq::new(wn);
                a.variant = LoopOrder::Interchanged;
                a
            }),
        ],
    ));
    for (app, versions) in pairs {
        for (i, w) in versions.iter().enumerate() {
            let svm_rec = runner.run_on(w.as_ref(), svm_cfg.clone())?;
            let hw_rec = runner.run(w.as_ref(), np)?;
            let tag = if i == 0 { "original" } else { "restructured" };
            t.row(vec![
                app.into(),
                format!("{tag}: {}", w.name()),
                f2(svm_rec.speedup()),
                f2(hw_rec.speedup()),
            ]);
        }
    }
    Ok(t)
}

/// Ablations of the simulator's model features on two contention-defined
/// kernels, quantifying which parts of the machine model carry the paper's
/// conclusions (DESIGN.md's design-choice catalog).
pub fn ablation(runner: &mut Runner, scale: Scale) -> Result<Table, StudyError> {
    use ccnuma_sim::topology::TopologyKind;
    use splash_apps::fft::TransposeKind;
    let np = scale.procs()[1.min(scale.procs().len() - 1)];
    let mut t = Table::new(
        format!("Model ablations, {np} processors"),
        &["application", "model variant", "wall time", "vs baseline"],
    );
    let apps: Vec<Box<dyn Workload>> = vec![
        Box::new(Fft::new(if scale == Scale::Full { 14 } else { 10 })),
        Box::new(Radix::new(if scale == Scale::Full {
            128 << 10
        } else {
            8 << 10
        })),
        Box::new({
            let mut a = Fft::new(if scale == Scale::Full { 14 } else { 10 });
            a.transpose = TransposeKind::Implicit;
            a
        }),
    ];
    for w in apps {
        let base = runner.run(w.as_ref(), np)?;
        let row = |label: &str, wall: u64| {
            let rel = 100.0 * (wall as f64 / base.wall_ns as f64 - 1.0);
            vec![
                w.name(),
                label.to_string(),
                ccnuma_sim::time::Span(wall).to_string(),
                format!("{rel:+.1}%"),
            ]
        };
        let baseline_row = row("baseline", base.wall_ns);
        t.row(baseline_row);

        // Contention off: zero every occupancy.
        let mut cfg = runner.machine_for(np);
        cfg.latency.hub_occ_ns = 0;
        cfg.latency.mem_occ_ns = 0;
        cfg.latency.router_occ_ns = 0;
        cfg.latency.metarouter_occ_ns = 0;
        cfg.latency.inval_ns = 0;
        let r = runner.run_on(w.as_ref(), cfg)?;
        let rr = row("no contention (occupancies = 0)", r.wall_ns);
        t.row(rr);

        // Uniform (topology-free) network.
        let mut cfg = runner.machine_for(np);
        cfg.topology = Some(TopologyKind::Ideal);
        let r = runner.run_on(w.as_ref(), cfg)?;
        let rr = row("ideal uniform network", r.wall_ns);
        t.row(rr);

        // Flat memory: remote costs the same as local.
        let mut cfg = runner.machine_for(np);
        cfg.latency.remote_clean_ns = cfg.latency.local_ns;
        cfg.latency.remote_dirty_ns = cfg.latency.local_ns;
        cfg.latency.link_ns = 0;
        cfg.latency.metarouter_ns = 0;
        let r = runner.run_on(w.as_ref(), cfg)?;
        let rr = row("UMA (remote = local latency)", r.wall_ns);
        t.row(rr);
    }
    Ok(t)
}

/// Data-structure-level profile of Barnes-Hut at the largest machine —
/// reproducing the paper's §5.1 diagnosis that the memory bottleneck sits
/// in the shared tree (31% of 128-processor time in tree building at
/// 512 K bodies), with the tooling the authors wished they had (§8).
pub fn profile(runner: &mut Runner, scale: Scale) -> Result<Vec<Table>, StudyError> {
    use scaling_study::report::range_profile_table;
    use splash_apps::barnes::{Barnes, TreeBuild};
    let np = scale.max_procs();
    let mut out = Vec::new();
    for variant in [TreeBuild::Locked, TreeBuild::Spatial] {
        let mut app = Barnes::new(if scale == Scale::Full { 2048 } else { 256 });
        app.variant = variant;
        let rec = runner.run(&app, np)?;
        let mut t = range_profile_table(&rec.stats);
        t.title = format!("{} ({}, {np} procs): {}", rec.app, rec.problem, t.title);
        out.push(t);
    }
    Ok(out)
}

/// Phase-resolved breakdowns (§8 tooling): runs Barnes-Hut and Ocean with
/// tracing on and reports, per program phase, where the time goes — busy,
/// memory stall split local/remote, and synchronization — plus each run's
/// machine-wide gauge series (miss rate, resource occupancies).
pub fn phases(runner: &mut Runner, scale: Scale) -> Result<Vec<Table>, StudyError> {
    use scaling_study::report::{gauge_table, phase_breakdown_table};
    let np = scale.max_procs().min(32);
    if !runner.trace_enabled() {
        runner.set_trace(Some(ccnuma_sim::trace::TraceConfig::on()));
    }
    let mut out = Vec::new();
    for w in [basic("barnes", scale), basic("ocean", scale)] {
        let rec = runner.run(w.as_ref(), np)?;
        let mut t = phase_breakdown_table(&rec.stats);
        t.title = format!("{} ({}, {np} procs): {}", rec.app, rec.problem, t.title);
        out.push(t);
    }
    for (label, trace) in runner.traces() {
        let mut t = gauge_table(trace);
        t.title = format!("{label}: {}", t.title);
        out.push(t);
    }
    Ok(out)
}

/// §8 tooling: miss-cause, stall-attribution, and sharing-pattern tables.
/// Runs Ocean at two machine sizes with miss classification on and reports
/// the cause mix, the per-resource service/queueing split of the memory
/// stall, and the per-phase attribution; then Barnes-Hut for the
/// sharing-hot lines of its labelled data structures.
pub fn attrib(runner: &mut Runner, scale: Scale) -> Result<Vec<Table>, StudyError> {
    use scaling_study::report::{
        miss_cause_table, phase_attribution_table, sharing_hot_table, stall_attribution_table,
    };
    use splash_apps::barnes::Barnes;
    if !runner.attrib_enabled() {
        runner.set_attrib(true);
    }
    let procs: Vec<usize> = if scale == Scale::Full {
        // The paper's §4 contention analysis contrasts a small and a large
        // machine; 16 and 64 processors bracket the interesting range.
        vec![16, 64]
    } else {
        let all = scale.procs();
        vec![all[0], all[all.len() - 1]]
    };
    let mut out = Vec::new();
    for &np in &procs {
        let w = basic("ocean", scale);
        let rec = runner.run(w.as_ref(), np)?;
        for mut t in [
            miss_cause_table(&rec.stats),
            stall_attribution_table(&rec.stats),
            phase_attribution_table(&rec.stats),
        ] {
            t.title = format!("{} ({}, {np} procs): {}", rec.app, rec.problem, t.title);
            out.push(t);
        }
    }
    // Sharing hot spots need labelled allocations; Barnes-Hut labels its
    // shared tree and body arrays.
    let np = *procs.last().expect("nonempty procs");
    let app = Barnes::new(if scale == Scale::Full { 2048 } else { 256 });
    let rec = runner.run(&app, np)?;
    let mut t = sharing_hot_table(&rec.stats);
    t.title = format!("{} ({}, {np} procs): {}", rec.app, rec.problem, t.title);
    out.push(t);
    Ok(out)
}

/// §8 tooling: critical-path analysis with what-if projection. Runs
/// Ocean at a small and a large machine with critical-path profiling on
/// and reports each run's on-path busy/memory/sync shares (showing the
/// limiter shift as the machine grows) plus the projected speedup of
/// each re-weighted cost scenario.
pub fn critpath(runner: &mut Runner, scale: Scale) -> Result<Vec<Table>, StudyError> {
    use scaling_study::report::{critpath_table, whatif_table};
    if !runner.critpath_enabled() {
        runner.set_critpath(true);
    }
    let procs: Vec<usize> = if scale == Scale::Full {
        // Small vs large machine: the paper's limiter-shift regime.
        vec![16, 64]
    } else {
        let all = scale.procs();
        vec![all[0], all[all.len() - 1]]
    };
    for &np in &procs {
        let w = basic("ocean", scale);
        runner.run(w.as_ref(), np)?;
    }
    let mut out = Vec::new();
    let mut rows = Vec::new();
    for (label, rep) in runner.take_critpaths() {
        out.push(whatif_table(&label, &rep));
        rows.push((label, rep));
    }
    out.insert(0, critpath_table(&rows));
    Ok(out)
}

/// §5.3: the programming-guideline catalog.
pub fn guidelines() -> Table {
    let mut t = Table::new(
        "Section 5.3: programming guidelines for scalability and portability",
        &["guideline", "exemplars"],
    );
    for g in scaling_study::guidelines::Guideline::ALL {
        t.row(vec![g.description().into(), g.exemplars().join(", ")]);
    }
    t
}

/// Every experiment `repro` can run, in `repro all` order. The names
/// `fig5` through `fig8` are accepted as aliases of `"fig5-8"` by
/// [`run_experiment`] but are not listed here.
pub const EXPERIMENT_NAMES: &[&str] = &[
    "table1",
    "table2",
    "fig2",
    "fig3",
    "fig4",
    "fig5-8",
    "fig9",
    "fig10",
    "table3",
    "prefetch",
    "migration",
    "sync",
    "mapping",
    "nodeshare",
    "svm",
    "profile",
    "phases",
    "attrib",
    "critpath",
    "ablation",
    "guidelines",
];

/// Whether `name` is a known experiment (including the `fig5`..`fig8`
/// aliases).
pub fn is_experiment(name: &str) -> bool {
    EXPERIMENT_NAMES.contains(&name) || matches!(name, "fig5" | "fig6" | "fig7" | "fig8")
}

/// Runs one named experiment and returns its tables, or `None` for an
/// unknown name — the single dispatch point shared by the `repro`
/// binary and the test suite, so the two cannot drift apart.
///
/// # Errors
///
/// Propagates any simulation or verification failure.
pub fn run_experiment(
    name: &str,
    runner: &mut Runner,
    scale: Scale,
) -> Option<Result<Vec<Table>, StudyError>> {
    let tables = match name {
        "table1" => Ok(vec![table1()]),
        "table2" => table2(runner, scale).map(|t| vec![t]),
        "fig2" => fig2(runner, scale).map(|t| vec![t]),
        "fig3" => fig3(runner, scale).map(|t| vec![t]),
        "fig4" => fig4(runner, scale),
        "fig5-8" | "fig5" | "fig6" | "fig7" | "fig8" => figs5to8(runner, scale),
        "fig9" => fig9(runner, scale).map(|t| vec![t]),
        "fig10" => fig10(runner, scale).map(|t| vec![t]),
        "table3" => table3(runner, scale).map(|t| vec![t]),
        "prefetch" => prefetch(runner, scale).map(|t| vec![t]),
        "migration" => migration(runner, scale).map(|t| vec![t]),
        "sync" => sync(runner, scale),
        "mapping" => mapping(runner, scale).map(|t| vec![t]),
        "nodeshare" => nodeshare(runner, scale).map(|t| vec![t]),
        "svm" => svm(runner, scale).map(|t| vec![t]),
        "ablation" => ablation(runner, scale).map(|t| vec![t]),
        "profile" => profile(runner, scale),
        "phases" => phases(runner, scale),
        "attrib" => attrib(runner, scale),
        "critpath" => critpath(runner, scale),
        "guidelines" => Ok(vec![guidelines()]),
        _ => return None,
    };
    Some(tables)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_listed_experiment_dispatches() {
        let mut r = runner_for(Scale::Quick);
        for name in EXPERIMENT_NAMES {
            assert!(is_experiment(name), "{name}");
            // table1/guidelines actually run here; the rest only need to
            // resolve — the full quick execution lives in the
            // experiments_all integration test.
            if matches!(*name, "table1" | "guidelines") {
                let tables = run_experiment(name, &mut r, Scale::Quick)
                    .expect("known name")
                    .expect("static experiment");
                assert!(!tables.is_empty());
            }
        }
        assert!(run_experiment("nope", &mut r, Scale::Quick).is_none());
        assert!(!is_experiment("nope"));
        assert!(is_experiment("fig7"), "aliases resolve");
    }

    #[test]
    fn table1_reports_five_machines() {
        let t = table1();
        assert_eq!(t.len(), 5);
        assert!(t.to_string().contains("Origin2000"));
    }

    #[test]
    fn guidelines_table_is_complete() {
        assert_eq!(guidelines().len(), 9);
    }

    #[test]
    fn quick_table2_and_fig2_run() {
        let mut r = runner_for(Scale::Quick);
        let t2 = table2(&mut r, Scale::Quick).unwrap();
        assert_eq!(t2.len(), 11);
        let f2t = fig2(&mut r, Scale::Quick).unwrap();
        assert_eq!(f2t.len(), 11);
    }
}
