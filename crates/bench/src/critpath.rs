//! The critical-path regression harness behind `bench critpath`: runs the
//! pinned workload matrix (the same one `bench regress` uses) with
//! critical-path profiling on, snapshots each cell's on-path composition
//! and what-if projections to `BENCH_critpath.json`, and gates changes
//! against the committed baseline with a relative tolerance.
//!
//! The simulator — and the collector, which consumes its deterministic
//! event stream — is bit-deterministic, so the baseline is expected to
//! match exactly on an unchanged tree at any `--jobs` count; the
//! tolerance (default 2%) leaves room for deliberate model tuning.

use ccnuma_sim::critpath::CritReport;
use ccnuma_sim::time::Ns;
use scaling_study::experiments::{basic, Scale};
use scaling_study::report::Table;
use scaling_study::runner::{Runner, StudyError};

use crate::regress::{MATRIX_APPS, MATRIX_PROCS};

/// Default relative tolerance of the drift gate.
pub const DEFAULT_TOLERANCE: f64 = 0.02;

/// Names of the seven on-path buckets, in [`CritEntry::path`] order.
pub const PATH_NAMES: [&str; 7] = [
    "busy",
    "sync_op",
    "mem_local",
    "mem_remote",
    "lock_wait",
    "barrier_wait",
    "sem_wait",
];

/// Names of the what-if scenarios, in [`CritEntry::whatif`] order — the
/// order [`CritReport`] emits them in.
pub const SCENARIO_NAMES: [&str; 6] = [
    "measured",
    "sync=0",
    "hub_queue=0",
    "queue=0",
    "remote*0.5",
    "busy-only",
];

/// One measured point of the critical-path matrix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CritEntry {
    /// Workload name (e.g. `"ocean"`).
    pub app: String,
    /// Problem description (e.g. `"34x34 grid"`).
    pub problem: String,
    /// Processors used.
    pub nprocs: usize,
    /// Parallel wall-clock (virtual ns) — what the path sums to.
    pub wall_ns: Ns,
    /// On-path time per bucket, in [`PATH_NAMES`] order. Sums to
    /// [`CritEntry::wall_ns`] exactly.
    pub path: [Ns; 7],
    /// Projected wall clock per what-if scenario, in [`SCENARIO_NAMES`]
    /// order. `whatif[0]` (measured) equals [`CritEntry::wall_ns`].
    pub whatif: [Ns; 6],
}

impl CritEntry {
    /// The `"app/problem/NNp"` key identifying this point.
    pub fn key(&self) -> String {
        format!("{}/{}/{}p", self.app, self.problem, self.nprocs)
    }

    /// On-path `(busy, memory, sync)` percentage split.
    pub fn share_pct(&self) -> (f64, f64, f64) {
        let t = self.wall_ns.max(1) as f64;
        let [busy, sync_op, ml, mr, lw, bw, sw] = self.path;
        (
            100.0 * busy as f64 / t,
            100.0 * (ml + mr) as f64 / t,
            100.0 * (sync_op + lw + bw + sw) as f64 / t,
        )
    }

    /// Projected speedup of scenario `i` (in [`SCENARIO_NAMES`] order).
    pub fn speedup(&self, i: usize) -> f64 {
        if self.whatif[i] == 0 {
            1.0
        } else {
            self.wall_ns as f64 / self.whatif[i] as f64
        }
    }
}

fn entry_from(app: String, problem: String, nprocs: usize, rep: &CritReport) -> CritEntry {
    let t = &rep.total;
    let mut whatif = [0u64; 6];
    for (slot, w) in whatif.iter_mut().zip(&rep.whatif) {
        *slot = w.wall_ns;
    }
    CritEntry {
        app,
        problem,
        nprocs,
        wall_ns: rep.wall_ns,
        path: [
            t.busy_ns,
            t.sync_op_ns,
            t.mem_local_ns,
            t.mem_remote_ns,
            t.lock_wait_ns,
            t.barrier_wait_ns,
            t.sem_wait_ns,
        ],
        whatif,
    }
}

/// Runs the pinned matrix with critical-path profiling (and miss
/// classification, so the path's cause/resource detail is populated) and
/// returns one entry per (app, procs) point.
///
/// # Errors
///
/// Propagates any simulation or verification failure.
pub fn measure() -> Result<Vec<CritEntry>, StudyError> {
    let scale = Scale::Quick;
    let mut runner = Runner::new(scale.cache_bytes());
    runner.set_attrib(true);
    runner.set_critpath(true);
    let mut out = Vec::new();
    for &id in MATRIX_APPS {
        let w = basic(id, scale);
        for &np in MATRIX_PROCS {
            let rec = runner.run(w.as_ref(), np)?;
            let rep = rec
                .stats
                .critpath
                .as_ref()
                .expect("critpath enabled on every matrix run");
            out.push(entry_from(rec.app, rec.problem, rec.nprocs, rep));
        }
    }
    Ok(out)
}

/// [`measure`] fanned out over the sweep engine's work-stealing pool:
/// the same pinned matrix, the same entries in the same order, each
/// point simulated on its own host thread — and still bit-identical to
/// [`measure`], which `measure_is_jobs_invariant` pins.
///
/// # Errors
///
/// Propagates the first simulation or verification failure in matrix
/// order.
pub fn measure_with_jobs(jobs: usize) -> Result<Vec<CritEntry>, StudyError> {
    let scale = Scale::Quick;
    let points: Vec<(&str, usize)> = MATRIX_APPS
        .iter()
        .flat_map(|&id| MATRIX_PROCS.iter().map(move |&np| (id, np)))
        .collect();
    let (results, _) = ccnuma_sweep::pool::run(&points, jobs, |&(id, np)| {
        let w = basic(id, scale);
        let mut cfg = ccnuma_sim::config::MachineConfig::origin2000_scaled(np, scale.cache_bytes());
        cfg.classify_misses = true;
        cfg.critpath = true;
        let (_, stats) = scaling_study::runner::execute_workload(w.as_ref(), cfg)?;
        let rep = stats
            .critpath
            .as_ref()
            .expect("critpath enabled on every matrix run");
        Ok(entry_from(w.name(), w.problem(), np, rep))
    });
    results.into_iter().collect()
}

/// Renders entries as the `bench critpath` summary table: on-path
/// shares and the headline what-if speedups per matrix point.
pub fn table(entries: &[CritEntry]) -> Table {
    let mut t = Table::new(
        "critical-path matrix",
        &["run", "busy", "memory", "sync", "sync=0", "remote*0.5"],
    );
    for e in entries {
        let (busy, mem, sync) = e.share_pct();
        t.row(vec![
            e.key(),
            format!("{busy:.1}%"),
            format!("{mem:.1}%"),
            format!("{sync:.1}%"),
            format!("{:.2}x", e.speedup(1)),
            format!("{:.2}x", e.speedup(4)),
        ]);
    }
    t
}

/// Serializes entries as the `BENCH_critpath.json` document.
pub fn to_json(entries: &[CritEntry]) -> String {
    let esc = |s: &str| s.replace('\\', "\\\\").replace('"', "\\\"");
    let nums = |ns: &[u64]| {
        ns.iter()
            .map(|n| n.to_string())
            .collect::<Vec<_>>()
            .join(", ")
    };
    let mut out = String::from("{\n  \"version\": 1,\n  \"entries\": [");
    for (i, e) in entries.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"app\": \"{}\", \"problem\": \"{}\", \"nprocs\": {}, \
             \"wall_ns\": {}, \"path\": [{}], \"whatif\": [{}]}}",
            esc(&e.app),
            esc(&e.problem),
            e.nprocs,
            e.wall_ns,
            nums(&e.path),
            nums(&e.whatif)
        ));
    }
    out.push_str("\n  ]\n}\n");
    out
}

/// Parses a `BENCH_critpath.json` document produced by [`to_json`]. A
/// minimal parser for exactly that shape, like the regress harness's.
///
/// # Errors
///
/// Returns a description of the first malformed field found.
pub fn parse(doc: &str) -> Result<Vec<CritEntry>, String> {
    fn str_field(obj: &str, key: &str) -> Result<String, String> {
        let pat = format!("\"{key}\": \"");
        let start = obj.find(&pat).ok_or_else(|| format!("missing {key}"))? + pat.len();
        let mut out = String::new();
        let mut chars = obj[start..].chars();
        loop {
            match chars.next() {
                Some('"') => return Ok(out),
                Some('\\') => match chars.next() {
                    Some(c @ ('"' | '\\')) => out.push(c),
                    _ => return Err(format!("bad escape in {key}")),
                },
                Some(c) => out.push(c),
                None => return Err(format!("unterminated {key}")),
            }
        }
    }
    fn num_field(obj: &str, key: &str) -> Result<u64, String> {
        let pat = format!("\"{key}\": ");
        let start = obj.find(&pat).ok_or_else(|| format!("missing {key}"))? + pat.len();
        let digits: String = obj[start..]
            .chars()
            .take_while(char::is_ascii_digit)
            .collect();
        digits.parse().map_err(|_| format!("bad number for {key}"))
    }
    fn num_array<const N: usize>(obj: &str, key: &str) -> Result<[u64; N], String> {
        let pat = format!("\"{key}\": [");
        let start = obj.find(&pat).ok_or_else(|| format!("missing {key}"))? + pat.len();
        let end = obj[start..]
            .find(']')
            .ok_or_else(|| format!("unterminated {key}"))?;
        let parts: Vec<&str> = obj[start..start + end].split(',').collect();
        if parts.len() != N {
            return Err(format!("expected {N} {key} values, got {}", parts.len()));
        }
        let mut out = [0u64; N];
        for (slot, p) in out.iter_mut().zip(parts) {
            *slot = p
                .trim()
                .parse()
                .map_err(|_| format!("bad {key} value {p:?}"))?;
        }
        Ok(out)
    }
    let entries_at = doc
        .find("\"entries\"")
        .ok_or_else(|| "missing entries array".to_string())?;
    let mut out = Vec::new();
    let mut rest = &doc[entries_at..];
    while let Some(open) = rest.find('{') {
        let close = rest[open..]
            .find('}')
            .ok_or_else(|| "unterminated entry object".to_string())?;
        let obj = &rest[open..open + close + 1];
        out.push(CritEntry {
            app: str_field(obj, "app")?,
            problem: str_field(obj, "problem")?,
            nprocs: num_field(obj, "nprocs")? as usize,
            wall_ns: num_field(obj, "wall_ns")?,
            path: num_array::<7>(obj, "path")?,
            whatif: num_array::<6>(obj, "whatif")?,
        });
        rest = &rest[open + close + 1..];
    }
    Ok(out)
}

/// Compares `current` against `baseline` with relative `tolerance` and
/// returns one message per drifted metric, missing point, or new point.
/// An empty result means the gate passes.
pub fn compare(baseline: &[CritEntry], current: &[CritEntry], tolerance: f64) -> Vec<String> {
    let drifts = |key: &str, name: &str, base: u64, cur: u64, out: &mut Vec<String>| {
        let denom = base.max(1) as f64;
        let rel = (cur as f64 - base as f64) / denom;
        if rel.abs() > tolerance {
            out.push(format!(
                "{key}: {name} drifted {:+.2}% (baseline {base}, current {cur})",
                100.0 * rel
            ));
        }
    };
    let mut out = Vec::new();
    for b in baseline {
        let Some(c) = current.iter().find(|c| c.key() == b.key()) else {
            out.push(format!("{}: missing from current run", b.key()));
            continue;
        };
        let key = b.key();
        drifts(&key, "wall_ns", b.wall_ns, c.wall_ns, &mut out);
        for (i, (bp, cp)) in b.path.iter().zip(&c.path).enumerate() {
            let name = format!("path[{}]", PATH_NAMES[i]);
            drifts(&key, &name, *bp, *cp, &mut out);
        }
        for (i, (bw, cw)) in b.whatif.iter().zip(&c.whatif).enumerate() {
            let name = format!("whatif[{}]", SCENARIO_NAMES[i]);
            drifts(&key, &name, *bw, *cw, &mut out);
        }
    }
    for c in current {
        if !baseline.iter().any(|b| b.key() == c.key()) {
            out.push(format!(
                "{}: not in baseline (regenerate with `bench critpath`)",
                c.key()
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(app: &str, np: usize, wall: u64) -> CritEntry {
        CritEntry {
            app: app.into(),
            problem: "p".into(),
            nprocs: np,
            wall_ns: wall,
            path: [wall / 2, 0, wall / 8, wall / 8, 0, wall / 4, 0],
            whatif: [wall, wall * 3 / 4, wall, wall, wall * 7 / 8, wall / 2],
        }
    }

    #[test]
    fn json_roundtrips() {
        let entries = vec![entry("fft", 4, 1_000), entry("ocean", 8, 2_000)];
        let doc = to_json(&entries);
        let back = parse(&doc).unwrap();
        assert_eq!(back, entries);
    }

    #[test]
    fn parse_unescapes_strings() {
        let mut e = entry("fft", 4, 1_000);
        e.problem = "a \"quoted\" case".into();
        let back = parse(&to_json(&[e.clone()])).unwrap();
        assert_eq!(back[0].problem, e.problem);
    }

    #[test]
    fn compare_passes_identical_and_flags_drift() {
        let base = vec![entry("fft", 4, 1_000), entry("ocean", 8, 2_000)];
        assert!(compare(&base, &base, 0.02).is_empty());
        let mut cur = vec![entry("fft", 4, 1_000), entry("radix", 4, 500)];
        cur[0].path[5] = 300; // barrier-wait share grew +20%
        cur[0].whatif[1] = 600;
        let msgs = compare(&base, &cur, 0.02);
        assert!(
            msgs.iter().any(|m| m.contains("path[barrier_wait]")),
            "{msgs:?}"
        );
        assert!(
            msgs.iter().any(|m| m.contains("whatif[sync=0]")),
            "{msgs:?}"
        );
        assert!(
            msgs.iter().any(|m| m.contains("ocean/p/8p: missing")),
            "{msgs:?}"
        );
        assert!(
            msgs.iter()
                .any(|m| m.contains("radix/p/4p: not in baseline")),
            "{msgs:?}"
        );
    }

    #[test]
    fn shares_and_speedups_derive_from_the_entry() {
        let e = entry("fft", 4, 1_000);
        let (busy, mem, sync) = e.share_pct();
        assert!((busy - 50.0).abs() < 1e-9);
        assert!((mem - 25.0).abs() < 1e-9);
        assert!((sync - 25.0).abs() < 1e-9);
        assert!((e.speedup(5) - 2.0).abs() < 1e-9, "busy-only bound");
        let t = table(&[e]);
        assert_eq!(t.len(), 1);
        assert!(t.to_csv().contains("50.0%"));
    }

    #[test]
    fn measure_covers_matrix_and_reconciles() {
        let entries = measure().unwrap();
        assert_eq!(entries.len(), MATRIX_APPS.len() * MATRIX_PROCS.len());
        for e in &entries {
            assert_eq!(
                e.path.iter().sum::<u64>(),
                e.wall_ns,
                "{}: path partitions the wall",
                e.key()
            );
            assert_eq!(e.whatif[0], e.wall_ns, "{}: measured replay", e.key());
            let busy_bound = e.whatif[5];
            for (i, &w) in e.whatif.iter().enumerate() {
                assert!(
                    w <= e.wall_ns,
                    "{}: {} ≤ measured",
                    e.key(),
                    SCENARIO_NAMES[i]
                );
                assert!(
                    w >= busy_bound,
                    "{}: {} ≥ busy bound",
                    e.key(),
                    SCENARIO_NAMES[i]
                );
            }
        }
        // Determinism: measuring again reproduces the snapshot bit-exactly.
        let again = measure().unwrap();
        assert_eq!(entries, again);
    }

    #[test]
    fn measure_is_jobs_invariant() {
        // The parallel path must reproduce the serial snapshot bit for
        // bit, in the same pinned order — otherwise routing `bench
        // critpath` through the pool would churn BENCH_critpath.json.
        let serial = measure().unwrap();
        let parallel = measure_with_jobs(4).unwrap();
        assert_eq!(serial, parallel);
    }
}
