//! The attribution regression harness behind `bench regress`: runs a pinned
//! workload matrix with miss classification on, snapshots the attribution
//! metrics to `BENCH_attrib.json`, and gates changes against the committed
//! baseline with a relative tolerance.
//!
//! The simulator is bit-deterministic, so the baseline is expected to match
//! exactly on an unchanged tree; the tolerance (default 2%) leaves room for
//! deliberate model tuning without churning the baseline on every commit.

use ccnuma_sim::time::Ns;
use scaling_study::experiments::{basic, Scale};
use scaling_study::runner::{Runner, StudyError};

/// The pinned workload matrix: quick-scale basic problems on small
/// machines, chosen to exercise every miss cause (capacity/conflict from
/// radix and fft, coherence from ocean and water-nsq) in a few seconds.
pub const MATRIX_APPS: &[&str] = &["fft", "ocean", "radix", "water-nsq"];

/// Processor counts of the pinned matrix.
pub const MATRIX_PROCS: &[usize] = &[4, 8];

/// Default relative tolerance of the drift gate.
pub const DEFAULT_TOLERANCE: f64 = 0.02;

/// One measured point of the regression matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct RegressEntry {
    /// Workload name (e.g. `"ocean"`).
    pub app: String,
    /// Problem description (e.g. `"34x34 grid"`).
    pub problem: String,
    /// Processors used.
    pub nprocs: usize,
    /// Parallel wall-clock (virtual ns).
    pub wall_ns: Ns,
    /// Total memory stall across processors (virtual ns).
    pub mem_stall_ns: Ns,
    /// Queueing share of the memory stall (virtual ns).
    pub queue_ns: Ns,
    /// Total data misses.
    pub misses: u64,
    /// Miss counts per cause, indexed by
    /// [`MissCause::index`](ccnuma_sim::attrib::MissCause::index):
    /// cold, capacity, conflict, true sharing, false sharing.
    pub causes: [u64; 5],
}

impl RegressEntry {
    /// The `"app/problem/NNp"` key identifying this point.
    pub fn key(&self) -> String {
        format!("{}/{}/{}p", self.app, self.problem, self.nprocs)
    }
}

/// Runs the pinned matrix and returns one entry per (app, procs) point.
///
/// # Errors
///
/// Propagates any simulation or verification failure.
pub fn measure() -> Result<Vec<RegressEntry>, StudyError> {
    let scale = Scale::Quick;
    let mut runner = Runner::new(scale.cache_bytes());
    runner.set_attrib(true);
    let mut out = Vec::new();
    for &id in MATRIX_APPS {
        let w = basic(id, scale);
        for &np in MATRIX_PROCS {
            let rec = runner.run(w.as_ref(), np)?;
            let causes = rec.stats.cause_counts();
            out.push(RegressEntry {
                app: rec.app,
                problem: rec.problem,
                nprocs: rec.nprocs,
                wall_ns: rec.wall_ns,
                mem_stall_ns: rec.stats.total(|p| p.mem_ns),
                queue_ns: rec.stats.mem_breakdown().queue_total(),
                misses: rec.stats.total(|p| p.misses()),
                causes,
            });
        }
    }
    Ok(out)
}

/// [`measure`] fanned out over the sweep engine's work-stealing pool:
/// the same pinned matrix, the same entries in the same order, but each
/// point simulated on its own host thread. The entries skip the
/// sequential baselines [`Runner`] would compute (no field of
/// [`RegressEntry`] needs one), so this is strictly less work per point
/// as well as parallel across points — and still bit-identical to
/// [`measure`], which `measure_is_jobs_invariant` pins.
///
/// # Errors
///
/// Propagates the first simulation or verification failure in matrix
/// order.
pub fn measure_with_jobs(jobs: usize) -> Result<Vec<RegressEntry>, StudyError> {
    let scale = Scale::Quick;
    let points: Vec<(&str, usize)> = MATRIX_APPS
        .iter()
        .flat_map(|&id| MATRIX_PROCS.iter().map(move |&np| (id, np)))
        .collect();
    let (results, _) = ccnuma_sweep::pool::run(&points, jobs, |&(id, np)| {
        let w = basic(id, scale);
        let mut cfg = ccnuma_sim::config::MachineConfig::origin2000_scaled(np, scale.cache_bytes());
        cfg.classify_misses = true;
        let (wall_ns, stats) = scaling_study::runner::execute_workload(w.as_ref(), cfg)?;
        Ok(RegressEntry {
            app: w.name(),
            problem: w.problem(),
            nprocs: np,
            wall_ns,
            mem_stall_ns: stats.total(|p| p.mem_ns),
            queue_ns: stats.mem_breakdown().queue_total(),
            misses: stats.total(|p| p.misses()),
            causes: stats.cause_counts(),
        })
    });
    results.into_iter().collect()
}

/// Serializes entries as the `BENCH_attrib.json` document.
pub fn to_json(entries: &[RegressEntry]) -> String {
    let esc = |s: &str| s.replace('\\', "\\\\").replace('"', "\\\"");
    let mut out = String::from("{\n  \"version\": 1,\n  \"entries\": [");
    for (i, e) in entries.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"app\": \"{}\", \"problem\": \"{}\", \"nprocs\": {}, \
             \"wall_ns\": {}, \"mem_stall_ns\": {}, \"queue_ns\": {}, \
             \"misses\": {}, \"causes\": [{}]}}",
            esc(&e.app),
            esc(&e.problem),
            e.nprocs,
            e.wall_ns,
            e.mem_stall_ns,
            e.queue_ns,
            e.misses,
            e.causes
                .iter()
                .map(|n| n.to_string())
                .collect::<Vec<_>>()
                .join(", ")
        ));
    }
    out.push_str("\n  ]\n}\n");
    out
}

/// Parses a `BENCH_attrib.json` document produced by [`to_json`]. This is a
/// minimal parser for exactly that shape (one object per entry, string
/// values without embedded braces), not a general JSON reader.
///
/// # Errors
///
/// Returns a description of the first malformed field found.
pub fn parse(doc: &str) -> Result<Vec<RegressEntry>, String> {
    fn str_field(obj: &str, key: &str) -> Result<String, String> {
        let pat = format!("\"{key}\": \"");
        let start = obj.find(&pat).ok_or_else(|| format!("missing {key}"))? + pat.len();
        let mut out = String::new();
        let mut chars = obj[start..].chars();
        loop {
            match chars.next() {
                Some('"') => return Ok(out),
                Some('\\') => match chars.next() {
                    Some(c @ ('"' | '\\')) => out.push(c),
                    _ => return Err(format!("bad escape in {key}")),
                },
                Some(c) => out.push(c),
                None => return Err(format!("unterminated {key}")),
            }
        }
    }
    fn num_field(obj: &str, key: &str) -> Result<u64, String> {
        let pat = format!("\"{key}\": ");
        let start = obj.find(&pat).ok_or_else(|| format!("missing {key}"))? + pat.len();
        let digits: String = obj[start..]
            .chars()
            .take_while(char::is_ascii_digit)
            .collect();
        digits.parse().map_err(|_| format!("bad number for {key}"))
    }
    let entries_at = doc
        .find("\"entries\"")
        .ok_or_else(|| "missing entries array".to_string())?;
    let mut out = Vec::new();
    let mut rest = &doc[entries_at..];
    while let Some(open) = rest.find('{') {
        let close = rest[open..]
            .find('}')
            .ok_or_else(|| "unterminated entry object".to_string())?;
        let obj = &rest[open..open + close + 1];
        let causes_pat = "\"causes\": [";
        let cstart = obj
            .find(causes_pat)
            .ok_or_else(|| "missing causes".to_string())?
            + causes_pat.len();
        let cend = obj[cstart..]
            .find(']')
            .ok_or_else(|| "unterminated causes".to_string())?;
        let mut causes = [0u64; 5];
        let parts: Vec<&str> = obj[cstart..cstart + cend].split(',').collect();
        if parts.len() != 5 {
            return Err(format!("expected 5 causes, got {}", parts.len()));
        }
        for (slot, p) in causes.iter_mut().zip(parts) {
            *slot = p
                .trim()
                .parse()
                .map_err(|_| format!("bad cause count {p:?}"))?;
        }
        out.push(RegressEntry {
            app: str_field(obj, "app")?,
            problem: str_field(obj, "problem")?,
            nprocs: num_field(obj, "nprocs")? as usize,
            wall_ns: num_field(obj, "wall_ns")?,
            mem_stall_ns: num_field(obj, "mem_stall_ns")?,
            queue_ns: num_field(obj, "queue_ns")?,
            misses: num_field(obj, "misses")?,
            causes,
        });
        rest = &rest[open + close + 1..];
    }
    Ok(out)
}

/// Compares `current` against `baseline` with relative `tolerance` and
/// returns one message per drifted metric, missing point, or new point.
/// An empty result means the gate passes.
pub fn compare(baseline: &[RegressEntry], current: &[RegressEntry], tolerance: f64) -> Vec<String> {
    let drifts = |key: &str, name: &str, base: u64, cur: u64, out: &mut Vec<String>| {
        let denom = base.max(1) as f64;
        let rel = (cur as f64 - base as f64) / denom;
        if rel.abs() > tolerance {
            out.push(format!(
                "{key}: {name} drifted {:+.2}% (baseline {base}, current {cur})",
                100.0 * rel
            ));
        }
    };
    let mut out = Vec::new();
    for b in baseline {
        let Some(c) = current.iter().find(|c| c.key() == b.key()) else {
            out.push(format!("{}: missing from current run", b.key()));
            continue;
        };
        let key = b.key();
        drifts(&key, "wall_ns", b.wall_ns, c.wall_ns, &mut out);
        drifts(
            &key,
            "mem_stall_ns",
            b.mem_stall_ns,
            c.mem_stall_ns,
            &mut out,
        );
        drifts(&key, "queue_ns", b.queue_ns, c.queue_ns, &mut out);
        drifts(&key, "misses", b.misses, c.misses, &mut out);
        for (i, (bc, cc)) in b.causes.iter().zip(&c.causes).enumerate() {
            let name = format!("causes[{}]", ccnuma_sim::attrib::cause_slot_name(i));
            drifts(&key, &name, *bc, *cc, &mut out);
        }
    }
    for c in current {
        if !baseline.iter().any(|b| b.key() == c.key()) {
            out.push(format!(
                "{}: not in baseline (regenerate with `bench regress`)",
                c.key()
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(app: &str, np: usize, wall: u64) -> RegressEntry {
        RegressEntry {
            app: app.into(),
            problem: "p".into(),
            nprocs: np,
            wall_ns: wall,
            mem_stall_ns: 500,
            queue_ns: 100,
            misses: 40,
            causes: [10, 10, 5, 10, 5],
        }
    }

    #[test]
    fn json_roundtrips() {
        let entries = vec![entry("fft", 4, 1_000), entry("ocean", 8, 2_000)];
        let doc = to_json(&entries);
        let back = parse(&doc).unwrap();
        assert_eq!(back, entries);
    }

    #[test]
    fn parse_unescapes_strings() {
        let mut e = entry("fft", 4, 1_000);
        e.problem = "a \"quoted\" case".into();
        let back = parse(&to_json(&[e.clone()])).unwrap();
        assert_eq!(back[0].problem, e.problem);
    }

    #[test]
    fn compare_passes_identical_and_within_tolerance() {
        let base = vec![entry("fft", 4, 1_000)];
        assert!(compare(&base, &base, 0.02).is_empty());
        let mut close = base.clone();
        close[0].wall_ns = 1_015; // +1.5% < 2%
        assert!(compare(&base, &close, 0.02).is_empty());
    }

    #[test]
    fn compare_flags_drift_and_shape_changes() {
        let base = vec![entry("fft", 4, 1_000), entry("ocean", 8, 2_000)];
        let mut cur = vec![entry("fft", 4, 1_100), entry("radix", 4, 500)];
        cur[0].causes[4] = 20; // false-share count blew up
        let msgs = compare(&base, &cur, 0.02);
        assert!(
            msgs.iter().any(|m| m.contains("wall_ns drifted +10.00%")),
            "{msgs:?}"
        );
        assert!(
            msgs.iter().any(|m| m.contains("causes[coh-false]")),
            "{msgs:?}"
        );
        assert!(
            msgs.iter().any(|m| m.contains("ocean/p/8p: missing")),
            "{msgs:?}"
        );
        assert!(
            msgs.iter()
                .any(|m| m.contains("radix/p/4p: not in baseline")),
            "{msgs:?}"
        );
    }

    #[test]
    fn measure_covers_matrix_and_reconciles() {
        let entries = measure().unwrap();
        assert_eq!(entries.len(), MATRIX_APPS.len() * MATRIX_PROCS.len());
        for e in &entries {
            assert_eq!(e.causes.iter().sum::<u64>(), e.misses, "{}", e.key());
            assert!(e.queue_ns <= e.mem_stall_ns, "{}", e.key());
        }
        // Determinism: measuring again reproduces the snapshot bit-exactly.
        let again = measure().unwrap();
        assert_eq!(entries, again);
    }

    #[test]
    fn measure_is_jobs_invariant() {
        // The parallel path must reproduce the serial snapshot bit for
        // bit, in the same pinned order — otherwise routing `bench
        // regress` through the pool would churn BENCH_attrib.json.
        let serial = measure().unwrap();
        let parallel = measure_with_jobs(4).unwrap();
        assert_eq!(serial, parallel);
    }
}
