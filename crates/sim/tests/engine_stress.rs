//! Stress tests of the execution engine: pseudo-randomly generated
//! well-formed programs must terminate, account time consistently, and be
//! deterministic. The programs are drawn from a seeded xorshift stream, so
//! the suite needs no external property-testing dependency and every
//! failure reproduces from its case index.

use ccnuma_sim::config::MachineConfig;
use ccnuma_sim::machine::{Machine, Placement};

/// One step of a generated program.
#[derive(Debug, Clone, Copy)]
enum Step {
    Compute(u16),
    ReadBlock(u8),
    WriteBlock(u8),
    Barrier,
    Lock(u8),
    FetchAdd,
}

struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1)
    }
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

fn gen_step(rng: &mut Rng) -> Step {
    match rng.below(6) {
        0 => Step::Compute(1 + rng.below(1999) as u16),
        1 => Step::ReadBlock(rng.below(256) as u8),
        2 => Step::WriteBlock(rng.below(256) as u8),
        3 => Step::Barrier,
        4 => Step::Lock(rng.below(4) as u8),
        _ => Step::FetchAdd,
    }
}

fn gen_program(rng: &mut Rng, max_len: u64) -> Vec<Step> {
    let len = 1 + rng.below(max_len) as usize;
    (0..len).map(|_| gen_step(rng)).collect()
}

fn run_program(steps: &[Step], nprocs: usize) -> (u64, u64, i64) {
    let mut m = Machine::new(MachineConfig::origin2000_scaled(nprocs, 16 << 10)).unwrap();
    let data = m.shared_vec::<u64>(64 * 64, Placement::Interleaved);
    let bar = m.barrier();
    let locks = m.lock_array(4);
    let cell = m.fetch_cell(0);
    let steps: Vec<Step> = steps.to_vec();
    let d = data.clone();
    let stats = m
        .run(move |ctx| {
            for &s in &steps {
                match s {
                    Step::Compute(ns) => ctx.compute_ns(u64::from(ns)),
                    Step::ReadBlock(b) => {
                        let base = (b as usize % 64) * 64;
                        let mut acc = 0;
                        for i in base..base + 64 {
                            acc += d.read(ctx, i);
                        }
                        ctx.compute_ops(acc % 2);
                    }
                    Step::WriteBlock(b) => {
                        // Write my processor's private slice of the block so
                        // the program is data-race-free by construction.
                        let base = (b as usize % 64) * 64;
                        let lo = base + ctx.id() * (64 / ctx.nprocs());
                        for i in lo..lo + 64 / ctx.nprocs() {
                            d.write(ctx, i, i as u64);
                        }
                    }
                    Step::Barrier => ctx.barrier(bar),
                    Step::Lock(l) => {
                        ctx.lock(locks[l as usize % 4]);
                        ctx.compute_ns(25);
                        ctx.unlock(locks[l as usize % 4]);
                    }
                    Step::FetchAdd => {
                        ctx.fetch_add(cell, 1);
                    }
                }
            }
        })
        .unwrap();
    // Accounting identity: every processor's accounted time equals its
    // finish time (nothing is lost or double counted).
    for (i, p) in stats.procs.iter().enumerate() {
        assert_eq!(p.total_ns(), p.finish_ns, "accounting mismatch on proc {i}");
    }
    // Per-phase times partition each processor's accounted time exactly.
    for (i, p) in stats.procs.iter().enumerate() {
        let phased: u64 = stats.phases.iter().map(|ph| ph.procs[i].total_ns()).sum();
        assert_eq!(phased, p.total_ns(), "phase partition mismatch on proc {i}");
    }
    let cell_total = stats.total(|p| p.atomics) as i64;
    (stats.wall_ns, stats.total(|p| p.accesses()), cell_total)
}

#[test]
fn generated_programs_terminate_and_account_consistently() {
    let mut rng = Rng::new(0xC0FFEE);
    for case in 0..24 {
        let steps = gen_program(&mut rng, 24);
        let nprocs = 1 + rng.below(8) as usize;
        let (wall, accesses, _) = run_program(&steps, nprocs);
        assert!(
            wall > 0 || accesses == 0,
            "case {case}: {steps:?} on {nprocs}p"
        );
    }
}

#[test]
fn generated_programs_are_deterministic() {
    let mut rng = Rng::new(0xDEC0DE);
    for case in 0..12 {
        let steps = gen_program(&mut rng, 14);
        let nprocs = 2 + rng.below(4) as usize;
        let a = run_program(&steps, nprocs);
        let b = run_program(&steps, nprocs);
        assert_eq!(a, b, "case {case}: {steps:?} on {nprocs}p");
    }
}
