//! Property-based stress tests of the execution engine: randomly generated
//! well-formed programs must terminate, account time consistently, and be
//! deterministic.

use proptest::prelude::*;

use ccnuma_sim::config::MachineConfig;
use ccnuma_sim::machine::{Machine, Placement};

/// One step of a generated program.
#[derive(Debug, Clone, Copy)]
enum Step {
    Compute(u16),
    ReadBlock(u8),
    WriteBlock(u8),
    Barrier,
    Lock(u8),
    FetchAdd,
}

fn step_strategy() -> impl Strategy<Value = Step> {
    prop_oneof![
        (1u16..2000).prop_map(Step::Compute),
        any::<u8>().prop_map(Step::ReadBlock),
        any::<u8>().prop_map(Step::WriteBlock),
        Just(Step::Barrier),
        (0u8..4).prop_map(Step::Lock),
        Just(Step::FetchAdd),
    ]
}

fn run_program(steps: &[Step], nprocs: usize) -> (u64, u64, i64) {
    let mut m = Machine::new(MachineConfig::origin2000_scaled(nprocs, 16 << 10)).unwrap();
    let data = m.shared_vec::<u64>(64 * 64, Placement::Interleaved);
    let bar = m.barrier();
    let locks = m.lock_array(4);
    let cell = m.fetch_cell(0);
    let steps: Vec<Step> = steps.to_vec();
    let d = data.clone();
    let stats = m
        .run(move |ctx| {
            for &s in &steps {
                match s {
                    Step::Compute(ns) => ctx.compute_ns(u64::from(ns)),
                    Step::ReadBlock(b) => {
                        let base = (b as usize % 64) * 64;
                        let mut acc = 0;
                        for i in base..base + 64 {
                            acc += d.read(ctx, i);
                        }
                        ctx.compute_ops(acc % 2);
                    }
                    Step::WriteBlock(b) => {
                        // Write my processor's private slice of the block so
                        // the program is data-race-free by construction.
                        let base = (b as usize % 64) * 64;
                        let lo = base + ctx.id() * (64 / ctx.nprocs());
                        for i in lo..lo + 64 / ctx.nprocs() {
                            d.write(ctx, i, i as u64);
                        }
                    }
                    Step::Barrier => ctx.barrier(bar),
                    Step::Lock(l) => {
                        ctx.lock(locks[l as usize % 4]);
                        ctx.compute_ns(25);
                        ctx.unlock(locks[l as usize % 4]);
                    }
                    Step::FetchAdd => {
                        ctx.fetch_add(cell, 1);
                    }
                }
            }
        })
        .unwrap();
    // Accounting identity: every processor's accounted time equals its
    // finish time (nothing is lost or double counted).
    for (i, p) in stats.procs.iter().enumerate() {
        assert_eq!(p.total_ns(), p.finish_ns, "accounting mismatch on proc {i}");
    }
    let cell_total = {
        // fetch_add count = nprocs × (#FetchAdd steps); read back via stats.
        stats.total(|p| p.atomics) as i64
    };
    (stats.wall_ns, stats.total(|p| p.accesses()), cell_total)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn generated_programs_terminate_and_account_consistently(
        steps in prop::collection::vec(step_strategy(), 1..25),
        nprocs in 1usize..9,
    ) {
        let (wall, accesses, _) = run_program(&steps, nprocs);
        prop_assert!(wall > 0 || accesses == 0);
    }

    #[test]
    fn generated_programs_are_deterministic(
        steps in prop::collection::vec(step_strategy(), 1..15),
        nprocs in 2usize..6,
    ) {
        let a = run_program(&steps, nprocs);
        let b = run_program(&steps, nprocs);
        prop_assert_eq!(a, b);
    }
}
