//! Attribution-layer integration tests: the latency decomposition must be
//! *exact* — per-resource (service + queueing) sums to the observed stall to
//! the nanosecond — and analytically predictable under synthetic contention.
//!
//! The contention model is a fluid queue: backlog injected into a resource
//! drains linearly with time, so a request arriving `f` ns after an injection
//! of `B` ns waits exactly `B - f` ns (for `B > f`). The tests below inject a
//! known backlog into one resource, compute the request's flight time to that
//! resource from an identical uncontended run, and check the queueing charge
//! to the ns.

use ccnuma_sim::attrib::ResourceClass;
use ccnuma_sim::config::MachineConfig;
use ccnuma_sim::machine::{Machine, Placement};
use ccnuma_sim::memsys::{AccessKind, MemorySystem};

const HUB: usize = ResourceClass::Hub.index();
const MEM: usize = ResourceClass::Mem.index();
const NET: usize = ResourceClass::Net.index();

fn memsys(nprocs: usize) -> MemorySystem {
    let mut cfg = MachineConfig::origin2000_scaled(nprocs, 64 << 10);
    cfg.latency = ccnuma_sim::latency::LatencyProfile::origin2000();
    cfg.classify_misses = true;
    let perm: Vec<usize> = (0..nprocs).collect();
    MemorySystem::new(&cfg, &perm)
}

/// Flight time from request issue to the home memory-bank acquire: the
/// requester-hub and home-hub waits plus the outbound network leg.
fn flight_to_mem(o: &ccnuma_sim::memsys::Outcome) -> u64 {
    o.breakdown.queue[HUB] + o.breakdown.queue[NET] + o.breakdown.service[NET]
}

#[test]
fn hot_memory_bank_charges_exact_queueing() {
    // Uncontended reference run.
    let mut quiet = memsys(4);
    quiet.place_range(0x4000, 128, 0);
    let q = quiet.access(0, 0x4000, AccessKind::Read, 0);
    assert_eq!(q.breakdown.total(), q.latency);

    // Same machine state, but node 0's bank carries a 30 µs backlog.
    let mut hot = memsys(4);
    hot.place_range(0x4000, 128, 0);
    let backlog = 30_000;
    hot.contention.mems[0].occupy(0, backlog);
    let c = hot.access(0, 0x4000, AccessKind::Read, 0);

    // The bank is the only perturbed resource: the whole latency increase is
    // memory queueing, equal to the backlog minus the drain in flight.
    let expect = backlog - flight_to_mem(&q);
    assert_eq!(c.breakdown.queue[MEM] - q.breakdown.queue[MEM], expect);
    assert_eq!(c.latency - q.latency, expect);
    assert_eq!(c.breakdown.total(), c.latency);
}

#[test]
fn hot_home_hub_charges_exact_queueing() {
    // 16 procs = 8 nodes, so node 7 is remote from proc 0 and the request
    // crosses the network before reaching the home Hub.
    let mut quiet = memsys(16);
    quiet.place_range(0x8000, 128, 7);
    let q = quiet.access(0, 0x8000, AccessKind::Read, 0);
    assert!(!q.home_local);
    assert!(q.hops >= 1);
    assert_eq!(q.breakdown.total(), q.latency);

    let mut hot = memsys(16);
    hot.place_range(0x8000, 128, 7);
    let backlog = 40_000;
    hot.contention.hubs[7].occupy(0, backlog);
    let c = hot.access(0, 0x8000, AccessKind::Read, 0);

    // Flight to the home Hub: requester-hub wait (zero here, fresh hub) plus
    // the outbound leg. The home-hub wait then delays the (uncontended)
    // memory acquire without adding any further wait.
    let flight = q.breakdown.queue[NET] + q.breakdown.service[NET];
    let expect = backlog - flight;
    assert_eq!(c.breakdown.queue[HUB] - q.breakdown.queue[HUB], expect);
    assert_eq!(c.latency - q.latency, expect);
    assert_eq!(c.breakdown.total(), c.latency);
}

#[test]
fn machine_run_reconciles_breakdown_causes_and_stall() {
    let mut cfg = MachineConfig::origin2000_scaled(8, 16 << 10);
    cfg.classify_misses = true;
    let mut m = Machine::new(cfg).unwrap();
    let shared = m.shared_vec::<u64>(64, Placement::Node(0));
    let private = m.shared_vec::<u64>(8 * 512, Placement::Blocked);
    let b = m.barrier();
    let (s, pv) = (shared.clone(), private.clone());
    let stats = m
        .run(move |ctx| {
            let p = ctx.id();
            // Private sweep: cold then capacity/conflict misses.
            for r in 0..3 {
                for i in 0..512 {
                    pv.update(ctx, p * 512 + i, |v| v + r);
                }
            }
            ctx.barrier(b);
            // Shared ping-pong: coherence misses. The barrier per round keeps
            // the processors aligned in virtual time so each round observes
            // the previous round's invalidations.
            for r in 0..16 {
                s.update(ctx, (p + r) % 64, |v| v + 1);
                s.update(ctx, p, |v| v + 1);
                ctx.barrier(b);
            }
        })
        .unwrap();

    let mut any_coherence = false;
    for (p, ps) in stats.procs.iter().enumerate() {
        // Exact decomposition: per-resource service + queueing covers the
        // processor's memory stall to the nanosecond.
        assert_eq!(
            ps.mem_breakdown.total(),
            ps.mem_ns,
            "proc {p}: breakdown does not cover memory stall"
        );
        // Cause partition: the five causes cover every miss.
        let causes = ps.cause_counts();
        assert_eq!(
            causes.iter().sum::<u64>(),
            ps.misses(),
            "proc {p}: cause counts do not sum to misses"
        );
        // Per-cause stall covers the memory stall (hits land in the
        // "other" slot of the per-cause array).
        assert_eq!(
            ps.mem_cause_ns.iter().sum::<u64>(),
            ps.mem_ns,
            "proc {p}: per-cause stall does not sum to memory stall"
        );
        any_coherence |= ps.misses_coherence > 0;
    }
    assert!(any_coherence, "ping-pong produced no coherence misses");

    // Aggregates agree with the per-proc sums.
    let agg = stats.mem_breakdown();
    assert_eq!(
        agg.total(),
        stats.total(|p| p.mem_ns),
        "aggregate breakdown total"
    );
    let causes = stats.cause_counts();
    assert_eq!(causes.iter().sum::<u64>(), stats.total(|p| p.misses()));
    assert!(stats.avg_miss_hops() >= 0.0);
}

#[test]
fn classification_off_leaves_outcomes_untagged() {
    let mut cfg = MachineConfig::origin2000_scaled(4, 16 << 10);
    assert!(!cfg.classify_misses, "classification must be opt-in");
    cfg.classify_misses = false;
    let mut m = Machine::new(cfg).unwrap();
    let v = m.shared_vec::<u64>(32, Placement::Node(0));
    let vc = v.clone();
    let stats = m
        .run(move |ctx| {
            for i in 0..32 {
                vc.update(ctx, i, |x| x + 1);
            }
        })
        .unwrap();
    // Breakdown still reconciles (it is always maintained)…
    for ps in &stats.procs {
        assert_eq!(ps.mem_breakdown.total(), ps.mem_ns);
        // …but no refined-cause counters move when classification is off.
        assert_eq!(ps.misses_conflict, 0);
        assert_eq!(ps.misses_false_share, 0);
    }
}
