use ccnuma_sim::prelude::*;

#[test]
fn smoke_single_proc() {
    let mut m = Machine::new(MachineConfig::origin2000_scaled(1, 64 << 10)).unwrap();
    let x = m.shared_vec::<u64>(16, Placement::Policy);
    let x2 = x.clone();
    let stats = m
        .run(move |ctx| {
            for i in 0..16 {
                x2.write(ctx, i, i as u64);
            }
            ctx.compute_flops(10);
        })
        .unwrap();
    assert_eq!(x.get(15), 15);
    assert!(stats.wall_ns > 0);
}

#[test]
fn smoke_multi_proc_barrier() {
    let mut m = Machine::new(MachineConfig::origin2000_scaled(4, 64 << 10)).unwrap();
    let x = m.shared_vec::<u64>(64, Placement::Blocked);
    let b = m.barrier();
    let x2 = x.clone();
    let stats = m
        .run(move |ctx| {
            let n = 64 / ctx.nprocs();
            for i in ctx.id() * n..(ctx.id() + 1) * n {
                x2.write(ctx, i, i as u64);
            }
            ctx.barrier(b);
            let peer = (ctx.id() + 1) % ctx.nprocs();
            let mut s = 0u64;
            for i in peer * n..(peer + 1) * n {
                s += x2.read(ctx, i);
            }
            ctx.compute_flops(s % 2);
        })
        .unwrap();
    assert_eq!(x.get(63), 63);
    assert_eq!(stats.total(|p| p.barriers), 4);
}
