//! Behavioural integration tests for the simulation engine: correctness of
//! synchronization, determinism, failure handling, and first-order NUMA
//! performance effects.

use ccnuma_sim::config::{LockImpl, MachineConfig, PagePlacement};
use ccnuma_sim::error::SimError;
use ccnuma_sim::machine::{Machine, Placement};
use ccnuma_sim::mapping::ProcessMapping;

fn cfg(nprocs: usize) -> MachineConfig {
    MachineConfig::origin2000_scaled(nprocs, 64 << 10)
}

#[test]
fn lock_serializes_critical_sections() {
    let mut m = Machine::new(cfg(8)).unwrap();
    let counter = m.shared_vec::<u64>(1, Placement::Node(0));
    let l = m.lock();
    let c = counter.clone();
    let stats = m
        .run(move |ctx| {
            for _ in 0..50 {
                ctx.lock(l);
                let v = c.read(ctx, 0);
                ctx.compute_ops(1);
                c.write(ctx, 0, v + 1);
                ctx.unlock(l);
            }
        })
        .unwrap();
    // 8 procs × 50 increments, fully serialized by the lock.
    assert_eq!(counter.get(0), 400);
    assert_eq!(stats.total(|p| p.lock_acquires), 400);
    // Contended locking must show up as synchronization wait.
    assert!(stats.total(|p| p.sync_wait_ns) > 0);
}

#[test]
fn fetch_add_distributes_unique_tickets() {
    let mut m = Machine::new(cfg(8)).unwrap();
    let tickets = m.shared_vec::<i64>(80, Placement::Interleaved);
    let next = m.fetch_cell(0);
    let t = tickets.clone();
    m.run(move |ctx| loop {
        let i = ctx.fetch_add(next, 1);
        if i >= 80 {
            break;
        }
        t.write(ctx, i as usize, i + 1);
    })
    .unwrap();
    // Every ticket taken exactly once.
    for i in 0..80 {
        assert_eq!(tickets.get(i), i as i64 + 1, "ticket {i}");
    }
}

#[test]
fn semaphore_producer_consumer() {
    let mut m = Machine::new(cfg(4)).unwrap();
    let q = m.shared_vec::<u64>(64, Placement::Node(0));
    let items = m.semaphore(0);
    let head = m.fetch_cell(0);
    let qc = q.clone();
    m.run(move |ctx| {
        if ctx.id() == 0 {
            // Producer: publish 63 items (other procs consume 21 each).
            for i in 0..63 {
                qc.write(ctx, i, (i + 1) as u64);
                ctx.sem_post(items, 1);
            }
        } else {
            for _ in 0..21 {
                ctx.sem_wait(items);
                let slot = ctx.fetch_add(head, 1) as usize;
                let v = qc.read(ctx, slot);
                assert!(v > 0, "consumed an unpublished slot");
            }
        }
    })
    .unwrap();
}

#[test]
fn deadlock_is_reported_not_hung() {
    let mut m = Machine::new(cfg(2)).unwrap();
    let l = m.lock();
    let err = m
        .run(move |ctx| {
            if ctx.id() == 0 {
                ctx.lock(l); // holds forever
                ctx.compute_ns(10);
                // never unlocks; proc 1 blocks, proc 0 finishes.
            } else {
                ctx.lock(l);
            }
        })
        .unwrap_err();
    match err {
        SimError::Deadlock(who) => assert!(who.contains("lock 0"), "{who}"),
        other => panic!("expected deadlock, got {other}"),
    }
}

#[test]
fn app_panic_is_reported_not_hung() {
    let mut m = Machine::new(cfg(4)).unwrap();
    let b = m.barrier();
    let err = m
        .run(move |ctx| {
            if ctx.id() == 2 {
                panic!("boom on proc 2");
            }
            ctx.barrier(b); // other procs park here
        })
        .unwrap_err();
    match err {
        SimError::AppPanic(msg) => assert!(msg.contains("boom"), "{msg}"),
        other => panic!("expected panic, got {other}"),
    }
}

#[test]
fn runs_are_deterministic() {
    let run_once = || {
        let mut m = Machine::new(cfg(8)).unwrap();
        let x = m.shared_vec::<u64>(512, Placement::Blocked);
        let b = m.barrier();
        let l = m.lock();
        let total = m.shared_vec::<u64>(1, Placement::Node(0));
        let (x2, t2) = (x.clone(), total.clone());
        let stats = m
            .run(move |ctx| {
                let n = x2.len() / ctx.nprocs();
                let lo = ctx.id() * n;
                let mut acc = 0;
                for i in lo..lo + n {
                    x2.write(ctx, i, (i * 3) as u64);
                    acc += (i * 3) as u64;
                }
                ctx.barrier(b);
                let peer = (ctx.id() + 3) % ctx.nprocs();
                for i in peer * n..peer * n + n {
                    acc = acc.wrapping_add(x2.read(ctx, i));
                }
                ctx.compute_flops(acc % 7);
                ctx.lock(l);
                t2.update(ctx, 0, |v| v.wrapping_add(acc));
                ctx.unlock(l);
            })
            .unwrap();
        (stats.wall_ns, total.get(0), stats.total(|p| p.misses()))
    };
    let a = run_once();
    let b = run_once();
    assert_eq!(a, b, "simulation must be bit-deterministic");
}

#[test]
fn remote_traffic_costs_more_than_local() {
    // Same program, once with data blocked (local) and once all on node 0.
    let run = |placement: Placement| {
        let mut m = Machine::new(cfg(16)).unwrap();
        let x = m.shared_vec::<f64>(16 * 512, placement);
        let x2 = x.clone();
        let stats = m
            .run(move |ctx| {
                let n = x2.len() / ctx.nprocs();
                let lo = ctx.id() * n;
                for i in lo..lo + n {
                    x2.write(ctx, i, 1.0);
                }
            })
            .unwrap();
        stats.wall_ns
    };
    let local = run(Placement::Blocked);
    let remote = run(Placement::Node(0));
    assert!(
        remote > local * 3 / 2,
        "all-on-node-0 ({remote}) should be well above blocked ({local})"
    );
}

#[test]
fn first_touch_localizes_after_warmup() {
    let mut c = cfg(8);
    c.placement = PagePlacement::FirstTouch;
    let mut m = Machine::new(c).unwrap();
    let x = m.shared_vec::<u64>(8 * 256, Placement::Policy);
    let b = m.barrier();
    let x2 = x.clone();
    let stats = m
        .run(move |ctx| {
            let n = x2.len() / ctx.nprocs();
            let lo = ctx.id() * n;
            // First touch my partition → pages home locally.
            for i in lo..lo + n {
                x2.write(ctx, i, 0);
            }
            ctx.barrier(b);
            for i in lo..lo + n {
                x2.update(ctx, i, |v| v + 1);
            }
        })
        .unwrap();
    // Post-warm-up accesses are hits or local (upgrades count separately).
    assert_eq!(
        stats.total(|p| p.misses_remote_clean + p.misses_remote_dirty),
        0
    );
}

#[test]
fn random_mapping_changes_timing_not_results() {
    let run = |mapping: ProcessMapping| {
        let mut c = cfg(16);
        c.mapping = mapping;
        let mut m = Machine::new(c).unwrap();
        let x = m.shared_vec::<u64>(16 * 128, Placement::Blocked);
        let b = m.barrier();
        let x2 = x.clone();
        let stats = m
            .run(move |ctx| {
                let n = x2.len() / ctx.nprocs();
                let lo = ctx.id() * n;
                for i in lo..lo + n {
                    x2.write(ctx, i, i as u64);
                }
                ctx.barrier(b);
                // Read the next process's partition (neighbour traffic).
                let peer = (ctx.id() + 1) % ctx.nprocs();
                let mut s = 0;
                for i in peer * n..peer * n + n {
                    s += x2.read(ctx, i);
                }
                ctx.compute_ops(s % 2);
            })
            .unwrap();
        (stats.wall_ns, x.snapshot())
    };
    let (_, data_linear) = run(ProcessMapping::Linear);
    let (_, data_random) = run(ProcessMapping::Random { seed: 42 });
    assert_eq!(
        data_linear, data_random,
        "results must not depend on mapping"
    );
}

#[test]
fn fetchop_primitive_reduces_lock_overhead_under_contention() {
    let run = |imp: LockImpl| {
        let mut c = cfg(8);
        c.lock_impl = imp;
        let mut m = Machine::new(c).unwrap();
        let l = m.lock();
        let stats = m
            .run(move |ctx| {
                for _ in 0..100 {
                    ctx.lock(l);
                    ctx.compute_ns(50);
                    ctx.unlock(l);
                }
            })
            .unwrap();
        stats.total(|p| p.sync_op_ns)
    };
    let llsc = run(LockImpl::TicketLlsc);
    let fo = run(LockImpl::TicketFetchOp);
    // The at-memory primitive avoids line ping-pong between contending
    // processors (§6.3: measurable on microbenchmarks).
    assert!(fo < llsc, "fetch&op {fo} should beat LL/SC {llsc} here");
}

#[test]
fn prefetch_reduces_memory_stall() {
    let run = |pf: bool| {
        let mut c = cfg(8);
        c.prefetch_enabled = pf;
        let mut m = Machine::new(c).unwrap();
        let x = m.shared_vec::<f64>(8 * 512, Placement::Blocked);
        let b = m.barrier();
        let x2 = x.clone();
        let stats = m
            .run(move |ctx| {
                let n = x2.len() / ctx.nprocs();
                let lo = ctx.id() * n;
                for i in lo..lo + n {
                    x2.write(ctx, i, 1.0);
                }
                ctx.barrier(b);
                // Stream a remote partition, prefetching well ahead.
                let peer = (ctx.id() + ctx.nprocs() / 2) % ctx.nprocs();
                let base = peer * n;
                x2.prefetch(ctx, base, n);
                ctx.compute_flops(200); // give prefetches time to land
                let mut s = 0.0;
                for i in base..base + n {
                    s += x2.read(ctx, i);
                    ctx.compute_flops(4);
                }
                assert!(s > 0.0);
            })
            .unwrap();
        stats.total(|p| p.mem_ns)
    };
    let without = run(false);
    let with = run(true);
    assert!(
        with < without,
        "prefetch {with} should reduce stall vs {without}"
    );
}

#[test]
fn single_proc_machine_works_and_is_all_busy_or_mem() {
    let mut m = Machine::new(cfg(1)).unwrap();
    let x = m.shared_vec::<u64>(256, Placement::Policy);
    let x2 = x.clone();
    let stats = m
        .run(move |ctx| {
            for i in 0..x2.len() {
                x2.write(ctx, i, i as u64);
                ctx.compute_ops(2);
            }
        })
        .unwrap();
    let p = &stats.procs[0];
    assert_eq!(p.sync_ns(), 0);
    assert!(p.busy_ns > 0 && p.mem_ns > 0);
    assert_eq!(p.misses_remote_clean + p.misses_remote_dirty, 0);
}

#[test]
fn labeled_ranges_attribute_traffic() {
    let mut m = Machine::new(cfg(4)).unwrap();
    let hot = m.shared_vec_labeled::<u64>("hot", 512, Placement::Node(0));
    let cold = m.shared_vec_labeled::<u64>("cold", 512, Placement::Node(1));
    let (h, c) = (hot.clone(), cold.clone());
    let stats = m
        .run(move |ctx| {
            for i in 0..h.len() {
                h.write(ctx, i, i as u64);
            }
            if ctx.id() == 0 {
                let mut s = 0;
                for i in 0..c.len() {
                    s += c.read(ctx, i);
                }
                ctx.compute_ops(s % 2);
            }
        })
        .unwrap();
    assert_eq!(stats.ranges.len(), 2);
    let hotp = &stats.ranges[0];
    let coldp = &stats.ranges[1];
    assert_eq!(hotp.name, "hot");
    assert_eq!(coldp.name, "cold");
    // All four procs wrote "hot"; only proc 0 read "cold".
    assert!(hotp.writes > coldp.reads);
    assert_eq!(coldp.writes, 0);
    assert!(hotp.stall_ns > 0 && coldp.stall_ns > 0);
}

#[test]
fn miss_classification_partitions_all_misses() {
    let mut c = cfg(4);
    c.classify_misses = true;
    let mut m = Machine::new(c).unwrap();
    // Working set larger than the 64KB cache to force capacity misses,
    // plus cross-proc writes for coherence misses.
    let x = m.shared_vec::<u64>(4 * 16384, Placement::Blocked); // 128 KB per proc
    let b = m.barrier();
    let x2 = x.clone();
    let stats = m
        .run(move |ctx| {
            let n = x2.len() / ctx.nprocs();
            let lo = ctx.id() * n;
            for round in 0..3u64 {
                for i in lo..lo + n {
                    x2.update(ctx, i, |v| v + round);
                }
                ctx.barrier(b);
                // Touch a neighbour's first lines → later coherence misses
                // for the neighbour.
                let peer = (ctx.id() + 1) % ctx.nprocs();
                let mut s = 0;
                for i in peer * n..peer * n + 64 {
                    s += x2.read(ctx, i);
                }
                ctx.compute_ops(s % 2);
                ctx.barrier(b);
            }
        })
        .unwrap();
    let classified = stats.total(|p| p.misses_cold + p.misses_coherence + p.misses_capacity);
    // Upgrades transfer no data and are not classified.
    let misses = stats.total(|p| p.misses());
    assert_eq!(classified, misses, "every data miss must be classified");
    assert!(stats.total(|p| p.misses_cold) > 0);
    assert!(stats.total(|p| p.misses_capacity) > 0);
    assert!(stats.total(|p| p.misses_coherence) > 0);
}

#[test]
fn classification_off_counts_nothing() {
    let mut m = Machine::new(cfg(2)).unwrap();
    let x = m.shared_vec::<u64>(256, Placement::Blocked);
    let x2 = x.clone();
    let stats = m
        .run(move |ctx| {
            for i in 0..x2.len() {
                x2.update(ctx, i, |v| v + 1);
            }
        })
        .unwrap();
    assert_eq!(
        stats.total(|p| p.misses_cold + p.misses_coherence + p.misses_capacity),
        0
    );
    assert!(stats.total(|p| p.misses()) > 0);
}
