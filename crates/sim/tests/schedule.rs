//! Schedule-perturbation integration tests.
//!
//! The contract under test, in order of importance:
//!
//! 1. With `cfg.schedule` unset the engine is **byte-identical** to the
//!    unperturbed engine — pinned against constants captured before the
//!    perturbation hooks existed.
//! 2. A fixed seed replays **bit-identically** (full `RunStats` equality,
//!    sanitize report included).
//! 3. Perturbation actually perturbs: some seed produces a different
//!    interleaving than the default on a contended workload.
//! 4. Perturbed grant orders must not fabricate sanitizer findings:
//!    a consistently-ordered lock program stays cycle-free under every
//!    seed, a real inversion is found under every seed, and the
//!    barrier-divergence lint survives schedule perturbation.

use ccnuma_sim::config::{Fnv1a, MachineConfig};
use ccnuma_sim::error::SimError;
use ccnuma_sim::machine::{Machine, Placement};
use ccnuma_sim::schedule::ScheduleConfig;
use ccnuma_sim::stats::RunStats;

fn cfg(nprocs: usize, schedule: Option<ScheduleConfig>) -> MachineConfig {
    let mut c = MachineConfig::origin2000_scaled(nprocs, 16 << 10);
    c.schedule = schedule;
    c
}

/// A contended workload exercising every choice point: lock handoffs
/// with multi-waiter queues, semaphore wake-ups, barrier wake sweeps and
/// same-time heap ties.
fn contended_workload(c: MachineConfig) -> Result<RunStats, SimError> {
    let mut m = Machine::new(c)?;
    let x = m.shared_vec::<f64>(1024, Placement::Blocked);
    let l = m.lock();
    let b = m.barrier();
    let s = m.semaphore(1);
    let x2 = x.clone();
    m.run(move |ctx| {
        let x = &x2;
        let p = ctx.id();
        let n = ctx.nprocs();
        for round in 0..4 {
            ctx.compute_ops(50 + (p as u64) * 13);
            ctx.with_lock(l, || {
                let v = x.read(ctx, round);
                x.write(ctx, round, v + 1.0);
            });
            ctx.sem_wait(s);
            ctx.compute_ops(20);
            ctx.sem_post(s, 1);
            let lo = 64 * p;
            for i in lo..lo + 16 {
                x.write(ctx, 256 + i, (i + round) as f64);
            }
            ctx.barrier(b);
            let _ = x.read(ctx, 256 + 64 * ((p + 1) % n));
        }
    })
}

/// A stable digest of the run's timing-visible outcome.
fn digest(stats: &RunStats) -> (u64, u64, u64) {
    let mut h = Fnv1a::new();
    h.update(format!("{:?}", stats.procs).as_bytes());
    (stats.wall_ns, stats.events, h.finish())
}

#[test]
fn unset_schedule_is_byte_identical_to_the_unperturbed_engine() {
    // Constants captured from the engine before the schedule hooks were
    // added: the default path must not drift by a single nanosecond.
    let stats = contended_workload(cfg(4, None)).unwrap();
    assert_eq!(digest(&stats), (6469, 84, 0x6da9_0d50_d6c3_a83b));
}

#[test]
fn seed_replay_is_bit_identical() {
    for sc in [ScheduleConfig::random(7), ScheduleConfig::pct(7, 16)] {
        let mut c = cfg(4, Some(sc));
        c.sanitize.enabled = true;
        let a = contended_workload(c.clone()).unwrap();
        let b = contended_workload(c).unwrap();
        assert_eq!(a, b, "seed {sc:?} must replay bit-identically");
        assert!(a.sanitize.is_some());
    }
}

#[test]
fn some_seed_changes_the_interleaving() {
    let base = digest(&contended_workload(cfg(4, None)).unwrap());
    let perturbed = (1..=16).filter(|&s| {
        let d = digest(&contended_workload(cfg(4, Some(ScheduleConfig::random(s)))).unwrap());
        d != base
    });
    assert!(
        perturbed.count() > 0,
        "no seed in 1..=16 perturbed a contended 4-proc workload"
    );
}

#[test]
fn results_stay_correct_under_perturbation() {
    // Whatever order the perturber picks, the synchronization still
    // provides the same guarantees: the lock-protected counters reach
    // their exact totals under every seed.
    for seed in 0..6 {
        let schedule = (seed > 0).then(|| ScheduleConfig::random(seed));
        let mut m = Machine::new(cfg(4, schedule)).unwrap();
        let x = m.shared_vec::<u64>(1, Placement::Blocked);
        let l = m.lock();
        let x2 = x.clone();
        m.run(move |ctx| {
            for _ in 0..8 {
                ctx.with_lock(l, || x2.update(ctx, 0, |v| v + 1));
            }
        })
        .unwrap();
        assert_eq!(x.get(0), 32, "lost update under seed {seed}");
    }
}

/// Locks are always taken in id order (outer, then inner) by every
/// processor: no seed may invent a lock-order cycle out of reordered
/// grant decisions.
#[test]
fn no_false_lock_cycles_under_perturbed_grants() {
    for seed in 0..8 {
        let schedule = (seed > 0).then(|| ScheduleConfig::random(seed));
        let mut c = cfg(4, schedule);
        c.sanitize.enabled = true;
        let mut m = Machine::new(c).unwrap();
        let x = m.shared_vec::<u64>(2, Placement::Blocked);
        let outer = m.lock();
        let inner = m.lock();
        let x2 = x.clone();
        let stats = m
            .run(move |ctx| {
                for _ in 0..4 {
                    ctx.with_lock(outer, || {
                        x2.update(ctx, 0, |v| v + 1);
                        ctx.with_lock(inner, || x2.update(ctx, 1, |v| v + 1));
                    });
                }
            })
            .unwrap();
        let rep = stats.sanitize.unwrap();
        assert!(
            rep.is_clean(),
            "seed {seed} fabricated findings: {}",
            rep.summary()
        );
    }
}

/// A real lock-order inversion (A→B on one side of a barrier, B→A on the
/// other, so it never actually deadlocks) is reported identically under
/// the default schedule and under every perturbation seed.
#[test]
fn real_lock_cycle_is_found_under_every_seed() {
    let mut cycles = Vec::new();
    for seed in 0..6 {
        let schedule = (seed > 0).then(|| ScheduleConfig::random(seed));
        let mut c = cfg(2, schedule);
        c.sanitize.enabled = true;
        let mut m = Machine::new(c).unwrap();
        let a = m.lock();
        let b = m.lock();
        let bar = m.barrier();
        let stats = m
            .run(move |ctx| {
                if ctx.id() == 0 {
                    ctx.with_lock(a, || ctx.with_lock(b, || ctx.compute_ops(4)));
                }
                ctx.barrier(bar);
                if ctx.id() == 1 {
                    ctx.with_lock(b, || ctx.with_lock(a, || ctx.compute_ops(4)));
                }
            })
            .unwrap();
        let rep = stats.sanitize.unwrap();
        assert_eq!(rep.lock_cycles.len(), 1, "seed {seed}: {}", rep.summary());
        cycles.push(rep.lock_cycles[0].clone());
    }
    assert!(
        cycles.windows(2).all(|w| w[0] == w[1]),
        "cycle finding must not depend on the seed: {cycles:?}"
    );
}

#[test]
fn barrier_divergence_lint_survives_perturbation() {
    for seed in [1, 2, 3] {
        let mut c = cfg(4, Some(ScheduleConfig::random(seed)));
        c.sanitize.enabled = true;
        let mut m = Machine::new(c).unwrap();
        let b = m.barrier();
        let err = m
            .run(move |ctx| {
                if ctx.id() != 1 {
                    ctx.barrier(b);
                }
            })
            .unwrap_err();
        match err {
            SimError::Deadlock(msg) => {
                assert!(msg.contains("barrier-divergence"), "seed {seed}: {msg}");
                assert!(msg.contains("[1] never did"), "seed {seed}: {msg}");
            }
            other => panic!("seed {seed}: expected deadlock, got {other}"),
        }
    }
}
