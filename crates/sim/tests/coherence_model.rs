//! Model-checking the coherence protocol: arbitrary access interleavings
//! over a small line set must preserve the directory/cache safety
//! invariants at every step.

use proptest::prelude::*;

use ccnuma_sim::config::MachineConfig;
use ccnuma_sim::memsys::{AccessKind, MemorySystem};

fn tiny_memsys(nprocs: usize) -> MemorySystem {
    // A deliberately tiny cache (2 sets × 2 ways) so evictions, upgrades
    // and interventions all occur within short access sequences.
    let mut cfg = MachineConfig::origin2000_scaled(nprocs, 16 << 10);
    cfg.cache.size_bytes = 512;
    cfg.cache.assoc = 2;
    let perm: Vec<usize> = (0..nprocs).collect();
    MemorySystem::new(&cfg, &perm)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn invariants_hold_under_arbitrary_interleavings(
        ops in prop::collection::vec((0usize..4, 0u64..12, any::<bool>()), 1..200),
    ) {
        let mut m = tiny_memsys(4);
        let mut now = 0;
        for (p, line, is_write) in ops {
            now += 500;
            let kind = if is_write { AccessKind::Write } else { AccessKind::Read };
            m.access(p, line * 128, kind, now);
            m.validate_coherence().unwrap();
        }
    }

    #[test]
    fn invariants_hold_with_prefetch_and_placement(
        placements in prop::collection::vec((0u64..12, 0usize..2), 0..6),
        ops in prop::collection::vec((0usize..4, 0u64..12, 0u8..3), 1..120),
    ) {
        let mut m = tiny_memsys(4);
        for (line, node) in placements {
            m.place_range(line * 128, 128, node);
        }
        let mut now = 0;
        for (p, line, op) in ops {
            now += 500;
            match op {
                0 => { m.access(p, line * 128, AccessKind::Read, now); }
                1 => { m.access(p, line * 128, AccessKind::Write, now); }
                _ => { m.prefetch(p, line * 128, now); }
            }
            m.validate_coherence().unwrap();
        }
    }
}

#[test]
fn single_writer_invariant_is_enforced_after_churn() {
    // Deterministic heavy churn: every processor writes every line in
    // rotation; at the end exactly one Modified copy may exist per line.
    let mut m = tiny_memsys(4);
    let mut now = 0;
    for round in 0..16u64 {
        for p in 0..4 {
            for line in 0..8u64 {
                now += 500;
                let addr = ((line + round + p as u64) % 8) * 128;
                m.access(p, addr, AccessKind::Write, now);
            }
        }
    }
    m.validate_coherence().unwrap();
}
