//! Model-checking the coherence protocol: pseudo-random access
//! interleavings over a small line set must preserve the directory/cache
//! safety invariants at every step. Interleavings are drawn from a seeded
//! xorshift stream, so the suite is deterministic and dependency-free.

use ccnuma_sim::config::MachineConfig;
use ccnuma_sim::memsys::{AccessKind, MemorySystem};

fn tiny_memsys(nprocs: usize) -> MemorySystem {
    // A deliberately tiny cache (2 sets × 2 ways) so evictions, upgrades
    // and interventions all occur within short access sequences.
    let mut cfg = MachineConfig::origin2000_scaled(nprocs, 16 << 10);
    cfg.cache.size_bytes = 512;
    cfg.cache.assoc = 2;
    let perm: Vec<usize> = (0..nprocs).collect();
    MemorySystem::new(&cfg, &perm)
}

struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1)
    }
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

#[test]
fn invariants_hold_under_arbitrary_interleavings() {
    let mut rng = Rng::new(0x5EED);
    for case in 0..128 {
        let mut m = tiny_memsys(4);
        let mut now = 0;
        let len = 1 + rng.below(199);
        for _ in 0..len {
            now += 500;
            let p = rng.below(4) as usize;
            let line = rng.below(12);
            let kind = if rng.below(2) == 1 {
                AccessKind::Write
            } else {
                AccessKind::Read
            };
            m.access(p, line * 128, kind, now);
            m.validate_coherence()
                .unwrap_or_else(|e| panic!("case {case}: {e}"));
        }
    }
}

#[test]
fn invariants_hold_with_prefetch_and_placement() {
    let mut rng = Rng::new(0xFE7C);
    for case in 0..128 {
        let mut m = tiny_memsys(4);
        for _ in 0..rng.below(6) {
            let line = rng.below(12);
            let node = rng.below(2) as usize;
            m.place_range(line * 128, 128, node);
        }
        let mut now = 0;
        let len = 1 + rng.below(119);
        for _ in 0..len {
            now += 500;
            let p = rng.below(4) as usize;
            let line = rng.below(12);
            match rng.below(3) {
                0 => {
                    m.access(p, line * 128, AccessKind::Read, now);
                }
                1 => {
                    m.access(p, line * 128, AccessKind::Write, now);
                }
                _ => {
                    m.prefetch(p, line * 128, now);
                }
            }
            m.validate_coherence()
                .unwrap_or_else(|e| panic!("case {case}: {e}"));
        }
    }
}

#[test]
fn single_writer_invariant_is_enforced_after_churn() {
    // Deterministic heavy churn: every processor writes every line in
    // rotation; at the end exactly one Modified copy may exist per line.
    let mut m = tiny_memsys(4);
    let mut now = 0;
    for round in 0..16u64 {
        for p in 0..4 {
            for line in 0..8u64 {
                now += 500;
                let addr = ((line + round + p as u64) % 8) * 128;
                m.access(p, addr, AccessKind::Write, now);
            }
        }
    }
    m.validate_coherence().unwrap();
}
