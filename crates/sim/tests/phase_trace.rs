//! End-to-end checks of phase accounting and the tracing subsystem on a
//! real multi-phase, multi-processor run: the per-phase breakdown must
//! partition each processor's time exactly, the trace's per-category
//! totals must reconcile with [`ProcStats`], and the Chrome trace-event
//! export must be structurally sound and deterministic.

use ccnuma_sim::prelude::*;

fn run_phased(nprocs: usize) -> RunStats {
    let mut cfg = MachineConfig::origin2000_scaled(nprocs, 16 << 10);
    cfg.trace = TraceConfig::on();
    let mut m = Machine::new(cfg).unwrap();
    let n = 64 * nprocs;
    let data = m.shared_vec::<u64>(n, Placement::Blocked);
    let acc = m.shared_vec::<u64>(1, Placement::Policy);
    let bar = m.barrier();
    let lk = m.lock();
    let nprocs_u = nprocs;
    m.run(move |ctx| {
        let chunk = n / nprocs_u;
        let lo = ctx.id() * chunk;
        ctx.phase("init");
        for i in lo..lo + chunk {
            data.write(ctx, i, i as u64);
        }
        ctx.barrier(bar);
        ctx.phase("work");
        let peer = (ctx.id() + 1) % nprocs_u;
        let mut s = 0u64;
        for i in peer * chunk..(peer + 1) * chunk {
            s += data.read(ctx, i);
            ctx.compute_flops(2);
        }
        ctx.with_lock(lk, || {
            let cur = acc.read(ctx, 0);
            acc.write(ctx, 0, cur + s);
        });
        ctx.barrier(bar);
        ctx.phase("reduce");
        let total = acc.read(ctx, 0);
        ctx.compute_ops(total % 7 + 1);
    })
    .unwrap()
}

#[test]
fn phases_partition_each_processor_exactly() {
    let stats = run_phased(4);
    let names: Vec<&str> = stats.phases.iter().map(|p| p.name.as_str()).collect();
    assert_eq!(names, ["main", "init", "work", "reduce"]);
    for (p, ps) in stats.procs.iter().enumerate() {
        let mut sum = PhaseBreakdown::default();
        for ph in &stats.phases {
            sum.add(&ph.procs[p]);
        }
        assert_eq!(sum.total_ns(), ps.total_ns(), "proc {p} phase partition");
        assert_eq!(sum.busy_ns, ps.busy_ns, "proc {p} busy");
        assert_eq!(sum.mem_ns, ps.mem_ns, "proc {p} mem");
        assert_eq!(sum.mem_local_ns, ps.mem_local_ns, "proc {p} mem local");
        assert_eq!(sum.mem_remote_ns, ps.mem_remote_ns, "proc {p} mem remote");
        assert_eq!(sum.sync_wait_ns, ps.sync_wait_ns, "proc {p} sync wait");
        assert_eq!(sum.sync_op_ns, ps.sync_op_ns, "proc {p} sync op");
    }
    // The lookup helper finds every phase, and the work phase did the
    // reads (each processor scanned a peer's block).
    assert!(stats.phase("work").is_some());
    assert!(stats.phase("nonesuch").is_none());
    let work = stats.phase("work").unwrap().total();
    assert!(work.mem_ns > 0, "work phase has memory stall");
}

#[test]
fn trace_reconciles_with_proc_stats() {
    let stats = run_phased(4);
    let trace = stats.trace.as_ref().expect("tracing was enabled");
    assert_eq!(trace.nprocs(), 4);
    for (p, ps) in stats.procs.iter().enumerate() {
        assert_eq!(trace.category_total(p, "busy"), ps.busy_ns, "proc {p} busy");
        assert_eq!(trace.category_total(p, "mem"), ps.mem_ns, "proc {p} mem");
        assert_eq!(
            trace.category_total(p, "sync"),
            ps.sync_ns(),
            "proc {p} sync"
        );
    }
    // Per-phase busy/mem/sync totals from the trace agree with the
    // RunStats averages within 1% (they are exact by construction; the
    // tolerance covers only f64 rounding).
    let grand: u64 = stats.procs.iter().map(|p| p.total_ns()).sum();
    let mut busy = 0u64;
    let mut mem = 0u64;
    let mut sync = 0u64;
    for (_, [b, m, s]) in trace.phase_totals() {
        busy += b;
        mem += m;
        sync += s;
    }
    assert_eq!(
        busy + mem + sync,
        grand,
        "trace phase totals partition the run"
    );
    let (ab, am, asy) = stats.avg_breakdown_pct();
    let tb = 100.0 * busy as f64 / grand as f64;
    let tm = 100.0 * mem as f64 / grand as f64;
    let ts = 100.0 * sync as f64 / grand as f64;
    // avg_breakdown_pct averages per-processor shares while the trace
    // ratio is time-weighted; on this balanced SPMD program they agree
    // closely.
    assert!((ab - tb).abs() < 1.0, "busy {ab:.2}% vs trace {tb:.2}%");
    assert!((am - tm).abs() < 1.0, "mem {am:.2}% vs trace {tm:.2}%");
    assert!((asy - ts).abs() < 1.0, "sync {asy:.2}% vs trace {ts:.2}%");
}

#[test]
fn chrome_export_is_sound_and_deterministic() {
    let a = run_phased(2);
    let b = run_phased(2);
    let ja = a.trace.as_ref().unwrap().to_chrome_json("phase-trace");
    let jb = b.trace.as_ref().unwrap().to_chrome_json("phase-trace");
    assert_eq!(ja, jb, "same program, same trace");
    assert!(ja.starts_with("{\"traceEvents\":["));
    assert!(ja.ends_with('}'));
    for needle in [
        "\"ph\":\"X\"",
        "\"ph\":\"M\"",
        "thread_name",
        "\"init\"",
        "\"work\"",
        "\"reduce\"",
    ] {
        assert!(ja.contains(needle), "missing {needle}");
    }
    // Balanced braces/brackets outside of string literals.
    let (mut depth, mut in_str, mut esc) = (0i64, false, false);
    for c in ja.chars() {
        if esc {
            esc = false;
        } else if in_str {
            match c {
                '\\' => esc = true,
                '"' => in_str = false,
                _ => {}
            }
        } else {
            match c {
                '"' => in_str = true,
                '{' | '[' => depth += 1,
                '}' | ']' => depth -= 1,
                _ => {}
            }
            assert!(depth >= 0);
        }
    }
    assert_eq!(depth, 0, "unbalanced JSON nesting");
    assert!(!in_str, "unterminated string");
}

#[test]
fn tracing_off_by_default_and_stats_unchanged() {
    let mut cfg = MachineConfig::origin2000_scaled(2, 16 << 10);
    assert!(!cfg.trace.enabled, "tracing must be opt-in");
    cfg.trace = TraceConfig::on();
    let traced = {
        let mut m = Machine::new(cfg).unwrap();
        let v = m.shared_vec::<u64>(32, Placement::Blocked);
        let bar = m.barrier();
        m.run(move |ctx| {
            ctx.phase("only");
            v.write(ctx, ctx.id(), 1);
            ctx.barrier(bar);
        })
        .unwrap()
    };
    let plain = {
        let mut m = Machine::new(MachineConfig::origin2000_scaled(2, 16 << 10)).unwrap();
        let v = m.shared_vec::<u64>(32, Placement::Blocked);
        let bar = m.barrier();
        m.run(move |ctx| {
            ctx.phase("only");
            v.write(ctx, ctx.id(), 1);
            ctx.barrier(bar);
        })
        .unwrap()
    };
    assert!(traced.trace.is_some());
    assert!(plain.trace.is_none());
    // Tracing is pure observation: identical timing and phase accounting.
    assert_eq!(traced.wall_ns, plain.wall_ns);
    assert_eq!(traced.procs, plain.procs);
    assert_eq!(traced.phases.len(), plain.phases.len());
}
