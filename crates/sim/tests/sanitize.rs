//! Sanitizer integration tests: planted races in real machine runs must
//! be reported exactly (no false negatives, no extras), enabling the
//! sanitizer must not perturb simulated timing, and reports must be
//! bit-deterministic across repeated runs.

use ccnuma_sim::config::MachineConfig;
use ccnuma_sim::machine::{Machine, Placement};
use ccnuma_sim::sanitize::{LintKind, SanitizeGranularity, SanitizeReport};
use ccnuma_sim::stats::RunStats;

fn cfg(nprocs: usize, sanitize: bool) -> MachineConfig {
    let mut c = MachineConfig::origin2000_scaled(nprocs, 16 << 10);
    c.sanitize.enabled = sanitize;
    c
}

/// Two processors increment the same counter word with plain
/// read-modify-writes and no synchronization: exactly one race, on the
/// counter's word, between a write and a conflicting access.
fn racy_counter(c: MachineConfig) -> (RunStats, u64) {
    let mut m = Machine::new(c).unwrap();
    let x = m.shared_vec::<u64>(1, Placement::Blocked);
    let addr = x.addr_of(0);
    let x2 = x.clone();
    let stats = m
        .run(move |ctx| {
            ctx.phase("bump");
            for _ in 0..4 {
                x2.update(ctx, 0, |v| v + 1);
                ctx.compute_ops(1);
            }
        })
        .unwrap();
    (stats, addr)
}

#[test]
fn planted_counter_race_is_reported_exactly() {
    let (stats, addr) = racy_counter(cfg(2, true));
    let rep = stats.sanitize.expect("sanitize report present");
    assert_eq!(rep.races.len(), 1, "one race per granule: {:#?}", rep.races);
    let r = &rep.races[0];
    assert_eq!(r.addr, addr & !7, "race lands on the counter's word");
    assert_eq!(r.bytes, 8);
    assert!(r.current.is_write || r.prior.is_write);
    assert_ne!(r.prior.proc, r.current.proc);
    assert_eq!(r.prior.phase, "bump");
    assert_eq!(r.current.phase, "bump");
    assert!(r.prior.locks.is_empty() && r.current.locks.is_empty());
    assert!(rep.lock_cycles.is_empty());
    assert!(rep.lints.is_empty());
    assert!(!rep.is_clean());
    assert_eq!(rep.counts(), [1, 0, 0]);
}

#[test]
fn lock_protected_counter_is_clean() {
    let mut m = Machine::new(cfg(4, true)).unwrap();
    let x = m.shared_vec::<u64>(1, Placement::Blocked);
    let l = m.lock();
    let x2 = x.clone();
    let stats = m
        .run(move |ctx| {
            for _ in 0..4 {
                ctx.with_lock(l, || x2.update(ctx, 0, |v| v + 1));
            }
        })
        .unwrap();
    assert_eq!(x.get(0), 16);
    let rep = stats.sanitize.unwrap();
    assert!(rep.is_clean(), "{}", rep.summary());
}

/// Adjacent words of one cache line written by different processors:
/// false sharing, not a race. Word granularity stays clean; line
/// granularity flags the line (the knob that separates the two).
#[test]
fn false_sharing_flagged_only_at_line_granularity() {
    let run = |granularity| {
        let mut c = cfg(2, true);
        c.sanitize.granularity = granularity;
        let mut m = Machine::new(c).unwrap();
        let x = m.shared_vec::<u64>(2, Placement::Blocked);
        let x2 = x.clone();
        m.run(move |ctx| {
            x2.write(ctx, ctx.id(), ctx.id() as u64);
        })
        .unwrap()
        .sanitize
        .unwrap()
    };
    let word = run(SanitizeGranularity::Word);
    assert!(word.is_clean(), "disjoint words: {:#?}", word.races);
    let line = run(SanitizeGranularity::Line);
    assert_eq!(line.races.len(), 1, "same line: {:#?}", line.races);
    assert_eq!(line.races[0].bytes, 128, "origin line size");
}

/// Arriving at a barrier while holding a lock is linted (and only
/// linted — the run itself completes).
#[test]
fn lock_across_barrier_is_linted() {
    let mut m = Machine::new(cfg(2, true)).unwrap();
    let l = m.lock();
    let b = m.barrier();
    let stats = m
        .run(move |ctx| {
            if ctx.id() == 0 {
                ctx.lock(l);
            }
            ctx.barrier(b);
            if ctx.id() == 0 {
                ctx.unlock(l);
            }
        })
        .unwrap();
    let rep = stats.sanitize.unwrap();
    assert_eq!(rep.lints.len(), 1, "{:#?}", rep.lints);
    assert_eq!(rep.lints[0].kind, LintKind::LockAcrossBarrier);
    assert!(
        rep.lints[0].message.contains("proc 0"),
        "{}",
        rep.lints[0].message
    );
}

/// Enabling the sanitizer must not change simulated timing: the two
/// RunStats are identical except for the report itself.
#[test]
fn sanitizing_does_not_change_timing() {
    let (off, _) = racy_counter(cfg(4, false));
    let (mut on, _) = racy_counter(cfg(4, true));
    assert!(off.sanitize.is_none());
    assert!(on.sanitize.is_some());
    on.sanitize = None;
    assert_eq!(off, on);
}

/// Reports are bit-deterministic across repeated runs.
#[test]
fn reports_are_deterministic() {
    let reps: Vec<SanitizeReport> = (0..3)
        .map(|_| racy_counter(cfg(4, true)).0.sanitize.unwrap())
        .collect();
    assert_eq!(reps[0], reps[1]);
    assert_eq!(reps[1], reps[2]);
    assert!(!reps[0].races.is_empty());
}

/// Semaphore hand-off publishes writes: a producer/consumer pipeline is
/// race-free under sem_post/sem_wait ordering alone.
#[test]
fn semaphore_handoff_is_clean() {
    let mut m = Machine::new(cfg(2, true)).unwrap();
    let x = m.shared_vec::<u64>(8, Placement::Blocked);
    let s = m.semaphore(0);
    let x2 = x.clone();
    let stats = m
        .run(move |ctx| {
            if ctx.id() == 0 {
                for i in 0..8 {
                    x2.write(ctx, i, i as u64 * 3);
                }
                ctx.sem_post(s, 1);
            } else {
                ctx.sem_wait(s);
                for i in 0..8 {
                    assert_eq!(x2.read(ctx, i), i as u64 * 3);
                }
            }
        })
        .unwrap();
    let rep = stats.sanitize.unwrap();
    assert!(rep.is_clean(), "{}", rep.summary());
}
