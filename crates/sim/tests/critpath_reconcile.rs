//! Critical-path profiler integration tests: on a real machine run the
//! attributed path must sum to the simulated wall clock to the
//! nanosecond, per-phase rows must partition the path exactly, the
//! what-if projector must bound the measured wall from below, enabling
//! the collector must not perturb timing, and reports must be
//! bit-deterministic across repeated runs.

use ccnuma_sim::config::MachineConfig;
use ccnuma_sim::critpath::CritReport;
use ccnuma_sim::machine::{Machine, Placement};
use ccnuma_sim::stats::RunStats;

fn cfg(nprocs: usize, critpath: bool) -> MachineConfig {
    let mut c = MachineConfig::origin2000_scaled(nprocs, 16 << 10);
    c.classify_misses = true;
    c.critpath = critpath;
    c
}

/// A small phased workload exercising every dependency-edge source:
/// private compute plus shared-array traffic, a barrier between
/// phases, a contended lock in the reduction, and a semaphore hand-off
/// from proc 0 to everyone else.
fn workload(c: MachineConfig) -> RunStats {
    let mut m = Machine::new(c).unwrap();
    let x = m.shared_vec::<u64>(64, Placement::Blocked);
    let l = m.lock();
    let b = m.barrier();
    let s = m.semaphore(0);
    let x2 = x.clone();
    m.run(move |ctx| {
        ctx.phase("produce");
        for i in 0..16 {
            let idx = (ctx.id() * 7 + i) % 64;
            x2.write(ctx, idx, idx as u64);
            ctx.compute_ops(8 + ctx.id() as u64);
        }
        ctx.barrier(b);
        ctx.phase("reduce");
        for _ in 0..4 {
            ctx.with_lock(l, || x2.update(ctx, 0, |v| v + 1));
            ctx.compute_ops(2);
        }
        if ctx.id() == 0 {
            ctx.sem_post(s, (ctx.nprocs() - 1) as u32);
        } else {
            ctx.sem_wait(s);
            let _ = x2.read(ctx, 1);
        }
        ctx.barrier(b);
    })
    .unwrap()
}

fn report(nprocs: usize) -> (RunStats, CritReport) {
    let stats = workload(cfg(nprocs, true));
    let rep = stats.critpath.clone().expect("critpath report present");
    (stats, rep)
}

/// The attributed path sums to the simulated wall clock to the
/// nanosecond, and per-phase rows partition it exactly.
#[test]
fn path_partitions_wall_exactly() {
    let (stats, rep) = report(4);
    assert!(stats.wall_ns > 0);
    assert_eq!(rep.wall_ns, stats.wall_ns);
    assert_eq!(rep.total.total_ns(), stats.wall_ns, "path sums to wall");
    let mut phase_sum = 0;
    for ph in &rep.phases {
        phase_sum += ph.path.total_ns();
    }
    assert_eq!(phase_sum, stats.wall_ns, "phase rows partition the path");
    assert!(rep.phases.iter().any(|p| p.name == "produce"));
    assert!(rep.phases.iter().any(|p| p.name == "reduce"));
    // The workload has real contention: some sync wait must be on-path.
    assert!(rep.total.wait_ns() > 0, "{}", rep.text_table());
    // Detail arrays never exceed the buckets they refine.
    let cause: u64 = rep.mem_cause_ns.iter().sum();
    assert!(cause <= rep.total.mem_ns());
    let qs: u64 = rep.mem_queue_ns.iter().sum::<u64>() + rep.mem_service_ns.iter().sum::<u64>();
    assert!(qs <= rep.total.mem_ns());
    // The [busy, mem, sync] summary triple partitions the wall too.
    assert_eq!(rep.summary().iter().sum::<u64>(), stats.wall_ns);
}

/// On-path segments tile `[0, wall]` contiguously in forward time
/// order, and the Chrome export renders them.
#[test]
fn segments_tile_the_wall() {
    let (stats, rep) = report(4);
    assert!(!rep.segments.is_empty());
    assert_eq!(rep.segments[0].start, 0);
    assert_eq!(rep.segments.last().unwrap().end, stats.wall_ns);
    for w in rep.segments.windows(2) {
        assert_eq!(w[0].end, w[1].start, "segments are contiguous");
    }
    let json = rep.to_chrome_json("test");
    assert!(json.starts_with("{\"traceEvents\":["));
    assert!(json.contains("critical path"));
}

/// The what-if projector brackets reality: replaying unchanged costs
/// reproduces the measured wall exactly, every cost reduction can only
/// help, and nothing beats the pure-compute lower bound.
#[test]
fn whatif_bounds_hold() {
    let (stats, rep) = report(8);
    let wall = |name: &str| {
        rep.whatif
            .iter()
            .find(|w| w.name == name)
            .unwrap_or_else(|| panic!("scenario {name}: {}", rep.whatif_table()))
            .wall_ns
    };
    assert_eq!(wall("measured"), stats.wall_ns, "replay reproduces wall");
    let busy_bound = stats.procs.iter().map(|p| p.busy_ns).max().unwrap();
    for w in &rep.whatif {
        assert!(
            w.wall_ns <= stats.wall_ns,
            "{}: projection ≤ measured",
            w.name
        );
        assert!(
            w.wall_ns >= busy_bound,
            "{}: projection ≥ busy bound",
            w.name
        );
        assert!(rep.speedup(&w.name) >= 1.0);
    }
    // Removing sync cannot be worse than halving remote latency alone
    // in this sync-heavy workload; both are genuine reductions.
    assert!(wall("sync=0") < stats.wall_ns);
    assert!(wall("hub_queue=0") <= stats.wall_ns);
    assert!(wall("queue=0") <= wall("hub_queue=0"));
}

/// Enabling the collector must not change simulated timing: the two
/// RunStats are identical except for the report itself.
#[test]
fn critpath_does_not_change_timing() {
    let off = workload(cfg(4, false));
    let mut on = workload(cfg(4, true));
    assert!(off.critpath.is_none());
    assert!(on.critpath.is_some());
    on.critpath = None;
    assert_eq!(off, on);
}

/// Reports are bit-deterministic across repeated runs.
#[test]
fn reports_are_deterministic() {
    let reps: Vec<CritReport> = (0..3).map(|_| report(4).1).collect();
    assert_eq!(reps[0], reps[1]);
    assert_eq!(reps[1], reps[2]);
}

/// The headline names the dominant limiter and the shares it quotes
/// are consistent with the bucket totals.
#[test]
fn headline_and_tables_render() {
    let (_, rep) = report(4);
    let head = rep.headline();
    assert!(head.contains('%'), "{head}");
    let table = rep.text_table();
    assert!(table.contains("busy"), "{table}");
    let (busy, mem, sync) = rep.share_pct();
    assert!(
        (busy + mem + sync - 100.0).abs() < 0.5,
        "{busy} {mem} {sync}"
    );
}
