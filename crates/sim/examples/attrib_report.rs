//! False-sharing detection demo: per-processor counters packed into one
//! cache line versus padded to a line each.
//!
//! Each processor repeatedly increments only its own counter. In the packed
//! layout the counters share a 128-byte line, so every increment invalidates
//! the other processors' copies even though no data is actually shared — the
//! classifier tags those re-misses `coh-false`. In the padded layout each
//! counter owns a line and the coherence traffic disappears.
//!
//! Run with: `cargo run --release -p ccnuma-sim --example attrib_report`

use ccnuma_sim::attrib::MissCause;
use ccnuma_sim::config::MachineConfig;
use ccnuma_sim::machine::{Machine, Placement};
use ccnuma_sim::stats::RunStats;

const NPROCS: usize = 4;
const ROUNDS: usize = 32;

/// Runs the counter-increment kernel with `stride` u64 slots per counter.
fn run(stride: usize) -> RunStats {
    let mut cfg = MachineConfig::origin2000_scaled(NPROCS, 16 << 10);
    cfg.classify_misses = true;
    let mut m = Machine::new(cfg).unwrap();
    let counters = m.shared_vec::<u64>(NPROCS * stride, Placement::Node(0));
    let b = m.barrier();
    let c = counters.clone();
    m.run(move |ctx| {
        let slot = ctx.id() * stride;
        // The per-round barrier keeps the processors aligned in virtual
        // time, so each round sees the invalidations of the previous one —
        // the classic false-sharing ping-pong.
        for _ in 0..ROUNDS {
            c.update(ctx, slot, |v| v + 1);
            ctx.barrier(b);
        }
    })
    .unwrap()
}

fn report(label: &str, stats: &RunStats) {
    let causes = stats.cause_counts();
    println!("--- {label} ---");
    println!(
        "  misses: {}  (cold {}, capacity {}, conflict {}, true-share {}, false-share {})",
        stats.total(|p| p.misses()),
        causes[MissCause::Cold.index()],
        causes[MissCause::Capacity.index()],
        causes[MissCause::Conflict.index()],
        causes[MissCause::CoherenceTrueShare.index()],
        causes[MissCause::CoherenceFalseShare.index()],
    );
    println!(
        "  memory stall: {} ns  (queueing {} ns, avg hops/miss {:.2})",
        stats.total(|p| p.mem_ns),
        stats.mem_breakdown().queue_total(),
        stats.avg_miss_hops(),
    );
}

fn main() {
    // Packed: 4 counters × 8 B = 32 B, all on one 128 B line.
    let packed = run(1);
    // Padded: one 128 B line (16 u64 slots) per counter.
    let padded = run(16);

    report("packed (counters share a line)", &packed);
    report("padded (one line per counter)", &padded);

    let fs_packed = packed.cause_counts()[MissCause::CoherenceFalseShare.index()];
    let fs_padded = padded.cause_counts()[MissCause::CoherenceFalseShare.index()];
    assert!(
        fs_packed > 0,
        "packed layout must exhibit false sharing (got none)"
    );
    assert_eq!(
        fs_padded, 0,
        "padded layout must not exhibit false sharing (got {fs_padded})"
    );
    println!("\nfalse-share misses: packed {fs_packed}, padded {fs_padded} — padding wins.");
}
