//! Demonstrates phase markers and the tracing subsystem: runs a small
//! three-phase stencil on 8 simulated processors with tracing enabled,
//! prints where each phase spends its time, and writes a Chrome
//! trace-event file loadable in Perfetto (<https://ui.perfetto.dev>) or
//! `chrome://tracing`.
//!
//! ```text
//! cargo run --example phase_trace [out.json]
//! ```

use ccnuma_sim::prelude::*;

fn main() {
    let out = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "phase_trace.json".into());
    let nprocs = 8;
    let mut cfg = MachineConfig::origin2000_scaled(nprocs, 16 << 10);
    cfg.trace = TraceConfig::on();
    let mut m = Machine::new(cfg).expect("machine config");

    let n = 128 * nprocs;
    let grid = m.shared_vec::<u64>(n, Placement::Blocked);
    let sum = m.shared_vec::<u64>(1, Placement::Policy);
    let bar = m.barrier();
    let lk = m.lock();

    let stats = m
        .run(move |ctx| {
            let chunk = n / ctx.nprocs();
            let lo = ctx.id() * chunk;
            // Phase 1: initialise this processor's block (local pages).
            ctx.phase("init");
            for i in lo..lo + chunk {
                grid.write(ctx, i, (i as u64).wrapping_mul(2654435761));
            }
            ctx.barrier(bar);
            // Phase 2: read the neighbour's block (remote misses) and do
            // the arithmetic the paper calls "busy" time.
            ctx.phase("stencil");
            let peer = (ctx.id() + 1) % ctx.nprocs();
            let mut acc = 0u64;
            for i in peer * chunk..(peer + 1) * chunk {
                acc = acc.wrapping_add(grid.read(ctx, i));
                ctx.compute_flops(4);
            }
            ctx.with_lock(lk, || {
                let cur = sum.read(ctx, 0);
                sum.write(ctx, 0, cur.wrapping_add(acc));
            });
            ctx.barrier(bar);
            // Phase 3: everyone reads the reduced value.
            ctx.phase("readback");
            let total = sum.read(ctx, 0);
            ctx.compute_ops(total % 5 + 1);
        })
        .expect("simulation");

    println!(
        "wall clock: {} virtual ns over {} processors",
        stats.wall_ns,
        stats.nprocs()
    );
    println!(
        "{:<10} {:>7} {:>7} {:>7} {:>7}",
        "phase", "busy", "mem", "sync", "share"
    );
    let grand: u64 = stats.phases.iter().map(|p| p.total().total_ns()).sum();
    for ph in &stats.phases {
        let t = ph.total();
        if t.total_ns() == 0 {
            continue;
        }
        let pc = |ns: u64| format!("{:.1}%", 100.0 * ns as f64 / t.total_ns() as f64);
        println!(
            "{:<10} {:>7} {:>7} {:>7} {:>7}",
            ph.name,
            pc(t.busy_ns),
            pc(t.mem_ns),
            pc(t.sync_ns()),
            format!("{:.1}%", 100.0 * t.total_ns() as f64 / grand as f64),
        );
    }

    let trace = stats.trace.as_ref().expect("tracing was enabled");
    println!(
        "trace: {} span track(s), {} instant(s), {} gauge sample(s)",
        trace.spans.len(),
        trace.instants.len(),
        trace.gauges.len()
    );
    std::fs::write(&out, trace.to_chrome_json("phase_trace example")).expect("write trace");
    println!("wrote {out} — open it at https://ui.perfetto.dev or chrome://tracing");
}
