//! Race-detection demo: two deliberately broken micro-workloads and the
//! exact findings the sanitizer produces for them.
//!
//! 1. **Unsynchronized counter** — every processor read-modify-writes one
//!    shared word with no lock; the happens-before engine reports exactly
//!    one race on the counter's word, with both accesses' context.
//! 2. **Barrier divergence** — processor 1 skips a barrier the others
//!    wait at; the run deadlocks and the error carries the
//!    `barrier-divergence` lint naming who never arrived.
//!
//! Run with: `cargo run --release -p ccnuma-sim --example race_demo`

use ccnuma_sim::config::MachineConfig;
use ccnuma_sim::error::SimError;
use ccnuma_sim::machine::{Machine, Placement};

const NPROCS: usize = 4;

fn cfg() -> MachineConfig {
    let mut c = MachineConfig::origin2000_scaled(NPROCS, 16 << 10);
    c.sanitize.enabled = true;
    c
}

/// A counter bumped by every processor without any synchronization.
fn unsynchronized_counter() {
    let mut m = Machine::new(cfg()).unwrap();
    let x = m.shared_vec::<u64>(1, Placement::Blocked);
    let word = x.addr_of(0) & !7;
    let x2 = x.clone();
    let stats = m
        .run(move |ctx| {
            ctx.phase("bump");
            for _ in 0..8 {
                x2.update(ctx, 0, |v| v + 1);
                ctx.compute_ops(1);
            }
        })
        .unwrap();

    let rep = stats.sanitize.expect("sanitizer was enabled");
    println!("unsynchronized counter: {}", rep.summary());
    for r in &rep.races {
        println!("  race on {:#x}+{}:", r.addr, r.bytes);
        println!("    prior:   {}", r.prior);
        println!("    current: {}", r.current);
    }
    // The lost updates are real: the final value is below NPROCS * 8
    // whenever increments interleaved, and the sanitizer flags the cause
    // as exactly one racy word.
    assert_eq!(rep.counts(), [1, 0, 0]);
    assert_eq!(rep.races[0].addr, word);
    assert_eq!(rep.races[0].bytes, 8);
    assert!(rep.races[0].prior.is_write || rep.races[0].current.is_write);
}

/// Processor 1 returns without arriving at the barrier the rest wait at.
fn barrier_divergence() {
    let mut m = Machine::new(cfg()).unwrap();
    let b = m.barrier();
    let err = m
        .run(move |ctx| {
            if ctx.id() != 1 {
                ctx.barrier(b);
            }
        })
        .unwrap_err();

    println!("barrier divergence: {err}");
    match err {
        SimError::Deadlock(msg) => {
            assert!(msg.contains("barrier-divergence"), "{msg}");
            assert!(msg.contains("barrier 0"), "{msg}");
            assert!(msg.contains("[1] never did"), "{msg}");
        }
        other => panic!("expected deadlock, got {other}"),
    }
}

fn main() {
    unsynchronized_counter();
    barrier_divergence();
    println!("both planted defects reported exactly");
}
