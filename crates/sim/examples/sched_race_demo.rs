//! Schedule-exploration demo: a planted race the **default** schedule
//! provably masks, and the seeded schedule explorer finds.
//!
//! The defect: processor 0 writes a shared word *before* taking a lock it
//! then immediately releases; processor 1 takes the same lock and reads
//! the word *after* releasing it. The accesses are not ordered by design
//! — only by luck. Under the engine's default FIFO grant order processor
//! 0 (which enqueues first) always gets the lock first, so its release
//! happens-before processor 1's acquire and the race detector sees a
//! clean chain:
//!
//! ```text
//! write X → unlock L ──grant──▶ lock L → read X        (default: masked)
//! ```
//!
//! Perturbing the lock-grant order (`--schedules 8` seed sweep) grants
//! processor 1 first, breaking the accidental chain and exposing the
//! write/read race on X. The demo asserts the default schedule reports
//! nothing, that some seed in 1..=8 reports exactly the planted race, and
//! that replaying the first exposing seed is bit-identical.
//!
//! Run with: `cargo run --release -p ccnuma-sim --example sched_race_demo`

use ccnuma_sim::config::MachineConfig;
use ccnuma_sim::machine::{Machine, Placement};
use ccnuma_sim::schedule::ScheduleConfig;
use ccnuma_sim::stats::RunStats;

const NPROCS: usize = 4;

fn cfg(schedule: Option<ScheduleConfig>) -> MachineConfig {
    let mut c = MachineConfig::origin2000_scaled(NPROCS, 16 << 10);
    c.sanitize.enabled = true;
    c.schedule = schedule;
    c
}

/// Runs the planted workload, returning the stats and the racy word.
fn planted(schedule: Option<ScheduleConfig>) -> (RunStats, u64) {
    let mut m = Machine::new(cfg(schedule)).unwrap();
    let x = m.shared_vec::<u64>(1, Placement::Blocked);
    let word = x.addr_of(0) & !7;
    let l = m.lock();
    let x2 = x.clone();
    let stats = m
        .run(move |ctx| {
            ctx.phase("publish");
            match ctx.id() {
                // Holds the lock long enough for 0 and 1 to both queue up,
                // making the grant order a real scheduling decision.
                2 => {
                    ctx.lock(l);
                    ctx.compute_ns(1_000_000);
                    ctx.unlock(l);
                }
                // Publishes outside the critical section — the bug.
                0 => {
                    ctx.compute_ns(5_000);
                    x2.write(ctx, 0, 42);
                    ctx.lock(l);
                    ctx.unlock(l);
                }
                // Consumes after its own critical section; ordered after
                // proc 0's write only if proc 0 got the lock first.
                1 => {
                    ctx.compute_ns(10_000);
                    ctx.lock(l);
                    ctx.unlock(l);
                    let _ = x2.read(ctx, 0);
                }
                _ => ctx.compute_ns(1_000),
            }
        })
        .unwrap();
    (stats, word)
}

fn main() {
    // 1. The default schedule masks the race: FIFO grant order strings
    //    the accesses onto one release→acquire chain.
    let (default_stats, word) = planted(None);
    let rep = default_stats.sanitize.as_ref().unwrap();
    println!("default schedule: {}", rep.summary());
    assert!(rep.is_clean(), "default schedule must mask the race");

    // 2. A seed sweep (what `bench sanitize --schedules 8` runs per cell)
    //    flips the grant and exposes it.
    let mut first_seed = None;
    for seed in 1..=8u64 {
        let (stats, w) = planted(Some(ScheduleConfig::random(seed)));
        let rep = stats.sanitize.unwrap();
        println!("seed {seed}: {}", rep.summary());
        if !rep.races.is_empty() {
            assert_eq!(rep.counts(), [1, 0, 0], "exactly the planted race");
            let r = &rep.races[0];
            assert_eq!(r.addr, w, "race lands on the published word");
            assert_eq!(r.bytes, 8);
            assert!(r.prior.is_write != r.current.is_write, "write/read pair");
            assert_eq!(r.prior.phase, "publish");
            first_seed.get_or_insert(seed);
        }
    }
    let first_seed = first_seed.expect("some seed in 1..=8 must expose the race");
    println!("first exposing seed: {first_seed}");

    // 3. Seed replay is bit-identical: rerunning the exposing seed
    //    reproduces the finding (and the whole run) exactly.
    let (a, _) = planted(Some(ScheduleConfig::random(first_seed)));
    let (b, _) = planted(Some(ScheduleConfig::random(first_seed)));
    assert_eq!(a, b, "seed replay must be bit-identical");
    assert_eq!(a.sanitize.as_ref().unwrap().races[0].addr, word);

    println!("masked race found by schedule exploration and replayed bit-identically");
}
