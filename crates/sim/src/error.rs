//! Error types for the simulator.

use std::error::Error;
use std::fmt;

/// An invalid [`crate::config::MachineConfig`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ConfigError {
    /// Processor count is zero or exceeds [`crate::config::MAX_PROCS`].
    BadProcCount(usize),
    /// Zero processors per node or nodes per router.
    BadNodeShape,
    /// Page or line size is not a power of two.
    NotPowerOfTwo,
    /// Page size is smaller than the cache line size.
    PageSmallerThanLine,
    /// Cache size, associativity and line size are inconsistent.
    BadCacheGeometry,
    /// Per-node memory cannot hold even one page.
    BadMemoryCapacity,
    /// The process mapping is not a valid permutation for the machine shape.
    BadMapping(String),
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::BadProcCount(n) => {
                write!(f, "processor count {n} outside 1..={}", crate::config::MAX_PROCS)
            }
            ConfigError::BadNodeShape => write!(f, "processors per node and nodes per router must be positive"),
            ConfigError::NotPowerOfTwo => write!(f, "page and cache line sizes must be powers of two"),
            ConfigError::PageSmallerThanLine => write!(f, "page size is smaller than the cache line size"),
            ConfigError::BadCacheGeometry => write!(f, "cache size must be a power-of-two number of sets times associativity times line size"),
            ConfigError::BadMemoryCapacity => write!(f, "per-node memory must hold at least one page"),
            ConfigError::BadMapping(msg) => write!(f, "invalid process mapping: {msg}"),
        }
    }
}

impl Error for ConfigError {}

/// A failure while running a simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SimError {
    /// The configuration failed validation.
    Config(ConfigError),
    /// Every runnable processor is blocked on a lock or barrier: the
    /// application deadlocked. The message lists the blocked processors.
    Deadlock(String),
    /// An application thread panicked; the payload is its panic message.
    AppPanic(String),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Config(e) => write!(f, "invalid machine configuration: {e}"),
            SimError::Deadlock(who) => write!(f, "application deadlocked: {who}"),
            SimError::AppPanic(msg) => write!(f, "application panicked: {msg}"),
        }
    }
}

impl Error for SimError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SimError::Config(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ConfigError> for SimError {
    fn from(e: ConfigError) -> Self {
        SimError::Config(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display_and_chain() {
        let e = SimError::from(ConfigError::BadProcCount(0));
        assert!(e.to_string().contains("processor count"));
        assert!(e.source().is_some());
        let d = SimError::Deadlock("procs [1, 2] at barrier 0".into());
        assert!(d.to_string().contains("deadlocked"));
        assert!(d.source().is_none());
    }

    #[test]
    fn errors_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ConfigError>();
        assert_send_sync::<SimError>();
    }
}
