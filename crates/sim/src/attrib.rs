//! Miss-cause classification and contention attribution.
//!
//! The paper never stops at "memory stall is large": every scaling anomaly
//! is explained by *which kind* of miss dominates (cold / capacity /
//! conflict vs. coherence, true vs. false sharing) and *where* the latency
//! is spent (Hub, memory bank, directory, network — occupancy vs. raw
//! transit). This module holds the vocabulary for that causal layer:
//!
//! * [`MissCause`] — the five-way miss taxonomy, including true/false
//!   sharing split by per-word access footprints on invalidated lines.
//! * [`ResourceClass`] — the four resource buckets every nanosecond of a
//!   serviced access is attributed to.
//! * [`LatencyBreakdown`] — the exact (service, queueing) split of one
//!   access's latency per resource; the sum always equals the latency
//!   charged to the processor, to the nanosecond.
//!
//! The memory system fills these in ([`crate::memsys::Outcome`]), the
//! engine accumulates them into [`crate::stats::ProcStats`] and per-phase
//! slices, and the study crates render the paper-style tables.

use crate::page::Addr;
use crate::time::Ns;

/// Why an L2 miss happened — the full taxonomy the paper's analysis uses
/// (tracked only when
/// [`MachineConfig::classify_misses`](crate::config::MachineConfig::classify_misses)
/// is set).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MissCause {
    /// First access to this line by this processor.
    Cold,
    /// The line was evicted while the whole cache was full.
    Capacity,
    /// The line was evicted from a full set while other sets had room
    /// (mapping pressure, not size pressure).
    Conflict,
    /// Invalidated by another processor's write to words this processor
    /// actually accessed — communication the algorithm asked for.
    CoherenceTrueShare,
    /// Invalidated by a write to *different* words of the same line —
    /// an artifact of line granularity (the paper's padding discussion).
    CoherenceFalseShare,
}

impl MissCause {
    /// All causes, in reporting order.
    pub const ALL: [MissCause; 5] = [
        MissCause::Cold,
        MissCause::Capacity,
        MissCause::Conflict,
        MissCause::CoherenceTrueShare,
        MissCause::CoherenceFalseShare,
    ];

    /// Stable index into per-cause arrays (see [`CAUSE_SLOTS`]).
    #[inline]
    pub const fn index(self) -> usize {
        match self {
            MissCause::Cold => 0,
            MissCause::Capacity => 1,
            MissCause::Conflict => 2,
            MissCause::CoherenceTrueShare => 3,
            MissCause::CoherenceFalseShare => 4,
        }
    }

    /// Short display name (`"cold"`, `"capacity"`, `"conflict"`,
    /// `"coh-true"`, `"coh-false"`).
    pub fn name(self) -> &'static str {
        match self {
            MissCause::Cold => "cold",
            MissCause::Capacity => "capacity",
            MissCause::Conflict => "conflict",
            MissCause::CoherenceTrueShare => "coh-true",
            MissCause::CoherenceFalseShare => "coh-false",
        }
    }

    /// Whether this is a coherence (invalidation-induced) miss.
    #[inline]
    pub fn is_coherence(self) -> bool {
        matches!(
            self,
            MissCause::CoherenceTrueShare | MissCause::CoherenceFalseShare
        )
    }
}

/// Slots of a per-cause accumulator: the five [`MissCause`]s plus one
/// extra slot ([`CAUSE_OTHER`]) for stall that has no miss cause — cache
/// hits with residual in-flight waits, upgrades, and misses recorded while
/// classification is disabled.
pub const CAUSE_SLOTS: usize = 6;

/// Index of the "no cause" slot in a `[_; CAUSE_SLOTS]` accumulator.
pub const CAUSE_OTHER: usize = 5;

/// Display name for a cause slot, including the extra [`CAUSE_OTHER`] one.
pub fn cause_slot_name(i: usize) -> &'static str {
    match i {
        0..=4 => MissCause::ALL[i].name(),
        _ => "(other)",
    }
}

/// The resource buckets latency is attributed to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResourceClass {
    /// A node's Hub (memory/coherence controller).
    Hub,
    /// A node's memory bank.
    Mem,
    /// Directory/protocol processing at the home (includes invalidation
    /// fan-out; in this model directory *queueing* shows up at the home
    /// Hub and memory, so this bucket is pure service time).
    Dir,
    /// Routers, metarouters and links.
    Net,
}

impl ResourceClass {
    /// All resource classes, in reporting order.
    pub const ALL: [ResourceClass; 4] = [
        ResourceClass::Hub,
        ResourceClass::Mem,
        ResourceClass::Dir,
        ResourceClass::Net,
    ];

    /// Stable index into the arrays of [`LatencyBreakdown`].
    #[inline]
    pub const fn index(self) -> usize {
        match self {
            ResourceClass::Hub => 0,
            ResourceClass::Mem => 1,
            ResourceClass::Dir => 2,
            ResourceClass::Net => 3,
        }
    }

    /// Short display name (`"hub"`, `"memory"`, `"directory"`,
    /// `"network"`).
    pub fn name(self) -> &'static str {
        match self {
            ResourceClass::Hub => "hub",
            ResourceClass::Mem => "memory",
            ResourceClass::Dir => "directory",
            ResourceClass::Net => "network",
        }
    }
}

/// Exact per-resource (service, queueing) decomposition of one access's
/// latency — or, accumulated, of a processor's whole memory stall.
///
/// Invariant, maintained by the memory system for every
/// [`Outcome`](crate::memsys::Outcome): `total() == outcome.latency`,
/// to the nanosecond. Queueing entries come straight from the contention
/// model's [`acquire`](crate::contend::Resource::acquire) waits; service
/// entries partition the uncontended restart latency plus explicit transit
/// charges.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct LatencyBreakdown {
    /// Uncontended service time per resource, indexed by
    /// [`ResourceClass::index`].
    pub service: [Ns; 4],
    /// Queueing delay per resource, indexed by [`ResourceClass::index`].
    pub queue: [Ns; 4],
    /// Latency in neither bucket: L2 hit time and residual waits on lines
    /// still in flight from a prefetch.
    pub other_ns: Ns,
}

impl LatencyBreakdown {
    /// Total uncontended service time.
    pub fn service_total(&self) -> Ns {
        self.service.iter().sum()
    }

    /// Total queueing delay.
    pub fn queue_total(&self) -> Ns {
        self.queue.iter().sum()
    }

    /// Everything: service + queueing + other. Equals the latency charged
    /// to the processor for the access(es) this breakdown covers.
    pub fn total(&self) -> Ns {
        self.service_total() + self.queue_total() + self.other_ns
    }

    /// Accumulates another breakdown into this one.
    pub fn add(&mut self, o: &LatencyBreakdown) {
        for i in 0..4 {
            self.service[i] += o.service[i];
            self.queue[i] += o.queue[i];
        }
        self.other_ns += o.other_ns;
    }

    /// The (service, queue) pair for one resource class.
    pub fn get(&self, r: ResourceClass) -> (Ns, Ns) {
        (self.service[r.index()], self.queue[r.index()])
    }
}

/// Word-granular (8-byte) access footprint of the byte range
/// `[lo, hi)` within the line starting at `line_base`, as a bit mask
/// (bit *i* = word *i* of the line; words beyond 64 clamp into bit 63).
///
/// Returns 0 when the range does not intersect the line.
pub fn word_mask(line_base: Addr, line_bytes: u64, lo: Addr, hi: Addr) -> u64 {
    let line_end = line_base + line_bytes;
    let lo = lo.max(line_base);
    let hi = hi.min(line_end);
    if lo >= hi {
        return 0;
    }
    let first = (lo - line_base) / 8;
    let last = (hi - 1 - line_base) / 8;
    let mut mask = 0u64;
    for w in first..=last {
        mask |= 1u64 << w.min(63);
    }
    mask
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn breakdown_total_sums_all_buckets() {
        let mut b = LatencyBreakdown::default();
        b.service[ResourceClass::Hub.index()] = 10;
        b.queue[ResourceClass::Mem.index()] = 20;
        b.service[ResourceClass::Dir.index()] = 5;
        b.other_ns = 7;
        assert_eq!(b.service_total(), 15);
        assert_eq!(b.queue_total(), 20);
        assert_eq!(b.total(), 42);
        let mut c = b;
        c.add(&b);
        assert_eq!(c.total(), 84);
        assert_eq!(c.get(ResourceClass::Mem), (0, 40));
    }

    #[test]
    fn cause_indices_are_stable_and_named() {
        for (i, c) in MissCause::ALL.iter().enumerate() {
            assert_eq!(c.index(), i);
            assert_eq!(cause_slot_name(i), c.name());
        }
        assert_eq!(cause_slot_name(CAUSE_OTHER), "(other)");
        assert!(MissCause::CoherenceFalseShare.is_coherence());
        assert!(!MissCause::Conflict.is_coherence());
    }

    #[test]
    fn word_masks_cover_intersections() {
        // Line [0, 128): word 0 is bytes [0, 8).
        assert_eq!(word_mask(0, 128, 0, 8), 0b1);
        assert_eq!(word_mask(0, 128, 8, 16), 0b10);
        assert_eq!(word_mask(0, 128, 0, 128), 0xFFFF);
        // Disjoint byte ranges on one line → disjoint masks.
        let a = word_mask(0, 128, 0, 8);
        let b = word_mask(0, 128, 64, 72);
        assert_eq!(a & b, 0);
        // Crossing accesses clip to the line.
        assert_eq!(word_mask(128, 128, 120, 136), 0b1);
        // No intersection → empty mask.
        assert_eq!(word_mask(0, 128, 128, 256), 0);
        // Huge lines clamp into bit 63 instead of overflowing.
        assert_eq!(word_mask(0, 1024, 1016, 1024), 1u64 << 63);
    }
}
