//! The conservative discrete-event execution engine.
//!
//! One OS thread runs each simulated processor's application body. The
//! engine advances virtual time by processing thread requests in virtual
//! time order: a request is only processed once every unblocked thread has
//! submitted its next request (so no earlier-in-virtual-time work can still
//! appear), which makes runs deterministic regardless of host scheduling.

use std::collections::BinaryHeap;
use std::cmp::Reverse;

use crossbeam_channel::{Receiver, Sender};

use crate::config::{BarrierImpl, LockImpl, MachineConfig};
use crate::error::SimError;
use crate::memsys::{AccessClass, AccessKind, MemorySystem, MissOrigin, Outcome};
use crate::profile::Profiler;
use crate::page::Addr;
use crate::proto::{MemOp, OpKind, Reply, Request};
use crate::stats::{ProcStats, RunStats};
use crate::sync::{BarrierState, LockState, SemState};
use crate::time::Ns;

/// An atomic fetch&add cell.
pub(crate) struct FetchCell {
    pub addr: Addr,
    pub value: i64,
}

/// All synchronization object state for one run.
pub(crate) struct SyncTables {
    pub locks: Vec<LockState>,
    pub barriers: Vec<BarrierState>,
    pub sems: Vec<SemState>,
    pub cells: Vec<FetchCell>,
}

struct ProcRuntime {
    clock: Ns,
    stats: ProcStats,
    pending: Option<Request>,
    /// Thread is executing application code (we owe nothing, it owes a request).
    running: bool,
    /// Human-readable reason while parked on a sync object.
    parked_on: Option<String>,
    done: bool,
}

pub(crate) struct Engine {
    cfg: MachineConfig,
    mem: MemorySystem,
    sync: SyncTables,
    procs: Vec<ProcRuntime>,
    heap: BinaryHeap<Reverse<(Ns, usize)>>,
    reply_tx: Vec<Sender<Reply>>,
    req_rx: Receiver<(usize, Request)>,
    done_count: usize,
    log2p: u32,
    profiler: Profiler,
}

impl Engine {
    pub(crate) fn new(
        cfg: MachineConfig,
        mem: MemorySystem,
        sync: SyncTables,
        reply_tx: Vec<Sender<Reply>>,
        req_rx: Receiver<(usize, Request)>,
        profiler: Profiler,
    ) -> Self {
        let n = cfg.nprocs;
        Engine {
            log2p: (n.max(2) as u32).next_power_of_two().trailing_zeros(),
            cfg,
            mem,
            sync,
            procs: (0..n)
                .map(|_| ProcRuntime {
                    clock: 0,
                    stats: ProcStats::default(),
                    pending: None,
                    running: true,
                    parked_on: None,
                    done: false,
                })
                .collect(),
            heap: BinaryHeap::new(),
            reply_tx,
            req_rx,
            done_count: 0,
            profiler,
        }
    }

    /// Runs the event loop to completion.
    pub(crate) fn run(mut self) -> Result<RunStats, SimError> {
        let n = self.procs.len();
        loop {
            // Drain already-arrived requests without blocking. An error
            // (empty or disconnected) just means nothing more has arrived;
            // disconnection is fine — final requests are already queued.
            while let Ok((p, req)) = self.req_rx.try_recv() {
                self.accept(p, req)?;
            }
            if self.done_count == n {
                break;
            }
            // Frontier: the earliest virtual time at which a still-running
            // thread could submit new work.
            let frontier = self
                .procs
                .iter()
                .filter(|p| p.running && !p.done)
                .map(|p| p.clock)
                .min();
            // Strict inequality: a running processor whose clock equals the
            // heap minimum could still submit a request at that same time
            // with a smaller processor id, and the (time, pid) tie must be
            // broken by the heap, not by host thread timing — otherwise
            // runs would not be bit-deterministic.
            let can_pop = match (self.heap.peek(), frontier) {
                (Some(&Reverse((t, _))), Some(f)) => t < f,
                (Some(_), None) => true,
                (None, _) => false,
            };
            if can_pop {
                let Reverse((_, p)) = self.heap.pop().expect("peeked");
                self.process(p)?;
            } else if frontier.is_some() {
                // Block until a running thread submits.
                match self.req_rx.recv() {
                    Ok((p, req)) => self.accept(p, req)?,
                    Err(_) => {
                        return Err(SimError::AppPanic(
                            "an application thread exited without finishing".into(),
                        ))
                    }
                }
            } else {
                // Nothing runnable, nothing pending: deadlock.
                let blocked: Vec<String> = self
                    .procs
                    .iter()
                    .enumerate()
                    .filter_map(|(i, p)| {
                        p.parked_on.as_ref().map(|r| format!("proc {i} on {r}"))
                    })
                    .collect();
                return Err(SimError::Deadlock(blocked.join(", ")));
            }
        }
        let wall = self.procs.iter().map(|p| p.stats.finish_ns).max().unwrap_or(0);
        Ok(RunStats {
            procs: self.procs.into_iter().map(|p| p.stats).collect(),
            wall_ns: wall,
            page_migrations: self.mem.page_migrations(),
            resources: self.mem.contention.summary(),
            ranges: self.profiler.into_profiles(),
        })
    }

    fn accept(&mut self, p: usize, req: Request) -> Result<(), SimError> {
        if let Request::Panic(msg) = req {
            return Err(SimError::AppPanic(msg));
        }
        debug_assert!(self.procs[p].pending.is_none(), "proc {p} double-submitted");
        self.procs[p].running = false;
        self.procs[p].pending = Some(req);
        self.heap.push(Reverse((self.procs[p].clock, p)));
        Ok(())
    }

    fn reply(&mut self, p: usize, value: i64) {
        self.procs[p].running = true;
        self.procs[p].parked_on = None;
        // A send failure means the thread died; the engine will notice via
        // the request channel.
        let _ = self.reply_tx[p].send(Reply { value });
    }

    fn apply_outcome(stats: &mut ProcStats, clock: &mut Ns, kind: AccessKind, o: &Outcome) {
        match kind {
            AccessKind::Read => stats.reads += 1,
            AccessKind::Write => stats.writes += 1,
        }
        match o.class {
            AccessClass::Hit => stats.hits += 1,
            AccessClass::LocalMiss => stats.misses_local += 1,
            AccessClass::RemoteClean => stats.misses_remote_clean += 1,
            AccessClass::RemoteDirty => stats.misses_remote_dirty += 1,
            AccessClass::Upgrade => stats.upgrades += 1,
        }
        stats.mem_ns += o.latency;
        if o.home_local {
            stats.mem_local_ns += o.latency;
        } else {
            stats.mem_remote_ns += o.latency;
        }
        stats.invals_sent += u64::from(o.invals);
        stats.writebacks += u64::from(o.writeback);
        stats.prefetch_late += u64::from(o.late_prefetch);
        match o.miss_origin {
            Some(MissOrigin::Cold) => stats.misses_cold += 1,
            Some(MissOrigin::Coherence) => stats.misses_coherence += 1,
            Some(MissOrigin::Capacity) => stats.misses_capacity += 1,
            None => {}
        }
        *clock += o.latency;
    }

    fn apply_ops(&mut self, p: usize, busy: Ns, ops: &[MemOp]) {
        let rt = &mut self.procs[p];
        rt.stats.busy_ns += busy;
        rt.clock += busy;
        let line_bytes = self.mem.line_bytes();
        for op in ops {
            let first = op.addr / line_bytes;
            let last = (op.addr + op.bytes - 1) / line_bytes;
            for line in first..=last {
                let addr = line * line_bytes;
                match op.kind {
                    OpKind::Read => {
                        let o = self.mem.access(p, addr, AccessKind::Read, self.procs[p].clock);
                        if !self.profiler.is_empty() {
                            self.profiler.attribute(addr, AccessKind::Read, &o);
                        }
                        let rt = &mut self.procs[p];
                        Self::apply_outcome(&mut rt.stats, &mut rt.clock, AccessKind::Read, &o);
                    }
                    OpKind::Write => {
                        let o = self.mem.access(p, addr, AccessKind::Write, self.procs[p].clock);
                        if !self.profiler.is_empty() {
                            self.profiler.attribute(addr, AccessKind::Write, &o);
                        }
                        let rt = &mut self.procs[p];
                        Self::apply_outcome(&mut rt.stats, &mut rt.clock, AccessKind::Write, &o);
                    }
                    OpKind::Prefetch => {
                        let (issue, _fill) = self.mem.prefetch(p, addr, self.procs[p].clock);
                        let rt = &mut self.procs[p];
                        rt.stats.prefetches += 1;
                        rt.stats.busy_ns += issue;
                        rt.clock += issue;
                    }
                }
            }
        }
    }

    /// Cost of an atomic RMW on `addr` under the configured lock primitive.
    fn rmw_cost(&mut self, p: usize, addr: Addr, now: Ns) -> Ns {
        match self.cfg.lock_impl {
            LockImpl::TicketLlsc => self.mem.llsc_rmw(p, addr, now).latency,
            LockImpl::TicketFetchOp => self.mem.fetchop(p, addr, now),
        }
    }

    fn process(&mut self, p: usize) -> Result<(), SimError> {
        let req = self.procs[p].pending.take().expect("heap entry without pending request");
        match req {
            Request::Ops { busy, ops } => {
                self.apply_ops(p, busy, &ops);
                self.reply(p, 0);
            }
            Request::Finish { busy, ops } => {
                self.apply_ops(p, busy, &ops);
                let rt = &mut self.procs[p];
                rt.stats.finish_ns = rt.clock;
                rt.done = true;
                rt.running = false;
                self.done_count += 1;
            }
            Request::Lock { busy, ops, id } => {
                self.apply_ops(p, busy, &ops);
                let addr = self.sync.locks[id].addr;
                let now = self.procs[p].clock;
                let cost = self.rmw_cost(p, addr, now);
                let rt = &mut self.procs[p];
                rt.stats.sync_op_ns += cost;
                rt.stats.atomics += 1;
                rt.clock += cost;
                let t = rt.clock;
                if self.sync.locks[id].acquire_or_enqueue(p, t) {
                    self.procs[p].stats.lock_acquires += 1;
                    self.reply(p, 0);
                } else {
                    self.procs[p].parked_on = Some(format!("lock {id}"));
                }
            }
            Request::Unlock { busy, ops, id } => {
                self.apply_ops(p, busy, &ops);
                let addr = self.sync.locks[id].addr;
                let now = self.procs[p].clock;
                // Releasing writes the lock word; usually a cache hit for
                // the holder under LL/SC, an at-memory op under fetch&op.
                let cost = match self.cfg.lock_impl {
                    LockImpl::TicketLlsc => {
                        self.mem.access(p, addr, AccessKind::Write, now).latency
                    }
                    LockImpl::TicketFetchOp => self.mem.fetchop(p, addr, now),
                };
                self.procs[p].stats.sync_op_ns += cost;
                self.procs[p].clock += cost;
                let release_t = self.procs[p].clock;
                if let Some((w, arrived)) = self.sync.locks[id].release(p) {
                    // The release can complete before the waiter's acquire
                    // attempt has (they overlap in virtual time); the grant
                    // happens at whichever is later.
                    let grant_t = release_t.max(arrived);
                    // Hand off: the new holder pulls the lock line over.
                    let handoff = self.rmw_cost(w, addr, grant_t);
                    let rt = &mut self.procs[w];
                    rt.stats.sync_wait_ns += grant_t - arrived;
                    rt.stats.sync_op_ns += handoff;
                    rt.stats.lock_acquires += 1;
                    rt.clock = grant_t + handoff;
                    self.reply(w, 0);
                }
                self.reply(p, 0);
            }
            Request::Barrier { busy, ops, id } => {
                self.apply_ops(p, busy, &ops);
                let addr = self.sync.barriers[id].addr;
                let now = self.procs[p].clock;
                let arrive_cost = match self.cfg.barrier_impl {
                    BarrierImpl::TournamentLlsc => {
                        // log₂P stages of flag updates, mostly remote.
                        Ns::from(self.log2p)
                            * (self.cfg.latency.llsc_extra_ns
                                + self.cfg.latency.remote_clean_ns / 2)
                    }
                    BarrierImpl::CentralLlsc => self.mem.llsc_rmw(p, addr, now).latency,
                    BarrierImpl::CentralFetchOp => self.mem.fetchop(p, addr, now),
                };
                let rt = &mut self.procs[p];
                rt.stats.sync_op_ns += arrive_cost;
                rt.clock += arrive_cost;
                let t = rt.clock;
                if let Some(mut arrivals) = self.sync.barriers[id].arrive(p, t) {
                    let release_t = arrivals.iter().map(|&(_, a)| a).max().unwrap_or(t);
                    arrivals.sort_unstable();
                    for (w, arrived) in arrivals {
                        let wake_cost = match self.cfg.barrier_impl {
                            BarrierImpl::TournamentLlsc => {
                                Ns::from(self.log2p) * self.cfg.latency.link_ns
                            }
                            BarrierImpl::CentralLlsc => self
                                .mem
                                .access(w, addr, AccessKind::Read, release_t)
                                .latency,
                            BarrierImpl::CentralFetchOp => self.mem.fetchop(w, addr, release_t),
                        };
                        let rt = &mut self.procs[w];
                        rt.stats.sync_wait_ns += release_t.saturating_sub(arrived);
                        rt.stats.sync_op_ns += wake_cost;
                        rt.stats.barriers += 1;
                        rt.clock = release_t + wake_cost;
                        self.reply(w, 0);
                    }
                } else {
                    self.procs[p].parked_on = Some(format!("barrier {id}"));
                }
            }
            Request::FetchAdd { busy, ops, id, delta } => {
                self.apply_ops(p, busy, &ops);
                let addr = self.sync.cells[id].addr;
                let now = self.procs[p].clock;
                let cost = self.rmw_cost(p, addr, now);
                let rt = &mut self.procs[p];
                rt.stats.sync_op_ns += cost;
                rt.stats.atomics += 1;
                rt.clock += cost;
                let prev = self.sync.cells[id].value;
                self.sync.cells[id].value += delta;
                self.reply(p, prev);
            }
            Request::SemWait { busy, ops, id } => {
                self.apply_ops(p, busy, &ops);
                let addr = self.sync.sems[id].addr;
                let now = self.procs[p].clock;
                let cost = self.rmw_cost(p, addr, now);
                let rt = &mut self.procs[p];
                rt.stats.sync_op_ns += cost;
                rt.stats.atomics += 1;
                rt.clock += cost;
                let t = rt.clock;
                if self.sync.sems[id].wait_or_enqueue(p, t) {
                    self.reply(p, 0);
                } else {
                    self.procs[p].parked_on = Some(format!("semaphore {id}"));
                }
            }
            Request::SemPost { busy, ops, id, n } => {
                self.apply_ops(p, busy, &ops);
                let addr = self.sync.sems[id].addr;
                let now = self.procs[p].clock;
                let cost = self.rmw_cost(p, addr, now);
                let rt = &mut self.procs[p];
                rt.stats.sync_op_ns += cost;
                rt.stats.atomics += 1;
                rt.clock += cost;
                let t = rt.clock;
                for (w, arrived) in self.sync.sems[id].post(n) {
                    let grant_t = t.max(arrived);
                    let wake = self.mem.access(w, addr, AccessKind::Read, grant_t).latency;
                    let rt = &mut self.procs[w];
                    rt.stats.sync_wait_ns += grant_t - arrived;
                    rt.stats.sync_op_ns += wake;
                    rt.clock = grant_t + wake;
                    self.reply(w, 0);
                }
                self.reply(p, 0);
            }
            Request::Panic(_) => unreachable!("handled in accept"),
        }
        Ok(())
    }
}
