//! The conservative discrete-event execution engine.
//!
//! One OS thread runs each simulated processor's application body. The
//! engine advances virtual time by processing thread requests in virtual
//! time order: a request is only processed once every unblocked thread has
//! submitted its next request (so no earlier-in-virtual-time work can still
//! appear), which makes runs deterministic regardless of host scheduling.
//!
//! All time charged to a processor flows through the `charge_*` helpers,
//! which update the per-processor totals, the per-phase accumulators and
//! (when enabled) the event trace together, so the three views reconcile
//! by construction.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::mpsc::{Receiver, SyncSender};

use crate::attrib::{word_mask, MissCause, CAUSE_OTHER};
use crate::config::{BarrierImpl, LockImpl, MachineConfig};
use crate::critpath::{CritCollector, Dep, WaitKind};
use crate::error::SimError;
use crate::live::{LiveDelta, LIVE};
use crate::memsys::{AccessClass, AccessKind, MemorySystem, Outcome};
use crate::page::Addr;
use crate::prof::{self, Region};
use crate::profile::Profiler;
use crate::proto::{MemOp, OpKind, Reply, Request};
use crate::sanitize::Sanitizer;
use crate::schedule::Perturber;
use crate::stats::{PhaseBreakdown, PhaseStats, ProcStats, RunStats};
use crate::sync::{BarrierState, LockState, SemState};
use crate::time::Ns;
use crate::trace::{gauge_totals, InstantKind, SpanKind, TraceBuffer};

/// An atomic fetch&add cell.
pub(crate) struct FetchCell {
    pub addr: Addr,
    pub value: i64,
}

/// All synchronization object state for one run.
pub(crate) struct SyncTables {
    pub locks: Vec<LockState>,
    pub barriers: Vec<BarrierState>,
    pub sems: Vec<SemState>,
    pub cells: Vec<FetchCell>,
}

struct ProcRuntime {
    clock: Ns,
    stats: ProcStats,
    /// Interned id of the phase this processor is currently in.
    phase: u32,
    pending: Option<Request>,
    /// Thread is executing application code (we owe nothing, it owes a request).
    running: bool,
    /// Human-readable reason while parked on a sync object.
    parked_on: Option<String>,
    done: bool,
}

pub(crate) struct Engine {
    cfg: MachineConfig,
    mem: MemorySystem,
    sync: SyncTables,
    procs: Vec<ProcRuntime>,
    heap: BinaryHeap<Reverse<(Ns, usize)>>,
    reply_tx: Vec<SyncSender<Reply>>,
    req_rx: Receiver<(usize, Request)>,
    done_count: usize,
    log2p: u32,
    profiler: Profiler,
    tracer: TraceBuffer,
    /// Interned phase names; id 0 is the implicit `"main"` phase.
    phase_names: Vec<String>,
    /// Per-processor, per-phase time accumulators.
    phase_acc: Vec<Vec<PhaseBreakdown>>,
    /// Virtual time at which each lock was last acquired (for hold spans).
    lock_hold_start: Vec<Ns>,
    /// Happens-before sanitizer, when `cfg.sanitize.enabled` is set.
    /// Purely observational: it is never consulted for timing.
    sanitizer: Option<Box<Sanitizer>>,
    /// Critical-path collector, when `cfg.critpath` is set. Purely
    /// observational, like the sanitizer: never consulted for timing.
    critpath: Option<Box<CritCollector>>,
    /// Seeded schedule perturber, when `cfg.schedule` is set. All its
    /// decisions happen here on the coordinator thread, in deterministic
    /// event order, so a seed replays bit-identically; when `None` every
    /// choice point takes its original code path unchanged.
    sched: Option<Box<Perturber>>,
    /// Buffered deltas for the process-wide live counters
    /// ([`crate::live::LIVE`]); write-only from the engine's side.
    live: LiveDelta,
}

impl Engine {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        cfg: MachineConfig,
        mem: MemorySystem,
        sync: SyncTables,
        reply_tx: Vec<SyncSender<Reply>>,
        req_rx: Receiver<(usize, Request)>,
        profiler: Profiler,
        tracer: TraceBuffer,
        sanitizer: Option<Box<Sanitizer>>,
        critpath: Option<Box<CritCollector>>,
    ) -> Self {
        let n = cfg.nprocs;
        let nlocks = sync.locks.len();
        let sched = cfg.schedule.map(|sc| Box::new(Perturber::new(sc, n)));
        Engine {
            log2p: (n.max(2) as u32).next_power_of_two().trailing_zeros(),
            cfg,
            mem,
            sync,
            procs: (0..n)
                .map(|_| ProcRuntime {
                    clock: 0,
                    stats: ProcStats::default(),
                    phase: 0,
                    pending: None,
                    running: true,
                    parked_on: None,
                    done: false,
                })
                .collect(),
            heap: BinaryHeap::new(),
            reply_tx,
            req_rx,
            done_count: 0,
            profiler,
            tracer,
            phase_names: vec!["main".to_string()],
            phase_acc: (0..n).map(|_| vec![PhaseBreakdown::default()]).collect(),
            lock_hold_start: vec![0; nlocks],
            sanitizer,
            critpath,
            sched,
            live: LiveDelta::default(),
        }
    }

    /// Runs the event loop to completion.
    pub(crate) fn run(mut self) -> Result<RunStats, SimError> {
        use std::sync::atomic::Ordering::Relaxed;
        LIVE.runs_started.fetch_add(1, Relaxed);
        // Host-time self-profiling for this run; the scope flushes the
        // thread's aggregates and disables recording on every exit path.
        // Purely observational: simulated results are bit-identical with
        // it on or off.
        let _prof = prof::thread_scope(self.cfg.profile);
        let mut events: u64 = 0;
        let n = self.procs.len();
        loop {
            // Drain already-arrived requests without blocking. An error
            // (empty or disconnected) just means nothing more has arrived;
            // disconnection is fine — final requests are already queued.
            while let Ok((p, req)) = self.req_rx.try_recv() {
                self.accept(p, req)?;
            }
            if self.done_count == n {
                break;
            }
            // Frontier: the earliest virtual time at which a still-running
            // thread could submit new work.
            let frontier = self
                .procs
                .iter()
                .filter(|p| p.running && !p.done)
                .map(|p| p.clock)
                .min();
            // Strict inequality: a running processor whose clock equals the
            // heap minimum could still submit a request at that same time
            // with a smaller processor id, and the (time, pid) tie must be
            // broken by the heap, not by host thread timing — otherwise
            // runs would not be bit-deterministic.
            let can_pop = match (self.heap.peek(), frontier) {
                (Some(&Reverse((t, _))), Some(f)) => t < f,
                (Some(_), None) => true,
                (None, _) => false,
            };
            if can_pop {
                let Reverse((t, mut p)) = self.heap.pop().expect("peeked");
                if let Some(sched) = self.sched.as_deref_mut() {
                    // Same-virtual-time ties otherwise resolve lowest-pid
                    // first; let the perturber pick among the tied
                    // processors instead. Entries pushed *while* handling
                    // this event can still land at time t — they contend
                    // at the next pop, exactly as under the default order.
                    if matches!(self.heap.peek(), Some(&Reverse((t2, _))) if t2 == t) {
                        let mut tied = vec![p];
                        while let Some(&Reverse((t2, q))) = self.heap.peek() {
                            if t2 != t {
                                break;
                            }
                            self.heap.pop();
                            tied.push(q);
                        }
                        let i = sched.pick_tied(&tied);
                        p = tied.swap_remove(i);
                        for q in tied {
                            self.heap.push(Reverse((t, q)));
                        }
                    }
                    sched.tick();
                }
                // Popped times are nondecreasing, so this drives the
                // gauge sampling clock forward monotonically.
                self.sample_gauges(t);
                {
                    let _sp = prof::span(Region::EngineDispatch);
                    self.process(p)?;
                }
                events += 1;
                if self.live.event() {
                    {
                        let _sp = prof::span(Region::LiveFlush);
                        self.live.flush();
                    }
                    // Piggyback the profiler's fold-to-global on the same
                    // cadence so live observers see mid-run data.
                    prof::flush_thread();
                }
            } else if frontier.is_some() {
                // Block until a running thread submits.
                match self.req_rx.recv() {
                    Ok((p, req)) => self.accept(p, req)?,
                    Err(_) => {
                        return Err(SimError::AppPanic(
                            "an application thread exited without finishing".into(),
                        ))
                    }
                }
            } else {
                // Nothing runnable, nothing pending: deadlock.
                let blocked: Vec<String> = self
                    .procs
                    .iter()
                    .enumerate()
                    .filter_map(|(i, p)| p.parked_on.as_ref().map(|r| format!("proc {i} on {r}")))
                    .collect();
                let mut msg = blocked.join(", ");
                // A deadlocked run produces no statistics to attach the
                // sanitize report to; fold its lints (e.g. barrier
                // divergence) into the error instead.
                if let Some(san) = self.sanitizer.take() {
                    let rep = san.finalize(&self.phase_names);
                    if !rep.lints.is_empty() {
                        let lints: Vec<String> = rep
                            .lints
                            .iter()
                            .map(|l| format!("{}: {}", l.kind.name(), l.message))
                            .collect();
                        msg = format!("{msg}; sanitize: {}", lints.join("; "));
                    }
                }
                return Err(SimError::Deadlock(msg));
            }
        }
        let wall = self
            .procs
            .iter()
            .map(|p| p.stats.finish_ns)
            .max()
            .unwrap_or(0);
        self.sample_gauges(wall);
        self.live.flush();
        LIVE.sim_ns.fetch_add(wall, Relaxed);
        LIVE.runs_finished.fetch_add(1, Relaxed);
        let phase_names = std::mem::take(&mut self.phase_names);
        let sanitize = self.sanitizer.take().map(|s| s.finalize(&phase_names));
        let critpath = self.critpath.take().map(|c| c.finalize(wall, &phase_names));
        let phases: Vec<PhaseStats> = phase_names
            .iter()
            .enumerate()
            .map(|(i, name)| PhaseStats {
                name: name.clone(),
                procs: self
                    .phase_acc
                    .iter()
                    .map(|pp| pp.get(i).copied().unwrap_or_default())
                    .collect(),
            })
            .collect();
        Ok(RunStats {
            wall_ns: wall,
            events,
            page_migrations: self.mem.page_migrations(),
            resources: self.mem.contention.summary(),
            ranges: self.profiler.into_profiles(&phase_names),
            trace: self.tracer.finish(phase_names),
            phases,
            procs: self.procs.into_iter().map(|p| p.stats).collect(),
            sanitize,
            critpath,
        })
    }

    fn accept(&mut self, p: usize, req: Request) -> Result<(), SimError> {
        if let Request::Panic(msg) = req {
            return Err(SimError::AppPanic(msg));
        }
        debug_assert!(self.procs[p].pending.is_none(), "proc {p} double-submitted");
        self.procs[p].running = false;
        self.procs[p].pending = Some(req);
        self.heap.push(Reverse((self.procs[p].clock, p)));
        Ok(())
    }

    fn reply(&mut self, p: usize, value: i64) {
        self.procs[p].running = true;
        self.procs[p].parked_on = None;
        // A send failure means the thread died; the engine will notice via
        // the request channel.
        let _ = self.reply_tx[p].send(Reply { value });
    }

    /// Interns a phase name, returning its id.
    fn intern_phase(&mut self, name: &str) -> u32 {
        if let Some(i) = self.phase_names.iter().position(|n| n == name) {
            return i as u32;
        }
        self.phase_names.push(name.to_string());
        (self.phase_names.len() - 1) as u32
    }

    /// The per-phase accumulator for processor `p`'s phase `phase`.
    fn slice(&mut self, p: usize, phase: u32) -> &mut PhaseBreakdown {
        let v = &mut self.phase_acc[p];
        let i = phase as usize;
        if v.len() <= i {
            v.resize(i + 1, PhaseBreakdown::default());
        }
        &mut v[i]
    }

    /// Charges `ns` of computation to `p`, advancing its clock.
    fn charge_busy(&mut self, p: usize, ns: Ns) {
        if ns == 0 {
            return;
        }
        let rt = &mut self.procs[p];
        let (t0, ph) = (rt.clock, rt.phase);
        rt.stats.busy_ns += ns;
        rt.clock += ns;
        self.slice(p, ph).busy_ns += ns;
        self.tracer.span(p, ph, SpanKind::Busy, t0, ns);
        if let Some(cp) = self.critpath.as_deref_mut() {
            cp.busy(p, ns);
        }
    }

    /// Charges `ns` of synchronization-operation overhead to `p`,
    /// advancing its clock.
    fn charge_sync_op(&mut self, p: usize, ns: Ns) {
        if ns == 0 {
            return;
        }
        let rt = &mut self.procs[p];
        let (t0, ph) = (rt.clock, rt.phase);
        rt.stats.sync_op_ns += ns;
        rt.clock += ns;
        self.slice(p, ph).sync_op_ns += ns;
        self.tracer.span(p, ph, SpanKind::SyncOp, t0, ns);
        if let Some(cp) = self.critpath.as_deref_mut() {
            cp.sync_op(p, ns);
        }
    }

    /// Charges the wait interval `[from, until]` to `p` (the caller moves
    /// the clock to the grant time itself).
    fn charge_sync_wait(&mut self, p: usize, from: Ns, until: Ns) {
        let ns = until.saturating_sub(from);
        if ns == 0 {
            return;
        }
        let ph = self.procs[p].phase;
        self.procs[p].stats.sync_wait_ns += ns;
        self.slice(p, ph).sync_wait_ns += ns;
        self.tracer.span(p, ph, SpanKind::SyncWait, from, ns);
    }

    /// Charges one serviced memory access to `p`, advancing its clock.
    fn charge_access(&mut self, p: usize, kind: AccessKind, o: &Outcome) {
        let rt = &mut self.procs[p];
        let stats = &mut rt.stats;
        match kind {
            AccessKind::Read => stats.reads += 1,
            AccessKind::Write => stats.writes += 1,
        }
        match o.class {
            AccessClass::Hit => stats.hits += 1,
            AccessClass::LocalMiss => stats.misses_local += 1,
            AccessClass::RemoteClean => stats.misses_remote_clean += 1,
            AccessClass::RemoteDirty => stats.misses_remote_dirty += 1,
            AccessClass::Upgrade => stats.upgrades += 1,
        }
        stats.mem_ns += o.latency;
        if o.home_local {
            stats.mem_local_ns += o.latency;
        } else {
            stats.mem_remote_ns += o.latency;
        }
        stats.invals_sent += u64::from(o.invals);
        stats.writebacks += u64::from(o.writeback);
        stats.prefetch_late += u64::from(o.late_prefetch);
        stats.miss_hops += u64::from(o.hops);
        stats.mem_breakdown.add(&o.breakdown);
        let cause_slot = match o.miss_cause {
            Some(MissCause::Cold) => {
                stats.misses_cold += 1;
                MissCause::Cold.index()
            }
            Some(c @ (MissCause::CoherenceTrueShare | MissCause::CoherenceFalseShare)) => {
                stats.misses_coherence += 1;
                if c == MissCause::CoherenceFalseShare {
                    stats.misses_false_share += 1;
                }
                c.index()
            }
            Some(c @ (MissCause::Capacity | MissCause::Conflict)) => {
                stats.misses_capacity += 1;
                if c == MissCause::Conflict {
                    stats.misses_conflict += 1;
                }
                c.index()
            }
            None => CAUSE_OTHER,
        };
        stats.mem_cause_ns[cause_slot] += o.latency;
        self.live.access(
            o.class == AccessClass::Hit,
            matches!(
                o.class,
                AccessClass::LocalMiss | AccessClass::RemoteClean | AccessClass::RemoteDirty
            ),
            o.miss_cause.map(|_| cause_slot),
            o.latency,
            &o.breakdown,
        );
        let rt = &mut self.procs[p];
        let (t0, ph) = (rt.clock, rt.phase);
        rt.clock += o.latency;
        let s = self.slice(p, ph);
        s.mem_ns += o.latency;
        if o.home_local {
            s.mem_local_ns += o.latency;
        } else {
            s.mem_remote_ns += o.latency;
        }
        s.mem_breakdown.add(&o.breakdown);
        s.mem_cause_ns[cause_slot] += o.latency;
        if self.tracer.enabled() {
            let k = if o.home_local {
                SpanKind::MemLocal
            } else {
                SpanKind::MemRemote
            };
            self.tracer.span(p, ph, k, t0, o.latency);
            if o.migrated {
                self.tracer.instant(p, t0, InstantKind::PageMigration, 0);
            }
            if o.invals >= 2 {
                self.tracer
                    .instant(p, t0, InstantKind::InvalBurst, o.invals);
            }
            if o.late_prefetch {
                self.tracer.instant(p, t0, InstantKind::LatePrefetch, 0);
            }
        }
        if let Some(cp) = self.critpath.as_deref_mut() {
            cp.mem(p, o.home_local, cause_slot, o.latency, &o.breakdown);
        }
    }

    fn apply_ops(&mut self, p: usize, busy: Ns, ops: &[MemOp], san: &[MemOp]) {
        self.charge_busy(p, busy);
        if let Some(s) = self.sanitizer.as_deref_mut() {
            let _sp = prof::span(Region::Sanitize);
            for op in san {
                match op.kind {
                    OpKind::Read => s.read(p, op.addr, op.bytes),
                    OpKind::Write => s.write(p, op.addr, op.bytes),
                    OpKind::Prefetch => {}
                }
            }
        }
        if ops.is_empty() {
            return;
        }
        // One span per request's op batch, not per line: coarse enough to
        // keep profiling overhead in the noise, fine enough to split the
        // memory system from engine dispatch.
        let _sp = prof::span(Region::MemsysService);
        let line_bytes = self.mem.line_bytes();
        for op in ops {
            let first = op.addr / line_bytes;
            let last = (op.addr + op.bytes - 1) / line_bytes;
            for line in first..=last {
                let addr = line * line_bytes;
                match op.kind {
                    OpKind::Read | OpKind::Write => {
                        let kind = if op.kind == OpKind::Read {
                            AccessKind::Read
                        } else {
                            AccessKind::Write
                        };
                        // The op's true byte range, clipped to this line,
                        // is the word footprint false-sharing detection
                        // runs on.
                        let mask = word_mask(addr, line_bytes, op.addr, op.addr + op.bytes);
                        let o = self
                            .mem
                            .access_masked(p, addr, kind, self.procs[p].clock, mask);
                        if !self.profiler.is_empty() {
                            let _sp = prof::span(Region::Attrib);
                            self.profiler
                                .attribute(p, addr, kind, &o, self.procs[p].phase);
                        }
                        self.charge_access(p, kind, &o);
                    }
                    OpKind::Prefetch => {
                        let (issue, _fill) = self.mem.prefetch(p, addr, self.procs[p].clock);
                        self.procs[p].stats.prefetches += 1;
                        self.charge_busy(p, issue);
                    }
                }
            }
        }
    }

    /// Cost of an atomic RMW on `addr` under the configured lock primitive.
    fn rmw_cost(&mut self, p: usize, addr: Addr, now: Ns) -> Ns {
        match self.cfg.lock_impl {
            LockImpl::TicketLlsc => self.mem.llsc_rmw(p, addr, now).latency,
            LockImpl::TicketFetchOp => self.mem.fetchop(p, addr, now),
        }
    }

    /// Samples the machine-wide gauges if a sampling epoch has elapsed.
    fn sample_gauges(&mut self, now: Ns) {
        if let Some(t) = self.tracer.gauge_due(now) {
            let _sp = prof::span(Region::Trace);
            let (mut acc, mut miss, mut stall) = (0u64, 0u64, 0);
            let (mut coh, mut false_share, mut queue) = (0u64, 0u64, 0);
            for p in &self.procs {
                acc += p.stats.accesses();
                miss += p.stats.misses();
                stall += p.stats.mem_ns;
                coh += p.stats.misses_coherence;
                false_share += p.stats.misses_false_share;
                queue += p.stats.mem_breakdown.queue_total();
            }
            let mut totals = gauge_totals(acc, miss, stall, &self.mem.contention.summary());
            totals.coherence_misses = coh;
            totals.false_share_misses = false_share;
            totals.queue_wait_ns = queue;
            self.tracer.push_gauge(t, totals);
        }
    }

    fn process(&mut self, p: usize) -> Result<(), SimError> {
        let req = self.procs[p]
            .pending
            .take()
            .expect("heap entry without pending request");
        match req {
            Request::Ops { busy, ops, san } => {
                self.apply_ops(p, busy, &ops, &san);
                self.reply(p, 0);
            }
            Request::Phase {
                busy,
                ops,
                san,
                name,
            } => {
                self.apply_ops(p, busy, &ops, &san);
                let id = self.intern_phase(&name);
                self.procs[p].phase = id;
                if let Some(s) = self.sanitizer.as_deref_mut() {
                    s.set_phase(p, id);
                }
                let clk = self.procs[p].clock;
                if let Some(cp) = self.critpath.as_deref_mut() {
                    cp.set_phase(p, id, clk);
                }
                self.reply(p, 0);
            }
            Request::Finish { busy, ops, san } => {
                self.apply_ops(p, busy, &ops, &san);
                let rt = &mut self.procs[p];
                rt.stats.finish_ns = rt.clock;
                rt.done = true;
                rt.running = false;
                self.done_count += 1;
            }
            Request::Lock { busy, ops, san, id } => {
                self.apply_ops(p, busy, &ops, &san);
                let addr = self.sync.locks[id].addr;
                let now = self.procs[p].clock;
                let cost = self.rmw_cost(p, addr, now);
                self.procs[p].stats.atomics += 1;
                self.charge_sync_op(p, cost);
                let t = self.procs[p].clock;
                if self.sync.locks[id].acquire_or_enqueue(p, t) {
                    if let Some(s) = self.sanitizer.as_deref_mut() {
                        s.lock_acquire(p, id);
                    }
                    self.procs[p].stats.lock_acquires += 1;
                    self.lock_hold_start[id] = t;
                    self.reply(p, 0);
                } else {
                    self.procs[p].parked_on = Some(format!("lock {id}"));
                }
            }
            Request::Unlock { busy, ops, san, id } => {
                self.apply_ops(p, busy, &ops, &san);
                if let Some(s) = self.sanitizer.as_deref_mut() {
                    s.lock_release(p, id);
                }
                let addr = self.sync.locks[id].addr;
                let now = self.procs[p].clock;
                // Releasing writes the lock word; usually a cache hit for
                // the holder under LL/SC, an at-memory op under fetch&op.
                let cost = match self.cfg.lock_impl {
                    LockImpl::TicketLlsc => {
                        self.mem.access(p, addr, AccessKind::Write, now).latency
                    }
                    LockImpl::TicketFetchOp => self.mem.fetchop(p, addr, now),
                };
                self.charge_sync_op(p, cost);
                let release_t = self.procs[p].clock;
                if self.tracer.enabled() {
                    let held_from = self.lock_hold_start[id];
                    let (track, ph) = (p, self.procs[p].phase);
                    self.tracer.span_obj(
                        track,
                        ph,
                        SpanKind::LockHold,
                        held_from,
                        release_t.saturating_sub(held_from),
                        id as u32,
                    );
                }
                // Grant order is the perturber's lock choice point: with a
                // schedule set and several waiters queued, a seeded pick
                // replaces the FIFO (ticket-order) handoff.
                let granted = match self.sched.as_deref_mut() {
                    Some(sched) if self.sync.locks[id].queue.len() > 1 => {
                        let idx = sched.pick_waiter(&self.sync.locks[id].queue);
                        self.sync.locks[id].release_nth(p, idx)
                    }
                    _ => self.sync.locks[id].release(p),
                };
                if let Some((w, arrived)) = granted {
                    // The release can complete before the waiter's acquire
                    // attempt has (they overlap in virtual time); the grant
                    // happens at whichever is later.
                    if let Some(s) = self.sanitizer.as_deref_mut() {
                        s.lock_acquire(w, id);
                    }
                    let grant_t = release_t.max(arrived);
                    if grant_t > arrived {
                        // The waiter was delayed by this release: record the
                        // release→acquire dependency edge.
                        if let Some(cp) = self.critpath.as_deref_mut() {
                            let rel = cp.boundary(p, release_t);
                            cp.wait(w, arrived, grant_t, WaitKind::Lock, Dep::One(p, rel));
                        }
                    }
                    // Hand off: the new holder pulls the lock line over.
                    let handoff = self.rmw_cost(w, addr, grant_t);
                    self.charge_sync_wait(w, arrived, grant_t);
                    self.procs[w].clock = grant_t;
                    self.procs[w].stats.lock_acquires += 1;
                    self.charge_sync_op(w, handoff);
                    self.lock_hold_start[id] = grant_t;
                    self.reply(w, 0);
                }
                self.reply(p, 0);
            }
            Request::Barrier { busy, ops, san, id } => {
                self.apply_ops(p, busy, &ops, &san);
                if let Some(s) = self.sanitizer.as_deref_mut() {
                    s.barrier_arrive(p, id);
                }
                let addr = self.sync.barriers[id].addr;
                let now = self.procs[p].clock;
                let arrive_cost = match self.cfg.barrier_impl {
                    BarrierImpl::TournamentLlsc => {
                        // log₂P stages of flag updates, mostly remote.
                        Ns::from(self.log2p)
                            * (self.cfg.latency.llsc_extra_ns
                                + self.cfg.latency.remote_clean_ns / 2)
                    }
                    BarrierImpl::CentralLlsc => self.mem.llsc_rmw(p, addr, now).latency,
                    BarrierImpl::CentralFetchOp => self.mem.fetchop(p, addr, now),
                };
                self.charge_sync_op(p, arrive_cost);
                let t = self.procs[p].clock;
                if let Some(mut arrivals) = self.sync.barriers[id].arrive(p, t) {
                    if let Some(s) = self.sanitizer.as_deref_mut() {
                        s.barrier_complete(id);
                    }
                    let release_t = arrivals.iter().map(|&(_, a)| a).max().unwrap_or(t);
                    let first_t = arrivals.iter().map(|&(_, a)| a).min().unwrap_or(t);
                    arrivals.sort_unstable();
                    // The wake sweep below serializes the woken processors'
                    // wake-up accesses through the memory system, so its
                    // order is a scheduling choice point: perturb it.
                    if let Some(sched) = self.sched.as_deref_mut() {
                        sched.shuffle(&mut arrivals);
                    }
                    if let Some(cp) = self.critpath.as_deref_mut() {
                        // One episode over *all* arrivals (the what-if
                        // replay re-evaluates which is latest), then a wait
                        // edge for every processor the release delayed.
                        let deps: Vec<(usize, u32, Ns)> = arrivals
                            .iter()
                            .map(|&(w, a)| (w, cp.boundary(w, a), a))
                            .collect();
                        let e = cp.add_episode(deps);
                        for &(w, arrived) in &arrivals {
                            if release_t > arrived {
                                cp.wait(w, arrived, release_t, WaitKind::Barrier, Dep::Episode(e));
                            }
                        }
                    }
                    for (w, arrived) in arrivals {
                        let wake_cost = match self.cfg.barrier_impl {
                            BarrierImpl::TournamentLlsc => {
                                Ns::from(self.log2p) * self.cfg.latency.link_ns
                            }
                            BarrierImpl::CentralLlsc => {
                                self.mem
                                    .access(w, addr, AccessKind::Read, release_t)
                                    .latency
                            }
                            BarrierImpl::CentralFetchOp => self.mem.fetchop(w, addr, release_t),
                        };
                        self.charge_sync_wait(w, arrived, release_t);
                        self.procs[w].clock = release_t;
                        self.procs[w].stats.barriers += 1;
                        self.charge_sync_op(w, wake_cost);
                        self.reply(w, 0);
                    }
                    if self.tracer.enabled() {
                        // One whole-machine episode span: first arrival to
                        // release, on the synthetic machine track.
                        let machine_track = self.procs.len();
                        self.tracer.span_obj(
                            machine_track,
                            0,
                            SpanKind::Barrier,
                            first_t,
                            release_t.saturating_sub(first_t),
                            id as u32,
                        );
                    }
                } else {
                    self.procs[p].parked_on = Some(format!("barrier {id}"));
                }
            }
            Request::FetchAdd {
                busy,
                ops,
                san,
                id,
                delta,
            } => {
                self.apply_ops(p, busy, &ops, &san);
                if let Some(s) = self.sanitizer.as_deref_mut() {
                    s.fetch_add(p, id);
                }
                let addr = self.sync.cells[id].addr;
                let now = self.procs[p].clock;
                let cost = self.rmw_cost(p, addr, now);
                self.procs[p].stats.atomics += 1;
                self.charge_sync_op(p, cost);
                let prev = self.sync.cells[id].value;
                self.sync.cells[id].value += delta;
                self.reply(p, prev);
            }
            Request::SemWait { busy, ops, san, id } => {
                self.apply_ops(p, busy, &ops, &san);
                let addr = self.sync.sems[id].addr;
                let now = self.procs[p].clock;
                let cost = self.rmw_cost(p, addr, now);
                self.procs[p].stats.atomics += 1;
                self.charge_sync_op(p, cost);
                let t = self.procs[p].clock;
                if self.sync.sems[id].wait_or_enqueue(p, t) {
                    if let Some(s) = self.sanitizer.as_deref_mut() {
                        s.sem_acquire(p, id);
                    }
                    self.reply(p, 0);
                } else {
                    self.procs[p].parked_on = Some(format!("semaphore {id}"));
                }
            }
            Request::SemPost {
                busy,
                ops,
                san,
                id,
                n,
            } => {
                self.apply_ops(p, busy, &ops, &san);
                if let Some(s) = self.sanitizer.as_deref_mut() {
                    s.sem_post(p, id);
                }
                let addr = self.sync.sems[id].addr;
                let now = self.procs[p].clock;
                let cost = self.rmw_cost(p, addr, now);
                self.procs[p].stats.atomics += 1;
                self.charge_sync_op(p, cost);
                let t = self.procs[p].clock;
                let mut post_boundary = None;
                // Wake order is the perturber's semaphore choice point.
                let woken = match self.sched.as_deref_mut() {
                    Some(sched) => self.sync.sems[id].post_with(n, |q| sched.pick_waiter(q)),
                    None => self.sync.sems[id].post(n),
                };
                for (w, arrived) in woken {
                    if let Some(s) = self.sanitizer.as_deref_mut() {
                        s.sem_acquire(w, id);
                    }
                    let grant_t = t.max(arrived);
                    if grant_t > arrived {
                        // This post unblocked `w`: record the post→wait
                        // dependency edge (one boundary per post).
                        if let Some(cp) = self.critpath.as_deref_mut() {
                            let rel = match post_boundary {
                                Some(r) => r,
                                None => {
                                    let r = cp.boundary(p, t);
                                    post_boundary = Some(r);
                                    r
                                }
                            };
                            cp.wait(w, arrived, grant_t, WaitKind::Sem, Dep::One(p, rel));
                        }
                    }
                    let wake = self.mem.access(w, addr, AccessKind::Read, grant_t).latency;
                    self.charge_sync_wait(w, arrived, grant_t);
                    self.procs[w].clock = grant_t;
                    self.charge_sync_op(w, wake);
                    self.reply(w, 0);
                }
                self.reply(p, 0);
            }
            Request::Panic(_) => unreachable!("handled in accept"),
        }
        Ok(())
    }
}
