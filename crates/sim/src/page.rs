//! NUMA pages: home-node assignment, placement policies, capacity spill and
//! dynamic migration.
//!
//! Every simulated address belongs to a page whose *home node* holds its
//! directory entry and memory copy. Homes are assigned by explicit placement
//! (the paper's "manual" distribution), by first-touch, or round-robin
//! (§6.2, Table 3). Nodes have finite memory: first-touch and explicit
//! placement spill to the least-loaded node when the preferred node is full,
//! which reproduces the paper's Ocean superlinearity observation (a problem
//! too big for one node's memory makes the *sequential* run pay remote
//! latency).

use std::collections::HashMap;

use crate::config::{MigrationConfig, PagePlacement};

/// A simulated byte address.
pub type Addr = u64;

/// Result of recording a miss against a page for the migration policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MigrationEvent {
    /// The page stayed where it was.
    None,
    /// The page migrated from `.0` to `.1`.
    Migrated(usize, usize),
}

#[derive(Debug)]
struct PageInfo {
    home: usize,
    /// Per-node miss counters, allocated lazily when migration is on.
    counters: Option<Box<[u32]>>,
    since_migrate: u32,
}

/// The machine's page table: page → home node.
#[derive(Debug)]
pub struct PageTable {
    page_shift: u32,
    n_nodes: usize,
    placement: PagePlacement,
    migration: Option<MigrationConfig>,
    pages: HashMap<u64, PageInfo>,
    /// Pages resident per node (for capacity spill).
    used: Vec<u64>,
    capacity_pages: u64,
    rr_next: usize,
    migrations: u64,
}

impl PageTable {
    /// Creates a page table for `n_nodes` nodes with `page_bytes` pages and
    /// `mem_per_node_bytes` of memory per node.
    ///
    /// # Panics
    ///
    /// Panics if `page_bytes` is not a power of two or `n_nodes` is zero.
    pub fn new(
        page_bytes: usize,
        n_nodes: usize,
        mem_per_node_bytes: usize,
        placement: PagePlacement,
        migration: Option<MigrationConfig>,
    ) -> Self {
        assert!(page_bytes.is_power_of_two() && n_nodes > 0);
        PageTable {
            page_shift: page_bytes.trailing_zeros(),
            n_nodes,
            placement,
            migration,
            pages: HashMap::new(),
            used: vec![0; n_nodes],
            capacity_pages: (mem_per_node_bytes / page_bytes) as u64,
            rr_next: 0,
            migrations: 0,
        }
    }

    /// The page index containing `addr`.
    #[inline]
    pub fn page_of(&self, addr: Addr) -> u64 {
        addr >> self.page_shift
    }

    /// Total pages migrated so far.
    pub fn migrations(&self) -> u64 {
        self.migrations
    }

    /// Number of pages currently homed on each node.
    pub fn pages_per_node(&self) -> &[u64] {
        &self.used
    }

    fn spill_target(&self, preferred: usize) -> usize {
        if self.used[preferred] < self.capacity_pages {
            return preferred;
        }
        // Preferred node is full: pick the least-loaded node.
        (0..self.n_nodes)
            .min_by_key(|&n| (self.used[n], n))
            .expect("at least one node")
    }

    fn install(&mut self, page: u64, preferred: usize) -> usize {
        let home = self.spill_target(preferred);
        self.used[home] += 1;
        let counters = self
            .migration
            .map(|_| vec![0u32; self.n_nodes].into_boxed_slice());
        self.pages.insert(
            page,
            PageInfo {
                home,
                counters,
                since_migrate: 0,
            },
        );
        home
    }

    /// Explicitly places every page overlapping `[base, base + len)` on
    /// `node` (subject to capacity spill). Pages already placed are moved
    /// without cost — explicit placement happens before the run.
    pub fn place_range(&mut self, base: Addr, len: u64, node: usize) {
        assert!(
            node < self.n_nodes,
            "placement target node {node} out of range"
        );
        if len == 0 {
            return;
        }
        let first = self.page_of(base);
        let last = self.page_of(base + len - 1);
        for page in first..=last {
            if let Some(info) = self.pages.remove(&page) {
                self.used[info.home] -= 1;
            }
            self.install(page, node);
        }
    }

    /// Returns the home node of `addr`, assigning one according to the
    /// placement policy if this is the first touch. `toucher_node` is the
    /// node of the requesting processor.
    pub fn home_of(&mut self, addr: Addr, toucher_node: usize) -> usize {
        let page = self.page_of(addr);
        if let Some(info) = self.pages.get(&page) {
            return info.home;
        }
        let preferred = match self.placement {
            PagePlacement::FirstTouch => toucher_node,
            PagePlacement::RoundRobin => {
                let n = self.rr_next;
                self.rr_next = (self.rr_next + 1) % self.n_nodes;
                n
            }
        };
        self.install(page, preferred)
    }

    /// Records a miss on `addr` from `from_node` for the migration policy;
    /// may migrate the page. The triggering access is still serviced by the
    /// old home; only future accesses see the new one.
    pub fn note_miss(&mut self, addr: Addr, from_node: usize) -> MigrationEvent {
        let Some(cfg) = self.migration else {
            return MigrationEvent::None;
        };
        let page = self.page_of(addr);
        let Some(info) = self.pages.get_mut(&page) else {
            return MigrationEvent::None;
        };
        let Some(counters) = info.counters.as_mut() else {
            return MigrationEvent::None;
        };
        counters[from_node] = counters[from_node].saturating_add(1);
        info.since_migrate = info.since_migrate.saturating_add(1);
        if from_node == info.home || info.since_migrate < cfg.cooldown {
            return MigrationEvent::None;
        }
        if counters[from_node] > counters[info.home].saturating_add(cfg.threshold) {
            let old = info.home;
            info.home = from_node;
            info.since_migrate = 0;
            for c in counters.iter_mut() {
                *c = 0;
            }
            self.used[old] -= 1;
            self.used[from_node] += 1;
            self.migrations += 1;
            return MigrationEvent::Migrated(old, from_node);
        }
        MigrationEvent::None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table(nodes: usize, placement: PagePlacement) -> PageTable {
        PageTable::new(1024, nodes, 1 << 30, placement, None)
    }

    #[test]
    fn first_touch_homes_on_toucher() {
        let mut t = table(4, PagePlacement::FirstTouch);
        assert_eq!(t.home_of(0, 2), 2);
        assert_eq!(t.home_of(100, 3), 2); // same page, home sticks
        assert_eq!(t.home_of(1024, 3), 3);
    }

    #[test]
    fn round_robin_cycles_nodes() {
        let mut t = table(3, PagePlacement::RoundRobin);
        assert_eq!(t.home_of(0, 0), 0);
        assert_eq!(t.home_of(1024, 0), 1);
        assert_eq!(t.home_of(2048, 0), 2);
        assert_eq!(t.home_of(3072, 0), 0);
    }

    #[test]
    fn explicit_placement_overrides_policy() {
        let mut t = table(4, PagePlacement::FirstTouch);
        t.place_range(0, 4096, 3);
        assert_eq!(t.home_of(0, 0), 3);
        assert_eq!(t.home_of(4095, 1), 3);
        assert_eq!(t.home_of(4096, 1), 1); // past the placed range
    }

    #[test]
    fn capacity_spills_to_least_loaded() {
        // 2 pages per node.
        let mut t = PageTable::new(1024, 2, 2048, PagePlacement::FirstTouch, None);
        assert_eq!(t.home_of(0, 0), 0);
        assert_eq!(t.home_of(1024, 0), 0);
        // Node 0 is full: the next first-touch by node 0 spills to node 1.
        assert_eq!(t.home_of(2048, 0), 1);
        assert_eq!(t.pages_per_node(), &[2, 1]);
    }

    #[test]
    fn migration_triggers_after_threshold() {
        let mig = MigrationConfig {
            threshold: 4,
            cooldown: 0,
        };
        let mut t = PageTable::new(1024, 2, 1 << 30, PagePlacement::FirstTouch, Some(mig));
        assert_eq!(t.home_of(0, 0), 0);
        for _ in 0..4 {
            assert_eq!(t.note_miss(0, 1), MigrationEvent::None);
        }
        // 5th remote miss exceeds home count (0) + threshold (4).
        assert_eq!(t.note_miss(0, 1), MigrationEvent::Migrated(0, 1));
        assert_eq!(t.home_of(0, 0), 1);
        assert_eq!(t.migrations(), 1);
    }

    #[test]
    fn migration_respects_cooldown_and_home_traffic() {
        let mig = MigrationConfig {
            threshold: 2,
            cooldown: 100,
        };
        let mut t = PageTable::new(1024, 2, 1 << 30, PagePlacement::FirstTouch, Some(mig));
        t.home_of(0, 0);
        for _ in 0..50 {
            assert_eq!(t.note_miss(0, 1), MigrationEvent::None); // cooldown holds
        }
        // Home-node traffic keeps the counter race balanced.
        let mut t2 = PageTable::new(
            1024,
            2,
            1 << 30,
            PagePlacement::FirstTouch,
            Some(MigrationConfig {
                threshold: 2,
                cooldown: 0,
            }),
        );
        t2.home_of(0, 0);
        for _ in 0..100 {
            t2.note_miss(0, 0);
            assert_eq!(t2.note_miss(0, 1), MigrationEvent::None);
        }
    }

    #[test]
    fn migration_disabled_never_moves() {
        let mut t = table(2, PagePlacement::FirstTouch);
        t.home_of(0, 0);
        for _ in 0..10_000 {
            assert_eq!(t.note_miss(0, 1), MigrationEvent::None);
        }
    }
}
