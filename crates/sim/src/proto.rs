//! Engine ↔ processor-thread protocol (crate internal).
//!
//! Application threads communicate with the engine through rendezvous
//! channels: each engine-visible action is a [`Request`]; the engine
//! unblocks the thread with a [`Reply`] once the action completes in
//! virtual time.

use crate::page::Addr;
use crate::time::Ns;

/// Kind of a buffered memory operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum OpKind {
    Read,
    Write,
    Prefetch,
}

/// One buffered memory operation (possibly spanning multiple lines).
#[derive(Debug, Clone, Copy)]
pub(crate) struct MemOp {
    pub addr: Addr,
    pub bytes: u64,
    pub kind: OpKind,
}

/// A request from an application thread to the engine. Every variant
/// carries the busy time accumulated since the previous request, the
/// buffered memory operations to apply first, and — when the sanitizer
/// is enabled — the exact (uncoalesced) byte footprints of those
/// operations in `san`, so race detection never sees the covering
/// merges the timing stream makes (empty when sanitizing is off).
#[derive(Debug)]
pub(crate) enum Request {
    /// Flush buffered work only.
    Ops {
        busy: Ns,
        ops: Vec<MemOp>,
        san: Vec<MemOp>,
    },
    /// Arrive at a barrier.
    Barrier {
        busy: Ns,
        ops: Vec<MemOp>,
        san: Vec<MemOp>,
        id: usize,
    },
    /// Acquire a lock (blocks until granted).
    Lock {
        busy: Ns,
        ops: Vec<MemOp>,
        san: Vec<MemOp>,
        id: usize,
    },
    /// Release a lock.
    Unlock {
        busy: Ns,
        ops: Vec<MemOp>,
        san: Vec<MemOp>,
        id: usize,
    },
    /// Atomic fetch-and-add on a fetch cell; the reply carries the prior value.
    FetchAdd {
        busy: Ns,
        ops: Vec<MemOp>,
        san: Vec<MemOp>,
        id: usize,
        delta: i64,
    },
    /// Decrement a semaphore, blocking while it is zero.
    SemWait {
        busy: Ns,
        ops: Vec<MemOp>,
        san: Vec<MemOp>,
        id: usize,
    },
    /// Increment a semaphore by `n`, waking blocked waiters.
    SemPost {
        busy: Ns,
        ops: Vec<MemOp>,
        san: Vec<MemOp>,
        id: usize,
        n: u32,
    },
    /// Marks the start of a named application phase for this processor;
    /// buffered work is charged to the previous phase first.
    Phase {
        busy: Ns,
        ops: Vec<MemOp>,
        san: Vec<MemOp>,
        name: String,
    },
    /// The application body returned.
    Finish {
        busy: Ns,
        ops: Vec<MemOp>,
        san: Vec<MemOp>,
    },
    /// The application body panicked; the engine aborts the run.
    Panic(String),
}

/// Engine reply unblocking a thread. `value` is meaningful only for
/// [`Request::FetchAdd`].
#[derive(Debug, Clone, Copy)]
pub(crate) struct Reply {
    pub value: i64,
}

/// Sentinel panic payload used to silently unwind application threads when
/// the engine has already terminated (deadlock or a peer's panic). The
/// quiet panic hook suppresses its default backtrace output.
pub(crate) struct EngineGone;
