//! The per-processor execution context.
//!
//! Application bodies receive a [`Ctx`] and express their work through it:
//! computation is charged with the `compute_*` methods, memory traffic with
//! [`SharedVec`](crate::shared::SharedVec) accessors (which call back into
//! [`Ctx::record_read`]/[`Ctx::record_write`]), and coordination with
//! [`Ctx::barrier`], [`Ctx::lock`]/[`Ctx::unlock`], [`Ctx::fetch_add`] and
//! semaphores.
//!
//! Memory operations are buffered and merged client-side (adjacent
//! same-kind accesses coalesce) and flushed to the engine in batches; every
//! synchronization operation flushes first, so ordering across
//! synchronization points is exact.

use std::cell::{Cell, RefCell};
use std::sync::mpsc::{Receiver, Sender};

use crate::config::CostModel;
use crate::page::Addr;
use crate::proto::{MemOp, OpKind, Reply, Request};
use crate::sync::{BarrierRef, FetchCellRef, LockRef, SemRef};
use crate::time::Ns;

/// How many buffered memory operations trigger an automatic flush.
const FLUSH_THRESHOLD: usize = 64;

/// The interface a simulated processor exposes to application code.
///
/// A `Ctx` is handed to the application body by
/// [`Machine::run`](crate::machine::Machine::run); one exists per
/// simulated processor.
pub struct Ctx {
    id: usize,
    nprocs: usize,
    line_bytes: u64,
    cost: CostModel,
    prefetch_enabled: bool,
    /// When the sanitizer is on, `san` mirrors `ops` with exact
    /// (lossless-merged) byte footprints for race detection.
    sanitize: bool,
    busy: Cell<Ns>,
    ops: RefCell<Vec<MemOp>>,
    san: RefCell<Vec<MemOp>>,
    tx: Sender<(usize, Request)>,
    rx: Receiver<Reply>,
}

impl Ctx {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        id: usize,
        nprocs: usize,
        line_bytes: u64,
        cost: CostModel,
        prefetch_enabled: bool,
        sanitize: bool,
        tx: Sender<(usize, Request)>,
        rx: Receiver<Reply>,
    ) -> Self {
        Ctx {
            id,
            nprocs,
            line_bytes,
            cost,
            prefetch_enabled,
            sanitize,
            busy: Cell::new(0),
            ops: RefCell::new(Vec::with_capacity(FLUSH_THRESHOLD + 1)),
            san: RefCell::new(Vec::new()),
            tx,
            rx,
        }
    }

    /// This processor's process id, `0..nprocs`.
    pub fn id(&self) -> usize {
        self.id
    }

    /// Number of processes in the run.
    pub fn nprocs(&self) -> usize {
        self.nprocs
    }

    /// Whether the machine configuration enables software prefetch (§6.1).
    /// Applications typically guard optional prefetch loops on this.
    pub fn prefetch_enabled(&self) -> bool {
        self.prefetch_enabled
    }

    /// The cost model, for applications that charge custom work.
    pub fn cost_model(&self) -> CostModel {
        self.cost
    }

    // ---- computation -----------------------------------------------------

    /// Charges `ns` nanoseconds of computation.
    pub fn compute_ns(&self, ns: Ns) {
        self.busy.set(self.busy.get() + ns);
    }

    /// Charges `n` floating-point operations of computation.
    pub fn compute_flops(&self, n: u64) {
        self.compute_ns(n * self.cost.flop_ns);
    }

    /// Charges `n` integer/pointer operations of computation.
    pub fn compute_ops(&self, n: u64) {
        self.compute_ns(n * self.cost.int_op_ns);
    }

    /// Charges `n` traversal/call steps of computation (irregular codes).
    pub fn compute_steps(&self, n: u64) {
        self.compute_ns(n * self.cost.step_ns);
    }

    // ---- memory ----------------------------------------------------------

    /// Records a timed read of `bytes` at `addr`. Usually called through
    /// [`SharedVec`](crate::shared::SharedVec) rather than directly.
    pub fn record_read(&self, addr: Addr, bytes: u64) {
        self.record(addr, bytes, OpKind::Read);
    }

    /// Records a timed write of `bytes` at `addr`.
    pub fn record_write(&self, addr: Addr, bytes: u64) {
        self.record(addr, bytes, OpKind::Write);
    }

    /// Records a software prefetch covering `bytes` at `addr`. No-op when
    /// prefetch is disabled in the configuration.
    pub fn record_prefetch(&self, addr: Addr, bytes: u64) {
        if self.prefetch_enabled {
            self.record(addr, bytes, OpKind::Prefetch);
        }
    }

    fn record(&self, addr: Addr, bytes: u64, kind: OpKind) {
        debug_assert!(bytes > 0);
        if self.sanitize && kind != OpKind::Prefetch {
            // Exact footprints for the sanitizer: only lossless merges
            // (containment or contiguous extension), never the covering
            // same-line merge the timing stream makes below. The flush
            // decision stays a function of `ops` alone so enabling the
            // sanitizer cannot change batching (and thus timing).
            let mut san = self.san.borrow_mut();
            match san.last_mut() {
                Some(last)
                    if last.kind == kind && addr >= last.addr && addr <= last.addr + last.bytes =>
                {
                    last.bytes = last.bytes.max(addr + bytes - last.addr);
                }
                _ => san.push(MemOp { addr, bytes, kind }),
            }
        }
        let mut ops = self.ops.borrow_mut();
        if let Some(last) = ops.last_mut() {
            if last.kind == kind {
                // Coalesce: contiguous extension or same-line repetition.
                let last_end = last.addr + last.bytes;
                if addr == last_end {
                    last.bytes += bytes;
                    return;
                }
                let line = !(self.line_bytes - 1);
                if addr >= last.addr
                    && (addr + bytes - 1) & line == (last_end - 1) & line
                    && addr & line >= last.addr & line
                {
                    last.bytes = (addr + bytes).max(last_end) - last.addr;
                    return;
                }
            }
        }
        ops.push(MemOp { addr, bytes, kind });
        if ops.len() >= FLUSH_THRESHOLD {
            drop(ops);
            self.flush();
        }
    }

    fn take_pending(&self) -> (Ns, Vec<MemOp>, Vec<MemOp>) {
        (
            self.busy.replace(0),
            std::mem::take(&mut *self.ops.borrow_mut()),
            std::mem::take(&mut *self.san.borrow_mut()),
        )
    }

    fn send(&self, req: Request) -> Reply {
        if self.tx.send((self.id, req)).is_err() {
            std::panic::panic_any(crate::proto::EngineGone);
        }
        match self.rx.recv() {
            Ok(r) => r,
            Err(_) => std::panic::panic_any(crate::proto::EngineGone),
        }
    }

    /// Flushes buffered computation and memory operations to the engine,
    /// advancing this processor's virtual clock. Called automatically by
    /// every synchronization operation and when the buffer fills.
    pub fn flush(&self) {
        let (busy, ops, san) = self.take_pending();
        if busy == 0 && ops.is_empty() {
            return;
        }
        self.send(Request::Ops { busy, ops, san });
    }

    // ---- phases ----------------------------------------------------------

    /// Marks the start of application phase `name` on this processor.
    /// Work charged before the first marker lands in the implicit `"main"`
    /// phase. Per-phase breakdowns appear in
    /// [`RunStats::phases`](crate::stats::RunStats::phases) and, when
    /// tracing is enabled, label the exported timeline. Marking the same
    /// name again re-enters that phase (phase ids are interned by name).
    pub fn phase(&self, name: &str) {
        let (busy, ops, san) = self.take_pending();
        self.send(Request::Phase {
            busy,
            ops,
            san,
            name: name.to_string(),
        });
    }

    // ---- synchronization ---------------------------------------------------

    /// Waits until every processor has arrived at barrier `b`.
    pub fn barrier(&self, b: BarrierRef) {
        let (busy, ops, san) = self.take_pending();
        self.send(Request::Barrier {
            busy,
            ops,
            san,
            id: b.0 as usize,
        });
    }

    /// Acquires lock `l`, blocking in virtual time while it is held.
    pub fn lock(&self, l: LockRef) {
        let (busy, ops, san) = self.take_pending();
        self.send(Request::Lock {
            busy,
            ops,
            san,
            id: l.0 as usize,
        });
    }

    /// Releases lock `l`.
    ///
    /// # Panics
    ///
    /// The simulation fails if the calling processor does not hold `l`.
    pub fn unlock(&self, l: LockRef) {
        let (busy, ops, san) = self.take_pending();
        self.send(Request::Unlock {
            busy,
            ops,
            san,
            id: l.0 as usize,
        });
    }

    /// Runs `f` with lock `l` held.
    pub fn with_lock<R>(&self, l: LockRef, f: impl FnOnce() -> R) -> R {
        self.lock(l);
        let r = f();
        self.unlock(l);
        r
    }

    /// Atomically adds `delta` to fetch cell `c`, returning the previous
    /// value. The cost model follows the configured lock primitive (LL/SC
    /// read-modify-write or at-memory fetch&op).
    pub fn fetch_add(&self, c: FetchCellRef, delta: i64) -> i64 {
        let (busy, ops, san) = self.take_pending();
        self.send(Request::FetchAdd {
            busy,
            ops,
            san,
            id: c.0 as usize,
            delta,
        })
        .value
    }

    /// Decrements semaphore `s`, blocking in virtual time while it is zero.
    pub fn sem_wait(&self, s: SemRef) {
        let (busy, ops, san) = self.take_pending();
        self.send(Request::SemWait {
            busy,
            ops,
            san,
            id: s.0 as usize,
        });
    }

    /// Increments semaphore `s` by `n`, waking blocked waiters.
    pub fn sem_post(&self, s: SemRef, n: u32) {
        let (busy, ops, san) = self.take_pending();
        self.send(Request::SemPost {
            busy,
            ops,
            san,
            id: s.0 as usize,
            n,
        });
    }

    /// Called by the runtime when the body returns.
    pub(crate) fn finish(&self) {
        let (busy, ops, san) = self.take_pending();
        let _ = self.tx.send((self.id, Request::Finish { busy, ops, san }));
    }

    /// Called by the runtime when the body panics.
    pub(crate) fn report_panic(&self, msg: String) {
        let _ = self.tx.send((self.id, Request::Panic(msg)));
    }
}

impl std::fmt::Debug for Ctx {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Ctx")
            .field("id", &self.id)
            .field("nprocs", &self.nprocs)
            .finish()
    }
}
