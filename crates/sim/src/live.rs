//! Live machine counters: process-wide cumulative activity totals.
//!
//! Every engine in the process folds its activity into
//! one set of global atomic counters — engine events processed, accesses,
//! hits, misses by [`MissCause`](crate::attrib::MissCause), and the exact
//! per-[`ResourceClass`](crate::attrib::ResourceClass) service/queueing
//! nanoseconds of every memory stall. An external observer (the
//! `ccnuma-telemetry` sampler) reads these on a host-time epoch and
//! differentiates them into rates: simulated-events/sec, misses/sec,
//! per-class occupancy and queue depth.
//!
//! The counters are **observer-passive by construction**: the engine only
//! ever *writes* them (relaxed, batched through `LiveDelta` so the hot
//! path pays one branch per event and a handful of atomic adds every
//! `FLUSH_EVERY` events), and no simulation decision ever reads them
//! back. Enabling or disabling an observer therefore cannot change a
//! single simulated nanosecond — the bit-identical pin lives in
//! `crates/bench/tests/telemetry_live.rs`.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::attrib::LatencyBreakdown;

/// Number of classified miss-cause slots mirrored live (matches
/// [`MissCause::index`](crate::attrib::MissCause::index)).
pub const LIVE_CAUSES: usize = 5;

/// Number of resource classes mirrored live (matches
/// [`ResourceClass::index`](crate::attrib::ResourceClass::index)).
pub const LIVE_CLASSES: usize = 4;

/// The process-wide cumulative counters. All values only ever grow
/// (monotonic counters); readers snapshot with [`LiveCounters::snapshot`]
/// and differentiate.
#[derive(Debug, Default)]
pub struct LiveCounters {
    /// Simulation runs started.
    pub runs_started: AtomicU64,
    /// Simulation runs finished (successfully or not, the engine flushes
    /// what it accumulated).
    pub runs_finished: AtomicU64,
    /// Engine events (thread requests) processed.
    pub events: AtomicU64,
    /// Line-granular memory accesses serviced.
    pub accesses: AtomicU64,
    /// Cache hits.
    pub hits: AtomicU64,
    /// Cache misses (local + remote clean + remote dirty).
    pub misses: AtomicU64,
    /// Classified misses by cause slot `[cold, capacity, conflict,
    /// coh-true, coh-false]`; only populated by runs with
    /// `classify_misses` enabled.
    pub miss_causes: [AtomicU64; LIVE_CAUSES],
    /// Uncontended service nanoseconds per resource class
    /// `[hub, mem, dir, net]` (the attrib taxonomy).
    pub service_ns: [AtomicU64; LIVE_CLASSES],
    /// Queueing-delay nanoseconds per resource class `[hub, mem, dir,
    /// net]`. Differentiated against host time this is the time-average
    /// number of transactions queued at the class (Little's law).
    pub queue_ns: [AtomicU64; LIVE_CLASSES],
    /// Total memory-stall nanoseconds charged.
    pub mem_stall_ns: AtomicU64,
    /// Simulated (virtual) nanoseconds completed, folded in at run end.
    pub sim_ns: AtomicU64,
}

/// A plain-integer point-in-time copy of [`LiveCounters`].
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct LiveSnapshot {
    /// See [`LiveCounters::runs_started`].
    pub runs_started: u64,
    /// See [`LiveCounters::runs_finished`].
    pub runs_finished: u64,
    /// See [`LiveCounters::events`].
    pub events: u64,
    /// See [`LiveCounters::accesses`].
    pub accesses: u64,
    /// See [`LiveCounters::hits`].
    pub hits: u64,
    /// See [`LiveCounters::misses`].
    pub misses: u64,
    /// See [`LiveCounters::miss_causes`].
    pub miss_causes: [u64; LIVE_CAUSES],
    /// See [`LiveCounters::service_ns`].
    pub service_ns: [u64; LIVE_CLASSES],
    /// See [`LiveCounters::queue_ns`].
    pub queue_ns: [u64; LIVE_CLASSES],
    /// See [`LiveCounters::mem_stall_ns`].
    pub mem_stall_ns: u64,
    /// See [`LiveCounters::sim_ns`].
    pub sim_ns: u64,
}

impl LiveCounters {
    /// Reads every counter (relaxed; the snapshot is not required to be a
    /// consistent cut — counters are independent monotonic series).
    pub fn snapshot(&self) -> LiveSnapshot {
        let r = |a: &AtomicU64| a.load(Ordering::Relaxed);
        LiveSnapshot {
            runs_started: r(&self.runs_started),
            runs_finished: r(&self.runs_finished),
            events: r(&self.events),
            accesses: r(&self.accesses),
            hits: r(&self.hits),
            misses: r(&self.misses),
            miss_causes: std::array::from_fn(|i| r(&self.miss_causes[i])),
            service_ns: std::array::from_fn(|i| r(&self.service_ns[i])),
            queue_ns: std::array::from_fn(|i| r(&self.queue_ns[i])),
            mem_stall_ns: r(&self.mem_stall_ns),
            sim_ns: r(&self.sim_ns),
        }
    }
}

/// The process-wide counters. Shared by every engine in the process, so
/// concurrent sweep cells aggregate naturally.
pub static LIVE: LiveCounters = LiveCounters {
    runs_started: AtomicU64::new(0),
    runs_finished: AtomicU64::new(0),
    events: AtomicU64::new(0),
    accesses: AtomicU64::new(0),
    hits: AtomicU64::new(0),
    misses: AtomicU64::new(0),
    miss_causes: [
        AtomicU64::new(0),
        AtomicU64::new(0),
        AtomicU64::new(0),
        AtomicU64::new(0),
        AtomicU64::new(0),
    ],
    service_ns: [
        AtomicU64::new(0),
        AtomicU64::new(0),
        AtomicU64::new(0),
        AtomicU64::new(0),
    ],
    queue_ns: [
        AtomicU64::new(0),
        AtomicU64::new(0),
        AtomicU64::new(0),
        AtomicU64::new(0),
    ],
    mem_stall_ns: AtomicU64::new(0),
    sim_ns: AtomicU64::new(0),
};

/// How many engine events a [`LiveDelta`] buffers before flushing to the
/// global atomics.
pub(crate) const FLUSH_EVERY: u64 = 4096;

/// Engine-local accumulation buffer: plain integers on the engine's own
/// cache lines, flushed to [`LIVE`] every [`FLUSH_EVERY`] events and at
/// run end, so the event-loop hot path stays free of atomic traffic.
#[derive(Debug, Default)]
pub(crate) struct LiveDelta {
    events: u64,
    accesses: u64,
    hits: u64,
    misses: u64,
    miss_causes: [u64; LIVE_CAUSES],
    service_ns: [u64; LIVE_CLASSES],
    queue_ns: [u64; LIVE_CLASSES],
    mem_stall_ns: u64,
    events_since_flush: u64,
}

impl LiveDelta {
    /// Counts one processed engine event; returns true when the buffer is
    /// due for a [`flush`](LiveDelta::flush).
    #[inline]
    pub(crate) fn event(&mut self) -> bool {
        self.events += 1;
        self.events_since_flush += 1;
        self.events_since_flush >= FLUSH_EVERY
    }

    /// Counts one serviced access with its latency breakdown.
    #[inline]
    pub(crate) fn access(
        &mut self,
        hit: bool,
        miss: bool,
        cause_slot: Option<usize>,
        latency: u64,
        breakdown: &LatencyBreakdown,
    ) {
        self.accesses += 1;
        self.hits += u64::from(hit);
        self.misses += u64::from(miss);
        if let Some(slot) = cause_slot {
            if slot < LIVE_CAUSES {
                self.miss_causes[slot] += 1;
            }
        }
        self.mem_stall_ns += latency;
        for i in 0..LIVE_CLASSES {
            self.service_ns[i] += breakdown.service[i];
            self.queue_ns[i] += breakdown.queue[i];
        }
    }

    /// Adds everything buffered to the global counters and resets the
    /// buffer.
    pub(crate) fn flush(&mut self) {
        let add = |a: &AtomicU64, v: &mut u64| {
            if *v != 0 {
                a.fetch_add(*v, Ordering::Relaxed);
                *v = 0;
            }
        };
        add(&LIVE.events, &mut self.events);
        add(&LIVE.accesses, &mut self.accesses);
        add(&LIVE.hits, &mut self.hits);
        add(&LIVE.misses, &mut self.misses);
        for i in 0..LIVE_CAUSES {
            add(&LIVE.miss_causes[i], &mut self.miss_causes[i]);
        }
        for i in 0..LIVE_CLASSES {
            add(&LIVE.service_ns[i], &mut self.service_ns[i]);
            add(&LIVE.queue_ns[i], &mut self.queue_ns[i]);
        }
        add(&LIVE.mem_stall_ns, &mut self.mem_stall_ns);
        self.events_since_flush = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delta_buffers_then_flushes_exactly() {
        let before = LIVE.snapshot();
        let mut d = LiveDelta::default();
        let mut due = false;
        for _ in 0..10 {
            due |= d.event();
        }
        assert!(!due, "10 events must not hit the {FLUSH_EVERY} threshold");
        let bd = LatencyBreakdown {
            service: [5, 6, 7, 8],
            queue: [1, 2, 3, 4],
            other_ns: 9,
        };
        d.access(false, true, Some(3), 45, &bd);
        d.access(true, false, None, 0, &LatencyBreakdown::default());
        d.flush();
        let after = LIVE.snapshot();
        assert_eq!(after.events - before.events, 10);
        assert_eq!(after.accesses - before.accesses, 2);
        assert_eq!(after.hits - before.hits, 1);
        assert_eq!(after.misses - before.misses, 1);
        assert_eq!(after.miss_causes[3] - before.miss_causes[3], 1);
        assert_eq!(after.service_ns[2] - before.service_ns[2], 7);
        assert_eq!(after.queue_ns[3] - before.queue_ns[3], 4);
        assert_eq!(after.mem_stall_ns - before.mem_stall_ns, 45);
    }

    #[test]
    fn event_reports_due_at_threshold() {
        let mut d = LiveDelta::default();
        for i in 1..=FLUSH_EVERY {
            let due = d.event();
            assert_eq!(due, i == FLUSH_EVERY, "event {i}");
        }
        d.flush();
        // After a flush the threshold counter restarts.
        assert!(!d.event());
    }
}
