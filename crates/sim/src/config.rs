//! Machine configuration.
//!
//! [`MachineConfig`] describes one concrete CC-NUMA machine: its size and
//! node structure, cache geometry, page size and placement policy, latency
//! profile, interconnect topology, process mapping, and synchronization
//! primitives. Presets reproduce the paper's machines
//! ([`MachineConfig::origin2000`]) and experiment variants build on them by
//! mutating fields.

use crate::error::ConfigError;
use crate::latency::LatencyProfile;
use crate::mapping::ProcessMapping;
use crate::time::Ns;
use crate::topology::TopologyKind;
use crate::trace::TraceConfig;

/// Maximum number of simulated processors (directory sharer sets are `u128`).
pub const MAX_PROCS: usize = 128;

/// Geometry of the per-processor second-level cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: usize,
    /// Set associativity (ways).
    pub assoc: usize,
    /// Line (block) size in bytes; also the coherence granularity.
    pub line_bytes: usize,
}

impl CacheConfig {
    /// The Origin2000's 4 MB, 2-way, 128-byte-line L2.
    pub fn origin2000() -> Self {
        CacheConfig {
            size_bytes: 4 << 20,
            assoc: 2,
            line_bytes: 128,
        }
    }

    /// A geometrically scaled-down cache (same associativity and line size)
    /// used by the experiment harnesses together with scaled problem sizes.
    pub fn scaled(size_bytes: usize) -> Self {
        CacheConfig {
            size_bytes,
            ..Self::origin2000()
        }
    }

    /// Number of sets.
    pub fn n_sets(&self) -> usize {
        self.size_bytes / (self.assoc * self.line_bytes)
    }
}

/// Default home-node policy for pages that were not explicitly placed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PagePlacement {
    /// A page's home is the node of the first processor to touch it
    /// (spilling to other nodes when the toucher's memory is full).
    FirstTouch,
    /// Pages are distributed round-robin across nodes.
    RoundRobin,
}

/// Dynamic page-migration policy (§6.2). When enabled, the simulator keeps
/// per-page, per-node access counters (as the Origin2000's protocol does)
/// and migrates a page to a remote node once that node's misses exceed the
/// home node's by `threshold`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MigrationConfig {
    /// Excess remote-access count that triggers migration.
    pub threshold: u32,
    /// Minimum interval between migrations of the same page, in accesses.
    pub cooldown: u32,
}

impl Default for MigrationConfig {
    fn default() -> Self {
        MigrationConfig {
            threshold: 64,
            cooldown: 256,
        }
    }
}

/// Lock algorithm + primitive (§6.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LockImpl {
    /// Ticket lock built from LL/SC (the paper's default choice).
    TicketLlsc,
    /// Ticket lock built on the Hub's at-memory uncached fetch&op.
    TicketFetchOp,
}

/// Barrier algorithm + primitive (§6.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BarrierImpl {
    /// Tournament barrier using LL/SC flags (the paper's default choice).
    TournamentLlsc,
    /// Centralized counter barrier using LL/SC (arrivals serialize on one
    /// cache line).
    CentralLlsc,
    /// Centralized counter barrier using at-memory fetch&op.
    CentralFetchOp,
}

/// Conversion factors from abstract work units to busy nanoseconds.
///
/// Applications charge computation through [`crate::ctx::Ctx::compute_flops`]
/// and friends; this model converts counts to time so that sequential
/// execution times land in plausible regimes for a 195 MHz R10000.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CostModel {
    /// Nanoseconds per floating-point operation.
    pub flop_ns: Ns,
    /// Nanoseconds per integer/pointer operation.
    pub int_op_ns: Ns,
    /// Fixed overhead charged per function-call-ish unit of work, used by
    /// irregular applications for traversal steps.
    pub step_ns: Ns,
}

impl Default for CostModel {
    fn default() -> Self {
        // ~5 cycles per algorithmic flop and ~2 per integer op: calibrated
        // against the paper's Table-2 sequential times (e.g. FFT 2²⁰ at
        // 2.63 s ⇒ ≈25 ns per 5·n·log₂n flop), which fold address
        // arithmetic, loads/stores and pipeline stalls into the counts.
        CostModel {
            flop_ns: 25,
            int_op_ns: 10,
            step_ns: 30,
        }
    }
}

/// Complete description of a simulated machine.
///
/// Construct via a preset and adjust fields:
///
/// ```
/// use ccnuma_sim::config::MachineConfig;
/// let mut cfg = MachineConfig::origin2000(32);
/// cfg.prefetch_enabled = true;
/// cfg.validate().unwrap();
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct MachineConfig {
    /// Number of application processes / simulated processors.
    pub nprocs: usize,
    /// Processors per node sharing a Hub (Origin: 2; §7.2 studies 1).
    pub procs_per_node: usize,
    /// Nodes attached to each router (Origin: 2).
    pub nodes_per_router: usize,
    /// L2 cache geometry.
    pub cache: CacheConfig,
    /// Virtual-memory page size in bytes (Origin: 16 KB).
    pub page_bytes: usize,
    /// Main memory capacity per node in bytes. First-touch placement spills
    /// past this limit, reproducing the Ocean superlinearity effect (§4.1).
    pub mem_per_node_bytes: usize,
    /// Latency and occupancy parameters.
    pub latency: LatencyProfile,
    /// Interconnect shape; `None` selects the Origin default for the size
    /// (full hypercube up to 16 routers, 8-router metarouter modules above).
    pub topology: Option<TopologyKind>,
    /// Assignment of processes to physical processors.
    pub mapping: ProcessMapping,
    /// Default placement policy for unplaced pages.
    pub placement: PagePlacement,
    /// Dynamic page migration, if enabled.
    pub migration: Option<MigrationConfig>,
    /// Lock implementation.
    pub lock_impl: LockImpl,
    /// Barrier implementation.
    pub barrier_impl: BarrierImpl,
    /// Whether applications should issue software prefetches (§6.1).
    /// Applications consult this flag; prefetch calls are no-ops when false.
    pub prefetch_enabled: bool,
    /// Classify misses into cold / coherence / capacity (the tooling the
    /// paper's authors lacked). Costs extra host memory per touched line;
    /// off by default.
    pub classify_misses: bool,
    /// Computation cost model.
    pub cost: CostModel,
    /// Time-resolved event tracing (off by default; see
    /// [`TraceConfig`](crate::trace::TraceConfig)).
    pub trace: TraceConfig,
}

impl MachineConfig {
    /// An SGI Origin2000 with `nprocs` processors and the paper's default
    /// settings (manual placement falls back to first-touch; ticket lock and
    /// tournament barrier on LL/SC; no prefetch; no migration).
    pub fn origin2000(nprocs: usize) -> Self {
        MachineConfig {
            nprocs,
            procs_per_node: 2,
            nodes_per_router: 2,
            cache: CacheConfig::origin2000(),
            page_bytes: 16 << 10,
            mem_per_node_bytes: 512 << 20,
            latency: LatencyProfile::origin2000(),
            topology: None,
            mapping: ProcessMapping::Linear,
            placement: PagePlacement::FirstTouch,
            migration: None,
            lock_impl: LockImpl::TicketLlsc,
            barrier_impl: BarrierImpl::TournamentLlsc,
            prefetch_enabled: false,
            classify_misses: false,
            cost: CostModel::default(),
            trace: TraceConfig::default(),
        }
    }

    /// A scaled-down Origin2000 for fast experimentation: `cache_bytes` L2,
    /// 1 KB pages, and the memory system sped up by the square root of the
    /// cache-scale factor, everything else as [`MachineConfig::origin2000`].
    ///
    /// Problem sizes in the experiment harnesses shrink together with the
    /// cache. For near-neighbour applications, communication scales with
    /// partition *surface* while computation scales with *volume*, so a
    /// 1/k cache-and-problem scale inflates communication-to-computation
    /// by about √k; dividing all latencies by √k restores the paper's
    /// regimes (synchronization costs scale with them automatically).
    pub fn origin2000_scaled(nprocs: usize, cache_bytes: usize) -> Self {
        let full = CacheConfig::origin2000().size_bytes;
        let k = (full / cache_bytes.max(1)).max(1) as u64;
        let sqrt_k = (k as f64).sqrt().round().max(1.0) as u64;
        MachineConfig {
            cache: CacheConfig::scaled(cache_bytes),
            page_bytes: 1 << 10,
            mem_per_node_bytes: cache_bytes * 128,
            latency: LatencyProfile::origin2000().scaled_by(sqrt_k),
            ..Self::origin2000(nprocs)
        }
    }

    /// A shared-virtual-memory cluster of `nprocs` uniprocessor
    /// workstations (§5.2 of the paper, machinery of [6]): coherence at
    /// *page* granularity (the line size equals the page size), remote data
    /// replicated in main memory (the "cache" is DRAM-sized, so capacity
    /// evictions of replicated pages are rare), software-handler latencies,
    /// and very expensive synchronization.
    pub fn svm_cluster(nprocs: usize) -> Self {
        MachineConfig {
            nprocs,
            procs_per_node: 1,
            nodes_per_router: 2,
            cache: CacheConfig {
                size_bytes: 64 << 20,
                assoc: 2,
                line_bytes: 4 << 10,
            },
            page_bytes: 4 << 10,
            mem_per_node_bytes: 256 << 20,
            latency: LatencyProfile::svm_cluster(),
            topology: Some(TopologyKind::Ideal),
            mapping: ProcessMapping::Linear,
            placement: PagePlacement::FirstTouch,
            migration: None,
            lock_impl: LockImpl::TicketLlsc,
            barrier_impl: BarrierImpl::CentralLlsc,
            prefetch_enabled: false,
            classify_misses: false,
            cost: CostModel::default(),
            trace: TraceConfig::default(),
        }
    }

    /// Number of nodes.
    pub fn n_nodes(&self) -> usize {
        self.nprocs.div_ceil(self.procs_per_node)
    }

    /// The topology kind in effect (resolving the `None` default).
    pub fn topology_kind(&self) -> TopologyKind {
        self.topology.unwrap_or_else(|| {
            let routers = self.n_nodes().div_ceil(self.nodes_per_router);
            if routers <= 16 {
                TopologyKind::FullHypercube
            } else {
                TopologyKind::MetaModules {
                    routers_per_module: 8,
                }
            }
        })
    }

    /// Checks the configuration for consistency.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] if any field is out of range (zero sizes,
    /// more than [`MAX_PROCS`] processors, non-power-of-two geometry, or an
    /// invalid process mapping).
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.nprocs == 0 || self.nprocs > MAX_PROCS {
            return Err(ConfigError::BadProcCount(self.nprocs));
        }
        if self.procs_per_node == 0 || self.nodes_per_router == 0 {
            return Err(ConfigError::BadNodeShape);
        }
        if !self.page_bytes.is_power_of_two() || !self.cache.line_bytes.is_power_of_two() {
            return Err(ConfigError::NotPowerOfTwo);
        }
        if self.page_bytes < self.cache.line_bytes {
            return Err(ConfigError::PageSmallerThanLine);
        }
        if self.cache.assoc == 0
            || self.cache.size_bytes == 0
            || !self
                .cache
                .size_bytes
                .is_multiple_of(self.cache.assoc * self.cache.line_bytes)
            || !self.cache.n_sets().is_power_of_two()
        {
            return Err(ConfigError::BadCacheGeometry);
        }
        if self.mem_per_node_bytes < self.page_bytes {
            return Err(ConfigError::BadMemoryCapacity);
        }
        self.mapping
            .resolve(self.nprocs, self.procs_per_node)
            .map_err(ConfigError::BadMapping)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn origin_presets_validate() {
        for p in [1, 2, 17, 32, 64, 96, 128] {
            MachineConfig::origin2000(p).validate().unwrap();
            MachineConfig::origin2000_scaled(p, 64 << 10)
                .validate()
                .unwrap();
        }
    }

    #[test]
    fn topology_defaults_switch_at_scale() {
        assert_eq!(
            MachineConfig::origin2000(64).topology_kind(),
            TopologyKind::FullHypercube
        );
        assert_eq!(
            MachineConfig::origin2000(128).topology_kind(),
            TopologyKind::MetaModules {
                routers_per_module: 8
            }
        );
        assert_eq!(
            MachineConfig::origin2000(96).topology_kind(),
            TopologyKind::MetaModules {
                routers_per_module: 8
            }
        );
    }

    #[test]
    fn validation_rejects_bad_shapes() {
        let mut c = MachineConfig::origin2000(0);
        assert!(c.validate().is_err());
        c = MachineConfig::origin2000(129);
        assert!(c.validate().is_err());
        c = MachineConfig::origin2000(4);
        c.page_bytes = 100; // not a power of two
        assert!(c.validate().is_err());
        c = MachineConfig::origin2000(4);
        c.page_bytes = 64; // smaller than the 128-byte line
        assert!(c.validate().is_err());
        c = MachineConfig::origin2000(4);
        c.cache.assoc = 0;
        assert!(c.validate().is_err());
        c = MachineConfig::origin2000(4);
        c.cache.size_bytes = 3 << 20; // 3 MB 2-way/128B → 12288 sets, not pow2
        assert!(c.validate().is_err());
    }

    #[test]
    fn validation_rejects_bad_mapping() {
        let mut c = MachineConfig::origin2000(4);
        c.mapping = crate::mapping::ProcessMapping::Explicit(vec![0, 0, 1, 2]);
        assert!(c.validate().is_err());
    }

    #[test]
    fn svm_cluster_preset_validates_and_is_page_grained() {
        for np in [1, 8, 16] {
            let cfg = MachineConfig::svm_cluster(np);
            cfg.validate().unwrap();
            assert_eq!(
                cfg.cache.line_bytes, cfg.page_bytes,
                "SVM coherence is page-grained"
            );
            assert_eq!(cfg.procs_per_node, 1, "uniprocessor workstations");
            // Software handlers: orders of magnitude above hardware DSM.
            assert!(
                cfg.latency.remote_clean_ns > 50 * LatencyProfile::origin2000().remote_clean_ns
            );
        }
    }

    #[test]
    fn node_count_rounds_up() {
        assert_eq!(MachineConfig::origin2000(5).n_nodes(), 3);
        let mut c = MachineConfig::origin2000(8);
        c.procs_per_node = 1;
        assert_eq!(c.n_nodes(), 8);
    }

    #[test]
    fn cache_set_count() {
        assert_eq!(CacheConfig::origin2000().n_sets(), 16384);
        assert_eq!(CacheConfig::scaled(64 << 10).n_sets(), 256);
    }
}
