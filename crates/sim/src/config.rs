//! Machine configuration.
//!
//! [`MachineConfig`] describes one concrete CC-NUMA machine: its size and
//! node structure, cache geometry, page size and placement policy, latency
//! profile, interconnect topology, process mapping, and synchronization
//! primitives. Presets reproduce the paper's machines
//! ([`MachineConfig::origin2000`]) and experiment variants build on them by
//! mutating fields.

use crate::error::ConfigError;
use crate::latency::LatencyProfile;
use crate::mapping::ProcessMapping;
use crate::sanitize::SanitizeConfig;
use crate::schedule::ScheduleConfig;
use crate::time::Ns;
use crate::topology::TopologyKind;
use crate::trace::TraceConfig;

/// Maximum number of simulated processors (directory sharer sets are `u128`).
pub const MAX_PROCS: usize = 128;

/// A 64-bit FNV-1a streaming hash — the dependency-free content hash
/// behind [`MachineConfig::stable_fingerprint`] and the sweep engine's
/// run keys. Unlike [`std::hash::DefaultHasher`], its output is pinned:
/// it will never change across Rust releases, so hashes can be persisted.
#[derive(Debug, Clone)]
pub struct Fnv1a(u64);

impl Fnv1a {
    /// The standard FNV-1a offset basis.
    pub fn new() -> Self {
        Fnv1a(0xcbf2_9ce4_8422_2325)
    }

    /// Absorbs `bytes` into the hash.
    pub fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    /// The current hash value.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for Fnv1a {
    fn default() -> Self {
        Self::new()
    }
}

/// Geometry of the per-processor second-level cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: usize,
    /// Set associativity (ways).
    pub assoc: usize,
    /// Line (block) size in bytes; also the coherence granularity.
    pub line_bytes: usize,
}

impl CacheConfig {
    /// The Origin2000's 4 MB, 2-way, 128-byte-line L2.
    pub fn origin2000() -> Self {
        CacheConfig {
            size_bytes: 4 << 20,
            assoc: 2,
            line_bytes: 128,
        }
    }

    /// A geometrically scaled-down cache (same associativity and line size)
    /// used by the experiment harnesses together with scaled problem sizes.
    pub fn scaled(size_bytes: usize) -> Self {
        CacheConfig {
            size_bytes,
            ..Self::origin2000()
        }
    }

    /// Number of sets.
    pub fn n_sets(&self) -> usize {
        self.size_bytes / (self.assoc * self.line_bytes)
    }
}

/// Default home-node policy for pages that were not explicitly placed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PagePlacement {
    /// A page's home is the node of the first processor to touch it
    /// (spilling to other nodes when the toucher's memory is full).
    FirstTouch,
    /// Pages are distributed round-robin across nodes.
    RoundRobin,
}

/// Dynamic page-migration policy (§6.2). When enabled, the simulator keeps
/// per-page, per-node access counters (as the Origin2000's protocol does)
/// and migrates a page to a remote node once that node's misses exceed the
/// home node's by `threshold`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MigrationConfig {
    /// Excess remote-access count that triggers migration.
    pub threshold: u32,
    /// Minimum interval between migrations of the same page, in accesses.
    pub cooldown: u32,
}

impl Default for MigrationConfig {
    fn default() -> Self {
        MigrationConfig {
            threshold: 64,
            cooldown: 256,
        }
    }
}

/// Lock algorithm + primitive (§6.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LockImpl {
    /// Ticket lock built from LL/SC (the paper's default choice).
    TicketLlsc,
    /// Ticket lock built on the Hub's at-memory uncached fetch&op.
    TicketFetchOp,
}

/// Barrier algorithm + primitive (§6.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BarrierImpl {
    /// Tournament barrier using LL/SC flags (the paper's default choice).
    TournamentLlsc,
    /// Centralized counter barrier using LL/SC (arrivals serialize on one
    /// cache line).
    CentralLlsc,
    /// Centralized counter barrier using at-memory fetch&op.
    CentralFetchOp,
}

/// Conversion factors from abstract work units to busy nanoseconds.
///
/// Applications charge computation through [`crate::ctx::Ctx::compute_flops`]
/// and friends; this model converts counts to time so that sequential
/// execution times land in plausible regimes for a 195 MHz R10000.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CostModel {
    /// Nanoseconds per floating-point operation.
    pub flop_ns: Ns,
    /// Nanoseconds per integer/pointer operation.
    pub int_op_ns: Ns,
    /// Fixed overhead charged per function-call-ish unit of work, used by
    /// irregular applications for traversal steps.
    pub step_ns: Ns,
}

impl Default for CostModel {
    fn default() -> Self {
        // ~5 cycles per algorithmic flop and ~2 per integer op: calibrated
        // against the paper's Table-2 sequential times (e.g. FFT 2²⁰ at
        // 2.63 s ⇒ ≈25 ns per 5·n·log₂n flop), which fold address
        // arithmetic, loads/stores and pipeline stalls into the counts.
        CostModel {
            flop_ns: 25,
            int_op_ns: 10,
            step_ns: 30,
        }
    }
}

/// Complete description of a simulated machine.
///
/// Construct via a preset and adjust fields:
///
/// ```
/// use ccnuma_sim::config::MachineConfig;
/// let mut cfg = MachineConfig::origin2000(32);
/// cfg.prefetch_enabled = true;
/// cfg.validate().unwrap();
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct MachineConfig {
    /// Number of application processes / simulated processors.
    pub nprocs: usize,
    /// Processors per node sharing a Hub (Origin: 2; §7.2 studies 1).
    pub procs_per_node: usize,
    /// Nodes attached to each router (Origin: 2).
    pub nodes_per_router: usize,
    /// L2 cache geometry.
    pub cache: CacheConfig,
    /// Virtual-memory page size in bytes (Origin: 16 KB).
    pub page_bytes: usize,
    /// Main memory capacity per node in bytes. First-touch placement spills
    /// past this limit, reproducing the Ocean superlinearity effect (§4.1).
    pub mem_per_node_bytes: usize,
    /// Latency and occupancy parameters.
    pub latency: LatencyProfile,
    /// Interconnect shape; `None` selects the Origin default for the size
    /// (full hypercube up to 16 routers, 8-router metarouter modules above).
    pub topology: Option<TopologyKind>,
    /// Assignment of processes to physical processors.
    pub mapping: ProcessMapping,
    /// Default placement policy for unplaced pages.
    pub placement: PagePlacement,
    /// Dynamic page migration, if enabled.
    pub migration: Option<MigrationConfig>,
    /// Lock implementation.
    pub lock_impl: LockImpl,
    /// Barrier implementation.
    pub barrier_impl: BarrierImpl,
    /// Whether applications should issue software prefetches (§6.1).
    /// Applications consult this flag; prefetch calls are no-ops when false.
    pub prefetch_enabled: bool,
    /// Classify misses into cold / coherence / capacity (the tooling the
    /// paper's authors lacked). Costs extra host memory per touched line;
    /// off by default.
    pub classify_misses: bool,
    /// Computation cost model.
    pub cost: CostModel,
    /// Time-resolved event tracing (off by default; see
    /// [`TraceConfig`]).
    pub trace: TraceConfig,
    /// Happens-before race detection, lock-order analysis and
    /// synchronization lints (off by default; see
    /// [`SanitizeConfig`]).
    pub sanitize: SanitizeConfig,
    /// Host-side self-profiling of the engine hot path (off by default;
    /// see [`crate::prof`]). Measures where *wall-clock* time goes; it
    /// never touches simulated state.
    pub profile: bool,
    /// Critical-path profiling (off by default; see [`crate::critpath`]).
    /// Captures the run's happens-before dependency structure and reports
    /// what the longest path is made of, plus what-if speedup projections.
    /// Observer-passive: never changes simulated timing or statistics.
    pub critpath: bool,
    /// Seeded schedule perturbation (off by default; see
    /// [`crate::schedule`]). Unlike the observational knobs above, a set
    /// schedule *changes* the run's results — it joins
    /// [`MachineConfig::stable_fields`], but only when set, so existing
    /// fingerprints stay valid.
    pub schedule: Option<ScheduleConfig>,
}

impl MachineConfig {
    /// An SGI Origin2000 with `nprocs` processors and the paper's default
    /// settings (manual placement falls back to first-touch; ticket lock and
    /// tournament barrier on LL/SC; no prefetch; no migration).
    pub fn origin2000(nprocs: usize) -> Self {
        MachineConfig {
            nprocs,
            procs_per_node: 2,
            nodes_per_router: 2,
            cache: CacheConfig::origin2000(),
            page_bytes: 16 << 10,
            mem_per_node_bytes: 512 << 20,
            latency: LatencyProfile::origin2000(),
            topology: None,
            mapping: ProcessMapping::Linear,
            placement: PagePlacement::FirstTouch,
            migration: None,
            lock_impl: LockImpl::TicketLlsc,
            barrier_impl: BarrierImpl::TournamentLlsc,
            prefetch_enabled: false,
            classify_misses: false,
            cost: CostModel::default(),
            trace: TraceConfig::default(),
            sanitize: SanitizeConfig::default(),
            profile: false,
            critpath: false,
            schedule: None,
        }
    }

    /// A scaled-down Origin2000 for fast experimentation: `cache_bytes` L2,
    /// 1 KB pages, and the memory system sped up by the square root of the
    /// cache-scale factor, everything else as [`MachineConfig::origin2000`].
    ///
    /// Problem sizes in the experiment harnesses shrink together with the
    /// cache. For near-neighbour applications, communication scales with
    /// partition *surface* while computation scales with *volume*, so a
    /// 1/k cache-and-problem scale inflates communication-to-computation
    /// by about √k; dividing all latencies by √k restores the paper's
    /// regimes (synchronization costs scale with them automatically).
    pub fn origin2000_scaled(nprocs: usize, cache_bytes: usize) -> Self {
        let full = CacheConfig::origin2000().size_bytes;
        let k = (full / cache_bytes.max(1)).max(1) as u64;
        let sqrt_k = (k as f64).sqrt().round().max(1.0) as u64;
        MachineConfig {
            cache: CacheConfig::scaled(cache_bytes),
            page_bytes: 1 << 10,
            mem_per_node_bytes: cache_bytes * 128,
            latency: LatencyProfile::origin2000().scaled_by(sqrt_k),
            ..Self::origin2000(nprocs)
        }
    }

    /// A shared-virtual-memory cluster of `nprocs` uniprocessor
    /// workstations (§5.2 of the paper, machinery of \[6\]): coherence at
    /// *page* granularity (the line size equals the page size), remote data
    /// replicated in main memory (the "cache" is DRAM-sized, so capacity
    /// evictions of replicated pages are rare), software-handler latencies,
    /// and very expensive synchronization.
    pub fn svm_cluster(nprocs: usize) -> Self {
        MachineConfig {
            nprocs,
            procs_per_node: 1,
            nodes_per_router: 2,
            cache: CacheConfig {
                size_bytes: 64 << 20,
                assoc: 2,
                line_bytes: 4 << 10,
            },
            page_bytes: 4 << 10,
            mem_per_node_bytes: 256 << 20,
            latency: LatencyProfile::svm_cluster(),
            topology: Some(TopologyKind::Ideal),
            mapping: ProcessMapping::Linear,
            placement: PagePlacement::FirstTouch,
            migration: None,
            lock_impl: LockImpl::TicketLlsc,
            barrier_impl: BarrierImpl::CentralLlsc,
            prefetch_enabled: false,
            classify_misses: false,
            cost: CostModel::default(),
            trace: TraceConfig::default(),
            sanitize: SanitizeConfig::default(),
            profile: false,
            critpath: false,
            schedule: None,
        }
    }

    /// Number of nodes.
    pub fn n_nodes(&self) -> usize {
        self.nprocs.div_ceil(self.procs_per_node)
    }

    /// The topology kind in effect (resolving the `None` default).
    pub fn topology_kind(&self) -> TopologyKind {
        self.topology.unwrap_or_else(|| {
            let routers = self.n_nodes().div_ceil(self.nodes_per_router);
            if routers <= 16 {
                TopologyKind::FullHypercube
            } else {
                TopologyKind::MetaModules {
                    routers_per_module: 8,
                }
            }
        })
    }

    /// The semantically relevant fields of this configuration as sorted
    /// `key=value` lines — the canonical form behind
    /// [`MachineConfig::stable_fingerprint`].
    ///
    /// Everything that can change a run's *results* is included: machine
    /// shape, cache geometry, paging, latencies, topology, mapping,
    /// placement/migration, synchronization primitives, prefetch, miss
    /// classification (it adds counters to the stats), and the cost model.
    /// Tracing, sanitizing, host profiling and critical-path profiling
    /// are excluded — they observe a run without perturbing it. A set
    /// [`MachineConfig::schedule`] *is* included (it changes results),
    /// but only when set, so unset-schedule fingerprints are unchanged.
    pub fn stable_fields(&self) -> Vec<(String, String)> {
        let l = &self.latency;
        let mut kv: Vec<(String, String)> = vec![
            ("nprocs".into(), self.nprocs.to_string()),
            ("procs_per_node".into(), self.procs_per_node.to_string()),
            ("nodes_per_router".into(), self.nodes_per_router.to_string()),
            ("cache.size_bytes".into(), self.cache.size_bytes.to_string()),
            ("cache.assoc".into(), self.cache.assoc.to_string()),
            ("cache.line_bytes".into(), self.cache.line_bytes.to_string()),
            ("page_bytes".into(), self.page_bytes.to_string()),
            (
                "mem_per_node_bytes".into(),
                self.mem_per_node_bytes.to_string(),
            ),
            ("latency.name".into(), l.name.to_string()),
            ("latency.l2_hit_ns".into(), l.l2_hit_ns.to_string()),
            ("latency.local_ns".into(), l.local_ns.to_string()),
            (
                "latency.remote_clean_ns".into(),
                l.remote_clean_ns.to_string(),
            ),
            (
                "latency.remote_dirty_ns".into(),
                l.remote_dirty_ns.to_string(),
            ),
            ("latency.link_ns".into(), l.link_ns.to_string()),
            ("latency.metarouter_ns".into(), l.metarouter_ns.to_string()),
            ("latency.hub_occ_ns".into(), l.hub_occ_ns.to_string()),
            ("latency.mem_occ_ns".into(), l.mem_occ_ns.to_string()),
            ("latency.router_occ_ns".into(), l.router_occ_ns.to_string()),
            (
                "latency.metarouter_occ_ns".into(),
                l.metarouter_occ_ns.to_string(),
            ),
            ("latency.inval_ns".into(), l.inval_ns.to_string()),
            ("latency.llsc_extra_ns".into(), l.llsc_extra_ns.to_string()),
            ("latency.fetchop_ns".into(), l.fetchop_ns.to_string()),
            (
                "latency.prefetch_issue_ns".into(),
                l.prefetch_issue_ns.to_string(),
            ),
            (
                "latency.page_migrate_ns".into(),
                l.page_migrate_ns.to_string(),
            ),
            ("topology".into(), format!("{:?}", self.topology_kind())),
            ("mapping".into(), format!("{:?}", self.mapping)),
            ("placement".into(), format!("{:?}", self.placement)),
            ("migration".into(), format!("{:?}", self.migration)),
            ("lock_impl".into(), format!("{:?}", self.lock_impl)),
            ("barrier_impl".into(), format!("{:?}", self.barrier_impl)),
            ("prefetch_enabled".into(), self.prefetch_enabled.to_string()),
            ("classify_misses".into(), self.classify_misses.to_string()),
            ("cost.flop_ns".into(), self.cost.flop_ns.to_string()),
            ("cost.int_op_ns".into(), self.cost.int_op_ns.to_string()),
            ("cost.step_ns".into(), self.cost.step_ns.to_string()),
        ];
        // Only when set: an unset schedule contributes nothing, so every
        // fingerprint computed before the field existed stays valid.
        if let Some(s) = &self.schedule {
            kv.push(("schedule".into(), format!("{s:?}")));
        }
        kv.sort();
        kv
    }

    /// A stable content fingerprint of the configuration: a 64-bit FNV-1a
    /// hash over the sorted `key=value` lines of
    /// [`MachineConfig::stable_fields`], rendered as 16 hex digits.
    ///
    /// Because the lines are sorted by key before hashing, the fingerprint
    /// is a pure function of the *set* of field values — reordering the
    /// struct's declaration (or this method's pushes) cannot change it.
    /// Result caches (the `sweep` engine's JSONL store) key on this.
    pub fn stable_fingerprint(&self) -> String {
        let mut h = Fnv1a::new();
        for (k, v) in self.stable_fields() {
            h.update(k.as_bytes());
            h.update(b"=");
            h.update(v.as_bytes());
            h.update(b"\n");
        }
        format!("{:016x}", h.finish())
    }

    /// Checks the configuration for consistency.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] if any field is out of range (zero sizes,
    /// more than [`MAX_PROCS`] processors, non-power-of-two geometry, or an
    /// invalid process mapping).
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.nprocs == 0 || self.nprocs > MAX_PROCS {
            return Err(ConfigError::BadProcCount(self.nprocs));
        }
        if self.procs_per_node == 0 || self.nodes_per_router == 0 {
            return Err(ConfigError::BadNodeShape);
        }
        if !self.page_bytes.is_power_of_two() || !self.cache.line_bytes.is_power_of_two() {
            return Err(ConfigError::NotPowerOfTwo);
        }
        if self.page_bytes < self.cache.line_bytes {
            return Err(ConfigError::PageSmallerThanLine);
        }
        if self.cache.assoc == 0
            || self.cache.size_bytes == 0
            || !self
                .cache
                .size_bytes
                .is_multiple_of(self.cache.assoc * self.cache.line_bytes)
            || !self.cache.n_sets().is_power_of_two()
        {
            return Err(ConfigError::BadCacheGeometry);
        }
        if self.mem_per_node_bytes < self.page_bytes {
            return Err(ConfigError::BadMemoryCapacity);
        }
        self.mapping
            .resolve(self.nprocs, self.procs_per_node)
            .map_err(ConfigError::BadMapping)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn origin_presets_validate() {
        for p in [1, 2, 17, 32, 64, 96, 128] {
            MachineConfig::origin2000(p).validate().unwrap();
            MachineConfig::origin2000_scaled(p, 64 << 10)
                .validate()
                .unwrap();
        }
    }

    #[test]
    fn topology_defaults_switch_at_scale() {
        assert_eq!(
            MachineConfig::origin2000(64).topology_kind(),
            TopologyKind::FullHypercube
        );
        assert_eq!(
            MachineConfig::origin2000(128).topology_kind(),
            TopologyKind::MetaModules {
                routers_per_module: 8
            }
        );
        assert_eq!(
            MachineConfig::origin2000(96).topology_kind(),
            TopologyKind::MetaModules {
                routers_per_module: 8
            }
        );
    }

    #[test]
    fn validation_rejects_bad_shapes() {
        let mut c = MachineConfig::origin2000(0);
        assert!(c.validate().is_err());
        c = MachineConfig::origin2000(129);
        assert!(c.validate().is_err());
        c = MachineConfig::origin2000(4);
        c.page_bytes = 100; // not a power of two
        assert!(c.validate().is_err());
        c = MachineConfig::origin2000(4);
        c.page_bytes = 64; // smaller than the 128-byte line
        assert!(c.validate().is_err());
        c = MachineConfig::origin2000(4);
        c.cache.assoc = 0;
        assert!(c.validate().is_err());
        c = MachineConfig::origin2000(4);
        c.cache.size_bytes = 3 << 20; // 3 MB 2-way/128B → 12288 sets, not pow2
        assert!(c.validate().is_err());
    }

    #[test]
    fn validation_rejects_bad_mapping() {
        let mut c = MachineConfig::origin2000(4);
        c.mapping = crate::mapping::ProcessMapping::Explicit(vec![0, 0, 1, 2]);
        assert!(c.validate().is_err());
    }

    #[test]
    fn svm_cluster_preset_validates_and_is_page_grained() {
        for np in [1, 8, 16] {
            let cfg = MachineConfig::svm_cluster(np);
            cfg.validate().unwrap();
            assert_eq!(
                cfg.cache.line_bytes, cfg.page_bytes,
                "SVM coherence is page-grained"
            );
            assert_eq!(cfg.procs_per_node, 1, "uniprocessor workstations");
            // Software handlers: orders of magnitude above hardware DSM.
            assert!(
                cfg.latency.remote_clean_ns > 50 * LatencyProfile::origin2000().remote_clean_ns
            );
        }
    }

    #[test]
    fn stable_fingerprint_tracks_semantic_fields_only() {
        let a = MachineConfig::origin2000(8);
        let mut b = MachineConfig::origin2000(8);
        assert_eq!(a.stable_fingerprint(), b.stable_fingerprint());
        // Tracing is observational: it must not change the fingerprint.
        b.trace = crate::trace::TraceConfig::on();
        assert_eq!(a.stable_fingerprint(), b.stable_fingerprint());
        // So is sanitizing: it never charges virtual time.
        b.sanitize = crate::sanitize::SanitizeConfig::on();
        assert_eq!(a.stable_fingerprint(), b.stable_fingerprint());
        // And host profiling: it measures wall-clock, not simulated time.
        b.profile = true;
        assert_eq!(a.stable_fingerprint(), b.stable_fingerprint());
        b.critpath = true;
        assert_eq!(a.stable_fingerprint(), b.stable_fingerprint());
        // Schedule perturbation changes results: it must change the
        // fingerprint, and different seeds/modes must differ.
        let mut s1 = MachineConfig::origin2000(8);
        s1.schedule = Some(crate::schedule::ScheduleConfig::random(1));
        let mut s2 = MachineConfig::origin2000(8);
        s2.schedule = Some(crate::schedule::ScheduleConfig::random(2));
        let mut s3 = MachineConfig::origin2000(8);
        s3.schedule = Some(crate::schedule::ScheduleConfig::pct(1, 8));
        assert_ne!(a.stable_fingerprint(), s1.stable_fingerprint());
        assert_ne!(s1.stable_fingerprint(), s2.stable_fingerprint());
        assert_ne!(s1.stable_fingerprint(), s3.stable_fingerprint());
        // Anything that changes results must change the fingerprint.
        for (i, mutate) in [
            (&|c: &mut MachineConfig| c.nprocs = 16) as &dyn Fn(&mut MachineConfig),
            &|c| c.cache.size_bytes = 1 << 20,
            &|c| c.prefetch_enabled = true,
            &|c| c.classify_misses = true,
            &|c| c.placement = PagePlacement::RoundRobin,
            &|c| c.migration = Some(MigrationConfig::default()),
            &|c| c.lock_impl = LockImpl::TicketFetchOp,
            &|c| c.cost.flop_ns = 1,
        ]
        .iter()
        .enumerate()
        {
            let mut m = MachineConfig::origin2000(8);
            mutate(&mut m);
            assert_ne!(
                a.stable_fingerprint(),
                m.stable_fingerprint(),
                "mutation {i} did not change the fingerprint"
            );
        }
    }

    #[test]
    fn stable_fields_are_sorted_and_fnv_is_pinned() {
        let fields = MachineConfig::origin2000(8).stable_fields();
        let keys: Vec<&String> = fields.iter().map(|(k, _)| k).collect();
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted, "stable_fields must come out sorted");
        // The FNV-1a constants are pinned forever: hashes are persisted in
        // sweep result stores across sessions and toolchains.
        let mut h = Fnv1a::new();
        h.update(b"hello");
        assert_eq!(h.finish(), 0xa430_d846_80aa_bd0b);
        assert_eq!(Fnv1a::new().finish(), 0xcbf2_9ce4_8422_2325);
    }

    #[test]
    fn unset_schedule_keeps_the_historical_fingerprint() {
        // Pinned from before the `schedule` field existed: an unset
        // schedule must hash to the exact fingerprint older stores hold.
        assert_eq!(
            MachineConfig::origin2000(8).stable_fingerprint(),
            "6970d5c91ddd77d5"
        );
    }

    #[test]
    fn node_count_rounds_up() {
        assert_eq!(MachineConfig::origin2000(5).n_nodes(), 3);
        let mut c = MachineConfig::origin2000(8);
        c.procs_per_node = 1;
        assert_eq!(c.n_nodes(), 8);
    }

    #[test]
    fn cache_set_count() {
        assert_eq!(CacheConfig::origin2000().n_sets(), 16384);
        assert_eq!(CacheConfig::scaled(64 << 10).n_sets(), 256);
    }
}
