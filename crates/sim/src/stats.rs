//! Execution statistics: the per-processor Busy / Memory / Synchronization
//! breakdown that drives every figure in the paper, plus event counters.

use crate::attrib::{LatencyBreakdown, CAUSE_SLOTS};
use crate::contend::ResourceTotals;
use crate::time::Ns;

/// Counters and time accumulators for one simulated processor.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct ProcStats {
    /// Time spent computing.
    pub busy_ns: Ns,
    /// Stall time on cache misses (local + remote; the paper's "Memory").
    pub mem_ns: Ns,
    /// Of `mem_ns`, stall on accesses whose home was the local node.
    pub mem_local_ns: Ns,
    /// Of `mem_ns`, stall on remote accesses (what the Origin couldn't
    /// separate; §8 calls this the machine's greatest missing feature).
    pub mem_remote_ns: Ns,
    /// Waiting at synchronization events (lock queues, barrier arrival skew).
    pub sync_wait_ns: Ns,
    /// Overhead of synchronization operations themselves.
    pub sync_op_ns: Ns,
    /// Virtual time at which this processor finished.
    pub finish_ns: Ns,

    /// Reads issued (line-granular).
    pub reads: u64,
    /// Writes issued (line-granular).
    pub writes: u64,
    /// Cache hits.
    pub hits: u64,
    /// Misses satisfied by the local node's memory.
    pub misses_local: u64,
    /// Misses satisfied by a remote home with a clean copy (2-hop).
    pub misses_remote_clean: u64,
    /// Misses requiring intervention at a dirty third node (3-hop).
    pub misses_remote_dirty: u64,
    /// Write upgrades of Shared lines.
    pub upgrades: u64,
    /// Invalidations this processor's writes sent to other caches.
    pub invals_sent: u64,
    /// Dirty lines written back on eviction.
    pub writebacks: u64,
    /// Prefetches issued.
    pub prefetches: u64,
    /// Demand accesses that found their line still in flight from a
    /// prefetch (late prefetch: partial benefit).
    pub prefetch_late: u64,
    /// Lock acquisitions.
    pub lock_acquires: u64,
    /// Barrier episodes participated in.
    pub barriers: u64,
    /// fetch&op / atomic read-modify-writes performed.
    pub atomics: u64,
    /// Misses to lines this processor never cached before
    /// (only counted when `classify_misses` is enabled).
    pub misses_cold: u64,
    /// Misses caused by another processor's invalidation (ditto).
    pub misses_coherence: u64,
    /// Misses to lines this processor once cached and then evicted —
    /// capacity/conflict misses (ditto).
    pub misses_capacity: u64,
    /// Of `misses_capacity`, misses whose eviction left free lines in other
    /// sets — pure conflict (mapping) misses (ditto).
    pub misses_conflict: u64,
    /// Of `misses_coherence`, misses where the invalidating write touched
    /// only words this processor never accessed — false sharing (ditto).
    pub misses_false_share: u64,
    /// One-way network hops traversed by this processor's misses (divide by
    /// remote misses for the average distance to data).
    pub miss_hops: u64,
    /// Exact decomposition of `mem_ns` into per-resource service/queueing;
    /// `mem_breakdown.total() == mem_ns` always holds.
    pub mem_breakdown: LatencyBreakdown,
    /// `mem_ns` split by miss cause ([`MissCause::index`](crate::attrib::MissCause::index) slots, plus
    /// [`CAUSE_OTHER`](crate::attrib::CAUSE_OTHER) for hits/upgrades/unclassified stall).
    pub mem_cause_ns: [Ns; CAUSE_SLOTS],
}

impl ProcStats {
    /// Total synchronization time (wait + operation overhead).
    pub fn sync_ns(&self) -> Ns {
        self.sync_wait_ns + self.sync_op_ns
    }

    /// Total accounted time (busy + memory + sync).
    pub fn total_ns(&self) -> Ns {
        self.busy_ns + self.mem_ns + self.sync_ns()
    }

    /// Total line-granular accesses.
    pub fn accesses(&self) -> u64 {
        self.reads + self.writes
    }

    /// All misses.
    pub fn misses(&self) -> u64 {
        self.misses_local + self.misses_remote_clean + self.misses_remote_dirty
    }

    /// Classified miss counts by [`MissCause::index`](crate::attrib::MissCause::index) slot:
    /// `[cold, capacity (excl. conflict), conflict, coh-true, coh-false]`.
    /// All zeros unless `classify_misses` was enabled. The five slots sum
    /// to [`misses`](Self::misses) when classification was on.
    pub fn cause_counts(&self) -> [u64; 5] {
        [
            self.misses_cold,
            self.misses_capacity - self.misses_conflict,
            self.misses_conflict,
            self.misses_coherence - self.misses_false_share,
            self.misses_false_share,
        ]
    }

    /// The (busy, memory, sync) shares of this processor's time, in percent.
    /// Returns zeros for an idle processor.
    pub fn breakdown_pct(&self) -> (f64, f64, f64) {
        let total = self.total_ns() as f64;
        if total == 0.0 {
            return (0.0, 0.0, 0.0);
        }
        (
            100.0 * self.busy_ns as f64 / total,
            100.0 * self.mem_ns as f64 / total,
            100.0 * self.sync_ns() as f64 / total,
        )
    }
}

/// One processor's time slice within one named phase. The same identity
/// as [`ProcStats`] holds per phase: `busy + mem + sync` partitions the
/// processor's time spent inside the phase.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct PhaseBreakdown {
    /// Time spent computing.
    pub busy_ns: Ns,
    /// Stall time on cache misses.
    pub mem_ns: Ns,
    /// Of `mem_ns`, stall on local-home accesses.
    pub mem_local_ns: Ns,
    /// Of `mem_ns`, stall on remote accesses.
    pub mem_remote_ns: Ns,
    /// Waiting at synchronization events.
    pub sync_wait_ns: Ns,
    /// Overhead of synchronization operations themselves.
    pub sync_op_ns: Ns,
    /// Exact per-resource service/queueing decomposition of `mem_ns`.
    pub mem_breakdown: LatencyBreakdown,
    /// `mem_ns` split by miss cause (see
    /// [`ProcStats::mem_cause_ns`]).
    pub mem_cause_ns: [Ns; CAUSE_SLOTS],
}

impl PhaseBreakdown {
    /// Total synchronization time (wait + operation overhead).
    pub fn sync_ns(&self) -> Ns {
        self.sync_wait_ns + self.sync_op_ns
    }

    /// Total time spent in the phase.
    pub fn total_ns(&self) -> Ns {
        self.busy_ns + self.mem_ns + self.sync_ns()
    }

    /// Accumulates another breakdown into this one.
    pub fn add(&mut self, o: &PhaseBreakdown) {
        self.busy_ns += o.busy_ns;
        self.mem_ns += o.mem_ns;
        self.mem_local_ns += o.mem_local_ns;
        self.mem_remote_ns += o.mem_remote_ns;
        self.sync_wait_ns += o.sync_wait_ns;
        self.sync_op_ns += o.sync_op_ns;
        self.mem_breakdown.add(&o.mem_breakdown);
        for i in 0..CAUSE_SLOTS {
            self.mem_cause_ns[i] += o.mem_cause_ns[i];
        }
    }
}

/// Per-processor time breakdown for one named application phase
/// (demarcated with [`Ctx::phase`](crate::ctx::Ctx::phase)).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseStats {
    /// Phase name; time before the first marker lands in `"main"`.
    pub name: String,
    /// Per-processor breakdowns, indexed by process id.
    pub procs: Vec<PhaseBreakdown>,
}

impl PhaseStats {
    /// Sum of all processors' breakdowns for this phase.
    pub fn total(&self) -> PhaseBreakdown {
        let mut t = PhaseBreakdown::default();
        for p in &self.procs {
            t.add(p);
        }
        t
    }

    /// The (busy, memory, sync) shares of the phase's aggregate time, in
    /// percent; zeros if no time was spent in the phase.
    pub fn breakdown_pct(&self) -> (f64, f64, f64) {
        let t = self.total();
        let total = t.total_ns() as f64;
        if total == 0.0 {
            return (0.0, 0.0, 0.0);
        }
        (
            100.0 * t.busy_ns as f64 / total,
            100.0 * t.mem_ns as f64 / total,
            100.0 * t.sync_ns() as f64 / total,
        )
    }
}

/// Result of one simulated run.
///
/// `PartialEq` compares every field — two runs of the same program on the
/// same configuration are expected to compare equal bit-for-bit (see the
/// determinism note in the crate docs); the sweep engine's replay audit
/// relies on this.
#[derive(Debug, Clone, PartialEq)]
pub struct RunStats {
    /// Per-processor statistics, indexed by process id.
    pub procs: Vec<ProcStats>,
    /// Wall-clock of the run: the latest processor finish time.
    pub wall_ns: Ns,
    /// Engine events processed (requests dispatched in virtual-time
    /// order). Deterministic for a given program and configuration, so
    /// `host time / events` gives a stable ns-per-event throughput
    /// measure (`bench perf` gates on it).
    pub events: u64,
    /// Pages migrated by the dynamic migration policy.
    pub page_migrations: u64,
    /// Aggregate occupancy/wait per resource class:
    /// hubs, memories, routers, metarouters.
    pub resources: [ResourceTotals; 4],
    /// Per-label profiles for allocations made with
    /// [`Machine::shared_vec_labeled`](crate::machine::Machine::shared_vec_labeled).
    /// Empty when nothing was labelled — and therefore also empty whenever
    /// range profiling is effectively disabled for the run, since profiling
    /// only happens for labelled allocations.
    pub ranges: Vec<crate::profile::RangeProfile>,
    /// Per-phase time breakdowns, in first-use order; phase `0` is the
    /// implicit `"main"` phase. Always collected (phase accounting is
    /// cheap); a run that never calls `ctx.phase` has the single `"main"`
    /// entry.
    pub phases: Vec<PhaseStats>,
    /// The time-resolved event trace, when
    /// [`TraceConfig::enabled`](crate::trace::TraceConfig) was set.
    pub trace: Option<crate::trace::Trace>,
    /// Findings of the happens-before sanitizer, when `cfg.sanitize` was
    /// enabled. Purely observational: two runs differing only in this
    /// field had identical simulated timing.
    pub sanitize: Option<crate::sanitize::SanitizeReport>,
    /// Critical-path analysis, when `cfg.critpath` was enabled. Purely
    /// observational, like `sanitize`: two runs differing only in this
    /// field had identical simulated timing.
    pub critpath: Option<crate::critpath::CritReport>,
}

impl RunStats {
    /// Number of processors in the run.
    pub fn nprocs(&self) -> usize {
        self.procs.len()
    }

    /// Machine-wide average breakdown in percent (busy, memory, sync),
    /// averaging each processor's shares as the paper's Figure 3 does.
    pub fn avg_breakdown_pct(&self) -> (f64, f64, f64) {
        let n = self.procs.len().max(1) as f64;
        let (mut b, mut m, mut s) = (0.0, 0.0, 0.0);
        for p in &self.procs {
            let (pb, pm, ps) = p.breakdown_pct();
            b += pb;
            m += pm;
            s += ps;
        }
        (b / n, m / n, s / n)
    }

    /// Sums a counter over all processors.
    pub fn total<F: Fn(&ProcStats) -> u64>(&self, f: F) -> u64 {
        self.procs.iter().map(f).sum()
    }

    /// Looks up a phase by name (e.g. `stats.phase("force-calc")`).
    pub fn phase(&self, name: &str) -> Option<&PhaseStats> {
        self.phases.iter().find(|p| p.name == name)
    }

    /// Machine-wide memory-stall decomposition: the sum of every
    /// processor's [`ProcStats::mem_breakdown`]. Its `total()` equals the
    /// summed `mem_ns` exactly.
    pub fn mem_breakdown(&self) -> LatencyBreakdown {
        let mut b = LatencyBreakdown::default();
        for p in &self.procs {
            b.add(&p.mem_breakdown);
        }
        b
    }

    /// Machine-wide classified miss counts by [`MissCause::index`](crate::attrib::MissCause::index) slot
    /// (all zeros unless `classify_misses` was enabled).
    pub fn cause_counts(&self) -> [u64; 5] {
        let mut c = [0u64; 5];
        for p in &self.procs {
            let pc = p.cause_counts();
            for i in 0..5 {
                c[i] += pc[i];
            }
        }
        c
    }

    /// Machine-wide memory stall by cause slot (the five [`MissCause`](crate::attrib::MissCause)s
    /// plus [`CAUSE_OTHER`](crate::attrib::CAUSE_OTHER)); sums to the machine's total `mem_ns`.
    pub fn cause_stall_ns(&self) -> [Ns; CAUSE_SLOTS] {
        let mut c = [0; CAUSE_SLOTS];
        for p in &self.procs {
            for (slot, ns) in c.iter_mut().zip(&p.mem_cause_ns) {
                *slot += ns;
            }
        }
        c
    }

    /// Average one-way network hops per miss — the run's distance-to-data
    /// (local misses count as 0 hops). 0.0 when there were no misses.
    pub fn avg_miss_hops(&self) -> f64 {
        let misses = self.total(|p| p.misses());
        if misses == 0 {
            return 0.0;
        }
        self.total(|p| p.miss_hops) as f64 / misses as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn proc(busy: Ns, mem: Ns, sync: Ns) -> ProcStats {
        ProcStats {
            busy_ns: busy,
            mem_ns: mem,
            sync_wait_ns: sync,
            ..Default::default()
        }
    }

    #[test]
    fn breakdown_sums_to_100() {
        let p = proc(50, 30, 20);
        let (b, m, s) = p.breakdown_pct();
        assert!((b + m + s - 100.0).abs() < 1e-9);
        assert_eq!(b, 50.0);
    }

    #[test]
    fn idle_proc_breakdown_is_zero() {
        assert_eq!(ProcStats::default().breakdown_pct(), (0.0, 0.0, 0.0));
    }

    #[test]
    fn avg_breakdown_averages_shares_not_times() {
        // One proc all-busy of 10ns, one proc all-sync of 1000ns: average of
        // *shares* is 50/0/50 regardless of magnitudes.
        let rs = RunStats {
            procs: vec![proc(10, 0, 0), proc(0, 0, 1000)],
            wall_ns: 1000,
            events: 0,
            page_migrations: 0,
            resources: Default::default(),
            ranges: Vec::new(),
            phases: Vec::new(),
            trace: None,
            sanitize: None,
            critpath: None,
        };
        let (b, m, s) = rs.avg_breakdown_pct();
        assert_eq!((b, m, s), (50.0, 0.0, 50.0));
    }

    #[test]
    fn totals_sum_counters() {
        let a = ProcStats {
            reads: 3,
            ..Default::default()
        };
        let b = ProcStats {
            reads: 4,
            ..Default::default()
        };
        let rs = RunStats {
            procs: vec![a, b],
            wall_ns: 0,
            events: 0,
            page_migrations: 0,
            resources: Default::default(),
            ranges: Vec::new(),
            phases: Vec::new(),
            trace: None,
            sanitize: None,
            critpath: None,
        };
        assert_eq!(rs.total(|p| p.reads), 7);
    }

    #[test]
    fn phase_lookup_finds_by_name() {
        let ph = |name: &str, busy: Ns| PhaseStats {
            name: name.into(),
            procs: vec![PhaseBreakdown {
                busy_ns: busy,
                ..Default::default()
            }],
        };
        let rs = RunStats {
            procs: vec![ProcStats::default()],
            wall_ns: 0,
            events: 0,
            page_migrations: 0,
            resources: Default::default(),
            ranges: Vec::new(),
            phases: vec![ph("main", 10), ph("solve", 90)],
            trace: None,
            sanitize: None,
            critpath: None,
        };
        assert_eq!(rs.phase("solve").unwrap().total().busy_ns, 90);
        assert_eq!(rs.phase("main").unwrap().procs.len(), 1);
        assert!(rs.phase("missing").is_none());
    }

    #[test]
    fn cause_counts_split_subset_counters() {
        let p = ProcStats {
            misses_cold: 3,
            misses_capacity: 10,
            misses_conflict: 4,
            misses_coherence: 7,
            misses_false_share: 2,
            ..Default::default()
        };
        assert_eq!(p.cause_counts(), [3, 6, 4, 5, 2]);
        let rs = RunStats {
            procs: vec![p.clone(), p],
            wall_ns: 0,
            events: 0,
            page_migrations: 0,
            resources: Default::default(),
            ranges: Vec::new(),
            phases: Vec::new(),
            trace: None,
            sanitize: None,
            critpath: None,
        };
        assert_eq!(rs.cause_counts(), [6, 12, 8, 10, 4]);
        assert_eq!(rs.cause_counts().iter().sum::<u64>(), 2 * (3 + 10 + 7));
    }

    #[test]
    fn run_breakdown_and_hops_aggregate() {
        let mut p = ProcStats {
            mem_ns: 100,
            misses_local: 2,
            misses_remote_clean: 2,
            miss_hops: 8,
            ..Default::default()
        };
        p.mem_breakdown.queue[0] = 60;
        p.mem_breakdown.other_ns = 40;
        let rs = RunStats {
            procs: vec![p.clone(), p],
            wall_ns: 0,
            events: 0,
            page_migrations: 0,
            resources: Default::default(),
            ranges: Vec::new(),
            phases: Vec::new(),
            trace: None,
            sanitize: None,
            critpath: None,
        };
        assert_eq!(rs.mem_breakdown().total(), rs.total(|p| p.mem_ns));
        assert_eq!(rs.mem_breakdown().queue_total(), 120);
        assert!((rs.avg_miss_hops() - 2.0).abs() < 1e-12);
        assert_eq!(
            RunStats {
                procs: vec![],
                wall_ns: 0,
                events: 0,
                page_migrations: 0,
                resources: Default::default(),
                ranges: Vec::new(),
                phases: Vec::new(),
                trace: None,
                sanitize: None,
                critpath: None,
            }
            .avg_miss_hops(),
            0.0
        );
    }

    #[test]
    fn phase_breakdown_totals_and_shares() {
        let b = PhaseBreakdown {
            busy_ns: 50,
            mem_ns: 30,
            mem_local_ns: 10,
            mem_remote_ns: 20,
            sync_wait_ns: 15,
            sync_op_ns: 5,
            ..Default::default()
        };
        assert_eq!(b.sync_ns(), 20);
        assert_eq!(b.total_ns(), 100);
        let ph = PhaseStats {
            name: "p".into(),
            procs: vec![b, b],
        };
        assert_eq!(ph.total().total_ns(), 200);
        let (bu, me, sy) = ph.breakdown_pct();
        assert!((bu - 50.0).abs() < 1e-9 && (me - 30.0).abs() < 1e-9 && (sy - 20.0).abs() < 1e-9);
        assert_eq!(
            PhaseStats {
                name: "e".into(),
                procs: vec![]
            }
            .breakdown_pct(),
            (0.0, 0.0, 0.0)
        );
    }
}
