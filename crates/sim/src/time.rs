//! Virtual time for the simulator.
//!
//! All simulated time is kept in **nanoseconds** as a plain [`Ns`] integer.
//! The reference processor is the 195 MHz MIPS R10000 of the SGI Origin2000,
//! giving the cycle length in [`NS_PER_CYCLE_R10K`]. Helper conversions are
//! provided so that application cost models can be written in cycles or in
//! abstract operation counts.

/// Virtual nanoseconds. The simulator's base time unit.
pub type Ns = u64;

/// Cycle time of a 195 MHz R10000 in nanoseconds (rounded to the nearest
/// integer nanosecond: 1e9 / 195e6 ≈ 5.13 ns → 5 ns).
///
/// The rounding is deliberate: the simulator works in integer nanoseconds and
/// all published Origin2000 latencies in the paper are given in nanoseconds.
pub const NS_PER_CYCLE_R10K: Ns = 5;

/// Converts processor cycles to nanoseconds at the reference clock.
///
/// # Examples
///
/// ```
/// use ccnuma_sim::time::{cycles_to_ns, NS_PER_CYCLE_R10K};
/// assert_eq!(cycles_to_ns(10), 10 * NS_PER_CYCLE_R10K);
/// ```
#[inline]
pub fn cycles_to_ns(cycles: u64) -> Ns {
    cycles * NS_PER_CYCLE_R10K
}

/// Converts nanoseconds to whole processor cycles at the reference clock
/// (truncating).
///
/// # Examples
///
/// ```
/// use ccnuma_sim::time::ns_to_cycles;
/// assert_eq!(ns_to_cycles(51), 10);
/// ```
#[inline]
pub fn ns_to_cycles(ns: Ns) -> u64 {
    ns / NS_PER_CYCLE_R10K
}

/// A span of virtual time with saturating arithmetic, used when aggregating
/// per-processor breakdowns so that pathological inputs can never overflow.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Span(pub Ns);

impl Span {
    /// The zero-length span.
    pub const ZERO: Span = Span(0);

    /// Creates a span of `ns` nanoseconds.
    #[inline]
    pub fn new(ns: Ns) -> Self {
        Span(ns)
    }

    /// The length of the span in nanoseconds.
    #[inline]
    pub fn ns(self) -> Ns {
        self.0
    }

    /// Saturating addition of two spans.
    #[inline]
    pub fn saturating_add(self, other: Span) -> Span {
        Span(self.0.saturating_add(other.0))
    }
}

impl std::ops::Add for Span {
    type Output = Span;
    fn add(self, rhs: Span) -> Span {
        Span(self.0 + rhs.0)
    }
}

impl std::ops::AddAssign for Span {
    fn add_assign(&mut self, rhs: Span) {
        self.0 += rhs.0;
    }
}

impl std::fmt::Display for Span {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.0 as f64 / 1e9)
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1e6)
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}us", self.0 as f64 / 1e3)
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycle_roundtrip() {
        for c in [0u64, 1, 7, 1000, 1_000_000] {
            assert_eq!(ns_to_cycles(cycles_to_ns(c)), c);
        }
    }

    #[test]
    fn span_add_is_saturating() {
        let a = Span(u64::MAX - 1);
        let b = Span(10);
        assert_eq!(a.saturating_add(b), Span(u64::MAX));
    }

    #[test]
    fn span_display_scales_units() {
        assert_eq!(Span(12).to_string(), "12ns");
        assert_eq!(Span(1_500).to_string(), "1.500us");
        assert_eq!(Span(2_500_000).to_string(), "2.500ms");
        assert_eq!(Span(3_000_000_000).to_string(), "3.000s");
    }

    #[test]
    fn span_ordering() {
        assert!(Span(1) < Span(2));
        assert_eq!(Span::ZERO, Span::new(0));
    }
}
