//! Data-structure-level profiling — the tooling the paper wished the
//! Origin2000 had (§8: "the greatest missing feature of the machine is the
//! lack of tools to look more deeply into the machine's execution and
//! memory system").
//!
//! Label shared allocations with
//! [`Machine::shared_vec_labeled`](crate::machine::Machine::shared_vec_labeled)
//! and the run's [`RunStats`](crate::stats::RunStats) will carry a
//! per-label breakdown of accesses, miss classes, stall time, the
//! miss-cause mix and the label's sharing-hottest lines — the information
//! the authors had to reconstruct with `pixie`/`prof` and hand analysis
//! (e.g. attributing Barnes-Hut's 128-processor memory time to the
//! tree-build phase's cell arrays).
//!
//! Accesses that fall outside every registered range are collected under
//! an implicit `"(unattributed)"` profile, so the per-range totals always
//! reconcile with [`ProcStats`](crate::stats::ProcStats) the way trace
//! spans already do.

use std::collections::HashMap;

use crate::memsys::{AccessClass, AccessKind, Outcome};
use crate::page::Addr;
use crate::time::Ns;

/// Name of the implicit catch-all profile for accesses outside every
/// registered range.
pub const UNATTRIBUTED: &str = "(unattributed)";

/// How many sharing-hot lines each profile keeps.
const TOP_LINES: usize = 8;
/// How many producer→consumer pairs each hot line keeps.
const TOP_PAIRS: usize = 4;

/// One sharing-hot cache line of a labelled range: where invalidation
/// traffic concentrates, and between whom.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct HotLine {
    /// Line-aligned byte address.
    pub line_addr: Addr,
    /// Coherence misses (true + false sharing) on this line.
    pub coherence_misses: u64,
    /// Top `(producer, consumer, count)` processor pairs: `producer`'s
    /// writes invalidated `consumer`'s copy `count` times. Sorted by count
    /// descending.
    pub pairs: Vec<(u32, u32, u64)>,
}

/// Per-label access statistics.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct RangeProfile {
    /// The label given at allocation.
    pub name: String,
    /// Line-granular reads.
    pub reads: u64,
    /// Line-granular writes.
    pub writes: u64,
    /// Cache hits.
    pub hits: u64,
    /// Misses served by the requester's own node.
    pub misses_local: u64,
    /// Misses served remotely (clean + dirty + upgrades).
    pub misses_remote: u64,
    /// Total stall time attributed to this label.
    pub stall_ns: Ns,
    /// `stall_ns` split by the application phase the accessing processor
    /// was in (phase name, stall ns), in phase-declaration order; phases
    /// that never touched the range are omitted.
    pub phase_stalls: Vec<(String, Ns)>,
    /// Classified misses by [`MissCause::index`](crate::attrib::MissCause::index)
    /// slot (`[cold, capacity, conflict, coh-true, coh-false]`); all zeros
    /// unless `classify_misses` was enabled.
    pub cause_misses: [u64; 5],
    /// The label's sharing-hottest lines, by coherence-miss count
    /// descending (at most eight; empty without `classify_misses`).
    pub sharing_hot: Vec<HotLine>,
}

impl RangeProfile {
    /// All misses.
    pub fn misses(&self) -> u64 {
        self.misses_local + self.misses_remote
    }

    /// Whether anything was ever charged to this profile.
    fn touched(&self) -> bool {
        self.reads + self.writes > 0
    }
}

/// Per-line sharing aggregation while the run is live.
#[derive(Debug, Default)]
struct LineAgg {
    misses: u64,
    pairs: HashMap<(u32, u32), u64>,
}

/// Attributes accesses to labelled address ranges.
#[derive(Debug, Default)]
pub(crate) struct Profiler {
    /// Sorted, non-overlapping (base, end, profile index).
    ranges: Vec<(Addr, Addr, usize)>,
    profiles: Vec<RangeProfile>,
    /// Per-profile stall accumulators indexed by interned phase id.
    phase_stalls: Vec<Vec<Ns>>,
    /// Per-profile, per-line sharing aggregation.
    sharing: Vec<HashMap<u64, LineAgg>>,
    /// The implicit catch-all for out-of-range accesses, with its own
    /// phase/sharing accumulators.
    unattributed: RangeProfile,
    un_phase: Vec<Ns>,
    un_sharing: HashMap<u64, LineAgg>,
}

/// Charges one serviced access into a profile and its side accumulators
/// (free function so registered and unattributed targets share it without
/// borrow gymnastics).
#[allow(clippy::too_many_arguments)]
fn charge(
    profile: &mut RangeProfile,
    phase_acc: &mut Vec<Ns>,
    sharing: &mut HashMap<u64, LineAgg>,
    proc: usize,
    addr: Addr,
    kind: AccessKind,
    outcome: &Outcome,
    phase: u32,
) {
    match kind {
        AccessKind::Read => profile.reads += 1,
        AccessKind::Write => profile.writes += 1,
    }
    match outcome.class {
        AccessClass::Hit => profile.hits += 1,
        AccessClass::LocalMiss => profile.misses_local += 1,
        AccessClass::RemoteClean | AccessClass::RemoteDirty | AccessClass::Upgrade => {
            if outcome.home_local {
                profile.misses_local += 1;
            } else {
                profile.misses_remote += 1;
            }
        }
    }
    profile.stall_ns += outcome.latency;
    if outcome.latency > 0 {
        let ph = phase as usize;
        if phase_acc.len() <= ph {
            phase_acc.resize(ph + 1, 0);
        }
        phase_acc[ph] += outcome.latency;
    }
    if let Some(cause) = outcome.miss_cause {
        profile.cause_misses[cause.index()] += 1;
        if cause.is_coherence() {
            let agg = sharing.entry(addr).or_default();
            agg.misses += 1;
            if let Some(producer) = outcome.producer {
                *agg.pairs
                    .entry((u32::from(producer), proc as u32))
                    .or_insert(0) += 1;
            }
        }
    }
}

/// Folds a live sharing aggregation into the deterministic top-K
/// [`HotLine`] list of a finished profile.
fn hot_lines(agg: HashMap<u64, LineAgg>) -> Vec<HotLine> {
    let mut lines: Vec<HotLine> = agg
        .into_iter()
        .map(|(line_addr, a)| {
            let mut pairs: Vec<(u32, u32, u64)> =
                a.pairs.into_iter().map(|((p, c), n)| (p, c, n)).collect();
            pairs.sort_by(|x, y| y.2.cmp(&x.2).then((x.0, x.1).cmp(&(y.0, y.1))));
            pairs.truncate(TOP_PAIRS);
            HotLine {
                line_addr,
                coherence_misses: a.misses,
                pairs,
            }
        })
        .collect();
    lines.sort_by(|x, y| {
        y.coherence_misses
            .cmp(&x.coherence_misses)
            .then(x.line_addr.cmp(&y.line_addr))
    });
    lines.truncate(TOP_LINES);
    lines
}

impl Profiler {
    pub fn is_empty(&self) -> bool {
        self.ranges.is_empty()
    }

    /// Registers `[base, base + bytes)` under `name`. Ranges come from the
    /// machine's bump allocator, so they never overlap.
    pub fn register(&mut self, name: &str, base: Addr, bytes: u64) {
        let idx = self.profiles.len();
        self.profiles.push(RangeProfile {
            name: name.to_string(),
            ..Default::default()
        });
        self.phase_stalls.push(Vec::new());
        self.sharing.push(HashMap::new());
        let pos = self.ranges.partition_point(|&(b, _, _)| b < base);
        self.ranges.insert(pos, (base, base + bytes, idx));
    }

    /// Attributes one serviced access by processor `proc`, charging the
    /// stall to its current `phase`. Accesses outside every registered
    /// range land in the implicit [`UNATTRIBUTED`] profile.
    pub fn attribute(
        &mut self,
        proc: usize,
        addr: Addr,
        kind: AccessKind,
        outcome: &Outcome,
        phase: u32,
    ) {
        let pos = self.ranges.partition_point(|&(b, _, _)| b <= addr);
        let idx = if pos > 0 {
            let (base, end, idx) = self.ranges[pos - 1];
            debug_assert!(addr >= base);
            (addr < end).then_some(idx)
        } else {
            None
        };
        match idx {
            Some(idx) => charge(
                &mut self.profiles[idx],
                &mut self.phase_stalls[idx],
                &mut self.sharing[idx],
                proc,
                addr,
                kind,
                outcome,
                phase,
            ),
            None => charge(
                &mut self.unattributed,
                &mut self.un_phase,
                &mut self.un_sharing,
                proc,
                addr,
                kind,
                outcome,
                phase,
            ),
        }
    }

    /// Consumes the profiler, returning the per-label statistics in
    /// registration order — plus the [`UNATTRIBUTED`] catch-all (last) if
    /// any access fell outside every range; `phase_names` resolves
    /// interned phase ids.
    pub fn into_profiles(mut self, phase_names: &[String]) -> Vec<RangeProfile> {
        let resolve = |acc: &[Ns]| -> Vec<(String, Ns)> {
            acc.iter()
                .enumerate()
                .filter(|&(_, &ns)| ns > 0)
                .map(|(i, &ns)| {
                    let name = phase_names
                        .get(i)
                        .cloned()
                        .unwrap_or_else(|| format!("phase {i}"));
                    (name, ns)
                })
                .collect()
        };
        let sharing = std::mem::take(&mut self.sharing);
        for ((p, acc), agg) in self
            .profiles
            .iter_mut()
            .zip(&self.phase_stalls)
            .zip(sharing)
        {
            p.phase_stalls = resolve(acc);
            p.sharing_hot = hot_lines(agg);
        }
        let mut out = self.profiles;
        if self.unattributed.touched() {
            let mut un = self.unattributed;
            un.name = UNATTRIBUTED.to_string();
            un.phase_stalls = resolve(&self.un_phase);
            un.sharing_hot = hot_lines(self.un_sharing);
            out.push(un);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attrib::MissCause;

    fn outcome(class: AccessClass, latency: Ns, home_local: bool) -> Outcome {
        let mut o = Outcome::hit(latency);
        o.class = class;
        o.home_local = home_local;
        o
    }

    #[test]
    fn attribution_respects_range_bounds() {
        let mut p = Profiler::default();
        p.register("a", 1000, 100);
        p.register("b", 2000, 100);
        p.attribute(
            0,
            1000,
            AccessKind::Read,
            &outcome(AccessClass::Hit, 0, true),
            0,
        );
        p.attribute(
            0,
            1099,
            AccessKind::Write,
            &outcome(AccessClass::LocalMiss, 42, true),
            0,
        );
        p.attribute(
            0,
            1100,
            AccessKind::Read,
            &outcome(AccessClass::Hit, 0, true),
            0,
        ); // gap
        p.attribute(
            0,
            2050,
            AccessKind::Read,
            &outcome(AccessClass::RemoteClean, 80, false),
            0,
        );
        p.attribute(
            0,
            500,
            AccessKind::Read,
            &outcome(AccessClass::Hit, 0, true),
            0,
        ); // before all
        let profs = p.into_profiles(&["main".to_string()]);
        assert_eq!(profs[0].reads, 1);
        assert_eq!(profs[0].writes, 1);
        assert_eq!(profs[0].hits, 1);
        assert_eq!(profs[0].misses_local, 1);
        assert_eq!(profs[0].stall_ns, 42);
        assert_eq!(profs[1].misses_remote, 1);
        assert_eq!(profs[1].stall_ns, 80);
    }

    #[test]
    fn out_of_range_accesses_land_in_unattributed() {
        let mut p = Profiler::default();
        p.register("a", 1000, 100);
        // One in-range, three out-of-range (before, in the gap above, and
        // far past), with stall.
        p.attribute(
            0,
            1050,
            AccessKind::Read,
            &outcome(AccessClass::LocalMiss, 10, true),
            0,
        );
        p.attribute(
            1,
            500,
            AccessKind::Read,
            &outcome(AccessClass::LocalMiss, 20, true),
            0,
        );
        p.attribute(
            1,
            1100,
            AccessKind::Write,
            &outcome(AccessClass::RemoteClean, 30, false),
            1,
        );
        p.attribute(
            2,
            9000,
            AccessKind::Read,
            &outcome(AccessClass::Hit, 0, true),
            0,
        );
        let names = ["main".to_string(), "solve".to_string()];
        let profs = p.into_profiles(&names);
        assert_eq!(profs.len(), 2);
        let un = &profs[1];
        assert_eq!(un.name, UNATTRIBUTED);
        assert_eq!(un.reads + un.writes, 3);
        assert_eq!(un.hits, 1);
        assert_eq!(un.misses_local, 1);
        assert_eq!(un.misses_remote, 1);
        assert_eq!(un.stall_ns, 50);
        assert_eq!(
            un.phase_stalls,
            vec![("main".to_string(), 20), ("solve".to_string(), 30)]
        );
        // The invariant the engine relies on: every attributed access is in
        // exactly one profile, so totals reconcile with ProcStats.
        let (acc, misses, stall): (u64, u64, Ns) = profs.iter().fold((0, 0, 0), |(a, m, s), p| {
            (a + p.reads + p.writes, m + p.misses(), s + p.stall_ns)
        });
        assert_eq!(acc, 4);
        assert_eq!(misses, 3);
        assert_eq!(stall, 60);
    }

    #[test]
    fn no_unattributed_profile_when_everything_matches() {
        let mut p = Profiler::default();
        p.register("a", 0, 4096);
        p.attribute(
            0,
            128,
            AccessKind::Read,
            &outcome(AccessClass::Hit, 0, true),
            0,
        );
        let profs = p.into_profiles(&["main".to_string()]);
        assert_eq!(profs.len(), 1);
        assert_eq!(profs[0].name, "a");
    }

    #[test]
    fn upgrades_count_by_home_locality() {
        let mut p = Profiler::default();
        p.register("x", 0, 1000);
        p.attribute(
            0,
            0,
            AccessKind::Write,
            &outcome(AccessClass::Upgrade, 30, true),
            0,
        );
        p.attribute(
            0,
            1,
            AccessKind::Write,
            &outcome(AccessClass::Upgrade, 60, false),
            0,
        );
        let profs = p.into_profiles(&["main".to_string()]);
        assert_eq!(profs[0].misses_local, 1);
        assert_eq!(profs[0].misses_remote, 1);
        assert_eq!(profs[0].misses(), 2);
    }

    #[test]
    fn registration_out_of_order_still_sorts() {
        let mut p = Profiler::default();
        p.register("high", 5000, 10);
        p.register("low", 100, 10);
        p.attribute(
            0,
            5005,
            AccessKind::Read,
            &outcome(AccessClass::Hit, 0, true),
            0,
        );
        p.attribute(
            0,
            105,
            AccessKind::Read,
            &outcome(AccessClass::Hit, 0, true),
            0,
        );
        let profs = p.into_profiles(&["main".to_string()]);
        assert_eq!(profs[0].name, "high");
        assert_eq!(profs[0].hits, 1);
        assert_eq!(profs[1].hits, 1);
    }

    #[test]
    fn stalls_split_by_phase() {
        let mut p = Profiler::default();
        p.register("grid", 0, 1000);
        p.attribute(
            0,
            0,
            AccessKind::Read,
            &outcome(AccessClass::LocalMiss, 40, true),
            0,
        );
        p.attribute(
            0,
            8,
            AccessKind::Read,
            &outcome(AccessClass::RemoteClean, 100, false),
            2,
        );
        p.attribute(
            0,
            16,
            AccessKind::Read,
            &outcome(AccessClass::Hit, 0, true),
            1,
        ); // no stall
        let names = [
            "main".to_string(),
            "smooth".to_string(),
            "restrict".to_string(),
        ];
        let profs = p.into_profiles(&names);
        assert_eq!(profs[0].stall_ns, 140);
        // Zero-stall phases are omitted; the rest resolve to names.
        assert_eq!(
            profs[0].phase_stalls,
            vec![("main".to_string(), 40), ("restrict".to_string(), 100)]
        );
    }

    #[test]
    fn cause_mix_and_sharing_hot_lines() {
        let mut p = Profiler::default();
        p.register("flags", 0, 4096);
        let coh = |producer: u8, latency: Ns| {
            let mut o = outcome(AccessClass::RemoteDirty, latency, false);
            o.miss_cause = Some(MissCause::CoherenceFalseShare);
            o.producer = Some(producer);
            o
        };
        let mut cold = outcome(AccessClass::LocalMiss, 5, true);
        cold.miss_cause = Some(MissCause::Cold);
        p.attribute(1, 128, AccessKind::Read, &cold, 0);
        // Line 0: hammered, producer 0 → consumers 1 and 2.
        for _ in 0..3 {
            p.attribute(1, 0, AccessKind::Read, &coh(0, 50), 0);
        }
        p.attribute(2, 0, AccessKind::Read, &coh(0, 50), 0);
        // Line 256: one coherence miss, producer 3 → consumer 1.
        p.attribute(1, 256, AccessKind::Read, &coh(3, 50), 0);
        let profs = p.into_profiles(&["main".to_string()]);
        let f = &profs[0];
        assert_eq!(f.cause_misses, [1, 0, 0, 0, 5]);
        assert_eq!(f.sharing_hot.len(), 2);
        assert_eq!(f.sharing_hot[0].line_addr, 0);
        assert_eq!(f.sharing_hot[0].coherence_misses, 4);
        assert_eq!(f.sharing_hot[0].pairs, vec![(0, 1, 3), (0, 2, 1)]);
        assert_eq!(f.sharing_hot[1].pairs, vec![(3, 1, 1)]);
    }
}
