//! Data-structure-level profiling — the tooling the paper wished the
//! Origin2000 had (§8: "the greatest missing feature of the machine is the
//! lack of tools to look more deeply into the machine's execution and
//! memory system").
//!
//! Label shared allocations with
//! [`Machine::shared_vec_labeled`](crate::machine::Machine::shared_vec_labeled)
//! and the run's [`RunStats`](crate::stats::RunStats) will carry a
//! per-label breakdown of accesses, miss classes, and stall time — the
//! information the authors had to reconstruct with `pixie`/`prof` and
//! hand analysis (e.g. attributing Barnes-Hut's 128-processor memory time
//! to the tree-build phase's cell arrays).

use crate::memsys::{AccessClass, AccessKind, Outcome};
use crate::page::Addr;
use crate::time::Ns;

/// Per-label access statistics.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct RangeProfile {
    /// The label given at allocation.
    pub name: String,
    /// Line-granular reads.
    pub reads: u64,
    /// Line-granular writes.
    pub writes: u64,
    /// Cache hits.
    pub hits: u64,
    /// Misses served by the requester's own node.
    pub misses_local: u64,
    /// Misses served remotely (clean + dirty + upgrades).
    pub misses_remote: u64,
    /// Total stall time attributed to this label.
    pub stall_ns: Ns,
    /// `stall_ns` split by the application phase the accessing processor
    /// was in (phase name, stall ns), in phase-declaration order; phases
    /// that never touched the range are omitted.
    pub phase_stalls: Vec<(String, Ns)>,
}

impl RangeProfile {
    /// All misses.
    pub fn misses(&self) -> u64 {
        self.misses_local + self.misses_remote
    }
}

/// Attributes accesses to labelled address ranges.
#[derive(Debug, Default)]
pub(crate) struct Profiler {
    /// Sorted, non-overlapping (base, end, profile index).
    ranges: Vec<(Addr, Addr, usize)>,
    profiles: Vec<RangeProfile>,
    /// Per-profile stall accumulators indexed by interned phase id.
    phase_stalls: Vec<Vec<Ns>>,
}

impl Profiler {
    pub fn is_empty(&self) -> bool {
        self.ranges.is_empty()
    }

    /// Registers `[base, base + bytes)` under `name`. Ranges come from the
    /// machine's bump allocator, so they never overlap.
    pub fn register(&mut self, name: &str, base: Addr, bytes: u64) {
        let idx = self.profiles.len();
        self.profiles.push(RangeProfile {
            name: name.to_string(),
            ..Default::default()
        });
        self.phase_stalls.push(Vec::new());
        let pos = self.ranges.partition_point(|&(b, _, _)| b < base);
        self.ranges.insert(pos, (base, base + bytes, idx));
    }

    /// Attributes one serviced access, charging the stall to the accessing
    /// processor's current `phase`.
    pub fn attribute(&mut self, addr: Addr, kind: AccessKind, outcome: &Outcome, phase: u32) {
        let pos = self.ranges.partition_point(|&(b, _, _)| b <= addr);
        if pos == 0 {
            return;
        }
        let (base, end, idx) = self.ranges[pos - 1];
        debug_assert!(addr >= base);
        if addr >= end {
            return;
        }
        let p = &mut self.profiles[idx];
        match kind {
            AccessKind::Read => p.reads += 1,
            AccessKind::Write => p.writes += 1,
        }
        match outcome.class {
            AccessClass::Hit => p.hits += 1,
            AccessClass::LocalMiss => p.misses_local += 1,
            AccessClass::RemoteClean | AccessClass::RemoteDirty | AccessClass::Upgrade => {
                if outcome.home_local {
                    p.misses_local += 1;
                } else {
                    p.misses_remote += 1;
                }
            }
        }
        p.stall_ns += outcome.latency;
        if outcome.latency > 0 {
            let acc = &mut self.phase_stalls[idx];
            let ph = phase as usize;
            if acc.len() <= ph {
                acc.resize(ph + 1, 0);
            }
            acc[ph] += outcome.latency;
        }
    }

    /// Consumes the profiler, returning the per-label statistics in
    /// registration order; `phase_names` resolves interned phase ids.
    pub fn into_profiles(mut self, phase_names: &[String]) -> Vec<RangeProfile> {
        for (p, acc) in self.profiles.iter_mut().zip(&self.phase_stalls) {
            p.phase_stalls = acc
                .iter()
                .enumerate()
                .filter(|&(_, &ns)| ns > 0)
                .map(|(i, &ns)| {
                    let name = phase_names
                        .get(i)
                        .cloned()
                        .unwrap_or_else(|| format!("phase {i}"));
                    (name, ns)
                })
                .collect();
        }
        self.profiles
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome(class: AccessClass, latency: Ns, home_local: bool) -> Outcome {
        Outcome {
            latency,
            class,
            home_local,
            invals: 0,
            writeback: false,
            late_prefetch: false,
            migrated: false,
            miss_origin: None,
        }
    }

    #[test]
    fn attribution_respects_range_bounds() {
        let mut p = Profiler::default();
        p.register("a", 1000, 100);
        p.register("b", 2000, 100);
        p.attribute(
            1000,
            AccessKind::Read,
            &outcome(AccessClass::Hit, 0, true),
            0,
        );
        p.attribute(
            1099,
            AccessKind::Write,
            &outcome(AccessClass::LocalMiss, 42, true),
            0,
        );
        p.attribute(
            1100,
            AccessKind::Read,
            &outcome(AccessClass::Hit, 0, true),
            0,
        ); // gap
        p.attribute(
            2050,
            AccessKind::Read,
            &outcome(AccessClass::RemoteClean, 80, false),
            0,
        );
        p.attribute(
            500,
            AccessKind::Read,
            &outcome(AccessClass::Hit, 0, true),
            0,
        ); // before all
        let profs = p.into_profiles(&["main".to_string()]);
        assert_eq!(profs[0].reads, 1);
        assert_eq!(profs[0].writes, 1);
        assert_eq!(profs[0].hits, 1);
        assert_eq!(profs[0].misses_local, 1);
        assert_eq!(profs[0].stall_ns, 42);
        assert_eq!(profs[1].misses_remote, 1);
        assert_eq!(profs[1].stall_ns, 80);
    }

    #[test]
    fn upgrades_count_by_home_locality() {
        let mut p = Profiler::default();
        p.register("x", 0, 1000);
        p.attribute(
            0,
            AccessKind::Write,
            &outcome(AccessClass::Upgrade, 30, true),
            0,
        );
        p.attribute(
            1,
            AccessKind::Write,
            &outcome(AccessClass::Upgrade, 60, false),
            0,
        );
        let profs = p.into_profiles(&["main".to_string()]);
        assert_eq!(profs[0].misses_local, 1);
        assert_eq!(profs[0].misses_remote, 1);
        assert_eq!(profs[0].misses(), 2);
    }

    #[test]
    fn registration_out_of_order_still_sorts() {
        let mut p = Profiler::default();
        p.register("high", 5000, 10);
        p.register("low", 100, 10);
        p.attribute(
            5005,
            AccessKind::Read,
            &outcome(AccessClass::Hit, 0, true),
            0,
        );
        p.attribute(
            105,
            AccessKind::Read,
            &outcome(AccessClass::Hit, 0, true),
            0,
        );
        let profs = p.into_profiles(&["main".to_string()]);
        assert_eq!(profs[0].name, "high");
        assert_eq!(profs[0].hits, 1);
        assert_eq!(profs[1].hits, 1);
    }

    #[test]
    fn stalls_split_by_phase() {
        let mut p = Profiler::default();
        p.register("grid", 0, 1000);
        p.attribute(
            0,
            AccessKind::Read,
            &outcome(AccessClass::LocalMiss, 40, true),
            0,
        );
        p.attribute(
            8,
            AccessKind::Read,
            &outcome(AccessClass::RemoteClean, 100, false),
            2,
        );
        p.attribute(16, AccessKind::Read, &outcome(AccessClass::Hit, 0, true), 1); // no stall
        let names = [
            "main".to_string(),
            "smooth".to_string(),
            "restrict".to_string(),
        ];
        let profs = p.into_profiles(&names);
        assert_eq!(profs[0].stall_ns, 140);
        // Zero-stall phases are omitted; the rest resolve to names.
        assert_eq!(
            profs[0].phase_stalls,
            vec![("main".to_string(), 40), ("restrict".to_string(), 100)]
        );
    }
}
