//! Synchronization object state machines (crate internal except for the
//! public handle types).
//!
//! The *timing* of synchronization (operation costs, line ping-pong,
//! invalidation storms) is charged by the engine through the memory system;
//! these structures track only the logical state: who holds a lock, who is
//! queued, who has arrived at a barrier.

use std::collections::VecDeque;

use crate::page::Addr;
use crate::time::Ns;

/// Handle to a simulated lock, created by
/// [`crate::machine::Machine::lock`]. Cheap to copy into application
/// closures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LockRef(pub(crate) u32);

/// Handle to a simulated barrier, created by
/// [`crate::machine::Machine::barrier`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BarrierRef(pub(crate) u32);

/// Handle to an atomic fetch&add cell, created by
/// [`crate::machine::Machine::fetch_cell`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FetchCellRef(pub(crate) u32);

/// Handle to a counting semaphore, created by
/// [`crate::machine::Machine::semaphore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SemRef(pub(crate) u32);

/// Lock state: holder plus FIFO (ticket-order) wait queue.
#[derive(Debug)]
pub(crate) struct LockState {
    pub addr: Addr,
    pub holder: Option<usize>,
    pub queue: VecDeque<(usize, Ns)>,
    pub acquires: u64,
}

impl LockState {
    pub fn new(addr: Addr) -> Self {
        LockState {
            addr,
            holder: None,
            queue: VecDeque::new(),
            acquires: 0,
        }
    }

    /// Attempts to acquire for `p`; on failure the processor is queued.
    pub fn acquire_or_enqueue(&mut self, p: usize, now: Ns) -> bool {
        if self.holder.is_none() {
            self.holder = Some(p);
            self.acquires += 1;
            true
        } else {
            self.queue.push_back((p, now));
            false
        }
    }

    /// Releases the lock, returning the next waiter (who becomes holder).
    ///
    /// # Panics
    ///
    /// Panics if `p` is not the holder (an application bug worth failing
    /// loudly on).
    pub fn release(&mut self, p: usize) -> Option<(usize, Ns)> {
        assert_eq!(self.holder, Some(p), "unlock by non-holder {p}");
        match self.queue.pop_front() {
            Some((next, arrived)) => {
                self.holder = Some(next);
                self.acquires += 1;
                Some((next, arrived))
            }
            None => {
                self.holder = None;
                None
            }
        }
    }

    /// Releases the lock granting the waiter at queue index `idx` instead
    /// of the FIFO head — the schedule perturber's grant-order choice
    /// point ([`crate::schedule`]). Semantically equivalent to
    /// [`LockState::release`] for `idx == 0`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not the holder or `idx` is out of range.
    pub fn release_nth(&mut self, p: usize, idx: usize) -> Option<(usize, Ns)> {
        assert_eq!(self.holder, Some(p), "unlock by non-holder {p}");
        match self.queue.remove(idx) {
            Some((next, arrived)) => {
                self.holder = Some(next);
                self.acquires += 1;
                Some((next, arrived))
            }
            None => {
                assert!(self.queue.is_empty(), "grant index {idx} out of range");
                self.holder = None;
                None
            }
        }
    }
}

/// Barrier state: arrivals accumulate until all participants are present.
#[derive(Debug)]
pub(crate) struct BarrierState {
    pub addr: Addr,
    pub participants: usize,
    pub arrived: Vec<(usize, Ns)>,
    pub episodes: u64,
}

impl BarrierState {
    pub fn new(addr: Addr, participants: usize) -> Self {
        BarrierState {
            addr,
            participants,
            arrived: Vec::new(),
            episodes: 0,
        }
    }

    /// Records an arrival; when `p` completes the episode, returns all
    /// arrivals (including `p`) and resets for the next episode.
    pub fn arrive(&mut self, p: usize, now: Ns) -> Option<Vec<(usize, Ns)>> {
        debug_assert!(
            !self.arrived.iter().any(|&(q, _)| q == p),
            "processor {p} arrived twice at one barrier episode"
        );
        self.arrived.push((p, now));
        if self.arrived.len() == self.participants {
            self.episodes += 1;
            Some(std::mem::take(&mut self.arrived))
        } else {
            None
        }
    }
}

/// Counting semaphore state.
#[derive(Debug)]
pub(crate) struct SemState {
    pub addr: Addr,
    pub count: i64,
    pub waiters: VecDeque<(usize, Ns)>,
}

impl SemState {
    pub fn new(addr: Addr, initial: i64) -> Self {
        SemState {
            addr,
            count: initial,
            waiters: VecDeque::new(),
        }
    }

    /// Attempts to decrement for `p`; on failure the processor is queued.
    pub fn wait_or_enqueue(&mut self, p: usize, now: Ns) -> bool {
        if self.count > 0 {
            self.count -= 1;
            true
        } else {
            self.waiters.push_back((p, now));
            false
        }
    }

    /// Adds `n` permits, returning the waiters that can now proceed.
    pub fn post(&mut self, n: u32) -> Vec<(usize, Ns)> {
        self.count += i64::from(n);
        let mut woken = Vec::new();
        while self.count > 0 {
            match self.waiters.pop_front() {
                Some(w) => {
                    self.count -= 1;
                    woken.push(w);
                }
                None => break,
            }
        }
        woken
    }

    /// Adds `n` permits, waking waiters chosen by `choose` (an index into
    /// the current queue) instead of FIFO order — the schedule
    /// perturber's semaphore choice point ([`crate::schedule`]).
    /// `choose = |_| 0` is equivalent to [`SemState::post`].
    pub fn post_with(
        &mut self,
        n: u32,
        mut choose: impl FnMut(&VecDeque<(usize, Ns)>) -> usize,
    ) -> Vec<(usize, Ns)> {
        self.count += i64::from(n);
        let mut woken = Vec::new();
        while self.count > 0 && !self.waiters.is_empty() {
            let idx = choose(&self.waiters);
            let w = self.waiters.remove(idx).expect("chosen index in range");
            self.count -= 1;
            woken.push(w);
        }
        woken
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_fifo_handoff() {
        let mut l = LockState::new(0);
        assert!(l.acquire_or_enqueue(0, 10));
        assert!(!l.acquire_or_enqueue(1, 20));
        assert!(!l.acquire_or_enqueue(2, 30));
        assert_eq!(l.release(0), Some((1, 20)));
        assert_eq!(l.release(1), Some((2, 30)));
        assert_eq!(l.release(2), None);
        assert_eq!(l.acquires, 3);
        assert_eq!(l.holder, None);
    }

    #[test]
    #[should_panic(expected = "non-holder")]
    fn unlock_by_non_holder_panics() {
        let mut l = LockState::new(0);
        l.acquire_or_enqueue(0, 0);
        l.release(1);
    }

    #[test]
    fn barrier_releases_when_full() {
        let mut b = BarrierState::new(0, 3);
        assert!(b.arrive(0, 5).is_none());
        assert!(b.arrive(2, 9).is_none());
        let all = b.arrive(1, 12).unwrap();
        assert_eq!(all, vec![(0, 5), (2, 9), (1, 12)]);
        assert_eq!(b.episodes, 1);
        // Next episode starts clean.
        assert!(b.arrive(1, 20).is_none());
    }

    #[test]
    fn lock_release_nth_grants_out_of_order() {
        let mut l = LockState::new(0);
        assert!(l.acquire_or_enqueue(0, 10));
        assert!(!l.acquire_or_enqueue(1, 20));
        assert!(!l.acquire_or_enqueue(2, 30));
        // Grant the *second* waiter first; the skipped one stays queued.
        assert_eq!(l.release_nth(0, 1), Some((2, 30)));
        assert_eq!(l.queue.len(), 1);
        assert_eq!(l.release_nth(2, 0), Some((1, 20)));
        assert_eq!(l.release_nth(1, 0), None);
        assert_eq!(l.acquires, 3);
        assert_eq!(l.holder, None);
    }

    #[test]
    fn lock_release_nth_index_zero_matches_release() {
        let mk = || {
            let mut l = LockState::new(0);
            l.acquire_or_enqueue(0, 1);
            l.acquire_or_enqueue(1, 2);
            l.acquire_or_enqueue(2, 3);
            l
        };
        let (mut a, mut b) = (mk(), mk());
        assert_eq!(a.release(0), b.release_nth(0, 0));
        assert_eq!(a.queue, b.queue);
        assert_eq!(a.holder, b.holder);
    }

    #[test]
    fn semaphore_counts_and_wakes_fifo() {
        let mut s = SemState::new(0, 1);
        assert!(s.wait_or_enqueue(0, 1));
        assert!(!s.wait_or_enqueue(1, 2));
        assert!(!s.wait_or_enqueue(2, 3));
        assert_eq!(s.post(2), vec![(1, 2), (2, 3)]);
        assert_eq!(s.count, 0);
        assert_eq!(s.post(1), vec![]);
        assert_eq!(s.count, 1);
    }

    #[test]
    fn semaphore_post_with_wakes_chosen_waiters() {
        let mut s = SemState::new(0, 0);
        assert!(!s.wait_or_enqueue(0, 1));
        assert!(!s.wait_or_enqueue(1, 2));
        assert!(!s.wait_or_enqueue(2, 3));
        // Wake back-of-queue first, then the (new) back again.
        let woken = s.post_with(2, |q| q.len() - 1);
        assert_eq!(woken, vec![(2, 3), (1, 2)]);
        assert_eq!(s.count, 0);
        assert_eq!(s.waiters.len(), 1);
        // The head-index chooser behaves exactly like `post`.
        assert_eq!(s.post_with(1, |_| 0), vec![(0, 1)]);
        // Permits beyond the queue accumulate, as with `post`.
        assert_eq!(s.post_with(2, |_| 0), vec![]);
        assert_eq!(s.count, 2);
    }
}
