//! # ccnuma-sim — a cache-coherent NUMA multiprocessor simulator
//!
//! A discrete-event simulator of SGI Origin2000-class hardware-coherent
//! distributed-shared-memory machines, built to reproduce the scaling study
//! of Jiang & Singh, *Scaling Application Performance on Cache-coherent
//! Multiprocessors* (ISCA 1999).
//!
//! The simulator models the architectural features the paper's analysis
//! rests on:
//!
//! * **Nodes and Hubs** — two processors per node sharing a "Hub"
//!   memory/coherence controller, two nodes per router ([`config`]).
//! * **Topology** — full hypercubes up to 64 processors, four 32-processor
//!   hypercube modules joined by metarouters at 128 ([`topology`]), with
//!   configurable process→processor mappings ([`mapping`]).
//! * **Caches and coherence** — per-processor set-associative write-back L2
//!   ([`cache`]) kept coherent by a full-bit-vector directory protocol with
//!   2-hop clean and 3-hop dirty remote transactions ([`memsys`]).
//! * **NUMA pages** — first-touch / round-robin / explicit placement with
//!   per-node capacity spill and dynamic page migration ([`page`]).
//! * **Contention** — occupancy-based queueing at every Hub, memory bank,
//!   router and metarouter ([`contend`]).
//! * **Synchronization** — ticket locks, tournament and centralized
//!   barriers, built on LL/SC or at-memory fetch&op ([`config`], [`sync`]).
//! * **Prefetch** — non-binding software prefetch with late-prefetch
//!   accounting (§6.1 of the paper).
//! * **Tracing** — time- and phase-resolved execution traces with
//!   Chrome-trace/Perfetto export and machine-wide gauge sampling
//!   ([`trace`]), plus per-phase time breakdowns in [`stats`].
//! * **Attribution** — every miss classified by cause (cold / capacity /
//!   conflict / true- and false-sharing coherence) and every stalled
//!   nanosecond split into uncontended service vs. queueing per resource
//!   ([`attrib`]), down to named data ranges ([`profile`]).
//! * **Host profiling** — a near-zero-overhead scoped span profiler over
//!   the engine's *host* (wall-clock) time ([`prof`]), behind the
//!   observer-passive `profile` configuration knob.
//! * **Critical path** — happens-before critical-path extraction with
//!   exact per-phase attribution and what-if speedup projection
//!   ([`critpath`]), behind the observer-passive `critpath` knob.
//! * **Schedule exploration** — seeded, deterministic perturbation of the
//!   engine's scheduling choice points ([`schedule`]), turning the
//!   one-schedule sanitizer into a schedule-space explorer.
//!
//! Applications are ordinary Rust closures run on one OS thread per
//! simulated processor; they compute *real, verifiable results* on data in
//! [`shared::SharedVec`]s while the engine charges virtual time for
//! computation, memory traffic and synchronization, producing the
//! per-processor Busy / Memory / Synchronization breakdowns
//! ([`stats`]) that drive the paper's figures.
//!
//! # Quick start
//!
//! ```
//! use ccnuma_sim::prelude::*;
//!
//! // A 16-processor scaled-down Origin2000 (64 KB caches, 1 KB pages).
//! let mut m = Machine::new(MachineConfig::origin2000_scaled(16, 64 << 10))?;
//! let x = m.shared_vec::<f64>(4096, Placement::Blocked);
//! let done = m.barrier();
//!
//! let x2 = x.clone(); // handles are cheap clones over the same storage
//! let stats = m.run(move |ctx| {
//!     let x = &x2;
//!     let chunk = x.len() / ctx.nprocs();
//!     let lo = ctx.id() * chunk;
//!     for i in lo..lo + chunk {
//!         x.write(ctx, i, (i as f64).sqrt());
//!         ctx.compute_flops(1);
//!     }
//!     ctx.barrier(done);
//! })?;
//!
//! assert_eq!(x.get(4095), (4095f64).sqrt());
//! let (busy, mem, sync) = stats.avg_breakdown_pct();
//! assert!(busy + mem + sync > 99.0);
//! # Ok::<(), ccnuma_sim::error::SimError>(())
//! ```
//!
//! # Determinism
//!
//! Runs are bit-deterministic for a given program and configuration: the
//! engine processes events in virtual-time order with process-id
//! tie-breaking, and random process mappings are seeded.

#![warn(missing_docs)]

/// Content fingerprint of the simulator's *timing model*. Bump the revision
/// whenever a change alters any run's statistics for an unchanged
/// configuration (latency values, protocol hops, queueing math, cost
/// accounting, …). Persistent result caches — the sweep engine's JSONL
/// store — fold this into their run keys, so bumping it invalidates every
/// cached simulation at once.
pub const MODEL_FINGERPRINT: &str = "ccnuma-sim-model-r2";

pub mod attrib;
pub mod cache;
pub mod chrome;
pub mod config;
pub mod contend;
pub mod critpath;
pub mod ctx;
pub mod directory;
pub mod error;
pub mod latency;
pub mod live;
pub mod machine;
pub mod mapping;
pub mod memsys;
pub mod page;
pub mod prof;
pub mod profile;
pub mod sanitize;
pub mod schedule;
pub mod shared;
pub mod stats;
pub mod sync;
pub mod time;
pub mod topology;
pub mod trace;

mod engine;
mod proto;

/// The types most applications need, in one import.
pub mod prelude {
    pub use crate::attrib::{LatencyBreakdown, MissCause, ResourceClass};
    pub use crate::config::{
        BarrierImpl, CacheConfig, CostModel, LockImpl, MachineConfig, MigrationConfig,
        PagePlacement,
    };
    pub use crate::critpath::{CritBuckets, CritReport};
    pub use crate::ctx::Ctx;
    pub use crate::error::SimError;
    pub use crate::latency::LatencyProfile;
    pub use crate::machine::{Machine, Placement};
    pub use crate::mapping::ProcessMapping;
    pub use crate::sanitize::{SanitizeConfig, SanitizeGranularity, SanitizeReport};
    pub use crate::schedule::{ScheduleConfig, ScheduleMode};
    pub use crate::shared::SharedVec;
    pub use crate::stats::{PhaseBreakdown, PhaseStats, ProcStats, RunStats};
    pub use crate::sync::{BarrierRef, FetchCellRef, LockRef, SemRef};
    pub use crate::topology::TopologyKind;
    pub use crate::trace::{Trace, TraceConfig};
}
