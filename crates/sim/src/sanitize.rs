//! Happens-before sanitizer: a dynamic race detector, lock-order
//! analyzer, and synchronization-lint pass over the simulator's event
//! stream.
//!
//! The simulator already produces everything a vector-clock
//! happens-before engine needs: per-processor memory operations with
//! exact byte ranges (from [`Ctx::record_read`](crate::ctx::Ctx::record_read)
//! / [`Ctx::record_write`](crate::ctx::Ctx::record_write)), and
//! release/acquire transitions from the synchronization tables in
//! [`sync`](crate::sync) — lock hand-offs, barrier episodes, fetch&add
//! serialization, and semaphore wakeups. The engine feeds those events to
//! a [`Sanitizer`] when `cfg.sanitize.enabled` is set, and the resulting
//! [`SanitizeReport`] lands in
//! [`RunStats::sanitize`](crate::stats::RunStats::sanitize).
//!
//! Three analyses share the one event stream:
//!
//! 1. **Race detection** with FastTrack-style epoch compression: each
//!    shadow granule usually stores a last-write epoch and a last-read
//!    epoch, promoting the read side to a full vector clock only while
//!    reads are genuinely concurrent. The
//!    [`SanitizeGranularity`] knob selects the granule size: `Word`
//!    (8 bytes, the same word footprint `attrib` uses) reports true
//!    data races only, while `Line` also flags line-granularity
//!    conflicts — the false-sharing patterns `attrib` counts as
//!    coh-false misses.
//! 2. **Lock-order analysis**: every acquisition made while other locks
//!    are held adds held→acquired edges to a directed graph; cycles in
//!    that graph are potential deadlocks even when this schedule
//!    happened not to deadlock.
//! 3. **Synchronization lints**: barrier divergence (some processors
//!    arrive at a barrier others never reach), a lock released by a
//!    processor that does not hold it, fetch&add cells also touched by
//!    plain reads/writes, and locks held across a barrier.
//!
//! The sanitizer is purely observational — it never charges virtual
//! time — so enabling it cannot change simulated results. It is also
//! fully deterministic: the engine's event order is deterministic and
//! [`Sanitizer::finalize`] sorts every finding list canonically.
//!
//! The event API is public so tests and examples can drive a
//! `Sanitizer` directly (e.g. to exercise barrier divergence, which in
//! a real run deadlocks the engine before statistics exist).

use std::collections::{BTreeMap, BTreeSet, HashMap};

use crate::page::Addr;

/// Shadow-memory granule size for race detection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SanitizeGranularity {
    /// 8-byte words (the footprint granularity `attrib` classifies false
    /// sharing with): conflicts must overlap on actual data to be
    /// reported, so findings are true races.
    #[default]
    Word,
    /// Whole cache lines: additionally reports unsynchronized accesses
    /// that only share a line — the false-sharing patterns `attrib`
    /// counts as coh-false misses. Expect findings on correctly
    /// synchronized programs that false-share.
    Line,
}

impl SanitizeGranularity {
    /// Lower-case name (`"word"` / `"line"`), used in exported reports.
    pub fn name(self) -> &'static str {
        match self {
            SanitizeGranularity::Word => "word",
            SanitizeGranularity::Line => "line",
        }
    }
}

/// Configuration of the happens-before sanitizer (`cfg.sanitize`).
///
/// Observational: like tracing, it is excluded from
/// [`MachineConfig::stable_fields`](crate::config::MachineConfig::stable_fields)
/// because it cannot change simulated results.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SanitizeConfig {
    /// Run the sanitizer alongside the simulation.
    pub enabled: bool,
    /// Shadow-memory granule size.
    pub granularity: SanitizeGranularity,
}

impl SanitizeConfig {
    /// Word-granularity sanitizing, enabled.
    pub fn on() -> Self {
        SanitizeConfig {
            enabled: true,
            granularity: SanitizeGranularity::Word,
        }
    }
}

/// Bytes per shadow granule at [`SanitizeGranularity::Word`].
pub const WORD_BYTES: u64 = 8;

/// A growable vector clock; absent components are zero.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct VectorClock(Vec<u64>);

impl VectorClock {
    /// Component `p`.
    pub fn get(&self, p: usize) -> u64 {
        self.0.get(p).copied().unwrap_or(0)
    }

    /// Sets component `p` to `v`, growing as needed.
    pub fn set(&mut self, p: usize, v: u64) {
        if self.0.len() <= p {
            self.0.resize(p + 1, 0);
        }
        self.0[p] = v;
    }

    /// Increments component `p`.
    pub fn tick(&mut self, p: usize) {
        self.set(p, self.get(p) + 1);
    }

    /// Pointwise maximum with `other`.
    pub fn join(&mut self, other: &VectorClock) {
        if self.0.len() < other.0.len() {
            self.0.resize(other.0.len(), 0);
        }
        for (i, &v) in other.0.iter().enumerate() {
            if v > self.0[i] {
                self.0[i] = v;
            }
        }
    }
}

/// A FastTrack epoch: clock value `clock` of processor `proc`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct EpochVal {
    proc: u32,
    clock: u64,
}

impl EpochVal {
    /// `self` happens-before (or equals) the instant described by `vc`.
    fn le(self, vc: &VectorClock) -> bool {
        self.clock <= vc.get(self.proc as usize)
    }
}

/// The read side of a shadow granule: compressed to the last epoch while
/// reads are totally ordered, promoted to a full clock when concurrent.
#[derive(Debug, Clone)]
enum ReadShadow {
    None,
    Epoch(EpochVal),
    Clock(VectorClock),
}

/// One access with recording context, phase still as an interned id.
#[derive(Debug, Clone)]
struct RawAccess {
    proc: usize,
    phase: u32,
    addr: Addr,
    bytes: u64,
    is_write: bool,
    locks: Vec<usize>,
}

impl RawAccess {
    fn resolve(&self, phase_names: &[String]) -> AccessInfo {
        AccessInfo {
            proc: self.proc,
            phase: phase_names
                .get(self.phase as usize)
                .cloned()
                .unwrap_or_else(|| format!("phase-{}", self.phase)),
            addr: self.addr,
            bytes: self.bytes,
            is_write: self.is_write,
            locks: self.locks.clone(),
        }
    }
}

/// Shadow state of one granule.
#[derive(Debug, Clone)]
struct Shadow {
    write: Option<EpochVal>,
    read: ReadShadow,
    write_ctx: Option<RawAccess>,
    /// Last read context per processor (sparse, keyed by proc). A racing
    /// write conflicts with one *specific* concurrent reader; keeping
    /// only the globally-last read would misattribute the race whenever
    /// an ordered read (often the writer's own) lands in between.
    read_ctxs: Vec<(usize, RawAccess)>,
    /// One race per granule: further conflicts on an already-reported
    /// granule are suppressed so a single racy array does not flood the
    /// report.
    reported: bool,
}

impl Default for Shadow {
    fn default() -> Self {
        Shadow {
            write: None,
            read: ReadShadow::None,
            write_ctx: None,
            read_ctxs: Vec::new(),
            reported: false,
        }
    }
}

impl Shadow {
    fn read_ctx_of(&self, p: usize) -> Option<RawAccess> {
        self.read_ctxs
            .iter()
            .find(|(q, _)| *q == p)
            .map(|(_, a)| a.clone())
    }
}

/// One access of a reported race, with full reporting context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AccessInfo {
    /// Process id of the accessor.
    pub proc: usize,
    /// Name of the application phase the access was made in.
    pub phase: String,
    /// First byte of the recorded operation.
    pub addr: Addr,
    /// Length of the recorded operation in bytes.
    pub bytes: u64,
    /// `true` for a write, `false` for a read.
    pub is_write: bool,
    /// Lock ids held at the access, in acquisition order (the nearest
    /// enclosing lock is last).
    pub locks: Vec<usize>,
}

impl std::fmt::Display for AccessInfo {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} of {:#x}+{} by proc {} in phase \"{}\" holding {:?}",
            if self.is_write { "write" } else { "read" },
            self.addr,
            self.bytes,
            self.proc,
            self.phase,
            self.locks
        )
    }
}

/// A pair of conflicting accesses with no happens-before edge between
/// them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RaceFinding {
    /// Base address of the shadow granule the conflict was detected on.
    pub addr: Addr,
    /// Granule size in bytes (8 at word granularity, the line size at
    /// line granularity).
    pub bytes: u64,
    /// The earlier access (in the engine's deterministic event order).
    pub prior: AccessInfo,
    /// The later access.
    pub current: AccessInfo,
}

/// A cycle in the lock-order graph: the locks of one strongly connected
/// component, each acquired while another member was held (in some
/// order that can deadlock).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LockCycleFinding {
    /// Lock ids on the cycle, sorted.
    pub locks: Vec<usize>,
}

/// Category of a synchronization lint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum LintKind {
    /// Some processors arrived at a barrier that others never reached.
    BarrierDivergence,
    /// A lock was released by a processor that does not hold it.
    UnlockByNonOwner,
    /// A fetch&add cell was also accessed with plain reads or writes.
    AtomicPlainMix,
    /// A processor arrived at a barrier while holding locks.
    LockAcrossBarrier,
}

impl LintKind {
    /// Short kebab-case name, used in exported reports.
    pub fn name(self) -> &'static str {
        match self {
            LintKind::BarrierDivergence => "barrier-divergence",
            LintKind::UnlockByNonOwner => "unlock-by-non-owner",
            LintKind::AtomicPlainMix => "atomic-plain-mix",
            LintKind::LockAcrossBarrier => "lock-across-barrier",
        }
    }
}

/// One synchronization lint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LintFinding {
    /// Lint category.
    pub kind: LintKind,
    /// Human-readable description with ids and context.
    pub message: String,
}

/// Everything the sanitizer found in one run. `PartialEq` so sweep
/// replay can compare reports bit-for-bit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SanitizeReport {
    /// Granule size the race detector ran at.
    pub granularity: SanitizeGranularity,
    /// Conflicting unsynchronized access pairs, one per granule,
    /// sorted by granule address.
    pub races: Vec<RaceFinding>,
    /// Lock-order cycles (potential deadlocks), sorted.
    pub lock_cycles: Vec<LockCycleFinding>,
    /// Synchronization lints, sorted by kind then message.
    pub lints: Vec<LintFinding>,
}

impl SanitizeReport {
    /// No findings of any kind.
    pub fn is_clean(&self) -> bool {
        self.races.is_empty() && self.lock_cycles.is_empty() && self.lints.is_empty()
    }

    /// `[races, lock_cycles, lints]` counts, the compact form stored in
    /// sweep cell records.
    pub fn counts(&self) -> [u64; 3] {
        [
            self.races.len() as u64,
            self.lock_cycles.len() as u64,
            self.lints.len() as u64,
        ]
    }

    /// One-line summary, e.g. `"2 race(s), 0 cycle(s), 1 lint(s)"`.
    pub fn summary(&self) -> String {
        let [r, c, l] = self.counts();
        format!("{r} race(s), {c} lock cycle(s), {l} lint(s)")
    }
}

/// The happens-before engine. Feed it the run's events (the engine does
/// this automatically when `cfg.sanitize.enabled` is set; tests may
/// drive one directly) and [`Sanitizer::finalize`] it into a
/// [`SanitizeReport`].
#[derive(Debug)]
pub struct Sanitizer {
    granularity: SanitizeGranularity,
    gbytes: u64,
    nprocs: usize,
    clocks: Vec<VectorClock>,
    /// Current interned phase id per processor.
    phase: Vec<u32>,
    /// Locks currently held per processor, in acquisition order.
    locksets: Vec<Vec<usize>>,
    lock_release: Vec<VectorClock>,
    lock_holder: Vec<Option<usize>>,
    /// Processors currently waiting in each barrier's open episode.
    barrier_arrived: Vec<Vec<usize>>,
    sem_clock: Vec<VectorClock>,
    cell_clock: Vec<VectorClock>,
    /// Granule index → fetch-cell id, for the atomic/plain-mix lint.
    cell_granules: HashMap<u64, usize>,
    shadow: HashMap<u64, Shadow>,
    raw_races: Vec<(u64, RawAccess, RawAccess)>,
    lock_edges: BTreeSet<(usize, usize)>,
    lints: Vec<LintFinding>,
}

impl Sanitizer {
    /// A sanitizer for `nprocs` processors. `line_bytes` is the
    /// coherence line size, used as the granule at
    /// [`SanitizeGranularity::Line`].
    pub fn new(nprocs: usize, granularity: SanitizeGranularity, line_bytes: u64) -> Self {
        let gbytes = match granularity {
            SanitizeGranularity::Word => WORD_BYTES,
            SanitizeGranularity::Line => line_bytes.max(WORD_BYTES),
        };
        let clocks = (0..nprocs)
            .map(|p| {
                let mut c = VectorClock::default();
                c.set(p, 1);
                c
            })
            .collect();
        Sanitizer {
            granularity,
            gbytes,
            nprocs,
            clocks,
            phase: vec![0; nprocs],
            locksets: vec![Vec::new(); nprocs],
            lock_release: Vec::new(),
            lock_holder: Vec::new(),
            barrier_arrived: Vec::new(),
            sem_clock: Vec::new(),
            cell_clock: Vec::new(),
            cell_granules: HashMap::new(),
            shadow: HashMap::new(),
            raw_races: Vec::new(),
            lock_edges: BTreeSet::new(),
            lints: Vec::new(),
        }
    }

    /// Registers the memory address of fetch&add cell `id` so plain
    /// accesses to it can be linted.
    pub fn register_fetch_cell(&mut self, id: usize, addr: Addr) {
        self.cell_granules.insert(addr / self.gbytes, id);
    }

    /// Sets processor `p`'s current phase id (for finding context; ids
    /// are resolved to names at [`Sanitizer::finalize`]).
    pub fn set_phase(&mut self, p: usize, phase: u32) {
        self.phase[p] = phase;
    }

    /// Records a plain read of `bytes` at `addr` by processor `p`.
    pub fn read(&mut self, p: usize, addr: Addr, bytes: u64) {
        self.access(p, addr, bytes, false);
    }

    /// Records a plain write of `bytes` at `addr` by processor `p`.
    pub fn write(&mut self, p: usize, addr: Addr, bytes: u64) {
        self.access(p, addr, bytes, true);
    }

    fn lint(&mut self, kind: LintKind, message: String) {
        let f = LintFinding { kind, message };
        if !self.lints.contains(&f) {
            self.lints.push(f);
        }
    }

    fn access(&mut self, p: usize, addr: Addr, bytes: u64, is_write: bool) {
        if bytes == 0 {
            return;
        }
        let first = addr / self.gbytes;
        let last = (addr + bytes - 1) / self.gbytes;
        for g in first..=last {
            if let Some(&cell) = self.cell_granules.get(&g) {
                self.lint(
                    LintKind::AtomicPlainMix,
                    format!(
                        "fetch cell {cell} is also accessed by a plain {} from proc {p} \
                         ({:#x}+{bytes})",
                        if is_write { "write" } else { "read" },
                        addr,
                    ),
                );
            }
            let cur = RawAccess {
                proc: p,
                phase: self.phase[p],
                addr,
                bytes,
                is_write,
                locks: self.locksets[p].clone(),
            };
            let clock = &self.clocks[p];
            let own = EpochVal {
                proc: p as u32,
                clock: clock.get(p),
            };
            let st = self.shadow.entry(g).or_default();
            // Conflict checks: a prior access races with this one when it
            // is not ordered before it by the vector clock and at least
            // one of the two writes.
            let prior: Option<RawAccess> = if is_write {
                if st.write.is_some_and(|w| !w.le(clock)) {
                    st.write_ctx.clone()
                } else {
                    match &st.read {
                        ReadShadow::Epoch(r) if !r.le(clock) => st.read_ctx_of(r.proc as usize),
                        ReadShadow::Clock(vc) => (0..self.nprocs)
                            .find(|&q| vc.get(q) > clock.get(q))
                            .and_then(|q| st.read_ctx_of(q)),
                        _ => None,
                    }
                }
            } else if st.write.is_some_and(|w| !w.le(clock)) {
                st.write_ctx.clone()
            } else {
                None
            };
            if let Some(prior) = prior {
                if !st.reported {
                    st.reported = true;
                    self.raw_races.push((g, prior, cur.clone()));
                }
            }
            // Shadow update (FastTrack): writes own the granule and clear
            // the read side (sound: any later access ordered after this
            // write is, by transitivity, ordered after everything the
            // write was ordered after); reads stay an epoch while totally
            // ordered and promote to a clock when concurrent.
            if is_write {
                st.write = Some(own);
                st.write_ctx = Some(cur);
                st.read = ReadShadow::None;
                st.read_ctxs.clear();
            } else {
                st.read = match std::mem::replace(&mut st.read, ReadShadow::None) {
                    ReadShadow::None => ReadShadow::Epoch(own),
                    ReadShadow::Epoch(r) if r.proc == own.proc || r.le(clock) => {
                        ReadShadow::Epoch(own)
                    }
                    ReadShadow::Epoch(r) => {
                        let mut vc = VectorClock::default();
                        vc.set(r.proc as usize, r.clock);
                        vc.set(p, own.clock);
                        ReadShadow::Clock(vc)
                    }
                    ReadShadow::Clock(mut vc) => {
                        vc.set(p, own.clock);
                        ReadShadow::Clock(vc)
                    }
                };
                match st.read_ctxs.iter_mut().find(|(q, _)| *q == p) {
                    Some(slot) => slot.1 = cur,
                    None => st.read_ctxs.push((p, cur)),
                }
            }
        }
    }

    fn ensure_lock(&mut self, l: usize) {
        if self.lock_release.len() <= l {
            self.lock_release.resize(l + 1, VectorClock::default());
            self.lock_holder.resize(l + 1, None);
        }
    }

    /// Records processor `p` acquiring lock `l` (call at grant time).
    pub fn lock_acquire(&mut self, p: usize, l: usize) {
        self.ensure_lock(l);
        for i in 0..self.locksets[p].len() {
            let held = self.locksets[p][i];
            if held != l {
                self.lock_edges.insert((held, l));
            }
        }
        self.locksets[p].push(l);
        self.lock_holder[l] = Some(p);
        let release = self.lock_release[l].clone();
        self.clocks[p].join(&release);
    }

    /// Records processor `p` releasing lock `l`.
    pub fn lock_release(&mut self, p: usize, l: usize) {
        self.ensure_lock(l);
        if self.lock_holder[l] == Some(p) {
            self.lock_holder[l] = None;
        } else {
            let holder = self.lock_holder[l]
                .map(|h| format!("proc {h}"))
                .unwrap_or_else(|| "nobody".into());
            self.lint(
                LintKind::UnlockByNonOwner,
                format!("lock {l} released by proc {p} but held by {holder}"),
            );
        }
        if let Some(i) = self.locksets[p].iter().rposition(|&h| h == l) {
            self.locksets[p].remove(i);
        }
        self.lock_release[l] = self.clocks[p].clone();
        self.clocks[p].tick(p);
    }

    /// Records processor `p` arriving at barrier `b`.
    pub fn barrier_arrive(&mut self, p: usize, b: usize) {
        if self.barrier_arrived.len() <= b {
            self.barrier_arrived.resize(b + 1, Vec::new());
        }
        if !self.locksets[p].is_empty() {
            self.lint(
                LintKind::LockAcrossBarrier,
                format!(
                    "proc {p} arrived at barrier {b} holding lock(s) {:?}",
                    self.locksets[p]
                ),
            );
        }
        self.barrier_arrived[b].push(p);
    }

    /// Records barrier `b` completing an episode: all processors that
    /// arrived since the last completion are mutually ordered (each
    /// post-barrier action happens-after every pre-barrier action).
    pub fn barrier_complete(&mut self, b: usize) {
        if self.barrier_arrived.len() <= b {
            return;
        }
        let arrived = std::mem::take(&mut self.barrier_arrived[b]);
        let mut joined = VectorClock::default();
        for &q in &arrived {
            joined.join(&self.clocks[q]);
        }
        for &q in &arrived {
            self.clocks[q] = joined.clone();
            self.clocks[q].tick(q);
        }
    }

    /// Records processor `p` performing a fetch&add on cell `c`. The
    /// cells serialize: each operation acquires the previous operation's
    /// release and releases to the next.
    pub fn fetch_add(&mut self, p: usize, c: usize) {
        if self.cell_clock.len() <= c {
            self.cell_clock.resize(c + 1, VectorClock::default());
        }
        let cell = self.cell_clock[c].clone();
        self.clocks[p].join(&cell);
        self.cell_clock[c] = self.clocks[p].clone();
        self.clocks[p].tick(p);
    }

    fn ensure_sem(&mut self, s: usize) {
        if self.sem_clock.len() <= s {
            self.sem_clock.resize(s + 1, VectorClock::default());
        }
    }

    /// Records processor `p` posting semaphore `s` (a release: later
    /// waiters happen-after this).
    pub fn sem_post(&mut self, p: usize, s: usize) {
        self.ensure_sem(s);
        let c = self.clocks[p].clone();
        self.sem_clock[s].join(&c);
        self.clocks[p].tick(p);
    }

    /// Records processor `p` completing a semaphore wait on `s` (an
    /// acquire, conservatively ordered after every prior post).
    pub fn sem_acquire(&mut self, p: usize, s: usize) {
        self.ensure_sem(s);
        let sem = self.sem_clock[s].clone();
        self.clocks[p].join(&sem);
    }

    /// Lints that can only be judged once the run is over (or has
    /// deadlocked): currently barrier divergence. Folded into
    /// [`Sanitizer::finalize`]; exposed for the engine's deadlock path,
    /// which has no statistics to attach a report to.
    fn end_of_run_lints(&mut self) {
        for b in 0..self.barrier_arrived.len() {
            let arrived = self.barrier_arrived[b].clone();
            if arrived.is_empty() {
                continue;
            }
            let mut missing: Vec<usize> =
                (0..self.nprocs).filter(|q| !arrived.contains(q)).collect();
            missing.sort_unstable();
            let mut arrived = arrived;
            arrived.sort_unstable();
            self.lint(
                LintKind::BarrierDivergence,
                format!(
                    "barrier {b}: proc(s) {arrived:?} arrived but proc(s) {missing:?} never did"
                ),
            );
        }
    }

    /// Strongly connected components with ≥ 2 nodes in the lock-order
    /// graph, via reachability closure (lock graphs are tiny).
    fn lock_cycles(&self) -> Vec<LockCycleFinding> {
        let nodes: BTreeSet<usize> = self.lock_edges.iter().flat_map(|&(a, b)| [a, b]).collect();
        let mut reach: BTreeMap<usize, BTreeSet<usize>> = nodes
            .iter()
            .map(|&n| {
                (
                    n,
                    self.lock_edges
                        .iter()
                        .filter(|&&(a, _)| a == n)
                        .map(|&(_, b)| b)
                        .collect(),
                )
            })
            .collect();
        // Transitive closure.
        loop {
            let mut grew = false;
            for &n in &nodes {
                let step: BTreeSet<usize> = reach[&n]
                    .iter()
                    .flat_map(|m| reach[m].iter().copied())
                    .collect();
                let set = reach.get_mut(&n).expect("node present");
                let before = set.len();
                set.extend(step);
                grew |= set.len() != before;
            }
            if !grew {
                break;
            }
        }
        let mut seen: BTreeSet<Vec<usize>> = BTreeSet::new();
        for &n in &nodes {
            if !reach[&n].contains(&n) {
                continue;
            }
            let scc: Vec<usize> = nodes
                .iter()
                .copied()
                .filter(|&m| reach[&n].contains(&m) && reach[&m].contains(&n))
                .collect();
            seen.insert(scc);
        }
        seen.into_iter()
            .map(|locks| LockCycleFinding { locks })
            .collect()
    }

    /// Consumes the sanitizer into its report. `phase_names` maps the
    /// interned phase ids seen via [`Sanitizer::set_phase`] to names
    /// (out-of-range ids render as `"phase-<id>"`).
    pub fn finalize(mut self, phase_names: &[String]) -> SanitizeReport {
        self.end_of_run_lints();
        let mut races: Vec<RaceFinding> = self
            .raw_races
            .iter()
            .map(|(g, prior, cur)| RaceFinding {
                addr: g * self.gbytes,
                bytes: self.gbytes,
                prior: prior.resolve(phase_names),
                current: cur.resolve(phase_names),
            })
            .collect();
        races.sort_by(|a, b| {
            (a.addr, a.prior.proc, a.current.proc).cmp(&(b.addr, b.prior.proc, b.current.proc))
        });
        let mut lints = std::mem::take(&mut self.lints);
        lints.sort_by(|a, b| (a.kind, &a.message).cmp(&(b.kind, &b.message)));
        SanitizeReport {
            granularity: self.granularity,
            races,
            lock_cycles: self.lock_cycles(),
            lints,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn names() -> Vec<String> {
        vec!["main".to_string()]
    }

    #[test]
    fn ordered_accesses_are_clean() {
        // p0 writes, releases a lock; p1 acquires it, reads.
        let mut s = Sanitizer::new(2, SanitizeGranularity::Word, 128);
        s.lock_acquire(0, 0);
        s.write(0, 0x1000, 8);
        s.lock_release(0, 0);
        s.lock_acquire(1, 0);
        s.read(1, 0x1000, 8);
        s.lock_release(1, 0);
        let rep = s.finalize(&names());
        assert!(rep.is_clean(), "{rep:?}");
    }

    #[test]
    fn unsynchronized_write_write_races_once_per_granule() {
        let mut s = Sanitizer::new(2, SanitizeGranularity::Word, 128);
        s.write(0, 0x1000, 8);
        s.write(1, 0x1000, 8);
        s.write(1, 0x1000, 8); // second conflict on the granule: deduped
        let rep = s.finalize(&names());
        assert_eq!(rep.counts(), [1, 0, 0]);
        let r = &rep.races[0];
        assert_eq!((r.addr, r.bytes), (0x1000, 8));
        assert_eq!((r.prior.proc, r.current.proc), (0, 1));
        assert!(r.prior.is_write && r.current.is_write);
    }

    #[test]
    fn read_write_and_write_read_race() {
        let mut s = Sanitizer::new(2, SanitizeGranularity::Word, 128);
        s.read(0, 0x2000, 8);
        s.write(1, 0x2000, 8); // read-write race
        s.write(0, 0x3000, 8);
        s.read(1, 0x3000, 8); // write-read race
        let rep = s.finalize(&names());
        assert_eq!(rep.counts(), [2, 0, 0]);
        assert!(!rep.races[0].prior.is_write && rep.races[0].current.is_write);
        assert!(rep.races[1].prior.is_write && !rep.races[1].current.is_write);
    }

    #[test]
    fn disjoint_words_race_only_at_line_granularity() {
        let run = |g| {
            let mut s = Sanitizer::new(2, g, 128);
            s.write(0, 0x1000, 8);
            s.write(1, 0x1008, 8); // same 128-byte line, different word
            s.finalize(&names())
        };
        assert!(run(SanitizeGranularity::Word).is_clean());
        let line = run(SanitizeGranularity::Line);
        assert_eq!(line.counts(), [1, 0, 0]);
        assert_eq!(line.races[0].bytes, 128);
    }

    #[test]
    fn barrier_orders_and_concurrent_reads_promote() {
        let mut s = Sanitizer::new(3, SanitizeGranularity::Word, 128);
        s.write(0, 0x1000, 8);
        for p in 0..3 {
            s.barrier_arrive(p, 0);
        }
        s.barrier_complete(0);
        // Concurrent reads after the barrier: fine (and promote the
        // read shadow to a clock)...
        for p in 0..3 {
            s.read(p, 0x1000, 8);
        }
        // ...and an unordered write then races against a reader.
        s.write(0, 0x1000, 8);
        let rep = s.finalize(&names());
        assert_eq!(rep.counts(), [1, 0, 0]);
        assert!(!rep.races[0].prior.is_write && rep.races[0].current.is_write);
    }

    #[test]
    fn fetch_add_serializes_and_sem_edges_order() {
        let mut s = Sanitizer::new(2, SanitizeGranularity::Word, 128);
        s.write(0, 0x1000, 8);
        s.fetch_add(0, 0);
        s.fetch_add(1, 0);
        s.read(1, 0x1000, 8);
        s.write(0, 0x2000, 8);
        s.sem_post(0, 0);
        s.sem_acquire(1, 0);
        s.read(1, 0x2000, 8);
        assert!(s.finalize(&names()).is_clean());
    }

    #[test]
    fn lock_order_cycle_detected_without_deadlocking() {
        let mut s = Sanitizer::new(2, SanitizeGranularity::Word, 128);
        s.lock_acquire(0, 0);
        s.lock_acquire(0, 1);
        s.lock_release(0, 1);
        s.lock_release(0, 0);
        s.lock_acquire(1, 1);
        s.lock_acquire(1, 0);
        s.lock_release(1, 0);
        s.lock_release(1, 1);
        let rep = s.finalize(&names());
        assert_eq!(
            rep.lock_cycles,
            vec![LockCycleFinding { locks: vec![0, 1] }]
        );
        assert!(rep.races.is_empty() && rep.lints.is_empty());
    }

    #[test]
    fn nested_lock_order_without_cycle_is_clean() {
        let mut s = Sanitizer::new(2, SanitizeGranularity::Word, 128);
        for p in 0..2 {
            s.lock_acquire(p, 0);
            s.lock_acquire(p, 1);
            s.lock_release(p, 1);
            s.lock_release(p, 0);
        }
        assert!(s.finalize(&names()).lock_cycles.is_empty());
    }

    #[test]
    fn lints_fire_and_dedup() {
        let mut s = Sanitizer::new(2, SanitizeGranularity::Word, 128);
        s.register_fetch_cell(3, 0x8000);
        s.read(0, 0x8000, 8);
        s.read(0, 0x8000, 8); // same situation: deduped
        s.lock_release(1, 0); // never acquired
        s.lock_acquire(0, 5);
        s.barrier_arrive(0, 2);
        s.barrier_arrive(1, 2);
        s.barrier_complete(2);
        s.barrier_arrive(1, 0); // open episode at finalize: divergence
        let rep = s.finalize(&names());
        let kinds: Vec<LintKind> = rep.lints.iter().map(|l| l.kind).collect();
        assert_eq!(
            kinds,
            vec![
                LintKind::BarrierDivergence,
                LintKind::UnlockByNonOwner,
                LintKind::AtomicPlainMix,
                LintKind::LockAcrossBarrier,
            ]
        );
        assert!(rep.lints[0].message.contains("barrier 0"));
        assert!(rep.lints[0].message.contains("[1]") && rep.lints[0].message.contains("[0]"));
    }

    #[test]
    fn report_summary_and_clean() {
        let s = Sanitizer::new(1, SanitizeGranularity::Word, 128);
        let rep = s.finalize(&names());
        assert!(rep.is_clean());
        assert_eq!(rep.summary(), "0 race(s), 0 lock cycle(s), 0 lint(s)");
    }
}
