//! Mapping of application processes onto physical processors.
//!
//! Section 7.1 of the paper studies how the assignment of processes to the
//! network topology affects performance (linear vs random vs near-neighbor
//! pair-aware mappings). A [`ProcessMapping`] is resolved against a machine
//! shape into a permutation `process id → physical processor slot`.

/// Seeded Fisher–Yates shuffle over an xorshift* stream, so random
/// mappings are reproducible without an external RNG dependency.
fn shuffle(v: &mut [usize], seed: u64) {
    // SplitMix64 seeding keeps nearby seeds uncorrelated (and nonzero).
    let mut s = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    s = (s ^ (s >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    s = (s ^ (s >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    s = (s ^ (s >> 31)) | 1;
    let mut next = move || {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        s.wrapping_mul(0x2545_F491_4F6C_DD1D)
    };
    for i in (1..v.len()).rev() {
        let j = (next() % (i as u64 + 1)) as usize;
        v.swap(i, j);
    }
}

/// Strategy for placing process *i* onto a physical processor.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum ProcessMapping {
    /// Process *i* runs on processor *i* (the machine's default).
    #[default]
    Linear,
    /// A seeded random permutation of processes over processors.
    Random {
        /// Seed for the permutation; equal seeds give equal mappings.
        seed: u64,
    },
    /// An explicit permutation: `perm[i]` is the physical slot of process
    /// *i*. Must be a permutation of `0..nprocs`.
    Explicit(Vec<usize>),
    /// Keeps process pairs `(2i, 2i+1)` on the same node, but places the
    /// pairs onto nodes in a seeded random order. Used in §7.1 to separate
    /// "which processes share a node" from "where nodes sit in the network".
    RandomPairs {
        /// Seed for the pair permutation.
        seed: u64,
    },
}

impl ProcessMapping {
    /// Resolves the mapping into a permutation for `nprocs` processes on a
    /// machine with `procs_per_node` processors per node.
    ///
    /// # Errors
    ///
    /// Returns a message if an [`ProcessMapping::Explicit`] vector is not a
    /// permutation of `0..nprocs`, or if `RandomPairs` is used with an odd
    /// `nprocs` or `procs_per_node != 2`.
    pub fn resolve(&self, nprocs: usize, procs_per_node: usize) -> Result<Vec<usize>, String> {
        match self {
            ProcessMapping::Linear => Ok((0..nprocs).collect()),
            ProcessMapping::Random { seed } => {
                let mut perm: Vec<usize> = (0..nprocs).collect();
                shuffle(&mut perm, *seed);
                Ok(perm)
            }
            ProcessMapping::Explicit(perm) => {
                if perm.len() != nprocs {
                    return Err(format!(
                        "explicit mapping has {} entries for {} processes",
                        perm.len(),
                        nprocs
                    ));
                }
                let mut seen = vec![false; nprocs];
                for &s in perm {
                    if s >= nprocs || seen[s] {
                        return Err(format!("explicit mapping is not a permutation at slot {s}"));
                    }
                    seen[s] = true;
                }
                Ok(perm.clone())
            }
            ProcessMapping::RandomPairs { seed } => {
                if procs_per_node != 2 {
                    return Err("RandomPairs requires 2 processors per node".into());
                }
                if !nprocs.is_multiple_of(2) {
                    return Err("RandomPairs requires an even process count".into());
                }
                let npairs = nprocs / 2;
                let mut pair_order: Vec<usize> = (0..npairs).collect();
                shuffle(&mut pair_order, *seed);
                let mut perm = vec![0; nprocs];
                for (node, &pair) in pair_order.iter().enumerate() {
                    perm[2 * pair] = 2 * node;
                    perm[2 * pair + 1] = 2 * node + 1;
                }
                Ok(perm)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn is_permutation(perm: &[usize]) -> bool {
        let mut seen = vec![false; perm.len()];
        for &p in perm {
            if p >= perm.len() || seen[p] {
                return false;
            }
            seen[p] = true;
        }
        true
    }

    #[test]
    fn linear_is_identity() {
        assert_eq!(
            ProcessMapping::Linear.resolve(4, 2).unwrap(),
            vec![0, 1, 2, 3]
        );
    }

    #[test]
    fn random_is_permutation_and_seed_deterministic() {
        let a = ProcessMapping::Random { seed: 7 }.resolve(128, 2).unwrap();
        let b = ProcessMapping::Random { seed: 7 }.resolve(128, 2).unwrap();
        let c = ProcessMapping::Random { seed: 8 }.resolve(128, 2).unwrap();
        assert!(is_permutation(&a));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn explicit_validates() {
        assert!(ProcessMapping::Explicit(vec![1, 0]).resolve(2, 2).is_ok());
        assert!(ProcessMapping::Explicit(vec![1, 1]).resolve(2, 2).is_err());
        assert!(ProcessMapping::Explicit(vec![0]).resolve(2, 2).is_err());
        assert!(ProcessMapping::Explicit(vec![0, 5]).resolve(2, 2).is_err());
    }

    #[test]
    fn random_pairs_keeps_pairs_on_nodes() {
        let perm = ProcessMapping::RandomPairs { seed: 3 }
            .resolve(32, 2)
            .unwrap();
        assert!(is_permutation(&perm));
        for i in 0..16 {
            // Processes 2i and 2i+1 land on the same node (slots 2k, 2k+1).
            assert_eq!(perm[2 * i] / 2, perm[2 * i + 1] / 2);
            assert_eq!(perm[2 * i] % 2, 0);
        }
    }

    #[test]
    fn random_pairs_rejects_bad_shapes() {
        assert!(ProcessMapping::RandomPairs { seed: 0 }
            .resolve(32, 1)
            .is_err());
        assert!(ProcessMapping::RandomPairs { seed: 0 }
            .resolve(31, 2)
            .is_err());
    }
}
