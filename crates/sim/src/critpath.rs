//! Critical-path profiler: *what limits scaling*, answered causally.
//!
//! Aggregate breakdowns (busy / memory / sync shares, miss-cause tables,
//! resource occupancy) say where time goes, but not which time actually
//! bounds the run: stall that overlaps other processors' useful work is
//! hidden, while the same stall on the longest dependency chain delays
//! everyone. This module captures the happens-before dependency structure
//! of a simulated execution — program order within each processor, lock
//! release→acquire handoffs, barrier episodes, semaphore post→wait
//! handoffs — walks the longest (critical) path through it, and attributes
//! every nanosecond of the path:
//!
//! * by **kind** — busy, sync operation, local/remote memory stall, or
//!   lock/barrier/semaphore *wait* (path time during which a downstream
//!   path processor was blocked on the path processor);
//! * by **phase** — the application phase each path segment ran in;
//! * by **cause and resource** — the attrib taxonomy
//!   ([`MissCause`](crate::attrib::MissCause) slots and per-resource
//!   service/queue split) for the on-path memory stall.
//!
//! The attribution *reconciles*: the buckets sum to the run's simulated
//! wall clock to the nanosecond, and the per-phase rows partition the
//! path exactly (both debug-asserted).
//!
//! On top of the captured dependency graph sits a **what-if projector**
//! ([`CritReport::whatif`]): it re-weights edge costs (`sync=0`,
//! `hub_queue=0`, `queue=0`, `remote*0.5`, `busy-only`) and replays the
//! graph forward to a projected wall clock — a causal answer to "how much
//! faster would this run be if that cost went away". The unchanged
//! (`measured`) scenario reproduces the measured wall clock exactly;
//! cost-reducing scenarios are lower-bounded by the busiest processor's
//! busy time.
//!
//! The profiler is **observer-passive**, like the sanitizer and the host
//! profiler: enabling [`MachineConfig::critpath`](crate::config::MachineConfig::critpath)
//! records dependencies on the side and never feeds back into simulated
//! timing, statistics, or run identity.

use crate::attrib::{cause_slot_name, LatencyBreakdown, ResourceClass, CAUSE_SLOTS};
use crate::chrome::{json_str, us, ChromeDoc};
use crate::time::Ns;

/// Sentinel item index meaning "the beginning of time" (the referenced
/// processor had recorded nothing yet).
pub(crate) const NO_ITEM: u32 = u32::MAX;

/// The kind of synchronization wait a dependency edge crossed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WaitKind {
    /// Lock release → acquire handoff.
    Lock,
    /// Barrier episode: last arrival releases everyone.
    Barrier,
    /// Semaphore post → wait handoff.
    Sem,
}

impl WaitKind {
    /// Short display name (`"lock"`, `"barrier"`, `"sem"`).
    pub fn name(self) -> &'static str {
        match self {
            WaitKind::Lock => "lock",
            WaitKind::Barrier => "barrier",
            WaitKind::Sem => "sem",
        }
    }
}

/// What a recorded wait depends on.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum Dep {
    /// A single releaser: (processor, item index of everything it did up
    /// to the release).
    One(usize, u32),
    /// A barrier episode (index into the episode table); the effective
    /// dependency is the latest arrival.
    Episode(u32),
}

/// One barrier episode: every participant's arrival, as
/// `(processor, item index at arrival, arrival time)`. Keeping *all*
/// arrivals (not just the last) lets the what-if replay re-evaluate which
/// arrival is latest under re-weighted costs.
#[derive(Debug, Clone, PartialEq)]
struct Episode {
    deps: Vec<(usize, u32, Ns)>,
}

/// A maximal run of one processor's timeline between sync boundaries:
/// aggregated busy / sync-op / memory time with attrib detail. Covers
/// `(end_t - dur, end_t]`.
#[derive(Debug, Clone, PartialEq)]
struct Chunk {
    phase: u32,
    end_t: Ns,
    dur: Ns,
    busy_ns: Ns,
    sync_op_ns: Ns,
    mem_local_ns: Ns,
    mem_remote_ns: Ns,
    cause_ns: [Ns; CAUSE_SLOTS],
    queue: [Ns; 4],
    service: [Ns; 4],
}

/// A blocked interval `(end_t - dur, end_t]` of one processor, ended by a
/// grant whose dependency is `dep`.
#[derive(Debug, Clone, PartialEq)]
struct Wait {
    end_t: Ns,
    dur: Ns,
    kind: WaitKind,
    dep: Dep,
}

#[derive(Debug, Clone, PartialEq)]
enum Item {
    Chunk(Chunk),
    Wait(Wait),
}

impl Item {
    fn end_t(&self) -> Ns {
        match self {
            Item::Chunk(c) => c.end_t,
            Item::Wait(w) => w.end_t,
        }
    }
}

/// The still-open chunk of one processor.
#[derive(Debug, Default, Clone)]
struct OpenChunk {
    start: Ns,
    busy_ns: Ns,
    sync_op_ns: Ns,
    mem_local_ns: Ns,
    mem_remote_ns: Ns,
    cause_ns: [Ns; CAUSE_SLOTS],
    queue: [Ns; 4],
    service: [Ns; 4],
}

#[derive(Debug, Clone)]
struct ProcState {
    items: Vec<Item>,
    open: OpenChunk,
    /// Current end of this processor's recorded timeline (its clock).
    end: Ns,
    phase: u32,
}

impl ProcState {
    fn new() -> Self {
        ProcState {
            items: Vec::new(),
            open: OpenChunk::default(),
            end: 0,
            phase: 0,
        }
    }

    /// Closes the open chunk (if it covers any time) at the current end.
    fn close_open(&mut self) {
        let o = std::mem::take(&mut self.open);
        let dur = self.end - o.start;
        if dur > 0 {
            debug_assert_eq!(
                dur,
                o.busy_ns + o.sync_op_ns + o.mem_local_ns + o.mem_remote_ns,
                "chunk duration must equal its component sum"
            );
            self.items.push(Item::Chunk(Chunk {
                phase: self.phase,
                end_t: self.end,
                dur,
                busy_ns: o.busy_ns,
                sync_op_ns: o.sync_op_ns,
                mem_local_ns: o.mem_local_ns,
                mem_remote_ns: o.mem_remote_ns,
                cause_ns: o.cause_ns,
                queue: o.queue,
                service: o.service,
            }));
        }
        self.open.start = self.end;
    }
}

/// Passive recorder of the execution's dependency structure; driven by the
/// engine when [`MachineConfig::critpath`](crate::config::MachineConfig::critpath)
/// is enabled, finalized into a [`CritReport`] at the end of the run.
#[derive(Debug)]
pub struct CritCollector {
    procs: Vec<ProcState>,
    episodes: Vec<Episode>,
}

impl CritCollector {
    /// A collector for `nprocs` processors, all at time 0 in phase 0.
    pub fn new(nprocs: usize) -> Self {
        CritCollector {
            procs: (0..nprocs).map(|_| ProcState::new()).collect(),
            episodes: Vec::new(),
        }
    }

    /// Processor `p` computed for `ns`.
    pub(crate) fn busy(&mut self, p: usize, ns: Ns) {
        let s = &mut self.procs[p];
        s.open.busy_ns += ns;
        s.end += ns;
    }

    /// Processor `p` spent `ns` in a synchronization operation.
    pub(crate) fn sync_op(&mut self, p: usize, ns: Ns) {
        let s = &mut self.procs[p];
        s.open.sync_op_ns += ns;
        s.end += ns;
    }

    /// Processor `p` stalled `latency` on a memory access (`local` home or
    /// remote), with its cause slot and resource breakdown.
    pub(crate) fn mem(
        &mut self,
        p: usize,
        local: bool,
        cause_slot: usize,
        latency: Ns,
        bd: &LatencyBreakdown,
    ) {
        let s = &mut self.procs[p];
        if local {
            s.open.mem_local_ns += latency;
        } else {
            s.open.mem_remote_ns += latency;
        }
        s.open.cause_ns[cause_slot] += latency;
        for i in 0..4 {
            s.open.queue[i] += bd.queue[i];
            s.open.service[i] += bd.service[i];
        }
        s.end += latency;
    }

    /// Marks a dependency boundary on processor `p` at time `t` (a lock
    /// release, semaphore post, or barrier arrival): closes the open chunk
    /// and returns the index of the item that ends at `t` ([`NO_ITEM`] if
    /// the processor has recorded nothing yet).
    pub(crate) fn boundary(&mut self, p: usize, t: Ns) -> u32 {
        let s = &mut self.procs[p];
        debug_assert_eq!(s.end, t, "boundary time must match the recorded clock");
        s.close_open();
        if s.items.is_empty() {
            NO_ITEM
        } else {
            (s.items.len() - 1) as u32
        }
    }

    /// Registers a barrier episode over all participants' arrivals and
    /// returns its id for [`Dep::Episode`].
    pub(crate) fn add_episode(&mut self, deps: Vec<(usize, u32, Ns)>) -> u32 {
        self.episodes.push(Episode { deps });
        (self.episodes.len() - 1) as u32
    }

    /// Processor `p` blocked from `arrived` until `grant` (`grant >
    /// arrived`) on a `kind` wait whose releaser is `dep`.
    pub(crate) fn wait(&mut self, p: usize, arrived: Ns, grant: Ns, kind: WaitKind, dep: Dep) {
        debug_assert!(grant > arrived, "zero-length waits are not recorded");
        let s = &mut self.procs[p];
        debug_assert_eq!(s.end, arrived, "wait must start at the recorded clock");
        s.close_open();
        s.items.push(Item::Wait(Wait {
            end_t: grant,
            dur: grant - arrived,
            kind,
            dep,
        }));
        s.end = grant;
        s.open.start = grant;
    }

    /// Processor `p` entered phase `phase` at time `t`.
    pub(crate) fn set_phase(&mut self, p: usize, phase: u32, t: Ns) {
        let s = &mut self.procs[p];
        debug_assert_eq!(s.end, t, "phase change must happen at the recorded clock");
        s.close_open();
        s.phase = phase;
    }

    /// Finalizes the collected dependency structure into a report:
    /// longest-path walk, exact attribution, and what-if projections.
    pub(crate) fn finalize(mut self, wall: Ns, phase_names: &[String]) -> CritReport {
        for s in &mut self.procs {
            s.close_open();
        }
        let max_phase = self
            .procs
            .iter()
            .flat_map(|s| s.items.iter())
            .filter_map(|it| match it {
                Item::Chunk(c) => Some(c.phase as usize + 1),
                Item::Wait(_) => None,
            })
            .max()
            .unwrap_or(1);
        let nphases = phase_names.len().max(1).max(max_phase);
        let mut rows = vec![CritBuckets::default(); nphases];
        let mut cause_ns = [0; CAUSE_SLOTS];
        let mut queue_ns = [0; 4];
        let mut service_ns = [0; 4];
        let mut segments = Vec::new();

        self.walk_path(
            wall,
            &mut rows,
            &mut cause_ns,
            &mut queue_ns,
            &mut service_ns,
            &mut segments,
        );
        segments.reverse();
        let segments = merge_segments(segments);

        let mut total = CritBuckets::default();
        for r in &rows {
            total.add(r);
        }
        debug_assert_eq!(
            total.total_ns(),
            wall,
            "critical-path attribution must sum to the wall clock"
        );

        let whatif = SCENARIOS
            .iter()
            .map(|s| WhatIf {
                name: s.name.to_string(),
                wall_ns: self.replay(s),
            })
            .collect();

        let phases = rows
            .into_iter()
            .enumerate()
            .map(|(i, path)| PhasePath {
                name: phase_names
                    .get(i)
                    .cloned()
                    .unwrap_or_else(|| format!("phase{i}")),
                path,
            })
            .collect();

        CritReport {
            wall_ns: wall,
            total,
            mem_cause_ns: cause_ns,
            mem_queue_ns: queue_ns,
            mem_service_ns: service_ns,
            phases,
            whatif,
            segments,
        }
    }

    /// Backward longest-path walk with exact attribution. `rows` is
    /// indexed by phase id; detail arrays accumulate the attrib split of
    /// on-path memory stall outside wait windows.
    #[allow(clippy::too_many_arguments)]
    fn walk_path(
        &self,
        wall: Ns,
        rows: &mut [CritBuckets],
        cause_ns: &mut [Ns; CAUSE_SLOTS],
        queue_ns: &mut [Ns; 4],
        service_ns: &mut [Ns; 4],
        segments: &mut Vec<PathSeg>,
    ) {
        if wall == 0 {
            return;
        }
        let mut p = self
            .procs
            .iter()
            .enumerate()
            .max_by_key(|(i, s)| (s.end, std::cmp::Reverse(*i)))
            .map(|(i, _)| i)
            .expect("at least one processor");
        debug_assert_eq!(self.procs[p].end, wall, "walk must start at the wall clock");
        let mut k = self.procs[p].items.len() as i64 - 1;
        let mut t = wall;
        // Active wait windows, innermost last: (window start, kind). Path
        // time inside a window is time a downstream path processor spent
        // blocked on this one.
        let mut windows: Vec<(Ns, WaitKind)> = Vec::new();
        while t > 0 {
            debug_assert!(k >= 0, "path ran out of items above time 0");
            match &self.procs[p].items[k as usize] {
                Item::Chunk(c) => {
                    debug_assert_eq!(c.end_t, t);
                    self.attribute_chunk(
                        c,
                        &mut windows,
                        rows,
                        cause_ns,
                        queue_ns,
                        service_ns,
                        segments,
                        p,
                    );
                    t -= c.dur;
                    k -= 1;
                    while windows.last().is_some_and(|w| w.0 >= t) {
                        windows.pop();
                    }
                }
                Item::Wait(w) => {
                    debug_assert_eq!(w.end_t, t);
                    windows.push((w.end_t - w.dur, w.kind));
                    let (np, nk) = match &w.dep {
                        Dep::One(proc, item) => (*proc, *item),
                        Dep::Episode(e) => {
                            let d = self.episodes[*e as usize]
                                .deps
                                .iter()
                                .max_by_key(|(proc, _, arrived)| (*arrived, *proc))
                                .expect("episodes have at least one arrival");
                            (d.0, d.1)
                        }
                    };
                    debug_assert_ne!(nk, NO_ITEM, "a positive-time wait has a real releaser");
                    p = np;
                    k = nk as i64;
                }
            }
        }
    }

    /// Attributes one traversed chunk, splitting it across active wait
    /// windows (innermost wins) and its own busy/sync/memory composition.
    #[allow(clippy::too_many_arguments)]
    fn attribute_chunk(
        &self,
        c: &Chunk,
        windows: &mut Vec<(Ns, WaitKind)>,
        rows: &mut [CritBuckets],
        cause_ns: &mut [Ns; CAUSE_SLOTS],
        queue_ns: &mut [Ns; 4],
        service_ns: &mut [Ns; 4],
        segments: &mut Vec<PathSeg>,
        proc: usize,
    ) {
        let row = &mut rows[c.phase as usize];
        let lo = c.end_t - c.dur;
        let mut cursor = c.end_t;
        while cursor > lo {
            match windows.last().copied() {
                Some((from, _)) if from >= cursor => {
                    windows.pop();
                }
                Some((from, kind)) => {
                    // The window covers (from, cursor]; the covered part of
                    // the chunk is pure path-wait time.
                    let part = cursor - from.max(lo);
                    match kind {
                        WaitKind::Lock => row.lock_wait_ns += part,
                        WaitKind::Barrier => row.barrier_wait_ns += part,
                        WaitKind::Sem => row.sem_wait_ns += part,
                    }
                    segments.push(PathSeg {
                        proc,
                        start: cursor - part,
                        end: cursor,
                        kind: match kind {
                            WaitKind::Lock => SegKind::LockWait,
                            WaitKind::Barrier => SegKind::BarrierWait,
                            WaitKind::Sem => SegKind::SemWait,
                        },
                    });
                    cursor -= part;
                    if from > lo {
                        windows.pop();
                    }
                }
                None => {
                    // No active window below `cursor`: the rest of the chunk
                    // is attributed by its own composition, scaled exactly.
                    let part = cursor - lo;
                    let comp = [c.busy_ns, c.sync_op_ns, c.mem_local_ns, c.mem_remote_ns];
                    let s = split_exact(comp, c.dur, part);
                    row.busy_ns += s[0];
                    row.sync_op_ns += s[1];
                    row.mem_local_ns += s[2];
                    row.mem_remote_ns += s[3];
                    for (slot, v) in cause_ns.iter_mut().zip(&c.cause_ns) {
                        *slot += scale(*v, part, c.dur);
                    }
                    for i in 0..4 {
                        queue_ns[i] += scale(c.queue[i], part, c.dur);
                        service_ns[i] += scale(c.service[i], part, c.dur);
                    }
                    segments.push(PathSeg {
                        proc,
                        start: lo,
                        end: cursor,
                        kind: SegKind::Run,
                    });
                    cursor = lo;
                }
            }
        }
    }

    /// Forward replay of the dependency graph under re-weighted costs,
    /// returning the projected wall clock. Iterates to a fixpoint so
    /// zero-cost dependency ties cannot be ordered wrongly.
    fn replay(&self, s: &Scenario) -> Ns {
        let mut order: Vec<(usize, u32)> = Vec::new();
        for (p, st) in self.procs.iter().enumerate() {
            for i in 0..st.items.len() {
                order.push((p, i as u32));
            }
        }
        order.sort_by_key(|&(p, i)| {
            let it = &self.procs[p].items[i as usize];
            let rank = match it {
                Item::Chunk(_) => 0u8,
                Item::Wait(_) => 1,
            };
            (it.end_t(), rank, p, i)
        });
        let mut new_end: Vec<Vec<Ns>> = self
            .procs
            .iter()
            .map(|st| vec![0; st.items.len()])
            .collect();
        loop {
            let mut changed = false;
            for &(p, i) in &order {
                let prev = if i == 0 {
                    0
                } else {
                    new_end[p][i as usize - 1]
                };
                let v = match &self.procs[p].items[i as usize] {
                    Item::Chunk(c) => prev + (s.cost)(c),
                    Item::Wait(w) => {
                        if s.honors_deps {
                            let at = |proc: usize, item: u32| {
                                if item == NO_ITEM {
                                    0
                                } else {
                                    new_end[proc][item as usize]
                                }
                            };
                            let dep_t = match &w.dep {
                                Dep::One(proc, item) => at(*proc, *item),
                                Dep::Episode(e) => self.episodes[*e as usize]
                                    .deps
                                    .iter()
                                    .map(|&(proc, item, _)| at(proc, item))
                                    .max()
                                    .unwrap_or(0),
                            };
                            prev.max(dep_t)
                        } else {
                            prev
                        }
                    }
                };
                if v != new_end[p][i as usize] {
                    new_end[p][i as usize] = v;
                    changed = true;
                }
            }
            if !changed {
                return new_end
                    .iter()
                    .filter_map(|v| v.last())
                    .copied()
                    .max()
                    .unwrap_or(0);
            }
        }
    }
}

/// Exact largest-remainder split: scales `parts` (which sum to `total`)
/// down to sum exactly to `want`, each scaled part ≤ its original.
fn split_exact(parts: [Ns; 4], total: Ns, want: Ns) -> [Ns; 4] {
    debug_assert!(want <= total);
    debug_assert_eq!(parts.iter().sum::<Ns>(), total);
    if want == total || total == 0 {
        return if total == 0 { [0; 4] } else { parts };
    }
    let mut s = [0u64; 4];
    let mut rem: [(u128, usize); 4] = [(0, 0); 4];
    let mut sum = 0;
    for i in 0..4 {
        let prod = parts[i] as u128 * want as u128;
        s[i] = (prod / total as u128) as u64;
        rem[i] = (prod % total as u128, i);
        sum += s[i];
    }
    // Distribute the deficit to the largest remainders (ties by index),
    // deterministically.
    rem.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
    let mut deficit = want - sum;
    for &(r, i) in &rem {
        if deficit == 0 {
            break;
        }
        if r > 0 {
            s[i] += 1;
            deficit -= 1;
        }
    }
    debug_assert_eq!(s.iter().sum::<Ns>(), want);
    s
}

/// Floor-scales one detail counter by `want / total` (detail arrays are
/// approximate under partial-chunk splits; the seven primary buckets use
/// [`split_exact`]).
fn scale(v: Ns, want: Ns, total: Ns) -> Ns {
    if total == 0 {
        0
    } else {
        (v as u128 * want as u128 / total as u128) as u64
    }
}

/// A what-if scenario: a per-chunk cost re-weighting plus whether waits
/// still honor their dependencies.
struct Scenario {
    name: &'static str,
    honors_deps: bool,
    cost: fn(&Chunk) -> Ns,
}

/// The built-in what-if scenarios, in report order.
const SCENARIOS: &[Scenario] = &[
    Scenario {
        name: "measured",
        honors_deps: true,
        cost: |c| c.dur,
    },
    Scenario {
        name: "sync=0",
        honors_deps: false,
        cost: |c| c.dur - c.sync_op_ns,
    },
    Scenario {
        name: "hub_queue=0",
        honors_deps: true,
        cost: |c| c.dur - c.queue[0],
    },
    Scenario {
        name: "queue=0",
        honors_deps: true,
        cost: |c| c.dur - c.queue.iter().sum::<Ns>(),
    },
    Scenario {
        name: "remote*0.5",
        honors_deps: true,
        cost: |c| c.dur - (c.mem_remote_ns - c.mem_remote_ns / 2),
    },
    Scenario {
        name: "busy-only",
        honors_deps: false,
        cost: |c| c.busy_ns,
    },
];

/// The exact seven-way partition of critical-path time.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct CritBuckets {
    /// Path time computing.
    pub busy_ns: Ns,
    /// Path time in synchronization operations.
    pub sync_op_ns: Ns,
    /// Path time stalled on local-home memory accesses.
    pub mem_local_ns: Ns,
    /// Path time stalled on remote memory accesses.
    pub mem_remote_ns: Ns,
    /// Path time during which a downstream path processor was blocked on
    /// a lock this processor held.
    pub lock_wait_ns: Ns,
    /// Path time racing to a barrier other processors had reached.
    pub barrier_wait_ns: Ns,
    /// Path time holding up a semaphore waiter.
    pub sem_wait_ns: Ns,
}

impl CritBuckets {
    /// Total path time in these buckets.
    pub fn total_ns(&self) -> Ns {
        self.busy_ns + self.sync_op_ns + self.mem_local_ns + self.mem_remote_ns + self.wait_ns()
    }

    /// Total memory-stall path time (local + remote).
    pub fn mem_ns(&self) -> Ns {
        self.mem_local_ns + self.mem_remote_ns
    }

    /// Total wait-attributed path time (lock + barrier + semaphore).
    pub fn wait_ns(&self) -> Ns {
        self.lock_wait_ns + self.barrier_wait_ns + self.sem_wait_ns
    }

    /// Accumulates another partition into this one.
    pub fn add(&mut self, o: &CritBuckets) {
        self.busy_ns += o.busy_ns;
        self.sync_op_ns += o.sync_op_ns;
        self.mem_local_ns += o.mem_local_ns;
        self.mem_remote_ns += o.mem_remote_ns;
        self.lock_wait_ns += o.lock_wait_ns;
        self.barrier_wait_ns += o.barrier_wait_ns;
        self.sem_wait_ns += o.sem_wait_ns;
    }
}

/// The critical-path partition of one application phase.
#[derive(Debug, Clone, PartialEq)]
pub struct PhasePath {
    /// Phase name (phase 0 is the implicit `"main"`).
    pub name: String,
    /// This phase's share of the critical path.
    pub path: CritBuckets,
}

/// One what-if projection: the wall clock the dependency graph replays to
/// under a re-weighted cost scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct WhatIf {
    /// Scenario name (`"measured"`, `"sync=0"`, `"hub_queue=0"`,
    /// `"queue=0"`, `"remote*0.5"`, `"busy-only"`).
    pub name: String,
    /// Projected wall clock under the scenario.
    pub wall_ns: Ns,
}

/// Display category of one on-path segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SegKind {
    /// The path processor was doing its own work (busy/sync-op/memory).
    Run,
    /// A downstream path processor was blocked on a lock meanwhile.
    LockWait,
    /// Other processors were parked at a barrier meanwhile.
    BarrierWait,
    /// A semaphore waiter was blocked meanwhile.
    SemWait,
}

impl SegKind {
    /// Short display name.
    pub fn name(self) -> &'static str {
        match self {
            SegKind::Run => "on-path",
            SegKind::LockWait => "on-path lock-wait",
            SegKind::BarrierWait => "on-path barrier-wait",
            SegKind::SemWait => "on-path sem-wait",
        }
    }
}

/// One maximal on-path interval of one processor's timeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PathSeg {
    /// Processor the path ran on.
    pub proc: usize,
    /// Segment start (exclusive end of the previous path segment).
    pub start: Ns,
    /// Segment end.
    pub end: Ns,
    /// Display category.
    pub kind: SegKind,
}

/// Merges adjacent same-processor same-kind segments of a time-ordered
/// segment list.
fn merge_segments(segs: Vec<PathSeg>) -> Vec<PathSeg> {
    let mut out: Vec<PathSeg> = Vec::with_capacity(segs.len());
    for s in segs {
        if let Some(last) = out.last_mut() {
            if last.proc == s.proc && last.kind == s.kind && last.end == s.start {
                last.end = s.end;
                continue;
            }
        }
        out.push(s);
    }
    out
}

/// The finalized critical-path analysis of one run: the exact path
/// partition, its attrib detail, per-phase rows, what-if projections and
/// the on-path segments for trace export.
#[derive(Debug, Clone, PartialEq)]
pub struct CritReport {
    /// The run's measured wall clock; equals `total.total_ns()` exactly.
    pub wall_ns: Ns,
    /// The whole path's partition.
    pub total: CritBuckets,
    /// On-path memory stall by miss-cause slot (outside wait windows;
    /// approximate under partial-chunk splits).
    pub mem_cause_ns: [Ns; CAUSE_SLOTS],
    /// On-path queueing delay per resource class (ditto).
    pub mem_queue_ns: [Ns; 4],
    /// On-path uncontended service time per resource class (ditto).
    pub mem_service_ns: [Ns; 4],
    /// Per-phase path partitions; their sums equal `total` exactly.
    pub phases: Vec<PhasePath>,
    /// What-if projections, in scenario order (measured first); `whatif[0]`
    /// (`"measured"`) equals `wall_ns` exactly.
    pub whatif: Vec<WhatIf>,
    /// Time-ordered on-path segments for Chrome-trace highlighting.
    pub segments: Vec<PathSeg>,
}

impl CritReport {
    /// The (busy, memory, sync) path shares in percent, folding sync ops
    /// and all waits into "sync" — comparable to
    /// [`RunStats::avg_breakdown_pct`](crate::stats::RunStats::avg_breakdown_pct),
    /// but for the path alone.
    pub fn share_pct(&self) -> (f64, f64, f64) {
        let t = self.total.total_ns() as f64;
        if t == 0.0 {
            return (0.0, 0.0, 0.0);
        }
        (
            100.0 * self.total.busy_ns as f64 / t,
            100.0 * self.total.mem_ns() as f64 / t,
            100.0 * (self.total.sync_op_ns + self.total.wait_ns()) as f64 / t,
        )
    }

    /// Compact `[busy, mem, sync]` path-nanosecond summary (the triple the
    /// sweep store records); sums to `wall_ns`.
    pub fn summary(&self) -> [Ns; 3] {
        [
            self.total.busy_ns,
            self.total.mem_ns(),
            self.total.sync_op_ns + self.total.wait_ns(),
        ]
    }

    /// Projected speedup of the named what-if scenario over the measured
    /// wall clock (1.0 if the scenario is unknown or projects zero).
    pub fn speedup(&self, scenario: &str) -> f64 {
        match self.whatif.iter().find(|w| w.name == scenario) {
            Some(w) if w.wall_ns > 0 => self.wall_ns as f64 / w.wall_ns as f64,
            _ => 1.0,
        }
    }

    /// One human-readable line: the dominant limiters of the path, e.g.
    /// `"41% barrier wait, 33% remote mem, 26% busy"`.
    pub fn headline(&self) -> String {
        let t = self.total.total_ns().max(1) as f64;
        let mut parts: Vec<(f64, String)> = vec![
            (self.total.busy_ns as f64, "busy".into()),
            (self.total.sync_op_ns as f64, "sync ops".into()),
            (self.total.mem_local_ns as f64, "local mem".into()),
            (self.total.mem_remote_ns as f64, "remote mem".into()),
            (self.total.lock_wait_ns as f64, "lock wait".into()),
            (self.total.barrier_wait_ns as f64, "barrier wait".into()),
            (self.total.sem_wait_ns as f64, "sem wait".into()),
        ];
        parts.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap());
        parts
            .iter()
            .filter(|(ns, _)| *ns > 0.0)
            .take(3)
            .map(|(ns, name)| format!("{:.0}% {name}", 100.0 * ns / t))
            .collect::<Vec<_>>()
            .join(", ")
    }

    /// Appends the on-path segments (as process `pid`) to a merged Chrome
    /// event stream, one track per processor; pairs with the trace
    /// emitters' [`write_chrome_events`](crate::trace::Trace::write_chrome_events)
    /// so a run's trace and its path highlight load side by side.
    pub fn write_chrome_events(&self, pid: u32, label: &str, first: &mut bool, out: &mut String) {
        let mut emit = |ev: String| {
            if !*first {
                out.push(',');
            }
            *first = false;
            out.push_str(&ev);
        };
        emit(format!(
            "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\
             \"args\":{{\"name\":{}}}}}",
            json_str(&format!("critical path: {label}"))
        ));
        let nprocs = self.segments.iter().map(|s| s.proc + 1).max().unwrap_or(0);
        for tid in 0..nprocs {
            emit(format!(
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":{tid},\
                 \"args\":{{\"name\":{}}}}}",
                json_str(&format!("proc {tid}"))
            ));
        }
        for s in &self.segments {
            emit(format!(
                "{{\"name\":{},\"cat\":\"critpath\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\
                 \"pid\":{pid},\"tid\":{},\"args\":{{\"dur_ns\":{}}}}}",
                json_str(s.kind.name()),
                us(s.start),
                us(s.end - s.start),
                s.proc,
                s.end - s.start,
            ));
        }
    }

    /// The path highlight as a standalone Chrome trace-event document.
    pub fn to_chrome_json(&self, label: &str) -> String {
        let mut doc = ChromeDoc::new();
        let (first, out) = doc.parts();
        self.write_chrome_events(0, label, first, out);
        doc.finish()
    }

    /// A fixed-width text table of the path partition per phase, plus the
    /// attrib detail of on-path memory stall.
    pub fn text_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<14} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10}\n",
            "phase",
            "path_ns",
            "busy",
            "sync_op",
            "mem_loc",
            "mem_rem",
            "lock_w",
            "barr_w",
            "sem_w"
        ));
        let mut render = |name: &str, b: &CritBuckets| {
            out.push_str(&format!(
                "{:<14} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10}\n",
                name,
                b.total_ns(),
                b.busy_ns,
                b.sync_op_ns,
                b.mem_local_ns,
                b.mem_remote_ns,
                b.lock_wait_ns,
                b.barrier_wait_ns,
                b.sem_wait_ns,
            ));
        };
        for ph in &self.phases {
            if ph.path.total_ns() > 0 {
                render(&ph.name, &ph.path);
            }
        }
        render("(total)", &self.total);
        out.push_str(&format!("limiters: {}\n", self.headline()));
        let mem = self.total.mem_ns();
        if mem > 0 {
            let causes: Vec<String> = (0..CAUSE_SLOTS)
                .filter(|&i| self.mem_cause_ns[i] > 0)
                .map(|i| format!("{} {}", cause_slot_name(i), self.mem_cause_ns[i]))
                .collect();
            out.push_str(&format!(
                "on-path mem by cause (ns): {}\n",
                causes.join(", ")
            ));
            let queues: Vec<String> = ResourceClass::ALL
                .iter()
                .filter(|r| self.mem_queue_ns[r.index()] > 0)
                .map(|r| format!("{} {}", r.name(), self.mem_queue_ns[r.index()]))
                .collect();
            if !queues.is_empty() {
                out.push_str(&format!("on-path queueing (ns): {}\n", queues.join(", ")));
            }
        }
        out
    }

    /// A fixed-width text table of the what-if projections.
    pub fn whatif_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<14} {:>14} {:>9}\n",
            "scenario", "proj_wall_ns", "speedup"
        ));
        for w in &self.whatif {
            out.push_str(&format!(
                "{:<14} {:>14} {:>8.2}x\n",
                w.name,
                w.wall_ns,
                self.speedup(&w.name),
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two procs, one lock handoff: p0 busy 100 then releases; p1 busy 30,
    /// waits 30→100, then busy 50. Wall = 150 via p1.
    fn lock_chain() -> CritCollector {
        let mut c = CritCollector::new(2);
        c.busy(0, 100);
        c.busy(1, 30);
        let rel = c.boundary(0, 100);
        c.wait(1, 30, 100, WaitKind::Lock, Dep::One(0, rel));
        c.busy(1, 50);
        c
    }

    #[test]
    fn lock_chain_partitions_exactly() {
        let rep = lock_chain().finalize(150, &["main".to_string()]);
        assert_eq!(rep.total.total_ns(), 150);
        // p1 busy 50 (on path) + p0 split: (30,100] behind the wait window
        // → 70 lock wait; (0,30] → busy.
        assert_eq!(rep.total.lock_wait_ns, 70);
        assert_eq!(rep.total.busy_ns, 80);
        assert_eq!(rep.total.mem_ns(), 0);
        let phase_sum: Ns = rep.phases.iter().map(|p| p.path.total_ns()).sum();
        assert_eq!(phase_sum, 150);
    }

    #[test]
    fn lock_chain_whatif_bounds_hold() {
        let rep = lock_chain().finalize(150, &["main".to_string()]);
        assert_eq!(rep.whatif[0].name, "measured");
        assert_eq!(rep.whatif[0].wall_ns, 150);
        // sync=0 ignores the wait: each proc runs its own busy serially.
        let sync0 = rep.whatif.iter().find(|w| w.name == "sync=0").unwrap();
        assert_eq!(sync0.wall_ns, 100);
        // busy-only bound: the busiest processor.
        let busy = rep.whatif.iter().find(|w| w.name == "busy-only").unwrap();
        assert_eq!(busy.wall_ns, 100);
        for w in &rep.whatif {
            assert!(w.wall_ns <= rep.wall_ns, "{} exceeds measured", w.name);
            assert!(w.wall_ns >= busy.wall_ns, "{} under busy bound", w.name);
        }
    }

    #[test]
    fn barrier_episode_follows_last_arrival() {
        // Three procs arrive at 10/40/100; all released at 100.
        let mut c = CritCollector::new(3);
        c.busy(0, 10);
        c.busy(1, 40);
        c.busy(2, 100);
        let deps: Vec<(usize, u32, Ns)> = [(0usize, 10u64), (1, 40), (2, 100)]
            .iter()
            .map(|&(p, t)| (p, c.boundary(p, t), t))
            .collect();
        let e = c.add_episode(deps);
        c.wait(0, 10, 100, WaitKind::Barrier, Dep::Episode(e));
        c.wait(1, 40, 100, WaitKind::Barrier, Dep::Episode(e));
        c.busy(0, 20);
        c.busy(1, 10);
        c.busy(2, 20);
        let rep = c.finalize(120, &["main".to_string()]);
        // Path: p0 (100,120] busy 20, then episode jump to p2 (the last
        // arriver). p2's (10,100] is behind p0's window → barrier wait;
        // (0,10] splits off as busy.
        assert_eq!(rep.total.total_ns(), 120);
        assert_eq!(rep.total.barrier_wait_ns, 90);
        assert_eq!(rep.total.busy_ns, 30);
        // Measured replay reproduces the wall even with the episode.
        assert_eq!(rep.whatif[0].wall_ns, 120);
        // Ideal bound is the busiest proc's busy time.
        let busy = rep.whatif.iter().find(|w| w.name == "busy-only").unwrap();
        assert_eq!(busy.wall_ns, 120);
    }

    #[test]
    fn mem_detail_lands_in_report() {
        let mut c = CritCollector::new(1);
        let mut bd = LatencyBreakdown::default();
        bd.queue[0] = 30;
        bd.service[1] = 50;
        bd.other_ns = 20;
        c.busy(0, 100);
        c.mem(0, false, 4, 100, &bd);
        let rep = c.finalize(200, &["main".to_string()]);
        assert_eq!(rep.total.mem_remote_ns, 100);
        assert_eq!(rep.mem_cause_ns[4], 100);
        assert_eq!(rep.mem_queue_ns[0], 30);
        assert_eq!(rep.mem_service_ns[1], 50);
        let hq = rep.whatif.iter().find(|w| w.name == "hub_queue=0").unwrap();
        assert_eq!(hq.wall_ns, 170);
        let rh = rep.whatif.iter().find(|w| w.name == "remote*0.5").unwrap();
        assert_eq!(rh.wall_ns, 150);
        assert!(rep.headline().contains("busy"));
    }

    #[test]
    fn phase_rows_partition_the_path() {
        let mut c = CritCollector::new(1);
        c.busy(0, 60);
        c.set_phase(0, 1, 60);
        c.busy(0, 40);
        let names = vec!["main".to_string(), "solve".to_string()];
        let rep = c.finalize(100, &names);
        assert_eq!(rep.phases.len(), 2);
        assert_eq!(rep.phases[0].name, "main");
        assert_eq!(rep.phases[0].path.busy_ns, 60);
        assert_eq!(rep.phases[1].path.busy_ns, 40);
        assert_eq!(rep.total.total_ns(), 100);
    }

    #[test]
    fn segments_merge_and_order_forward() {
        let rep = lock_chain().finalize(150, &["main".to_string()]);
        assert!(!rep.segments.is_empty());
        for w in rep.segments.windows(2) {
            assert!(w[0].end <= w[1].start || w[0].start <= w[1].start);
        }
        // Segments tile the wall clock exactly.
        let covered: Ns = rep.segments.iter().map(|s| s.end - s.start).sum();
        assert_eq!(covered, 150);
        let json = rep.to_chrome_json("test");
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.ends_with("\"displayTimeUnit\":\"ns\"}"));
        assert!(json.contains("critical path: test"));
    }

    #[test]
    fn split_exact_is_exact_and_bounded() {
        let parts = [33, 33, 33, 1];
        let s = split_exact(parts, 100, 57);
        assert_eq!(s.iter().sum::<Ns>(), 57);
        for i in 0..4 {
            assert!(s[i] <= parts[i]);
        }
        assert_eq!(split_exact([10, 0, 0, 0], 10, 10), [10, 0, 0, 0]);
        assert_eq!(split_exact([0, 0, 0, 0], 0, 0), [0, 0, 0, 0]);
    }

    #[test]
    fn empty_run_yields_empty_report() {
        let rep = CritCollector::new(2).finalize(0, &["main".to_string()]);
        assert_eq!(rep.wall_ns, 0);
        assert_eq!(rep.total.total_ns(), 0);
        assert_eq!(rep.whatif[0].wall_ns, 0);
        assert!(rep.segments.is_empty());
        assert_eq!(rep.share_pct(), (0.0, 0.0, 0.0));
        assert_eq!(rep.speedup("sync=0"), 1.0);
    }

    #[test]
    fn summary_triple_sums_to_wall() {
        let rep = lock_chain().finalize(150, &["main".to_string()]);
        let [b, m, s] = rep.summary();
        assert_eq!(b + m + s, 150);
        let (bp, mp, sp) = rep.share_pct();
        assert!((bp + mp + sp - 100.0).abs() < 1e-9);
    }
}
