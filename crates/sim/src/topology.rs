//! Interconnect topology: hypercubes of routers, optionally joined by
//! metarouters.
//!
//! The Origin2000 connects *routers*, not nodes: each node's Hub attaches to
//! a router, and each router serves two nodes (four processors). Machines up
//! to 64 processors use a full hypercube of routers; the 128-processor
//! machine of the paper is four 32-processor hypercube modules (8 routers
//! each) whose corresponding routers are joined through eight shared
//! metarouters (Figure 1 of the paper).

/// The shape of the router network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TopologyKind {
    /// A single hypercube of routers (dimension = ⌈log₂ #routers⌉).
    /// This is the 32/64-processor Origin2000 configuration.
    FullHypercube,
    /// Hypercube modules of `routers_per_module` routers joined by
    /// metarouters: router *i* of every module connects to metarouter *i*.
    /// The paper's 128-processor machine is `routers_per_module = 8`.
    MetaModules {
        /// Routers per hypercube module (must be a power of two).
        routers_per_module: usize,
    },
    /// An idealised uniform network: every remote pair is the nominal
    /// distance apart and no metarouters exist. Useful as a control when
    /// isolating topology effects (§7.1).
    Ideal,
}

/// A resolved route between two nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Route {
    /// Router-to-router hops beyond entering the source router
    /// (0 when both nodes share a router or are the same node).
    pub hops: u32,
    /// Router attached to the source node.
    pub src_router: usize,
    /// Router attached to the destination node.
    pub dst_router: usize,
    /// The metarouter traversed, if the route crosses modules.
    pub metarouter: Option<usize>,
}

impl Route {
    /// A route that never leaves the node (or the Hub).
    pub fn local(router: usize) -> Self {
        Route {
            hops: 0,
            src_router: router,
            dst_router: router,
            metarouter: None,
        }
    }
}

/// The router network of a machine.
///
/// # Examples
///
/// ```
/// use ccnuma_sim::topology::{Topology, TopologyKind};
/// // 128 processors, 2 per node, 2 nodes per router → 32 routers,
/// // 4 modules of 8 connected by metarouters.
/// let t = Topology::new(TopologyKind::MetaModules { routers_per_module: 8 }, 64, 2);
/// let r = t.route(0, 63);
/// assert!(r.metarouter.is_some());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Topology {
    kind: TopologyKind,
    n_nodes: usize,
    nodes_per_router: usize,
    n_routers: usize,
}

impl Topology {
    /// Builds a topology for `n_nodes` nodes with `nodes_per_router` nodes
    /// attached to each router.
    ///
    /// # Panics
    ///
    /// Panics if `n_nodes` or `nodes_per_router` is zero, or if
    /// `MetaModules::routers_per_module` is not a power of two.
    pub fn new(kind: TopologyKind, n_nodes: usize, nodes_per_router: usize) -> Self {
        assert!(n_nodes > 0, "topology requires at least one node");
        assert!(nodes_per_router > 0, "nodes_per_router must be positive");
        if let TopologyKind::MetaModules { routers_per_module } = kind {
            assert!(
                routers_per_module.is_power_of_two(),
                "routers_per_module must be a power of two, got {routers_per_module}"
            );
        }
        let n_routers = n_nodes.div_ceil(nodes_per_router);
        Topology {
            kind,
            n_nodes,
            nodes_per_router,
            n_routers,
        }
    }

    /// The network kind.
    pub fn kind(&self) -> TopologyKind {
        self.kind
    }

    /// Number of routers in the network.
    pub fn n_routers(&self) -> usize {
        self.n_routers
    }

    /// Number of nodes attached to the network.
    pub fn n_nodes(&self) -> usize {
        self.n_nodes
    }

    /// The router a node's Hub attaches to.
    pub fn router_of(&self, node: usize) -> usize {
        debug_assert!(node < self.n_nodes);
        node / self.nodes_per_router
    }

    /// Number of metarouters (0 unless the kind is [`TopologyKind::MetaModules`]
    /// and more than one module exists).
    pub fn n_metarouters(&self) -> usize {
        match self.kind {
            TopologyKind::MetaModules { routers_per_module }
                if self.n_routers > routers_per_module =>
            {
                routers_per_module
            }
            _ => 0,
        }
    }

    /// Resolves the route between two nodes.
    pub fn route(&self, src_node: usize, dst_node: usize) -> Route {
        let src_router = self.router_of(src_node);
        let dst_router = self.router_of(dst_node);
        if src_router == dst_router {
            return Route {
                hops: 0,
                src_router,
                dst_router,
                metarouter: None,
            };
        }
        match self.kind {
            TopologyKind::Ideal => Route {
                hops: 1,
                src_router,
                dst_router,
                metarouter: None,
            },
            TopologyKind::FullHypercube => Route {
                hops: (src_router ^ dst_router).count_ones(),
                src_router,
                dst_router,
                metarouter: None,
            },
            TopologyKind::MetaModules { routers_per_module } => {
                let (sm, si) = (
                    src_router / routers_per_module,
                    src_router % routers_per_module,
                );
                let (dm, di) = (
                    dst_router / routers_per_module,
                    dst_router % routers_per_module,
                );
                if sm == dm {
                    Route {
                        hops: (si ^ di).count_ones(),
                        src_router,
                        dst_router,
                        metarouter: None,
                    }
                } else {
                    // Travel within the source module to the router aligned
                    // with the destination's index, cross its metarouter,
                    // and arrive at the destination router. Crossing the
                    // metarouter counts as two link traversals.
                    Route {
                        hops: (si ^ di).count_ones() + 2,
                        src_router,
                        dst_router,
                        metarouter: Some(di),
                    }
                }
            }
        }
    }

    /// Maximum router-to-router distance in the network (network diameter).
    pub fn diameter(&self) -> u32 {
        let mut max = 0;
        for a in 0..self.n_nodes {
            for b in 0..self.n_nodes {
                max = max.max(self.route(a, b).hops);
            }
        }
        max
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hypercube(nodes: usize) -> Topology {
        Topology::new(TopologyKind::FullHypercube, nodes, 2)
    }

    #[test]
    fn same_node_and_same_router_are_zero_hops() {
        let t = hypercube(32);
        assert_eq!(t.route(5, 5).hops, 0);
        // Nodes 0 and 1 share router 0.
        assert_eq!(t.route(0, 1).hops, 0);
        assert_eq!(t.router_of(0), t.router_of(1));
    }

    #[test]
    fn hypercube_hops_are_popcount() {
        let t = hypercube(32); // 16 routers, 4-cube
                               // Node 0 (router 0) to node 30 (router 15): xor 0b1111 → 4 hops.
        assert_eq!(t.route(0, 30).hops, 4);
        assert_eq!(t.route(0, 2).hops, 1); // router 0 → 1
    }

    #[test]
    fn hypercube_diameter_matches_dimension() {
        // 64 nodes / 2 per router = 32 routers = 5-cube.
        assert_eq!(hypercube(64).diameter(), 5);
        assert_eq!(hypercube(8).diameter(), 2);
    }

    #[test]
    fn metamodules_cross_module_uses_metarouter() {
        // 128 procs → 64 nodes → 32 routers → 4 modules of 8.
        let t = Topology::new(
            TopologyKind::MetaModules {
                routers_per_module: 8,
            },
            64,
            2,
        );
        assert_eq!(t.n_metarouters(), 8);
        // Node 0 (module 0, router 0) ↔ node 16 (router 8 → module 1, index 0).
        let r = t.route(0, 16);
        assert_eq!(r.metarouter, Some(0));
        assert_eq!(r.hops, 2); // aligned routers: straight through the metarouter
                               // Intra-module routes never cross a metarouter.
        let r = t.route(0, 14); // routers 0 and 7 in module 0
        assert_eq!(r.metarouter, None);
        assert_eq!(r.hops, 3);
    }

    #[test]
    fn metamodules_single_module_degenerates_to_hypercube() {
        let t = Topology::new(
            TopologyKind::MetaModules {
                routers_per_module: 8,
            },
            16,
            2,
        );
        assert_eq!(t.n_metarouters(), 0);
        assert_eq!(t.route(0, 14).metarouter, None);
    }

    #[test]
    fn ideal_is_uniform_single_hop() {
        let t = Topology::new(TopologyKind::Ideal, 64, 2);
        assert_eq!(t.route(0, 63).hops, 1);
        assert_eq!(t.diameter(), 1);
    }

    #[test]
    fn route_is_symmetric_in_hops() {
        let t = Topology::new(
            TopologyKind::MetaModules {
                routers_per_module: 8,
            },
            64,
            2,
        );
        for a in (0..64).step_by(7) {
            for b in (0..64).step_by(5) {
                assert_eq!(t.route(a, b).hops, t.route(b, a).hops, "{a} {b}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_module_size_panics() {
        Topology::new(
            TopologyKind::MetaModules {
                routers_per_module: 6,
            },
            64,
            2,
        );
    }
}
