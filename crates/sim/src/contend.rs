//! Occupancy-based contention model.
//!
//! Every shared resource — a node's Hub, a node's memory bank, a router, a
//! metarouter — is a [`Resource`] with a `busy_until` horizon. A transaction
//! arriving at time *t* waits `max(0, busy_until − t)`, then occupies the
//! resource for its occupancy. Queueing delays feed back into transaction
//! latency, which is how the simulator reproduces the paper's contention
//! effects (the Radix permutation collapse, FFT's capacity-miss interference
//! at the Hub, and the §7.2 node-sharing results).

use crate::time::Ns;

/// One contended resource, modelled as a fluid queue: the server drains
/// one nanosecond of backlog per nanosecond of virtual time, and a
/// transaction's wait is the backlog in front of it.
///
/// The backlog formulation (rather than a strict `busy_until` horizon) is
/// deliberate: the engine processes batched memory operations whose
/// timestamps may interleave slightly out of order across processors, and
/// a horizon model would charge phantom waits for that reordering. The
/// fluid queue is insensitive to bounded reordering while agreeing exactly
/// with the horizon model for in-order arrivals.
#[derive(Debug, Default, Clone)]
pub struct Resource {
    backlog: Ns,
    last: Ns,
    /// Total occupancy charged (utilization numerator).
    pub busy_total: Ns,
    /// Total queueing delay imposed on transactions.
    pub wait_total: Ns,
    /// Transactions served.
    pub count: u64,
}

impl Resource {
    fn drain_to(&mut self, arrive: Ns) {
        let dt = arrive.saturating_sub(self.last);
        self.last = self.last.max(arrive);
        self.backlog = self.backlog.saturating_sub(dt);
    }

    /// Serves a transaction arriving at `arrive` with occupancy `occ`.
    /// Returns the queueing wait the transaction experienced.
    pub fn acquire(&mut self, arrive: Ns, occ: Ns) -> Ns {
        self.drain_to(arrive);
        let wait = self.backlog;
        self.backlog += occ;
        self.busy_total += occ;
        self.wait_total += wait;
        self.count += 1;
        wait
    }

    /// Reserves occupancy without delaying the caller (e.g. a buffered
    /// writeback: the processor does not stall, but the resource is used
    /// and later transactions queue behind it).
    pub fn occupy(&mut self, arrive: Ns, occ: Ns) {
        self.drain_to(arrive);
        self.backlog += occ;
        self.busy_total += occ;
        self.count += 1;
    }
}

/// Aggregate wait/occupancy statistics for one resource class.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ResourceTotals {
    /// Total busy (occupied) time across all instances.
    pub busy_ns: Ns,
    /// Total queueing delay imposed.
    pub wait_ns: Ns,
    /// Transactions served.
    pub count: u64,
}

/// All contended resources of a machine.
#[derive(Debug)]
pub struct Contention {
    /// One Hub per node (shared by the node's processors).
    pub hubs: Vec<Resource>,
    /// One memory bank per node.
    pub mems: Vec<Resource>,
    /// Routers.
    pub routers: Vec<Resource>,
    /// Metarouters (empty when the topology has none).
    pub metarouters: Vec<Resource>,
}

impl Contention {
    /// Creates idle resources for a machine shape.
    pub fn new(n_nodes: usize, n_routers: usize, n_metarouters: usize) -> Self {
        Contention {
            hubs: vec![Resource::default(); n_nodes],
            mems: vec![Resource::default(); n_nodes],
            routers: vec![Resource::default(); n_routers],
            metarouters: vec![Resource::default(); n_metarouters],
        }
    }

    fn totals(rs: &[Resource]) -> ResourceTotals {
        rs.iter().fold(ResourceTotals::default(), |mut t, r| {
            t.busy_ns += r.busy_total;
            t.wait_ns += r.wait_total;
            t.count += r.count;
            t
        })
    }

    /// Per-class aggregate statistics: (hubs, memories, routers, metarouters).
    pub fn summary(&self) -> [ResourceTotals; 4] {
        [
            Self::totals(&self.hubs),
            Self::totals(&self.mems),
            Self::totals(&self.routers),
            Self::totals(&self.metarouters),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn back_to_back_transactions_queue() {
        let mut r = Resource::default();
        assert_eq!(r.acquire(100, 50), 0); // idle: no wait
        assert_eq!(r.acquire(120, 50), 30); // arrives mid-service: waits to 150
        assert_eq!(r.acquire(300, 50), 0); // idle again
        assert_eq!(r.busy_total, 150);
        assert_eq!(r.wait_total, 30);
        assert_eq!(r.count, 3);
    }

    #[test]
    fn occupy_reserves_without_wait_accounting() {
        let mut r = Resource::default();
        r.occupy(0, 100);
        // A later transaction still queues behind the buffered one.
        assert_eq!(r.acquire(10, 10), 90);
        assert_eq!(r.wait_total, 90);
    }

    #[test]
    fn contention_summary_aggregates() {
        let mut c = Contention::new(2, 1, 0);
        c.hubs[0].acquire(0, 10);
        c.hubs[1].acquire(0, 20);
        c.mems[0].acquire(0, 5);
        let [hubs, mems, routers, metas] = c.summary();
        assert_eq!(hubs.busy_ns, 30);
        assert_eq!(hubs.count, 2);
        assert_eq!(mems.busy_ns, 5);
        assert_eq!(routers.count, 0);
        assert_eq!(metas.count, 0);
    }
}
